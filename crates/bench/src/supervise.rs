//! Supervised job execution: `catch_unwind` containment, per-job
//! deadlines, and bounded deterministic retry.
//!
//! [`supervise`] generalizes what `run_matrix_checked` did for benchmark
//! cells to arbitrary jobs: every job runs under
//! [`std::panic::catch_unwind`], optionally on a watchdog deadline, and
//! is retried a bounded number of times with a deterministic linear
//! backoff. The caller gets a structured [`WorkerReport`] per job —
//! completed, panicked (with the decoded message), or timed out — in
//! job order, regardless of completion order.
//!
//! The chaos harness (`chaos --scenario par-chaos`) uses this to drive
//! `ParRegionPool` workers that are *expected* to crash: supervision
//! guarantees the faults are contained and reported, and the retry path
//! exercises re-registration against a pool carrying orphaned counts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// How [`supervise`] runs a batch of jobs.
#[derive(Clone, Debug)]
pub struct SuperviseConfig {
    /// Concurrent worker threads draining the job queue (min 1).
    pub workers: usize,
    /// Watchdog deadline per *attempt*. `None` runs attempts inline on
    /// the worker; `Some(d)` runs each attempt on its own watchdog
    /// thread and abandons it after `d` (the thread is detached — a
    /// stuck attempt leaks rather than wedging supervision).
    pub deadline: Option<Duration>,
    /// Maximum attempts per job (min 1). A job that panics on its last
    /// attempt is reported [`JobOutcome::Panicked`].
    pub max_attempts: u32,
    /// Base of the deterministic linear backoff: attempt `n` (1-based
    /// retry) is preceded by a sleep of `backoff * n`.
    pub backoff: Duration,
    /// Whether a timed-out attempt is retried like a panicked one.
    /// Defaults to `false`: a deadline miss usually means the job is
    /// stuck, and rerunning it doubles the leaked watchdog threads.
    pub retry_timeouts: bool,
}

impl Default for SuperviseConfig {
    fn default() -> SuperviseConfig {
        SuperviseConfig {
            workers: 1,
            deadline: None,
            max_attempts: 1,
            backoff: Duration::from_millis(1),
            retry_timeouts: false,
        }
    }
}

/// Terminal outcome of one supervised job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The job returned normally; the value is its result.
    Completed(T),
    /// The final attempt panicked; the payload is the decoded panic
    /// message.
    Panicked(String),
    /// The final attempt exceeded the deadline and was abandoned.
    TimedOut(Duration),
}

impl<T> JobOutcome<T> {
    /// `true` for [`JobOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed(_))
    }

    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            _ => None,
        }
    }
}

/// What happened to one job under [`supervise`].
#[derive(Clone, Debug)]
pub struct WorkerReport<T> {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// Attempts consumed (1 = first try succeeded or was terminal).
    pub attempts: u32,
    /// Terminal outcome of the last attempt.
    pub outcome: JobOutcome<T>,
}

/// Decodes a `catch_unwind` payload into the panic message. The two
/// shapes `panic!` produces (`&str`, `String`) decode exactly; anything
/// else degrades to a placeholder instead of panicking again inside the
/// supervisor.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// One attempt's result, before retry policy is applied.
enum Attempt<T> {
    Done(T),
    Panic(String),
    Timeout(Duration),
}

fn run_attempt<T, F>(jobs: &Arc<Vec<F>>, job: usize, attempt: u32, deadline: Option<Duration>) -> Attempt<T>
where
    F: Fn(u32) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    match deadline {
        None => match catch_unwind(AssertUnwindSafe(|| jobs[job](attempt))) {
            Ok(v) => Attempt::Done(v),
            Err(p) => Attempt::Panic(panic_message(p)),
        },
        Some(d) => {
            // Watchdog: the attempt runs on a detached thread so a stuck
            // job can be abandoned (std::thread::scope would join — and
            // hang — on it). The channel send after abandonment fails
            // harmlessly.
            let (tx, rx) = mpsc::channel();
            let jobs = Arc::clone(jobs);
            std::thread::spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| jobs[job](attempt)))
                    .map_err(panic_message);
                let _ = tx.send(result);
            });
            match rx.recv_timeout(d) {
                Ok(Ok(v)) => Attempt::Done(v),
                Ok(Err(msg)) => Attempt::Panic(msg),
                Err(_) => Attempt::Timeout(d),
            }
        }
    }
}

fn run_job<T, F>(jobs: &Arc<Vec<F>>, job: usize, cfg: &SuperviseConfig) -> WorkerReport<T>
where
    F: Fn(u32) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let max_attempts = cfg.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        if attempt > 0 {
            // Deterministic linear backoff before each retry.
            std::thread::sleep(cfg.backoff.saturating_mul(attempt));
        }
        let outcome = match run_attempt(jobs, job, attempt, cfg.deadline) {
            Attempt::Done(v) => JobOutcome::Completed(v),
            Attempt::Panic(msg) => JobOutcome::Panicked(msg),
            Attempt::Timeout(d) => JobOutcome::TimedOut(d),
        };
        let retryable = match &outcome {
            JobOutcome::Completed(_) => false,
            JobOutcome::Panicked(_) => true,
            JobOutcome::TimedOut(_) => cfg.retry_timeouts,
        };
        attempt += 1;
        if !retryable || attempt >= max_attempts {
            return WorkerReport { job, attempts: attempt, outcome };
        }
    }
}

/// Runs every job under supervision and returns one [`WorkerReport`]
/// per job, **in job order**.
///
/// Each job is a closure receiving its attempt index (0 on the first
/// try), so a job can behave differently on retry — the chaos harness
/// injects "panic on attempt 0 only" faults this way. Workers pull jobs
/// from a shared cursor; a panicked or abandoned job costs that job,
/// never the batch.
pub fn supervise<T, F>(jobs: Vec<F>, cfg: &SuperviseConfig) -> Vec<WorkerReport<T>>
where
    F: Fn(u32) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let n = jobs.len();
    let jobs = Arc::new(jobs);
    let workers = cfg.workers.max(1).min(n.max(1));
    if workers <= 1 && cfg.deadline.is_none() {
        // Inline fast path: no worker threads on a serial machine.
        return (0..n).map(|i| run_job(&jobs, i, cfg)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<WorkerReport<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let report = run_job(&jobs, i, cfg);
                *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(fns: Vec<Box<dyn Fn(u32) -> u32 + Send + Sync>>) -> Vec<Box<dyn Fn(u32) -> u32 + Send + Sync>> {
        fns
    }

    #[test]
    fn completed_jobs_report_in_order() {
        let jobs = boxed(vec![
            Box::new(|_| 10),
            Box::new(|_| 20),
            Box::new(|_| 30),
        ]);
        let cfg = SuperviseConfig { workers: 3, ..SuperviseConfig::default() };
        let reports = supervise(jobs, &cfg);
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.job, i);
            assert_eq!(r.attempts, 1);
            assert_eq!(r.outcome, JobOutcome::Completed(10 * (i as u32 + 1)));
        }
    }

    #[test]
    fn panic_is_contained_and_reported() {
        let jobs = boxed(vec![
            Box::new(|_| 1),
            Box::new(|_| panic!("job two dies")),
            Box::new(|_| 3),
        ]);
        let reports = supervise(jobs, &SuperviseConfig::default());
        assert!(reports[0].outcome.is_completed());
        assert_eq!(reports[1].outcome, JobOutcome::Panicked("job two dies".to_string()));
        assert!(reports[2].outcome.is_completed(), "a panicked job must not cost the batch");
    }

    #[test]
    fn bounded_retry_reruns_panicked_jobs() {
        // Fails on attempt 0, succeeds on attempt 1: the retry path must
        // pass the attempt index through.
        let jobs = boxed(vec![Box::new(|attempt| {
            if attempt == 0 {
                panic!("flaky");
            }
            attempt
        })]);
        let cfg = SuperviseConfig { max_attempts: 2, ..SuperviseConfig::default() };
        let reports = supervise(jobs, &cfg);
        assert_eq!(reports[0].attempts, 2);
        assert_eq!(reports[0].outcome, JobOutcome::Completed(1));
    }

    #[test]
    fn retry_budget_is_bounded() {
        let jobs = boxed(vec![Box::new(|_| panic!("always dies"))]);
        let cfg = SuperviseConfig { max_attempts: 3, ..SuperviseConfig::default() };
        let reports = supervise(jobs, &cfg);
        assert_eq!(reports[0].attempts, 3);
        assert_eq!(reports[0].outcome, JobOutcome::Panicked("always dies".to_string()));
    }

    #[test]
    fn deadline_abandons_stuck_jobs() {
        let jobs = boxed(vec![
            Box::new(|_| {
                std::thread::sleep(Duration::from_secs(30));
                0
            }),
            Box::new(|_| 7),
        ]);
        let cfg = SuperviseConfig {
            workers: 2,
            deadline: Some(Duration::from_millis(50)),
            ..SuperviseConfig::default()
        };
        let reports = supervise(jobs, &cfg);
        assert_eq!(reports[0].outcome, JobOutcome::TimedOut(Duration::from_millis(50)));
        assert_eq!(reports[0].attempts, 1, "timeouts are not retried by default");
        assert_eq!(reports[1].outcome, JobOutcome::Completed(7));
    }

    #[test]
    fn panic_payload_shapes_decode() {
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new(String::from("kaboom"))), "kaboom");
        assert!(panic_message(Box::new(17u32)).contains("non-string"));
    }
}
