//! Compile and run a C@ program — the paper's language (§3) end to end.
//!
//! The program is the paper's Figure 3 list copy embedded in a small
//! driver; pass a path to run your own `.cq` file instead:
//!
//! ```text
//! cargo run --example cq_compile_run [program.cq]
//! ```

use explicit_regions::cq_lang::{compile, Vm};
use explicit_regions::region_core::SafetyMode;

const FIGURE3: &str = r#"
// Paper Figure 3: copy a list into a temporary region, then delete it.
struct list { int i; list@ next; };

list@ cons(Region r, int x, list@ l) {
    list@ p = ralloc(r, list);
    p.i = x;
    p.next = l;
    return p;
}

list@ copy_list(Region r, list@ l) {
    if (l == null) return null;
    return cons(r, l.i, copy_list(r, l.next));
}

int sum(list@ l) {
    if (l == null) return 0;
    return l.i + sum(l.next);
}

void main() {
    Region r = newregion();
    list@ l = null;
    int i = 1;
    while (i <= 10) {
        l = cons(r, i, l);
        i = i + 1;
    }
    print(sum(l));                  // 55

    Region tmp = newregion();
    list@ c = copy_list(tmp, l);
    print(sum(c));                  // 55 again, from the copy
    int ok = deleteregion(tmp);
    print(ok);                      // safe mode: 0 (c points into tmp);
                                    // unsafe mode: 1 (deleted anyway —
                                    // c now dangles, exactly the hazard
                                    // safe regions remove)
    if (ok == 0) {
        c = null;
        print(deleteregion(tmp));   // 1: now it can go
    }
    print(sum(l));                  // the original is untouched
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => FIGURE3.to_string(),
    };

    println!("== compiling ==");
    let program = compile(&source)?;
    println!(
        "  {} functions, {} instructions, {} cleanup descriptors",
        program.funcs.len(),
        program.code_len(),
        program.descriptors.len()
    );

    for mode in [SafetyMode::Safe, SafetyMode::Unsafe] {
        println!("== running ({mode:?} mode) ==");
        let mut vm = Vm::new(program.clone(), mode);
        vm.run()?;
        println!("  output: {:?}", vm.output());
        println!(
            "  {} VM instructions; {} allocations in {} regions",
            vm.instructions(),
            vm.runtime().stats().total_allocs,
            vm.runtime().stats().total_regions
        );
        let costs = vm.runtime().costs();
        println!(
            "  safety work: {} barrier instrs, {} scan instrs, {} cleanup instrs",
            costs.barrier_instrs, costs.scan_instrs, costs.cleanup_instrs
        );
    }
    Ok(())
}
