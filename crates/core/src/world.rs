//! World snapshots: capture and restore of a whole sharded address space
//! (DESIGN §15.4).
//!
//! A v1 `RSNP` snapshot ([`RegionRuntime::capture_snapshot`]) serializes
//! one runtime on one private heap. A **world snapshot** (version 2 of
//! the same `RSNP` container) serializes a [`SharedSpace`] and every
//! runtime mutating it: the space geometry, the global page table with
//! zero-page elision, the atomic ownership mirror, and then — per worker,
//! in worker order — the shard's sbrk/counter state followed by the
//! runtime body in exactly the v1 byte layout
//! ([`RegionRuntime::write_snapshot_body`]).
//!
//! Restore is gated the same way v1 restore is, per runtime: untrusted
//! bytes never panic, every decoded address is bounds-checked against its
//! own shard (a corrupt snapshot cannot point worker *w*'s books at
//! worker *v*'s pages), each runtime must pass the object re-walk and the
//! mandatory sanitize pass, and the decoded space mirror must agree with
//! every runtime's page map. Re-capturing a restored world yields the
//! original bytes.
//!
//! Capture requires a quiescent world — the caller holds `&` references
//! to every runtime, so no worker thread can be mutating the space.

use std::sync::Arc;

use simheap::{HeapBackend, HeapShard, SharedSpace, SpaceConfig, PAGE_SIZE};

use crate::runtime::RegionRuntime;
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError, SNAPSHOT_MAGIC};

/// Version tag of world (sharded) snapshots inside the `RSNP` container.
/// Version 1 is the single-heap layout of
/// [`RegionRuntime::capture_snapshot`]; readers of either version reject
/// the other with [`SnapshotError::UnsupportedVersion`], so the two
/// formats can evolve independently.
pub const WORLD_SNAPSHOT_VERSION: u32 = 2;

/// A restored world: the rebuilt space plus one runtime per worker, in
/// worker order, each already past its restore gates.
pub struct RestoredWorld {
    /// The rebuilt shared space (all shards claimed by the runtimes).
    pub space: Arc<SharedSpace>,
    /// Runtime `w` sits on worker `w`'s shard.
    pub runtimes: Vec<RegionRuntime<HeapShard>>,
}

impl std::fmt::Debug for RestoredWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RestoredWorld")
            .field("space", &self.space)
            .field("runtimes", &self.runtimes.len())
            .finish()
    }
}

/// Serializes a sharded world — the space and one runtime per worker, in
/// worker order — into a version-2 `RSNP` byte stream.
///
/// # Panics
///
/// Panics if `runtimes` does not hold exactly one runtime per worker of
/// `space` in worker order, if any runtime sits on a different space, or
/// if any shard still has a trace sink attached (sinks are live host
/// objects with no serial form; detach first, re-attach after restore).
pub fn capture_world(space: &Arc<SharedSpace>, runtimes: &[&RegionRuntime<HeapShard>]) -> Vec<u8> {
    assert_eq!(
        runtimes.len(),
        space.workers() as usize,
        "world capture needs one runtime per worker"
    );
    for (w, rt) in runtimes.iter().enumerate() {
        assert!(
            Arc::ptr_eq(rt.heap().space(), space),
            "runtime {w} sits on a different SharedSpace"
        );
        assert_eq!(rt.heap().worker(), w as u32, "runtimes must be in worker order");
        assert!(
            !rt.heap().is_tracing(),
            "cannot capture a world while worker {w} has a trace sink attached"
        );
    }
    let mut w = SnapWriter::new();
    w.raw(&SNAPSHOT_MAGIC);
    w.u32(WORLD_SNAPSHOT_VERSION);
    // -- space geometry --
    w.u64(space.max_bytes());
    w.u32(space.workers());
    // -- global page table + ownership mirror --
    let slots = space.total_pages();
    w.u32(slots);
    for page in 0..slots {
        match space.page_snapshot(page) {
            None => w.u8(0),
            Some(words) => {
                if words.iter().all(|&v| v == 0) {
                    w.u8(2); // installed all-zero page: tag only
                } else {
                    w.u8(1);
                    for &v in &words {
                        w.raw(&v.to_le_bytes());
                    }
                }
                w.u32(space.mirror_entry(page));
            }
        }
    }
    // -- per-worker shard state + runtime body (v1 layout) --
    for rt in runtimes {
        let shard = rt.heap();
        w.u32(shard.allocated_pages());
        w.opt_u64(shard.sbrk_fault_after());
        w.u64(shard.load_count());
        w.u64(shard.store_count());
        rt.write_snapshot_body(&mut w);
    }
    w.into_bytes()
}

/// Rebuilds a world from [`capture_world`] bytes.
///
/// Untrusted input never panics: bad magic, a non-world version,
/// truncation, unknown page tags, impossible geometry (zero or >255
/// workers, a space too small for its workers, a slot count that does
/// not match), pages installed outside every worker's allocated prefix,
/// mirror entries naming out-of-range workers or pages outside the named
/// worker's shard, and trailing garbage are all rejected with a typed
/// [`SnapshotError`]. Each decoded runtime must then pass the same gates
/// as a v1 restore (object re-walk + mandatory sanitize), and finally the
/// space-wide mirror must agree entry-for-entry with the runtimes' page
/// maps.
pub fn restore_world(bytes: &[u8]) -> Result<RestoredWorld, SnapshotError> {
    let mut r = SnapReader::new(bytes);
    if r.raw(4)? != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != WORLD_SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { version });
    }
    // -- space geometry --
    r.section("space");
    let max_bytes = r.u64()?;
    let workers = r.u32()?;
    if !(1..=255).contains(&workers) {
        return Err(r.malformed());
    }
    let total_pages = max_bytes.min(u64::from(u32::MAX)) / u64::from(PAGE_SIZE);
    if total_pages <= u64::from(workers) {
        return Err(r.malformed());
    }
    let space = SharedSpace::new(SpaceConfig { max_bytes, workers });
    // -- global page table + ownership mirror --
    r.section("pages");
    let slots = r.u32()?;
    if slots != space.total_pages() {
        return Err(r.malformed());
    }
    let span = space.span_pages();
    let psize = PAGE_SIZE as usize;
    let mut installed = vec![false; slots as usize];
    let zero_page = vec![0u32; psize / 4];
    for page in 0..slots {
        let tag = r.u8()?;
        if tag == 0 {
            continue;
        }
        // Only workers' spans hold pages; slot 0 is the guard page.
        if page == 0 || tag > 2 {
            return Err(r.malformed());
        }
        let words: Vec<u32> = if tag == 1 {
            r.raw(psize)?.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
        } else {
            zero_page.clone()
        };
        let mirror = r.u32()?;
        match SharedSpace::decode_mirror(mirror) {
            Some((owner, _cell)) => {
                let in_owner_span = owner < workers
                    && page >= space.base_page(owner)
                    && page < space.base_page(owner) + span;
                if !in_owner_span {
                    return Err(r.malformed());
                }
            }
            // A nonzero word that decodes to no owner (zero worker byte)
            // is not something the writer can emit.
            None if mirror != 0 => return Err(r.malformed()),
            None => {}
        }
        space.install_page(page, &words);
        space.set_mirror_entry(page, mirror);
        installed[page as usize] = true;
    }
    // -- per-worker shard state + runtime body --
    r.section("shards");
    let mut runtimes = Vec::new();
    for w in 0..workers {
        let allocated = r.u32()?;
        if allocated > span {
            return Err(r.malformed());
        }
        let base = space.base_page(w);
        // The shard's mapped range is exactly the installed prefix of its
        // span: a hole inside it or a stray page beyond it is corrupt.
        for i in 0..span {
            if installed[(base + i) as usize] != (i < allocated) {
                return Err(r.malformed());
            }
        }
        let fault_after = r.opt_u64()?;
        let loads = r.u64()?;
        let stores = r.u64()?;
        let shard = space.adopt_shard(w, allocated, loads, stores, fault_after);
        let floor = base.checked_mul(PAGE_SIZE).ok_or_else(|| r.malformed())?;
        let rt = RegionRuntime::read_snapshot_body(&mut r, shard, floor)?;
        runtimes.push(rt.finish_restore()?);
    }
    r.finish()?;
    // Final gate: the decoded space mirror must say exactly what the
    // runtimes' page maps say.
    let mirror_mismatches = world_mirror_mismatches(&space, runtimes.iter());
    if mirror_mismatches != 0 {
        return Err(SnapshotError::SanitizeFailed { rc_mismatches: 0, mirror_mismatches });
    }
    Ok(RestoredWorld { space, runtimes })
}

/// Counts disagreements between the space-wide atomic ownership mirror
/// and the runtimes' per-worker page maps: an owned page whose mirror
/// entry is missing or names the wrong worker/region, or a mirror entry
/// claiming a page its worker's runtime does not own. Zero on every
/// consistent world; the chaos harness calls this after injected panics
/// and restores.
pub fn world_mirror_mismatches<'a, I>(space: &SharedSpace, runtimes: I) -> usize
where
    I: Iterator<Item = &'a RegionRuntime<HeapShard>>,
{
    let mut mismatches = 0;
    for rt in runtimes {
        let w = rt.heap().worker();
        let base = space.base_page(w);
        let end = base + space.span_pages();
        let map = rt.map_mirror_entries();
        for page in base..end {
            let cell = map.get(page as usize).copied().unwrap_or(0);
            let expect = if cell == 0 { 0 } else { (w + 1) << 24 | cell };
            if space.mirror_entry(page) != expect {
                mismatches += 1;
            }
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RegionConfig;
    use crate::TypeDescriptor;
    use simheap::Addr;

    fn shard_config() -> RegionConfig {
        RegionConfig::default()
    }

    fn small_space(workers: u32) -> Arc<SharedSpace> {
        SharedSpace::new(SpaceConfig { max_bytes: 4 * 1024 * 1024, workers })
    }

    fn populated_world(workers: u32) -> (Arc<SharedSpace>, Vec<RegionRuntime<HeapShard>>) {
        let space = small_space(workers);
        let mut runtimes = Vec::new();
        for w in 0..workers {
            let mut rt = RegionRuntime::with_config_on(shard_config(), space.shard(w));
            let d = rt.register_type(TypeDescriptor::new("pair", 8, vec![4]));
            let r = rt.new_region();
            for i in 0..20u32 {
                let a = rt.ralloc(r, d);
                rt.heap_mut().store_u32(a, w * 1000 + i);
            }
            let s = rt.rstralloc(r, 100 + w);
            rt.heap_mut().store_u32(s, 0xfeed_0000 | w);
            runtimes.push(rt);
        }
        (space, runtimes)
    }

    #[test]
    fn world_roundtrip_is_byte_identical() {
        let (space, runtimes) = populated_world(3);
        let refs: Vec<&RegionRuntime<HeapShard>> = runtimes.iter().collect();
        let bytes = capture_world(&space, &refs);
        let world = restore_world(&bytes).expect("restore");
        assert_eq!(world.runtimes.len(), 3);
        let refs2: Vec<&RegionRuntime<HeapShard>> = world.runtimes.iter().collect();
        let bytes2 = capture_world(&world.space, &refs2);
        assert_eq!(bytes, bytes2, "re-capture must reproduce the exact stream");
    }

    #[test]
    fn restored_world_keeps_running_identically() {
        let (space, mut runtimes) = populated_world(2);
        let refs: Vec<&RegionRuntime<HeapShard>> = runtimes.iter().collect();
        let bytes = capture_world(&space, &refs);
        let mut world = restore_world(&bytes).expect("restore");
        // Drive both the original and the restored world through the same
        // suffix; every address and counter must match.
        for (orig, rest) in runtimes.iter_mut().zip(world.runtimes.iter_mut()) {
            let d_o = orig.register_type(TypeDescriptor::new("post", 12, vec![]));
            let d_r = rest.register_type(TypeDescriptor::new("post", 12, vec![]));
            assert_eq!(d_o, d_r);
            let r_o = orig.new_region();
            let r_r = rest.new_region();
            assert_eq!(r_o, r_r);
            for _ in 0..50 {
                assert_eq!(orig.ralloc(r_o, d_o), rest.ralloc(r_r, d_r));
            }
            assert_eq!(orig.stats(), rest.stats());
            assert_eq!(orig.heap().load_count(), rest.heap().load_count());
            assert_eq!(orig.heap().store_count(), rest.heap().store_count());
            assert!(rest.sanitize().is_clean());
        }
    }

    #[test]
    fn v1_and_v2_streams_reject_each_other() {
        let (space, runtimes) = populated_world(1);
        let refs: Vec<&RegionRuntime<HeapShard>> = runtimes.iter().collect();
        let world_bytes = capture_world(&space, &refs);
        assert!(matches!(
            RegionRuntime::restore_snapshot(&world_bytes),
            Err(SnapshotError::UnsupportedVersion { version: 2 })
        ));
        let rt = RegionRuntime::new_safe();
        let v1 = rt.capture_snapshot();
        assert!(matches!(
            restore_world(&v1),
            Err(SnapshotError::UnsupportedVersion { version: 1 })
        ));
    }

    #[test]
    fn truncation_and_corruption_are_typed_errors() {
        let (space, runtimes) = populated_world(2);
        let refs: Vec<&RegionRuntime<HeapShard>> = runtimes.iter().collect();
        let bytes = capture_world(&space, &refs);
        for cut in [0, 3, 8, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(restore_world(&bytes[..cut]).is_err(), "truncation at {cut} must fail");
        }
        // Corrupt the worker count (bytes 16..20, after magic, version and
        // max_bytes): zero workers is impossible geometry.
        let mut bad = bytes.clone();
        bad[16..20].copy_from_slice(&0u32.to_le_bytes());
        assert!(restore_world(&bad).is_err());
    }

    #[test]
    fn mirror_tampering_trips_the_restore_gate() {
        let (space, runtimes) = populated_world(1);
        let refs: Vec<&RegionRuntime<HeapShard>> = runtimes.iter().collect();
        let bytes = capture_world(&space, &refs);
        // Find an owned page's mirror entry in the stream and retarget it
        // at a different region id. The per-runtime sanitize still passes
        // (the page map is untouched) but the world mirror gate must not.
        let world = restore_world(&bytes).expect("clean restore first");
        let owned_page = {
            let map = world.runtimes[0].map_mirror_entries();
            (0..map.len()).find(|&p| map[p] != 0).expect("some owned page") as u32
        };
        drop(world);
        let tampered = {
            let mut b = bytes.clone();
            let entry = tamper_mirror_offset(&bytes, owned_page);
            let old = u32::from_le_bytes([b[entry], b[entry + 1], b[entry + 2], b[entry + 3]]);
            let new = old ^ 0x0000_0001; // different region cell, same worker
            b[entry..entry + 4].copy_from_slice(&new.to_le_bytes());
            b
        };
        match restore_world(&tampered) {
            Err(SnapshotError::SanitizeFailed { mirror_mismatches, .. }) => {
                assert!(mirror_mismatches > 0);
            }
            other => panic!("tampered mirror must fail the gate, got {other:?}"),
        }
    }

    /// Byte offset of page `target`'s mirror entry inside a v2 stream
    /// (test-only mirror of the writer's layout).
    fn tamper_mirror_offset(bytes: &[u8], target: u32) -> usize {
        let mut off = 4 + 4 + 8 + 4; // magic, version, max_bytes, workers
        let slots = u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
        off += 4;
        assert!(target < slots);
        for _page in 0..target {
            let tag = bytes[off];
            off += 1;
            match tag {
                0 => {}
                1 => off += PAGE_SIZE as usize + 4,
                2 => off += 4,
                _ => panic!("bad tag"),
            }
        }
        assert_eq!(bytes[off], 1, "target page must be a data page");
        off + 1 + PAGE_SIZE as usize
    }

    #[test]
    fn world_mirror_mismatch_counter_sees_divergence() {
        let (space, runtimes) = populated_world(2);
        assert_eq!(world_mirror_mismatches(&space, runtimes.iter()), 0);
        // Clobber one live mirror entry behind the runtimes' backs.
        let page = (0..space.total_pages())
            .find(|&p| space.mirror_entry(p) != 0)
            .expect("some owned page");
        let old = space.mirror_entry(page);
        space.set_mirror_entry(page, 0);
        assert_eq!(world_mirror_mismatches(&space, runtimes.iter()), 1);
        space.set_mirror_entry(page, old);
        assert_eq!(world_mirror_mismatches(&space, runtimes.iter()), 0);
    }

    #[test]
    fn single_worker_world_matches_private_heap_addresses() {
        // The W=1 shard contract: the same program on a private SimHeap
        // and on a single-shard world produces identical addresses,
        // counters and stats.
        let mut on_sim = RegionRuntime::with_config(shard_config());
        let space = small_space(1);
        let mut on_shard = RegionRuntime::with_config_on(shard_config(), space.shard(0));
        let d1 = on_sim.register_type(TypeDescriptor::new("t", 16, vec![0, 8]));
        let d2 = on_shard.register_type(TypeDescriptor::new("t", 16, vec![0, 8]));
        let r1 = on_sim.new_region();
        let r2 = on_shard.new_region();
        for i in 0..200u32 {
            let a = on_sim.ralloc(r1, d1);
            let b = on_shard.ralloc(r2, d2);
            assert_eq!(a, b);
            on_sim.heap_mut().store_u32(a.offset(4), i);
            on_shard.heap_mut().store_u32(b.offset(4), i);
        }
        let g1 = on_sim.alloc_globals(64);
        let g2 = on_shard.alloc_globals(64);
        assert_eq!(g1, g2);
        on_sim.store_ptr_global(g1, Addr::new(g1.raw()));
        on_shard.store_ptr_global(g2, Addr::new(g2.raw()));
        assert_eq!(on_sim.stats(), on_shard.stats());
        assert_eq!(on_sim.costs(), on_shard.costs());
        assert_eq!(on_sim.heap().load_count(), on_shard.heap().load_count());
        assert_eq!(on_sim.heap().store_count(), on_shard.heap().store_count());
        assert!(on_shard.sanitize().is_clean());
    }
}
