//! **C@** — the C dialect with explicit regions of Gay & Aiken
//! (PLDI 1998, §3), as a compiler and virtual machine.
//!
//! C@ extends a C subset with a second pointer kind: `T @` is a pointer
//! to an object in a region, distinct from `T *` with no implicit
//! conversion between them. Objects are allocated with
//! `ralloc(r, S)` / `rarrayalloc(r, n, S)` / `rstralloc(r, n)`, and a
//! region is destroyed — all at once — by `deleteregion(r)`, which fails
//! (returning 0) while external references to the region's objects exist.
//!
//! The compiler does what the paper's modified lcc does:
//!
//! * classifies every pointer write as *local* (free), *global*
//!   (16-instruction barrier), *region* (23-instruction barrier, with the
//!   *sameregion* optimization) or *statically unknown* (runtime
//!   dispatch) — §4.2.2, Figure 5;
//! * records which locals hold region pointers so the `deleteregion`
//!   stack scan can find them (shadow-stack slots plus spill temporaries
//!   around calls — the per-call-site liveness maps of §4.2.3);
//! * auto-generates cleanup descriptors per struct (§4.2.4 — possible
//!   because C@ as implemented here has no `union`).
//!
//! # Example — the paper's Figure 3
//!
//! ```
//! use cq_lang::{compile, Vm};
//! use region_core::SafetyMode;
//!
//! let program = compile(r#"
//!     struct list { int i; list@ next; };
//!
//!     list@ cons(Region r, int x, list@ l) {
//!         list@ p = ralloc(r, list);
//!         p.i = x;
//!         p.next = l;
//!         return p;
//!     }
//!
//!     list@ copy_list(Region r, list@ l) {
//!         if (l == null) return null;
//!         return cons(r, l.i, copy_list(r, l.next));
//!     }
//!
//!     void main() {
//!         Region r = newregion();
//!         Region tmp = newregion();
//!         list@ l = cons(r, 2, cons(r, 1, null));
//!         list@ c = copy_list(tmp, l);
//!         print(c.i);
//!         c = null;
//!         print(deleteregion(tmp));   // 1: the copy is dead
//!     }
//! "#)?;
//! let mut vm = Vm::new(program, SafetyMode::Safe);
//! vm.run()?;
//! assert_eq!(vm.output(), &[2, 1]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
mod compile;
pub mod infer;
pub mod parser;
pub mod sema;
pub mod token;
mod vm;

pub use compile::{compile, compile_elide};
pub use vm::{Vm, VmError};

/// A compile-time error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

impl CompileError {
    /// Creates an error at `line`.
    pub fn new(line: u32, message: impl Into<String>) -> CompileError {
        CompileError { line, message: message.into() }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}
