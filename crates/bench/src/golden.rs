//! Golden access-trace recording and comparison for Figure 10.
//!
//! The cache simulator's stall counts are only as trustworthy as the
//! access stream feeding them. A *golden trace* pins that stream down: a
//! recording of every simulated load/store a workload performs, written
//! to `results/golden/`, that later runs are diffed against. Because the
//! whole heap is simulated, the stream is bit-deterministic — any
//! divergence is a real behaviour change, and the comparison reports the
//! **first diverging access** so the culprit operation can be found by
//! ordinal.
//!
//! The file format is a small binary (the full stream for `cfrac` at
//! scale 2 is tens of millions of accesses — JSON would be absurd):
//!
//! ```text
//! magic   b"RGLD"        4 bytes
//! version u32 LE         currently 1
//! scale   u32 LE         workload scale the trace was recorded at
//! total   u64 LE         total accesses in the run
//! hash    u64 LE         FNV-1a over the entire stream
//! kept    u32 LE         number of prefix records that follow
//! record  5 bytes each   addr u32 LE, then (size & 0x7f) | kind<<7
//! ```
//!
//! Only a bounded prefix ([`TraceRecorder::CAP`]) is stored verbatim;
//! the `total`/`hash` pair still covers the whole stream, so a
//! divergence past the prefix is detected (reported as "beyond the
//! recorded prefix") even though the exact offset is then unknown.

use simheap::{Access, AccessKind, AccessSink};
use workloads::{RegionEnv, RegionKind, Workload};

/// Runs the safe-region variant of a workload with a [`TraceRecorder`]
/// attached, returning the finished recording.
pub fn record_region_trace(w: Workload, scale: u32) -> TraceRecorder {
    let mut env = RegionEnv::new(RegionKind::Safe);
    env.heap().attach_sink(Box::new(TraceRecorder::new()));
    w.run_region(&mut env, scale);
    let mut heap = env.into_heap();
    let sink = heap.detach_sink().expect("sink attached");
    *sink.into_any().downcast::<TraceRecorder>().expect("TraceRecorder attached")
}

/// An [`AccessSink`] that keeps a bounded prefix of the stream plus a
/// running hash and count of all of it.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    /// Verbatim prefix of the stream, capped at [`TraceRecorder::CAP`].
    pub prefix: Vec<Access>,
    /// Total accesses observed (may exceed the prefix length).
    pub total: u64,
    /// FNV-1a hash over every access observed.
    pub hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

fn access_word(a: Access) -> u64 {
    let kind = match a.kind {
        AccessKind::Read => 0u64,
        AccessKind::Write => 1,
    };
    (a.addr as u64) | ((a.size as u64) << 32) | (kind << 40)
}

impl TraceRecorder {
    /// Maximum number of accesses stored verbatim (~5 MB on disk).
    pub const CAP: usize = 1_000_000;

    /// An empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder { prefix: Vec::new(), total: 0, hash: FNV_OFFSET }
    }
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder::new()
    }
}

impl AccessSink for TraceRecorder {
    fn access(&mut self, access: Access) {
        self.total += 1;
        self.hash = fold(self.hash, access_word(access));
        if self.prefix.len() < TraceRecorder::CAP {
            self.prefix.push(access);
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// A golden trace, as stored on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenTrace {
    /// Workload scale the trace was recorded at.
    pub scale: u32,
    /// Total accesses in the recorded run.
    pub total: u64,
    /// FNV-1a hash of the whole stream.
    pub hash: u64,
    /// Verbatim prefix of the stream.
    pub prefix: Vec<Access>,
}

const MAGIC: &[u8; 4] = b"RGLD";
const VERSION: u32 = 1;

impl GoldenTrace {
    /// Builds a golden trace from a finished recorder.
    pub fn from_recorder(rec: &TraceRecorder, scale: u32) -> GoldenTrace {
        GoldenTrace { scale, total: rec.total, hash: rec.hash, prefix: rec.prefix.clone() }
    }

    /// Serializes to the binary golden format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + self.prefix.len() * 5);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.scale.to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        out.extend_from_slice(&self.hash.to_le_bytes());
        out.extend_from_slice(&(self.prefix.len() as u32).to_le_bytes());
        for a in &self.prefix {
            out.extend_from_slice(&a.addr.to_le_bytes());
            let kind = match a.kind {
                AccessKind::Read => 0u8,
                AccessKind::Write => 0x80,
            };
            out.push((a.size & 0x7f) | kind);
        }
        out
    }

    /// Parses the binary golden format, validating magic and version.
    pub fn from_bytes(data: &[u8]) -> Result<GoldenTrace, String> {
        let take4 = |at: usize| -> Result<[u8; 4], String> {
            data.get(at..at + 4)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| format!("truncated golden trace at byte {at}"))
        };
        let take8 = |at: usize| -> Result<[u8; 8], String> {
            data.get(at..at + 8)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| format!("truncated golden trace at byte {at}"))
        };
        if data.get(..4) != Some(MAGIC.as_slice()) {
            return Err("not a golden trace (bad magic)".to_string());
        }
        let version = u32::from_le_bytes(take4(4)?);
        if version != VERSION {
            return Err(format!("golden trace version {version}, expected {VERSION}"));
        }
        let scale = u32::from_le_bytes(take4(8)?);
        let total = u64::from_le_bytes(take8(12)?);
        let hash = u64::from_le_bytes(take8(20)?);
        let kept = u32::from_le_bytes(take4(28)?) as usize;
        let body = data
            .get(32..32 + kept * 5)
            .ok_or_else(|| format!("truncated golden trace: {kept} records promised"))?;
        let mut prefix = Vec::with_capacity(kept);
        for rec in body.chunks_exact(5) {
            let addr = u32::from_le_bytes(rec[..4].try_into().expect("chunk of 5"));
            let kind = if rec[4] & 0x80 != 0 { AccessKind::Write } else { AccessKind::Read };
            prefix.push(Access { addr, size: rec[4] & 0x7f, kind });
        }
        Ok(GoldenTrace { scale, total, hash, prefix })
    }

    /// Compares a fresh recording against this golden trace. `Ok(())`
    /// means the streams are identical (same total, same whole-stream
    /// hash); `Err` describes the first observable divergence.
    pub fn compare(&self, fresh: &TraceRecorder, fresh_scale: u32) -> Result<(), String> {
        if self.scale != fresh_scale {
            return Err(format!(
                "scale mismatch: golden recorded at scale {}, replay ran at {fresh_scale}",
                self.scale
            ));
        }
        let n = self.prefix.len().min(fresh.prefix.len());
        for i in 0..n {
            let (g, f) = (self.prefix[i], fresh.prefix[i]);
            if g != f {
                return Err(format!(
                    "first divergence at access #{i}: golden {g:?}, replay {f:?}"
                ));
            }
        }
        if self.total != fresh.total {
            return Err(format!(
                "prefix matches but stream length changed: golden {} accesses, replay {} \
                 (first divergence beyond the recorded prefix of {})",
                self.total, fresh.total, n
            ));
        }
        if self.hash != fresh.hash {
            return Err(format!(
                "prefix and length match but whole-stream hash differs \
                 (divergence beyond the recorded prefix of {n}): \
                 golden {:016x}, replay {:016x}",
                self.hash, fresh.hash
            ));
        }
        Ok(())
    }
}

/// The on-disk location for a figure's golden trace.
pub fn golden_path(bench: &str, workload: &str, scale: u32) -> std::path::PathBuf {
    std::path::Path::new("results")
        .join("golden")
        .join(format!("{bench}-{workload}-s{scale}.trace"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: u32) -> TraceRecorder {
        let mut rec = TraceRecorder::new();
        for i in 0..n {
            rec.access(Access::read(0x1000 + i * 4, 4));
            rec.access(Access::write(0x2000 + i * 4, if i % 2 == 0 { 4 } else { 1 }));
        }
        rec
    }

    #[test]
    fn round_trips_through_bytes() {
        let rec = stream(100);
        let g = GoldenTrace::from_recorder(&rec, 2);
        let back = GoldenTrace::from_bytes(&g.to_bytes()).expect("parses");
        assert_eq!(g, back);
        assert!(back.compare(&rec, 2).is_ok());
    }

    #[test]
    fn reports_first_divergence_offset() {
        let golden = GoldenTrace::from_recorder(&stream(100), 1);
        let mut fresh = TraceRecorder::new();
        for (i, &a) in golden.prefix.iter().enumerate() {
            let mut a = a;
            if i == 57 {
                a.addr ^= 4; // a single flipped access
            }
            fresh.access(a);
        }
        let err = golden.compare(&fresh, 1).expect_err("must diverge");
        assert!(err.contains("access #57"), "got: {err}");
    }

    #[test]
    fn detects_divergence_past_the_prefix_by_hash_and_length() {
        let mut golden_rec = stream(50);
        let mut fresh = stream(50);
        // Same prefix, one extra access in the replay.
        fresh.access(Access::read(0x9000, 4));
        let golden = GoldenTrace::from_recorder(&golden_rec, 1);
        let err = golden.compare(&fresh, 1).expect_err("length changed");
        assert!(err.contains("stream length changed"), "got: {err}");

        // Same length, but pretend the tail (past the stored prefix)
        // differed: truncate the stored prefix, then perturb the hash.
        golden_rec.hash ^= 1;
        let golden = GoldenTrace {
            prefix: golden_rec.prefix[..10].to_vec(),
            ..GoldenTrace::from_recorder(&golden_rec, 1)
        };
        let fresh = stream(50);
        let err = golden.compare(&fresh, 1).expect_err("hash differs");
        assert!(err.contains("hash differs"), "got: {err}");
    }

    #[test]
    fn rejects_foreign_files() {
        assert!(GoldenTrace::from_bytes(b"JSON{}").is_err());
        let mut bytes = GoldenTrace::from_recorder(&stream(3), 1).to_bytes();
        bytes[4] = 99; // version
        assert!(GoldenTrace::from_bytes(&bytes).unwrap_err().contains("version"));
        bytes.truncate(30);
        bytes[4] = 1;
        assert!(GoldenTrace::from_bytes(&bytes).is_err());
    }
}
