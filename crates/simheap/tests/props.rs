//! Property tests: the simulated heap behaves like flat byte-addressable
//! memory with an append-only break, and the bulk fast paths (taken when
//! no trace sink is attached) are observationally identical to the
//! per-word paths.

use proptest::prelude::*;
use simheap::{
    Access, AccessEvent, Addr, CountingSink, EventRecordingSink, RecordingSink, SimHeap,
    PAGE_SIZE, WORD,
};

/// Model: a plain host byte vector addressed the same way.
#[derive(Debug, Clone)]
enum Op {
    StoreU8 { off: u32, val: u8 },
    StoreU32 { off: u32, val: u32 },
    Fill { off: u32, len: u32, byte: u8 },
    Copy { dst: u32, src: u32, len: u32 },
}

const AREA: u32 = 4 * PAGE_SIZE;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..AREA - 1, any::<u8>()).prop_map(|(off, val)| Op::StoreU8 { off, val }),
        (0..(AREA / WORD) - 1, any::<u32>())
            .prop_map(|(w, val)| Op::StoreU32 { off: w * WORD, val }),
        (0..AREA - 64, 0u32..64, any::<u8>()).prop_map(|(off, len, byte)| Op::Fill { off, len, byte }),
        (0..AREA / 2 - 64, 0u32..64).prop_map(|(d, len)| Op::Copy {
            dst: AREA / 2 + d,
            src: d,
            len
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn heap_matches_flat_memory_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut heap = SimHeap::new();
        let base = heap.sbrk_pages(AREA / PAGE_SIZE);
        let mut model = vec![0u8; AREA as usize];

        for op in &ops {
            match *op {
                Op::StoreU8 { off, val } => {
                    heap.store_u8(base + off, val);
                    model[off as usize] = val;
                }
                Op::StoreU32 { off, val } => {
                    heap.store_u32(base + off, val);
                    model[off as usize..off as usize + 4].copy_from_slice(&val.to_le_bytes());
                }
                Op::Fill { off, len, byte } => {
                    heap.fill(base + off, len, byte);
                    for b in &mut model[off as usize..(off + len) as usize] {
                        *b = byte;
                    }
                }
                Op::Copy { dst, src, len } => {
                    heap.copy(base + dst, base + src, len);
                    let (lo, hi) = model.split_at_mut(dst as usize);
                    hi[..len as usize].copy_from_slice(&lo[src as usize..(src + len) as usize]);
                }
            }
        }
        prop_assert_eq!(heap.snapshot(base, AREA), model);
    }

    /// (b) Bulk vs per-word: running the same op sequence untraced (bulk
    /// fill/copy, mirror-style fast paths) and with a sink attached
    /// (per-word loops) must give identical memory contents and identical
    /// load/store counter totals.
    #[test]
    fn bulk_and_perword_paths_agree(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut bulk = SimHeap::new();
        let bulk_base = bulk.sbrk_pages(AREA / PAGE_SIZE);
        let mut word = SimHeap::new();
        let word_base = word.sbrk_pages(AREA / PAGE_SIZE);
        word.attach_sink(Box::new(CountingSink::default()));
        prop_assert_eq!(bulk_base, word_base);

        for op in &ops {
            for (heap, base) in [(&mut bulk, bulk_base), (&mut word, word_base)] {
                match *op {
                    Op::StoreU8 { off, val } => heap.store_u8(base + off, val),
                    Op::StoreU32 { off, val } => heap.store_u32(base + off, val),
                    Op::Fill { off, len, byte } => heap.fill(base + off, len, byte),
                    Op::Copy { dst, src, len } => heap.copy(base + dst, base + src, len),
                }
            }
        }
        prop_assert_eq!(bulk.load_count(), word.load_count());
        prop_assert_eq!(bulk.store_count(), word.store_count());
        prop_assert_eq!(bulk.snapshot(bulk_base, AREA), word.snapshot(word_base, AREA));
    }

    /// (c) The traced access stream is pinned to per-word semantics: a
    /// sink-attached fill/copy emits exactly the head-bytes / words /
    /// tail-bytes sequence, in order — bulk optimizations must never leak
    /// into traced runs.
    #[test]
    fn traced_stream_is_perword(off in 0u32..256, len in 0u32..160, shift in 0u32..5) {
        let mut heap = SimHeap::new();
        let base = heap.sbrk_pages(1);
        heap.attach_sink(Box::new(RecordingSink::default()));
        let start = base + off;
        heap.fill(start, len, 0xAB);
        let dst = base + 2048 + shift;
        heap.copy(dst, start, len);
        let sink = heap.detach_sink().expect("sink attached");
        let log = sink.into_any().downcast::<RecordingSink>().expect("recording sink").log;

        // Expected stream, derived independently of the implementation.
        let mut expect = Vec::new();
        let mut cur = start;
        let end = start + len;
        while cur < end && !cur.is_aligned(WORD) {
            expect.push(Access::write(cur.raw(), 1));
            cur = cur + 1;
        }
        while cur + WORD <= end {
            expect.push(Access::write(cur.raw(), 4));
            cur = cur + WORD;
        }
        while cur < end {
            expect.push(Access::write(cur.raw(), 1));
            cur = cur + 1;
        }
        if dst.is_aligned(WORD) && start.is_aligned(WORD) {
            for w in 0..len / WORD {
                expect.push(Access::read(start.raw() + w * WORD, 4));
                expect.push(Access::write(dst.raw() + w * WORD, 4));
            }
            for b in (len / WORD * WORD)..len {
                expect.push(Access::read(start.raw() + b, 1));
                expect.push(Access::write(dst.raw() + b, 1));
            }
        } else {
            for b in 0..len {
                expect.push(Access::read(start.raw() + b, 1));
                expect.push(Access::write(dst.raw() + b, 1));
            }
        }
        prop_assert_eq!(log, expect);
    }

    /// (d) Traced bulk ops actually batch: a fill is at most three events
    /// (head/words/tail ranges) and an aligned copy at most two, never one
    /// event per word — and their canonical expansion still equals the
    /// per-word stream checked in (c).
    #[test]
    fn traced_bulk_ops_emit_batched_events(off in 0u32..256, len in 1u32..160, shift in 0u32..5) {
        let mut heap = SimHeap::new();
        let base = heap.sbrk_pages(1);
        heap.attach_sink(Box::new(EventRecordingSink::default()));
        let start = base + off;
        heap.fill(start, len, 0xAB);
        let dst = base + 2048 + shift;
        heap.copy(dst, start, len);
        let sink = heap.detach_sink().expect("sink attached");
        let log = sink.into_any().downcast::<EventRecordingSink>().expect("event sink").log;

        prop_assert!(log.len() <= 5, "fill ≤ 3 events + copy ≤ 2 events, got {}", log.len());
        prop_assert!(
            log.iter().all(|ev| !matches!(ev, AccessEvent::Word(_))),
            "bulk ops must not emit per-word events: {log:?}"
        );
        let bytes: u64 = log.iter().map(|ev| ev.byte_count()).sum();
        prop_assert_eq!(bytes, 3 * u64::from(len), "fill touches len bytes, copy 2*len");
    }

    /// (e) `load_u32_range` is observationally `len` scalar loads: same
    /// counters, same values, and its one Range event expands to the same
    /// word stream a scalar-load loop announces.
    #[test]
    fn strided_bulk_read_matches_scalar_loads(
        woff in 0u32..32,
        len in 0u32..48,
        stride_words in 1u32..5,
    ) {
        let mut bulk = SimHeap::new();
        let base = bulk.sbrk_pages(AREA / PAGE_SIZE);
        for w in 0..AREA / WORD {
            bulk.store_u32(base + w * WORD, w.wrapping_mul(0x9E37_79B9));
        }
        let mut scalar = SimHeap::new();
        scalar.sbrk_pages(AREA / PAGE_SIZE);
        for w in 0..AREA / WORD {
            scalar.store_u32(base + w * WORD, w.wrapping_mul(0x9E37_79B9));
        }
        bulk.attach_sink(Box::new(RecordingSink::default()));
        scalar.attach_sink(Box::new(RecordingSink::default()));

        let start = base + woff * WORD;
        let stride = stride_words * WORD;
        let got = bulk.load_u32_range(start, len, stride);
        let want: Vec<u32> = (0..len).map(|i| scalar.load_u32(start + i * stride)).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(bulk.load_count(), scalar.load_count());
        prop_assert_eq!(bulk.store_count(), scalar.store_count());

        let blog = bulk.detach_sink().unwrap().into_any().downcast::<RecordingSink>().unwrap().log;
        let slog = scalar.detach_sink().unwrap().into_any().downcast::<RecordingSink>().unwrap().log;
        prop_assert_eq!(blog, slog);
    }

    /// (f) `scan_words` is observationally `len` consecutive scalar
    /// loads, traced or not: byte-identical words, identical counters,
    /// and — traced — its one Range record expands to exactly the word
    /// stream a scalar-load loop announces.
    #[test]
    fn scan_words_matches_scalar_loop(
        woff in 0u32..64,
        len in 0u32..96,
        traced in any::<bool>(),
        mult in any::<u32>(),
    ) {
        let mut bulk = SimHeap::new();
        let base = bulk.sbrk_pages(AREA / PAGE_SIZE);
        let mut scalar = SimHeap::new();
        scalar.sbrk_pages(AREA / PAGE_SIZE);
        for w in 0..AREA / WORD {
            let v = w.wrapping_mul(mult | 1);
            bulk.store_u32(base + w * WORD, v);
            scalar.store_u32(base + w * WORD, v);
        }
        if traced {
            bulk.attach_sink(Box::new(RecordingSink::default()));
            scalar.attach_sink(Box::new(RecordingSink::default()));
        }
        let start = base + woff * WORD;
        let got = bulk.scan_words(start, len);
        let want: Vec<u32> = (0..len).map(|i| scalar.load_u32(start + i * WORD)).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(bulk.load_count(), scalar.load_count());
        prop_assert_eq!(bulk.store_count(), scalar.store_count());
        if traced {
            let blog = bulk.detach_sink().unwrap().into_any().downcast::<RecordingSink>().unwrap().log;
            let slog = scalar.detach_sink().unwrap().into_any().downcast::<RecordingSink>().unwrap().log;
            prop_assert_eq!(blog, slog);
        }
    }

    /// (g) `store_u32_range` is observationally a scalar store loop,
    /// traced or not: identical final memory, counters, and (traced)
    /// word-expanded stream.
    #[test]
    fn store_range_matches_scalar_stores(
        woff in 0u32..32,
        stride_words in 1u32..5,
        vals in proptest::collection::vec(any::<u32>(), 0..48),
        traced in any::<bool>(),
    ) {
        let mut bulk = SimHeap::new();
        let base = bulk.sbrk_pages(AREA / PAGE_SIZE);
        let mut scalar = SimHeap::new();
        scalar.sbrk_pages(AREA / PAGE_SIZE);
        if traced {
            bulk.attach_sink(Box::new(RecordingSink::default()));
            scalar.attach_sink(Box::new(RecordingSink::default()));
        }
        let start = base + woff * WORD;
        let stride = stride_words * WORD;
        bulk.store_u32_range(start, stride, &vals);
        for (i, &v) in vals.iter().enumerate() {
            scalar.store_u32(start + (i as u32) * stride, v);
        }
        prop_assert_eq!(bulk.load_count(), scalar.load_count());
        prop_assert_eq!(bulk.store_count(), scalar.store_count());
        if traced {
            let blog = bulk.detach_sink().unwrap().into_any().downcast::<RecordingSink>().unwrap().log;
            let slog = scalar.detach_sink().unwrap().into_any().downcast::<RecordingSink>().unwrap().log;
            prop_assert_eq!(blog, slog);
        }
        prop_assert_eq!(bulk.snapshot(base, AREA), scalar.snapshot(base, AREA));
    }

    /// (h) The word-pair readers are observationally two scalar loads in
    /// their declared order — ascending for `load_u32_pair`, descending
    /// for `load_u32_pair_rev` — traced or not.
    #[test]
    fn word_pairs_match_scalar_loads(woff in 1u32..512, traced in any::<bool>(), mult in any::<u32>()) {
        let mut bulk = SimHeap::new();
        let base = bulk.sbrk_pages(AREA / PAGE_SIZE);
        let mut scalar = SimHeap::new();
        scalar.sbrk_pages(AREA / PAGE_SIZE);
        for w in 0..AREA / WORD {
            let v = w.wrapping_mul(mult | 1);
            bulk.store_u32(base + w * WORD, v);
            scalar.store_u32(base + w * WORD, v);
        }
        if traced {
            bulk.attach_sink(Box::new(RecordingSink::default()));
            scalar.attach_sink(Box::new(RecordingSink::default()));
        }
        let a = base + woff * WORD;
        let fwd = bulk.load_u32_pair(a);
        prop_assert_eq!(fwd, (scalar.load_u32(a), scalar.load_u32(a + WORD)));
        let rev = bulk.load_u32_pair_rev(a);
        prop_assert_eq!(rev, (scalar.load_u32(a), scalar.load_u32(a - WORD)));
        prop_assert_eq!(bulk.load_count(), scalar.load_count());
        if traced {
            let blog = bulk.detach_sink().unwrap().into_any().downcast::<RecordingSink>().unwrap().log;
            let slog = scalar.detach_sink().unwrap().into_any().downcast::<RecordingSink>().unwrap().log;
            prop_assert_eq!(blog, slog);
        }
    }

    #[test]
    fn sbrk_never_moves_down_and_zeroes(pages in proptest::collection::vec(1u32..4, 1..12)) {
        let mut heap = SimHeap::new();
        let mut prev_brk = heap.brk();
        for p in pages {
            let got = heap.sbrk_pages(p);
            prop_assert_eq!(got, prev_brk);
            prop_assert_eq!(heap.brk() - got, p * PAGE_SIZE);
            // new memory is zeroed
            prop_assert_eq!(heap.load_u32(got), 0);
            prop_assert_eq!(heap.load_u32(heap.brk() - WORD), 0);
            prev_brk = heap.brk();
        }
    }

    #[test]
    fn word_roundtrip(vals in proptest::collection::vec(any::<u32>(), 1..64)) {
        let mut heap = SimHeap::new();
        let base = heap.sbrk_pages(1);
        for (i, v) in vals.iter().enumerate() {
            heap.store_u32(base + (i as u32) * WORD, *v);
        }
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(heap.load_u32(base + (i as u32) * WORD), *v);
            prop_assert_eq!(heap.load_addr(base + (i as u32) * WORD), Addr::new(*v));
        }
    }
}

// ---------------------------------------------------------------------
// Sharded-space properties (DESIGN §15): a single-worker shard is
// observationally a SimHeap, and the canonical per-worker event merge
// is independent of how worker streams interleave in wall-clock time.
// ---------------------------------------------------------------------

use simheap::{HeapBackend, SharedEventLog, SharedSpace, SpaceConfig};

/// Heap traffic phrased purely through the `HeapBackend` trait, so the
/// same script drives a `SimHeap` and a `HeapShard`.
#[derive(Debug, Clone)]
enum TraitOp {
    Store { woff: u32, val: u32 },
    Load { woff: u32 },
    Fill { off: u32, len: u32, byte: u8 },
    Range { woff: u32, len: u32 },
}

fn trait_op_strategy() -> impl Strategy<Value = TraitOp> {
    prop_oneof![
        (0..AREA / WORD, any::<u32>()).prop_map(|(woff, val)| TraitOp::Store { woff, val }),
        (0..AREA / WORD).prop_map(|woff| TraitOp::Load { woff }),
        (0..AREA - 64, 0u32..64, any::<u8>()).prop_map(|(off, len, byte)| TraitOp::Fill {
            off,
            len,
            byte
        }),
        (0..AREA / WORD - 16, 1u32..16).prop_map(|(woff, len)| TraitOp::Range { woff, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A one-worker shard answers every trait-level access — values,
    /// counters, and the traced event stream — exactly like a private
    /// `SimHeap`: the W=1 golden-parity contract, as a property.
    #[test]
    fn single_worker_shard_is_a_simheap(
        ops in proptest::collection::vec(trait_op_strategy(), 1..100),
        traced in any::<bool>(),
    ) {
        let mut sim = SimHeap::new();
        let space = SharedSpace::new(SpaceConfig { max_bytes: 64 * 1024 * 1024, workers: 1 });
        let mut shard = space.shard(0);
        let base_s = sim.sbrk_pages(AREA / PAGE_SIZE);
        let base_h = HeapBackend::sbrk_pages(&mut shard, AREA / PAGE_SIZE);
        prop_assert_eq!(base_s, base_h);
        if traced {
            sim.attach_sink(Box::new(EventRecordingSink::default()));
            shard.attach_sink(Box::new(EventRecordingSink::default()));
        }
        for op in &ops {
            match *op {
                TraitOp::Store { woff, val } => {
                    HeapBackend::store_u32(&mut sim, base_s + woff * WORD, val);
                    HeapBackend::store_u32(&mut shard, base_h + woff * WORD, val);
                }
                TraitOp::Load { woff } => {
                    let a = HeapBackend::load_u32(&mut sim, base_s + woff * WORD);
                    let b = HeapBackend::load_u32(&mut shard, base_h + woff * WORD);
                    prop_assert_eq!(a, b);
                }
                TraitOp::Fill { off, len, byte } => {
                    HeapBackend::fill(&mut sim, base_s + off, len, byte);
                    HeapBackend::fill(&mut shard, base_h + off, len, byte);
                }
                TraitOp::Range { woff, len } => {
                    let a = HeapBackend::load_u32_range(&mut sim, base_s + woff * WORD, len, WORD);
                    let b = HeapBackend::load_u32_range(&mut shard, base_h + woff * WORD, len, WORD);
                    prop_assert_eq!(a, b);
                }
            }
        }
        prop_assert_eq!(HeapBackend::load_count(&sim), HeapBackend::load_count(&shard));
        prop_assert_eq!(HeapBackend::store_count(&sim), HeapBackend::store_count(&shard));
        prop_assert_eq!(HeapBackend::brk(&sim), HeapBackend::brk(&shard));
        if traced {
            let a = sim.detach_sink().unwrap().into_any().downcast::<EventRecordingSink>().unwrap().log;
            let b = shard.detach_sink().unwrap().into_any().downcast::<EventRecordingSink>().unwrap().log;
            prop_assert_eq!(a, b);
        }
    }

    /// The canonical (worker, seq) merge of per-worker sink streams is
    /// bit-identical however the workers' pushes interleave: any seeded
    /// shuffle of the global arrival order — with per-worker order
    /// preserved, as the stamping sink guarantees — merges to the same
    /// stream and digest.
    #[test]
    fn canonical_merge_is_schedule_independent(
        workers in 1u32..=4,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        per_worker in 4u32..40,
    ) {
        use simheap::AccessSink;
        // Deterministic per-worker access scripts.
        let script = |w: u32, i: u32| {
            let addr = PAGE_SIZE + (w * 1024 + i) * WORD;
            if i % 3 == 0 { Access::read(addr, WORD as u8) } else { Access::write(addr, WORD as u8) }
        };
        let run = |order_seed: u64| {
            let log = SharedEventLog::new();
            let mut sinks: Vec<_> = (0..workers).map(|w| log.sink(w)).collect();
            let mut next = vec![0u32; workers as usize];
            // A seeded interleaving: xorshift picks which worker emits
            // its next event until all scripts are exhausted.
            let mut state = order_seed | 1;
            let total = workers * per_worker;
            for _ in 0..total {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let mut w = (state % u64::from(workers)) as u32;
                while next[w as usize] == per_worker {
                    w = (w + 1) % workers;
                }
                sinks[w as usize].access(script(w, next[w as usize]));
                next[w as usize] += 1;
            }
            (log.merged(), log.digest())
        };
        let (merged_a, digest_a) = run(seed_a);
        let (merged_b, digest_b) = run(seed_b);
        prop_assert_eq!(&merged_a, &merged_b);
        prop_assert_eq!(digest_a, digest_b);
        // The merge really is (worker, seq)-ordered.
        for pair in merged_a.windows(2) {
            prop_assert!((pair[0].worker, pair[0].seq) < (pair[1].worker, pair[1].seq));
        }
        // And per-worker event counts survive the merge.
        for w in 0..workers {
            let n = merged_a.iter().filter(|e| e.worker == w).count() as u32;
            prop_assert_eq!(n, per_worker);
        }
    }
}
