//! Property test for the parallel-region counting protocol.
//!
//! Random seeded interleavings of `retain` / `release` / `exchange_ref`
//! / `acquire` (plus thread deaths and RAII drops) across 2–4 scripted
//! threads must preserve the protocol's accounting identity at every
//! step:
//!
//! > sum of local counts (including the orphan ledger) == live
//! > references (raw retain strands + held `ParRef`s + published cells)
//!
//! The interleaving is scripted — one op at a time, the rng choosing
//! which thread acts — so a violation is perfectly reproducible from
//! its seed. On failure the harness shrinks the op sequence with a
//! greedy delta-debugging pass (the workspace `proptest` shim does not
//! shrink) and reports the minimal sequence that still violates the
//! invariant.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use region_core::par::{ParRef, ParRegionId, ParRegionPool, ParThread, RefCell32};
use region_core::ParRegionError;

/// One scripted step. `thread`, `region`, and `cell` are indices into
/// the world's tables, not pool identifiers, so a sequence replays
/// against a fresh pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    /// `retain` on a region: a new raw reference strand.
    Retain { thread: usize, region: usize },
    /// `release` one outstanding raw strand of the region (no-op when
    /// none exist — a release must destroy a reference that exists).
    Release { thread: usize, region: usize },
    /// Publish the region into a shared cell via `exchange_ref`.
    Publish { thread: usize, cell: usize, region: usize },
    /// Clear a shared cell via `exchange_ref(.., None)`.
    Clear { thread: usize, cell: usize },
    /// Take an RAII `ParRef` handle on the region.
    Acquire { thread: usize, region: usize },
    /// Drop the thread's oldest held `ParRef` (no-op when none held).
    DropRef { thread: usize },
    /// Drop the `ParThread` itself: settle-on-drop releases its held
    /// refs and folds its residual counts into the orphan ledger.
    DropThread { thread: usize },
}

/// Executes a sequence against a fresh pool, checking the accounting
/// identity after every op. Returns the first violation, or `None`.
fn check(threads: usize, regions: usize, cells: usize, ops: &[Op]) -> Option<String> {
    let pool = ParRegionPool::new();
    let cell_arr: Vec<Arc<RefCell32>> = (0..cells).map(|_| pool.register_cell()).collect();
    let mut handles: Vec<Option<ParThread>> = (0..threads).map(|_| Some(pool.register_thread())).collect();
    let region_ids: Vec<ParRegionId> = {
        let t = handles[0].as_mut().expect("thread 0 starts live");
        (0..regions).map(|_| t.create_region()).collect()
    };

    // The model: how many live references each region should have.
    // Raw strands are global (any live thread may release one — the
    // reference may have been handed across threads); held ParRefs are
    // tracked per thread so DropThread can forget them.
    let mut raw_strands: Vec<i64> = vec![0; regions];
    let mut held: Vec<Vec<(usize, ParRef)>> = (0..threads).map(|_| Vec::new()).collect();
    let mut published: Vec<Option<usize>> = vec![None; cells];

    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Retain { thread, region } => {
                if let Some(t) = handles[thread].as_mut() {
                    t.retain(region_ids[region]);
                    raw_strands[region] += 1;
                }
            }
            Op::Release { thread, region } => {
                if raw_strands[region] > 0 {
                    if let Some(t) = handles[thread].as_mut() {
                        t.release(region_ids[region]);
                        raw_strands[region] -= 1;
                    }
                }
            }
            Op::Publish { thread, cell, region } => {
                if let Some(t) = handles[thread].as_mut() {
                    t.exchange_ref(&cell_arr[cell], Some(region_ids[region]));
                    published[cell] = Some(region);
                }
            }
            Op::Clear { thread, cell } => {
                if let Some(t) = handles[thread].as_mut() {
                    t.exchange_ref(&cell_arr[cell], None);
                    published[cell] = None;
                }
            }
            Op::Acquire { thread, region } => {
                if let Some(t) = handles[thread].as_mut() {
                    let r = t.acquire(region_ids[region]);
                    held[thread].push((region, r));
                }
            }
            Op::DropRef { thread } => {
                if handles[thread].is_some() && !held[thread].is_empty() {
                    held[thread].remove(0);
                }
            }
            Op::DropThread { thread } => {
                // Settle order matters: ParThread::drop marks the
                // ledger settled, making later ParRef drops no-ops, so
                // the held handles must go first to exercise both
                // paths across the suite.
                held[thread].clear();
                handles[thread] = None;
            }
        }

        // The identity must hold after *every* op, not just at the end.
        let mut expected: Vec<i64> = raw_strands.clone();
        for per_thread in &held {
            for &(region, _) in per_thread {
                expected[region] += 1;
            }
        }
        for &p in &published {
            if let Some(region) = p {
                expected[region] += 1;
            }
        }
        for (i, &r) in region_ids.iter().enumerate() {
            let got = pool.global_count(r);
            if got != expected[i] {
                return Some(format!(
                    "after step {step} ({op:?}): region {i} global_count {got} != {} live refs",
                    expected[i]
                ));
            }
        }
        let audit = pool.audit();
        if !audit.is_clean() {
            return Some(format!("after step {step} ({op:?}): audit unclean:\n{audit}"));
        }
    }

    // Full lifecycle: tear everything down and demand that every region
    // deletes or quarantines-then-reaps — never leaks.
    drop(held);
    let mut finisher = pool.register_thread();
    for cell in &cell_arr {
        finisher.exchange_ref(cell, None);
    }
    for (i, &n) in raw_strands.iter().enumerate() {
        for _ in 0..n {
            finisher.release(region_ids[i]);
        }
    }
    for &r in &region_ids {
        match pool.try_delete_checked(r) {
            Ok(()) => {}
            Err(ParRegionError::BlockedByOrphans { .. }) => {}
            Err(e) => return Some(format!("teardown: {e}")),
        }
    }
    drop(finisher);
    let report = pool.reap_orphans();
    if !report.is_fully_reclaimed() {
        return Some(format!("teardown: reap left regions blocked:\n{report}"));
    }
    if !pool.live_regions().is_empty() {
        return Some("teardown: regions leaked past delete + reap".to_string());
    }
    let audit = pool.audit();
    if !audit.is_clean() {
        return Some(format!("teardown: final audit unclean:\n{audit}"));
    }
    None
}

/// Draws a random scripted interleaving. Thread 0 never dies before the
/// last quarter so region creation and some activity always survive.
fn gen_ops(rng: &mut StdRng, threads: usize, regions: usize, cells: usize, len: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(len);
    for step in 0..len {
        let thread = rng.gen_range(0..threads);
        let region = rng.gen_range(0..regions);
        let cell = rng.gen_range(0..cells);
        let op = match rng.gen_range(0..12) {
            0 | 1 => Op::Retain { thread, region },
            2 | 3 => Op::Release { thread, region },
            4 | 5 | 6 => Op::Publish { thread, cell, region },
            7 => Op::Clear { thread, cell },
            8 | 9 => Op::Acquire { thread, region },
            10 => Op::DropRef { thread },
            // Thread deaths are rare and back-loaded so most seeds
            // exercise plenty of traffic before a settle.
            _ if thread != 0 || step >= len * 3 / 4 => Op::DropThread { thread },
            _ => Op::Retain { thread, region },
        };
        ops.push(op);
    }
    ops
}

/// Greedy delta-debugging: repeatedly removes chunks (halving the chunk
/// size when stuck) while the predicate keeps failing. Minimal in the
/// 1-op-removal sense: dropping any single remaining op makes the
/// sequence pass.
fn shrink<F: Fn(&[Op]) -> bool>(ops: &[Op], fails: F) -> Vec<Op> {
    let mut cur = ops.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut cand = cur.clone();
            cand.drain(i..end);
            if fails(&cand) {
                cur = cand;
                progressed = true;
                // Re-test from the same index: the next chunk slid in.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 && !progressed {
            return cur;
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[test]
fn random_interleavings_preserve_the_counting_identity() {
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(0x9E37_79B9 ^ seed);
        let threads = rng.gen_range(2..=4);
        let regions = rng.gen_range(2..=3);
        let cells = rng.gen_range(2..=4);
        let len = rng.gen_range(30..=90);
        let ops = gen_ops(&mut rng, threads, regions, cells, len);
        if let Some(err) = check(threads, regions, cells, &ops) {
            let minimal = shrink(&ops, |cand| check(threads, regions, cells, cand).is_some());
            let replay = check(threads, regions, cells, &minimal)
                .unwrap_or_else(|| "shrunk sequence no longer fails".to_string());
            panic!(
                "seed {seed} ({threads} threads, {regions} regions, {cells} cells) \
                 violated the identity: {err}\nminimal sequence ({} ops): {minimal:#?}\n{replay}",
                minimal.len()
            );
        }
    }
}

#[test]
fn every_op_kind_is_exercised_across_the_seed_range() {
    // Guards the generator: if a refactor stops drawing some op kind,
    // the property test silently weakens. Count kinds over the same
    // seeds the property test uses.
    let mut kinds: HashMap<&'static str, usize> = HashMap::new();
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(0x9E37_79B9 ^ seed);
        let threads = rng.gen_range(2..=4);
        let regions = rng.gen_range(2..=3);
        let cells = rng.gen_range(2..=4);
        let len = rng.gen_range(30..=90);
        for op in gen_ops(&mut rng, threads, regions, cells, len) {
            let name = match op {
                Op::Retain { .. } => "retain",
                Op::Release { .. } => "release",
                Op::Publish { .. } => "publish",
                Op::Clear { .. } => "clear",
                Op::Acquire { .. } => "acquire",
                Op::DropRef { .. } => "drop_ref",
                Op::DropThread { .. } => "drop_thread",
            };
            *kinds.entry(name).or_default() += 1;
        }
    }
    for kind in ["retain", "release", "publish", "clear", "acquire", "drop_ref", "drop_thread"] {
        assert!(kinds.get(kind).copied().unwrap_or(0) > 0, "generator never draws {kind}");
    }
}

#[test]
fn shrinker_finds_a_minimal_failing_subsequence() {
    // Synthetic predicate: "fails" iff the sequence still contains both
    // the Retain on region 1 and the DropThread of thread 2. The
    // shrinker must strip all 38 decoys and return exactly those two.
    let needle_a = Op::Retain { thread: 1, region: 1 };
    let needle_b = Op::DropThread { thread: 2 };
    let mut ops = Vec::new();
    for i in 0..40 {
        ops.push(match i {
            13 => needle_a,
            29 => needle_b,
            _ => Op::Publish { thread: 0, cell: i % 3, region: 0 },
        });
    }
    let fails = |cand: &[Op]| cand.contains(&needle_a) && cand.contains(&needle_b);
    let minimal = shrink(&ops, fails);
    assert_eq!(minimal, vec![needle_a, needle_b]);
}
