//! Qualitative claims of the paper, checked as executable assertions.
//! Each test names the claim and the section it comes from.

use explicit_regions::cache_sim::MemorySystem;
use explicit_regions::malloc_suite::{BsdMalloc, LeaMalloc, RawMalloc, SunMalloc};
use explicit_regions::region_core::{RegionRuntime, TypeDescriptor};
use explicit_regions::simheap::SimHeap;
use explicit_regions::workloads::{moss, RegionEnv, RegionKind};

/// §1: "allocation is about twice as fast [as malloc] and deallocation
/// is much faster." We check the operation-count version of the claim:
/// region allocation touches far less memory per object than any malloc,
/// and deallocation is O(pages) instead of O(objects).
#[test]
fn region_allocation_touches_less_memory_than_malloc() {
    const N: u32 = 1000;
    // Region: count heap operations for N allocations + one delete.
    let mut rt = RegionRuntime::new_unsafe();
    let r = rt.new_region();
    let base = rt.heap().load_count() + rt.heap().store_count();
    for _ in 0..N {
        rt.rstralloc(r, 16);
    }
    rt.delete_region(r);
    let region_ops = rt.heap().load_count() + rt.heap().store_count() - base;

    let mut malloc_ops = Vec::new();
    fn measure(mut m: impl RawMalloc) -> u64 {
        let mut heap = SimHeap::new();
        let mut ptrs = Vec::new();
        let base = heap.load_count() + heap.store_count();
        for _ in 0..1000 {
            ptrs.push(m.malloc(&mut heap, 16));
        }
        for p in ptrs {
            m.free(&mut heap, p);
        }
        heap.load_count() + heap.store_count() - base
    }
    malloc_ops.push(("sun", measure(SunMalloc::new())));
    malloc_ops.push(("bsd", measure(BsdMalloc::new())));
    malloc_ops.push(("lea", measure(LeaMalloc::new())));
    for (name, ops) in malloc_ops {
        assert!(
            region_ops * 2 <= ops,
            "regions should do less than half the memory work of {name}: {region_ops} vs {ops}"
        );
    }
}

/// §5.4: "The BSD allocator ... use[s] a lot of memory" — power-of-two
/// rounding wastes almost half the space on unlucky sizes.
#[test]
fn bsd_memory_overhead_is_large() {
    let mut heap_bsd = SimHeap::new();
    let mut bsd = BsdMalloc::new();
    let mut heap_lea = SimHeap::new();
    let mut lea = LeaMalloc::new();
    for _ in 0..2000 {
        bsd.malloc(&mut heap_bsd, 129); // rounds to a 256-byte block
        lea.malloc(&mut heap_lea, 129); // a 144-byte chunk
    }
    assert!(
        bsd.os_pages() as f64 > lea.os_pages() as f64 * 1.4,
        "bsd {} pages vs lea {}",
        bsd.os_pages(),
        lea.os_pages()
    );
}

/// §5.5/Figure 10: moss's two-region layout has roughly half the stalls
/// of the naive single-region port, and fewer total cycles.
#[test]
fn moss_segregated_layout_halves_stalls() {
    let run = |slow: bool| {
        let mut env = RegionEnv::new(RegionKind::Unsafe);
        env.heap().attach_sink(Box::new(MemorySystem::default()));
        if slow {
            moss::run_region_slow(&mut env, 1);
        } else {
            moss::run_region(&mut env, 1);
        }
        let mut heap = env.into_heap();
        MemorySystem::from_sink(heap.detach_sink().unwrap()).stats()
    };
    let slow = run(true);
    let fast = run(false);
    assert!(
        fast.stall_cycles() * 2 <= slow.stall_cycles(),
        "optimized {} stalls vs slow {}",
        fast.stall_cycles(),
        slow.stall_cycles()
    );
    assert!(fast.total_cycles < slow.total_cycles);
}

/// §1: "cyclic structures can be collected so long as they are allocated
/// within a single region" — the advantage over per-object reference
/// counting.
#[test]
fn intra_region_cycles_do_not_leak() {
    let mut rt = RegionRuntime::new_safe();
    let d = rt.register_type(TypeDescriptor::new("node", 8, vec![4]));
    let r = rt.new_region();
    // A 100-node cycle.
    let first = rt.ralloc(r, d);
    let mut prev = first;
    for _ in 0..99 {
        let n = rt.ralloc(r, d);
        rt.store_ptr_region(prev + 4, n);
        prev = n;
    }
    rt.store_ptr_region(prev + 4, first); // close the cycle
    assert_eq!(rt.rc(r), 0, "sameregion pointers are not counted");
    assert!(rt.delete_region(r), "the cycle dies with its region");
    assert_eq!(rt.stats().live_bytes, 0);
}

/// §4.1: region metadata is cheap — "eight bytes per page for the map of
/// pages to regions and the list of allocated pages."
#[test]
fn page_map_overhead_is_small() {
    let mut rt = RegionRuntime::new_unsafe();
    let r = rt.new_region();
    // Fill ~200 pages of data.
    for _ in 0..50_000 {
        rt.rstralloc(r, 16);
    }
    let data = rt.data_pages();
    let map = rt.map_pages();
    assert!(data > 100);
    // One 4 KB map chunk covers 1024 pages of address space.
    assert!(map * 100 < data, "map pages {map} must be ≪ data pages {data}");
}

/// §4.3: the amortized cost argument — safety work grows linearly with
/// program activity, not quadratically: doubling the workload roughly
/// doubles total safety instructions.
#[test]
fn safety_cost_is_linear_in_work() {
    let run = |rounds: u32| {
        let mut rt = RegionRuntime::new_safe();
        let d = rt.register_type(TypeDescriptor::new("node", 8, vec![4]));
        for _ in 0..rounds {
            let r = rt.new_region();
            rt.push_frame(2);
            let mut prev = simheap::Addr::NULL;
            for _ in 0..100 {
                let n = rt.ralloc(r, d);
                rt.store_ptr_region(n + 4, prev);
                prev = n;
                rt.set_local(0, prev);
            }
            rt.set_local(0, simheap::Addr::NULL);
            assert!(rt.delete_region(r));
            rt.pop_frame();
        }
        rt.costs().total_instrs()
    };
    let one = run(50);
    let two = run(100);
    let ratio = two as f64 / one as f64;
    assert!(
        (1.8..2.2).contains(&ratio),
        "doubling work should double safety cost, got ratio {ratio:.2}"
    );
}

/// §5.4 headline: safe regions stay within a modest factor of the
/// best allocator's footprint on a region-friendly workload.
#[test]
fn region_footprint_is_competitive() {
    use explicit_regions::workloads::{MallocEnv, MallocKind, Workload};
    let mut reg = RegionEnv::new(RegionKind::Safe);
    Workload::Tile.run_region(&mut reg, 1);
    let mut lea = MallocEnv::new(MallocKind::Lea);
    Workload::Tile.run_malloc(&mut lea, 1);
    assert!(
        reg.os_pages() <= lea.os_pages() * 3,
        "regions {} pages vs lea {} pages",
        reg.os_pages(),
        lea.os_pages()
    );
}
