//! `cfrac` — factoring a large integer with multiprecision arithmetic
//! (§5.1).
//!
//! The original cfrac factors with the continued-fraction method and
//! reclaims its bignums with hand-rolled reference counting; the paper's
//! region port "creates a region for temporary computations for every
//! few iterations of the main algorithm. Partial solutions are copied
//! from this region to a solution region so that old temporary regions
//! can be deleted."
//!
//! We keep the substance — an arbitrary-precision integer substrate
//! living in the simulated heap, where every arithmetic operation
//! allocates — and drive it with Pollard's rho (with batched gcd), which
//! factors the same kind of semiprimes with the same allocation
//! behaviour but in far less code than a full CFRAC with its factor
//! base and Gaussian elimination (see DESIGN.md §4 for this
//! substitution). The region structure is exactly the paper's: a
//! temporary region rotated every few iterations, survivors copied
//! forward.
//!
//! Bignums are base-2¹⁶ limb arrays: `[len][limb0][limb1]...`, one limb
//! per 32-bit word, pointer-free (so regions place them with
//! `rstralloc`).

use simheap::{Addr, SimHeap};

use crate::env::{MallocEnv, RegionEnv};
use crate::util::Checksum;

/// The numbers factored at each scale: products of two primes sized so
/// rho's running time grows with scale.
fn semiprime(scale: u32) -> (u64, u64) {
    match scale {
        0 | 1 => (10_007, 10_009),
        2 => (100_003, 100_019),
        3 => (1_000_003, 1_000_033),
        4 => (4_000_037, 4_000_079),
        _ => (15_485_863, 15_485_867),
    }
}

/// How memory is managed for bignum temporaries — the only thing that
/// differs between the program variants (the paper's cfrac diff is 149
/// lines out of 4203 for the same reason: the arithmetic is untouched).
trait Mem {
    /// Allocates an uninitialized bignum of `limbs` limbs.
    fn alloc(&mut self, limbs: u32) -> Addr;
    /// Declares a bignum dead (freed under malloc, ignored by regions
    /// and the collector).
    fn dead(&mut self, a: Addr);
    /// Keeps a value reachable across the next allocation (a GC root
    /// slot; ignored elsewhere). Slots 8..16 are reserved for the
    /// arithmetic internals.
    fn keep(&mut self, slot: u32, a: Addr);
    /// The heap the limbs live in.
    fn heap(&mut self) -> &mut SimHeap;
}

// ---- shared arithmetic (identical in both variants, like cfrac's
// untouched 4000 lines) ----

fn len_of(heap: &mut SimHeap, a: Addr) -> u32 {
    heap.load_u32(a)
}

fn limb(heap: &mut SimHeap, a: Addr, i: u32) -> u32 {
    heap.load_u32(a + 4 + i * 4)
}

fn set_limb(heap: &mut SimHeap, a: Addr, i: u32, v: u32) {
    debug_assert!(v <= 0xFFFF);
    heap.store_u32(a + 4 + i * 4, v);
}

/// Trims the stored length below leading zero limbs.
fn normalize(heap: &mut SimHeap, a: Addr) {
    let mut len = len_of(heap, a);
    while len > 1 && limb(heap, a, len - 1) == 0 {
        len -= 1;
    }
    heap.store_u32(a, len);
}

fn from_u64<M: Mem>(m: &mut M, mut v: u64) -> Addr {
    let a = m.alloc(4);
    m.heap().store_u32(a, 4);
    for i in 0..4 {
        set_limb(m.heap(), a, i, (v & 0xFFFF) as u32);
        v >>= 16;
    }
    normalize(m.heap(), a);
    a
}

/// Reads a bignum that fits in 128 bits (tests and checksums).
fn to_u128(heap: &mut SimHeap, a: Addr) -> u128 {
    let len = len_of(heap, a);
    assert!(len <= 8, "bignum too large for u128 readout");
    let mut v: u128 = 0;
    for i in (0..len).rev() {
        v = (v << 16) | u128::from(limb(heap, a, i));
    }
    v
}

/// -1 / 0 / +1 for a < b / a == b / a > b.
fn cmp(heap: &mut SimHeap, a: Addr, b: Addr) -> i32 {
    let (la, lb) = (len_of(heap, a), len_of(heap, b));
    if la != lb {
        return if la < lb { -1 } else { 1 };
    }
    for i in (0..la).rev() {
        let (x, y) = (limb(heap, a, i), limb(heap, b, i));
        if x != y {
            return if x < y { -1 } else { 1 };
        }
    }
    0
}

fn is_zero(heap: &mut SimHeap, a: Addr) -> bool {
    len_of(heap, a) == 1 && limb(heap, a, 0) == 0
}

fn is_even(heap: &mut SimHeap, a: Addr) -> bool {
    limb(heap, a, 0) & 1 == 0
}

fn is_one(heap: &mut SimHeap, a: Addr) -> bool {
    len_of(heap, a) == 1 && limb(heap, a, 0) == 1
}

/// a + b, fresh allocation.
fn add<M: Mem>(m: &mut M, a: Addr, b: Addr) -> Addr {
    let (la, lb) = (len_of(m.heap(), a), len_of(m.heap(), b));
    let lo = la.max(lb) + 1;
    let out = m.alloc(lo);
    m.heap().store_u32(out, lo);
    let mut carry = 0u32;
    for i in 0..lo {
        let x = if i < la { limb(m.heap(), a, i) } else { 0 };
        let y = if i < lb { limb(m.heap(), b, i) } else { 0 };
        let s = x + y + carry;
        set_limb(m.heap(), out, i, s & 0xFFFF);
        carry = s >> 16;
    }
    debug_assert_eq!(carry, 0);
    normalize(m.heap(), out);
    out
}

/// a - b (requires a ≥ b), fresh allocation.
fn sub<M: Mem>(m: &mut M, a: Addr, b: Addr) -> Addr {
    debug_assert!(cmp(m.heap(), a, b) >= 0, "sub underflow");
    let (la, lb) = (len_of(m.heap(), a), len_of(m.heap(), b));
    let out = m.alloc(la);
    m.heap().store_u32(out, la);
    let mut borrow = 0i32;
    for i in 0..la {
        let x = limb(m.heap(), a, i) as i32;
        let y = if i < lb { limb(m.heap(), b, i) as i32 } else { 0 };
        let mut d = x - y - borrow;
        if d < 0 {
            d += 1 << 16;
            borrow = 1;
        } else {
            borrow = 0;
        }
        set_limb(m.heap(), out, i, d as u32);
    }
    debug_assert_eq!(borrow, 0);
    normalize(m.heap(), out);
    out
}

/// a >> 1, fresh allocation.
fn shr1<M: Mem>(m: &mut M, a: Addr) -> Addr {
    let la = len_of(m.heap(), a);
    let out = m.alloc(la);
    m.heap().store_u32(out, la);
    let mut carry = 0u32;
    for i in (0..la).rev() {
        let x = limb(m.heap(), a, i) | (carry << 16);
        set_limb(m.heap(), out, i, x >> 1);
        carry = x & 1;
    }
    normalize(m.heap(), out);
    out
}

/// (u + v) mod mod_, all < mod_; fresh allocation; temporaries released
/// through `dead`.
fn addmod<M: Mem>(m: &mut M, u: Addr, v: Addr, mod_: Addr) -> Addr {
    let t = add(m, u, v);
    if cmp(m.heap(), t, mod_) >= 0 {
        m.keep(8, t);
        let r = sub(m, t, mod_);
        m.dead(t);
        r
    } else {
        t
    }
}

/// (x · y) mod mod_ by binary (peasant) multiplication — ~one add/double
/// pair of allocations per bit of y, which is where cfrac's allocation
/// intensity comes from.
fn modmul<M: Mem>(m: &mut M, x: Addr, y: Addr, mod_: Addr) -> Addr {
    // Rooting contract: the caller keeps x, y and mod_ reachable; this
    // function keeps its own live intermediates in slots 9 (the running
    // addend) and 10 (the accumulator) so a collection inside any
    // allocation never frees them.
    let mut acc = from_u64(m, 0);
    m.keep(10, acc);
    let mut a = x; // x is owned by the caller; never freed here
    m.keep(9, a);
    let mut a_owned = false;
    let ybits = len_of(m.heap(), y) * 16;
    for bit in 0..ybits {
        let l = limb(m.heap(), y, bit / 16);
        if (l >> (bit % 16)) & 1 == 1 {
            let next = addmod(m, acc, a, mod_);
            m.dead(acc);
            acc = next;
            m.keep(10, acc);
        }
        if bit + 1 < ybits {
            let doubled = addmod(m, a, a, mod_);
            if a_owned {
                m.dead(a);
            }
            a = doubled;
            m.keep(9, a);
            a_owned = true;
        }
    }
    if a_owned {
        m.dead(a);
    }
    acc
}

/// a mod mod_ for arbitrary a (binary long division, remainder only).
fn modred<M: Mem>(m: &mut M, a: Addr, mod_: Addr) -> Addr {
    let mut r = from_u64(m, 0);
    let bits = len_of(m.heap(), a) * 16;
    for bit in (0..bits).rev() {
        // r = 2r + bit(a)
        m.keep(11, r);
        let mut t = add(m, r, r);
        m.dead(r);
        if (limb(m.heap(), a, bit / 16) >> (bit % 16)) & 1 == 1 {
            m.keep(12, t);
            let one = from_u64(m, 1);
            m.keep(13, one);
            let t2 = add(m, t, one);
            m.dead(t);
            m.dead(one);
            t = t2;
        }
        if cmp(m.heap(), t, mod_) >= 0 {
            m.keep(12, t);
            let t2 = sub(m, t, mod_);
            m.dead(t);
            t = t2;
        }
        r = t;
    }
    r
}

/// Binary gcd (no division), consuming neither argument.
fn gcd<M: Mem>(m: &mut M, a0: Addr, b0: Addr) -> Addr {
    let mut a = copy_big(m, a0);
    m.keep(13, a);
    let mut b = copy_big(m, b0);
    let mut shift = 0u32;
    while !is_zero(m.heap(), a) && !is_zero(m.heap(), b) {
        m.keep(13, a);
        m.keep(14, b);
        if is_even(m.heap(), a) && is_even(m.heap(), b) {
            let na = shr1(m, a);
            m.keep(15, na); // na must survive the allocation inside shr1(b)
            let nb = shr1(m, b);
            m.dead(a);
            m.dead(b);
            a = na;
            b = nb;
            shift += 1;
        } else if is_even(m.heap(), a) {
            let na = shr1(m, a);
            m.dead(a);
            a = na;
        } else if is_even(m.heap(), b) {
            let nb = shr1(m, b);
            m.dead(b);
            b = nb;
        } else if cmp(m.heap(), a, b) >= 0 {
            let na = sub(m, a, b);
            m.dead(a);
            a = na;
        } else {
            let nb = sub(m, b, a);
            m.dead(b);
            b = nb;
        }
    }
    let mut g = if is_zero(m.heap(), a) {
        m.dead(a);
        b
    } else {
        m.dead(b);
        a
    };
    for _ in 0..shift {
        m.keep(13, g);
        let ng = add(m, g, g); // g = 2g, restoring the stripped twos
        m.dead(g);
        g = ng;
    }
    g
}

/// A fresh copy of a bignum (used for rotation into a new region).
fn copy_big<M: Mem>(m: &mut M, a: Addr) -> Addr {
    let la = len_of(m.heap(), a);
    let out = m.alloc(la);
    m.heap().store_u32(out, la);
    for i in 0..la {
        let v = limb(m.heap(), a, i);
        set_limb(m.heap(), out, i, v);
    }
    out
}

/// Pollard's rho with batched gcd over the given memory policy. The
/// `rotate` hook fires every 32 iterations with the three live values
/// (x, y, accumulated product) and must return their (possibly copied)
/// replacements — the region variant rotates its temporary region here.
fn rho<M: Mem>(
    m: &mut M,
    n: Addr,
    mut rotate: impl FnMut(&mut M, Addr, Addr, Addr) -> (Addr, Addr, Addr),
) -> (Addr, u64) {
    let mut x = from_u64(m, 2);
    m.keep(0, x);
    let mut y = from_u64(m, 2);
    m.keep(1, y);
    let mut prod = from_u64(m, 1);
    m.keep(2, prod);
    let mut iters = 0u64;

    let step = |m: &mut M, v: Addr, n: Addr| -> Addr {
        // f(v) = v² + 1 mod n
        let sq = modmul(m, v, v, n);
        m.keep(15, sq);
        let one_t = from_u64(m, 1);
        m.keep(14, one_t);
        let r = addmod(m, sq, one_t, n);
        m.dead(sq);
        m.dead(one_t);
        r
    };

    loop {
        iters += 1;
        // x advances once, y twice (Floyd).
        let nx = step(m, x, n);
        m.dead(x);
        x = nx;
        m.keep(0, x);
        let ny1 = step(m, y, n);
        m.dead(y);
        m.keep(1, ny1);
        let ny = step(m, ny1, n);
        m.dead(ny1);
        y = ny;
        m.keep(1, y);
        // prod = prod * |x - y| mod n
        let diff = if cmp(m.heap(), x, y) >= 0 { sub(m, x, y) } else { sub(m, y, x) };
        m.keep(15, diff);
        let np = modmul(m, prod, diff, n);
        m.dead(diff);
        m.dead(prod);
        prod = np;
        m.keep(2, prod);
        // Batched gcd every 16 iterations.
        if iters.is_multiple_of(16) {
            let g = gcd(m, prod, n);
            m.keep(15, g);
            // The triviality test allocates nothing, so it needs no
            // rotation-safe storage (an earlier version kept a bignum
            // `1` across rotations — a dangling-pointer bug the safe
            // runtime exists to prevent).
            let trivial = is_one(m.heap(), g) || cmp(m.heap(), g, n) == 0;
            if !trivial {
                m.dead(x);
                m.dead(y);
                m.dead(prod);
                return (g, iters);
            }
            m.dead(g);
            // Reset the product so one unlucky batch doesn't absorb n.
            m.dead(prod);
            prod = from_u64(m, 1);
            m.keep(2, prod);
        }
        if iters.is_multiple_of(32) {
            let (rx, ry, rp) = rotate(m, x, y, prod);
            x = rx;
            y = ry;
            prod = rp;
            m.keep(0, x);
            m.keep(1, y);
            m.keep(2, prod);
        }
        assert!(iters < 2_000_000, "rho failed to converge");
    }
}

// --- begin malloc variant ---

struct MallocMem<'a> {
    env: &'a mut MallocEnv,
}

impl Mem for MallocMem<'_> {
    fn alloc(&mut self, limbs: u32) -> Addr {
        self.env.malloc(4 + limbs * 4)
    }
    fn dead(&mut self, a: Addr) {
        self.env.free(a); // explicit deallocation, value by value
    }
    fn keep(&mut self, slot: u32, a: Addr) {
        self.env.set_root(slot, a); // GC roots; no-ops for real mallocs
    }
    fn heap(&mut self) -> &mut SimHeap {
        self.env.heap()
    }
}

/// cfrac with malloc/free: every temporary bignum is freed the moment it
/// dies (the original used reference counts for the same effect).
pub fn run_malloc(env: &mut MallocEnv, scale: u32) -> u64 {
    let (p, q) = semiprime(scale);
    env.push_roots(16);
    let mut m = MallocMem { env };
    let n = from_u64(&mut m, p * q);
    m.keep(4, n);
    // No region rotation: the values pass through unchanged.
    let (g, iters) = rho(&mut m, n, |_, x, y, pr| (x, y, pr));
    let factor = to_u128(m.heap(), g) as u64;
    // Verify the factor actually divides n (exercises long reduction).
    m.keep(5, g);
    let r = modred(&mut m, n, g);
    assert!(is_zero(m.heap(), r), "factor must divide n");
    m.dead(r);
    m.dead(g);
    m.dead(n);
    env.pop_roots();
    let mut sum = Checksum::new();
    sum.add(factor.min(p * q / factor));
    sum.add(iters);
    sum.value()
}

// --- end malloc variant ---

// --- begin region variant ---

struct RegionMem<'a> {
    env: &'a mut RegionEnv,
    current: crate::env::Rh,
}

impl Mem for RegionMem<'_> {
    fn alloc(&mut self, limbs: u32) -> Addr {
        // Bignums are pointer-free: rstralloc (the string allocator).
        self.env.rstralloc(self.current, 4 + limbs * 4)
    }
    fn dead(&mut self, _a: Addr) {
        // Region garbage: reclaimed when the temporary region rotates.
    }
    fn keep(&mut self, _slot: u32, _a: Addr) {
        // Regions need no GC roots.
    }
    fn heap(&mut self) -> &mut SimHeap {
        self.env.heap()
    }
}

/// cfrac with regions: "a region for temporary computations for every
/// few iterations of the main algorithm. Partial solutions are copied
/// from this region to a solution region so that old temporary regions
/// can be deleted."
pub fn run_region(env: &mut RegionEnv, scale: u32) -> u64 {
    let (p, q) = semiprime(scale);
    let solution = env.new_region();
    let first_temp = env.new_region();
    // Shadow locals for the live values across each rotation (cleared
    // before the old region is deleted, so the delete succeeds).
    env.push_frame(3);
    let mut m = RegionMem { env, current: first_temp };
    let n = {
        // n lives in the solution region: it survives every rotation.
        let saved = m.current;
        m.current = solution;
        let n = from_u64(&mut m, p * q);
        m.current = saved;
        n
    };
    let (g, iters) = rho(&mut m, n, |m, x, y, pr| {
        // Rotate: copy the partial solutions into a fresh region, then
        // delete the old one wholesale.
        let old = m.current;
        let fresh = m.env.new_region();
        m.current = fresh;
        let nx = copy_big(m, x);
        let ny = copy_big(m, y);
        let np = copy_big(m, pr);
        m.env.set_local(0, nx);
        m.env.set_local(1, ny);
        m.env.set_local(2, np);
        assert!(m.env.delete_region(old), "temporary region must delete");
        (nx, ny, np)
    });
    // Copy the answer into the solution region before the last temp dies.
    let saved = m.current;
    m.current = solution;
    let kept = copy_big(&mut m, g);
    m.current = saved;
    let factor = to_u128(m.heap(), kept) as u64;
    // Verify the factor divides n (temporaries land in the last region).
    let r = modred(&mut m, n, kept);
    assert!(is_zero(m.heap(), r), "factor must divide n");
    let last_temp = m.current;
    env.set_local(0, Addr::NULL);
    env.set_local(1, Addr::NULL);
    env.set_local(2, Addr::NULL);
    env.pop_frame();
    assert!(env.delete_region(last_temp));
    assert!(env.delete_region(solution));
    let mut sum = Checksum::new();
    sum.add(factor.min(p * q / factor));
    sum.add(iters);
    sum.value()
}

// --- end region variant ---

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{MallocKind, RegionKind};

    /// A trivial host-heap Mem for arithmetic unit tests.
    struct TestMem {
        heap: SimHeap,
    }

    impl Mem for TestMem {
        fn alloc(&mut self, limbs: u32) -> Addr {
            self.heap.sbrk(4 + limbs * 4)
        }
        fn dead(&mut self, _a: Addr) {}
        fn keep(&mut self, _slot: u32, _a: Addr) {}
        fn heap(&mut self) -> &mut SimHeap {
            &mut self.heap
        }
    }

    fn mem() -> TestMem {
        TestMem { heap: SimHeap::new() }
    }

    #[test]
    fn roundtrip_and_compare() {
        let mut m = mem();
        for v in [0u64, 1, 0xFFFF, 0x10000, 0xDEAD_BEEF_CAFE, u64::MAX] {
            let a = from_u64(&mut m, v);
            assert_eq!(to_u128(m.heap(), a), u128::from(v));
        }
        let a = from_u64(&mut m, 1000);
        let b = from_u64(&mut m, 1001);
        assert_eq!(cmp(m.heap(), a, b), -1);
        assert_eq!(cmp(m.heap(), b, a), 1);
        assert_eq!(cmp(m.heap(), a, a), 0);
    }

    #[test]
    fn add_sub_shr_match_u128() {
        let mut m = mem();
        let cases = [(0u64, 0u64), (1, 1), (0xFFFF, 1), (u32::MAX as u64, u32::MAX as u64), (u64::MAX / 2, u64::MAX / 3)];
        for (x, y) in cases {
            let a = from_u64(&mut m, x);
            let b = from_u64(&mut m, y);
            let s = add(&mut m, a, b);
            assert_eq!(to_u128(m.heap(), s), u128::from(x) + u128::from(y));
            let (hi, lo) = if x >= y { (a, b) } else { (b, a) };
            let d = sub(&mut m, hi, lo);
            assert_eq!(to_u128(m.heap(), d), u128::from(x.max(y) - x.min(y)));
            let h = shr1(&mut m, a);
            assert_eq!(to_u128(m.heap(), h), u128::from(x >> 1));
        }
    }

    #[test]
    fn modmul_and_modred_match_u128() {
        let mut m = mem();
        let n = 1_000_003u64;
        let nb = from_u64(&mut m, n);
        for (x, y) in [(2u64, 3u64), (999_999, 999_998), (123_456, 654_321), (1, n - 1)] {
            let xb = from_u64(&mut m, x % n);
            let yb = from_u64(&mut m, y % n);
            let r = modmul(&mut m, xb, yb, nb);
            assert_eq!(to_u128(m.heap(), r), u128::from(x % n) * u128::from(y % n) % u128::from(n));
        }
        let big = from_u64(&mut m, u64::MAX);
        let r = modred(&mut m, big, nb);
        assert_eq!(to_u128(m.heap(), r), u128::from(u64::MAX % n));
    }

    #[test]
    fn gcd_matches_euclid() {
        let mut m = mem();
        for (x, y) in [(48u64, 18u64), (1_000_000, 1_000_003), (17 * 19, 17 * 23), (12, 0)] {
            let a = from_u64(&mut m, x);
            let b = from_u64(&mut m, y);
            let g = gcd(&mut m, a, b);
            fn host_gcd(mut a: u64, mut b: u64) -> u64 {
                while b != 0 {
                    let t = a % b;
                    a = b;
                    b = t;
                }
                a
            }
            assert_eq!(to_u128(m.heap(), g), u128::from(host_gcd(x, y)), "gcd({x},{y})");
        }
    }

    #[test]
    fn factors_the_scale1_semiprime() {
        let mut env = MallocEnv::new(MallocKind::Lea);
        let c = run_malloc(&mut env, 1);
        assert_ne!(c, 0);
        assert_eq!(env.stats().live_bytes, 0, "all bignums freed");
        assert!(env.stats().total_allocs > 5_000, "allocation-intensive");
    }

    #[test]
    fn all_allocators_agree_on_the_answer() {
        let expected = run_malloc(&mut MallocEnv::new(MallocKind::Sun), 1);
        for kind in [MallocKind::Bsd, MallocKind::Lea, MallocKind::Gc] {
            assert_eq!(run_malloc(&mut MallocEnv::new(kind), 1), expected, "{}", kind.name());
        }
        for kind in [RegionKind::Safe, RegionKind::Unsafe, RegionKind::Emulated(MallocKind::Sun)] {
            assert_eq!(run_region(&mut RegionEnv::new(kind), 1), expected, "{}", kind.name());
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(200))]

            /// Every bignum operation agrees with u128 host arithmetic.
            #[test]
            fn ops_match_u128(x in any::<u64>(), y in any::<u64>()) {
                let mut m = mem();
                let a = from_u64(&mut m, x);
                let b = from_u64(&mut m, y);
                let s = add(&mut m, a, b);
                prop_assert_eq!(to_u128(m.heap(), s), u128::from(x) + u128::from(y));
                let (hi, lo, hv, lv) =
                    if x >= y { (a, b, x, y) } else { (b, a, y, x) };
                let d = sub(&mut m, hi, lo);
                prop_assert_eq!(to_u128(m.heap(), d), u128::from(hv - lv));
                let h = shr1(&mut m, a);
                prop_assert_eq!(to_u128(m.heap(), h), u128::from(x >> 1));
                prop_assert_eq!(cmp(m.heap(), a, b), x.cmp(&y) as i32);
            }

            #[test]
            fn modular_ops_match_u128(x in any::<u64>(), y in any::<u64>(), n in 2u64..u32::MAX as u64) {
                let mut m = mem();
                let nb = from_u64(&mut m, n);
                let xb = from_u64(&mut m, x % n);
                let yb = from_u64(&mut m, y % n);
                let r = modmul(&mut m, xb, yb, nb);
                prop_assert_eq!(
                    to_u128(m.heap(), r),
                    u128::from(x % n) * u128::from(y % n) % u128::from(n)
                );
                let big = from_u64(&mut m, x);
                let rr = modred(&mut m, big, nb);
                prop_assert_eq!(to_u128(m.heap(), rr), u128::from(x % n));
            }

            #[test]
            fn gcd_matches_host(x in 1u64..u32::MAX as u64, y in 1u64..u32::MAX as u64) {
                let mut m = mem();
                let a = from_u64(&mut m, x);
                let b = from_u64(&mut m, y);
                let g = gcd(&mut m, a, b);
                fn host_gcd(mut a: u64, mut b: u64) -> u64 {
                    while b != 0 {
                        let t = a % b;
                        a = b;
                        b = t;
                    }
                    a
                }
                prop_assert_eq!(to_u128(m.heap(), g), u128::from(host_gcd(x, y)));
            }
        }
    }

    #[test]
    fn region_variant_rotates_temp_regions() {
        let mut env = RegionEnv::new(RegionKind::Safe);
        run_region(&mut env, 1);
        assert!(env.stats().total_regions >= 3, "solution + rotating temps");
        assert_eq!(env.stats().live_regions, 0);
        assert_eq!(env.costs().unwrap().deletes_failed, 0);
        // Rotation keeps the footprint small: the max live regions is the
        // solution region plus at most two temp regions mid-rotation.
        assert!(env.stats().max_live_regions <= 3);
    }
}
