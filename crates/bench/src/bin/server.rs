//! Region service under adversity — the long-lived driver for the
//! resilience layer ([`bench_harness::server`]).
//!
//! A fleet of sessions serves seeded request traffic on one shared
//! address space: every request creates a region, allocates into it,
//! publishes a cross-thread reference through the parallel pool, then
//! unpublishes and deletes. The run interleaves injected allocation
//! faults (bounded deterministic retry with linear backoff), injected
//! worker panics (quarantine + reap, the fleet keeps serving), and
//! footprint watermarks (degrade, then shed with a typed
//! `Overloaded` error — never a panic).
//!
//! The books — conserved ledger, per-session ledgers, digest,
//! footprint high-water — are schedule-independent by construction:
//! the same seed must produce byte-identical books at 1, 2 and N OS
//! threads and across reruns, and this binary asserts exactly that
//! before reporting. Wall-clock throughput and p50/p99/p999 request
//! latency are reported alongside but never folded into the books.
//!
//! Writes a schema-v3 results envelope with the tail-latency columns
//! to `results/server.json`, plus the richer `BENCH_server.json`
//! record (`BENCH_SERVER_OUT` redirects, so CI's quick smoke does not
//! clobber the committed default-scale record).

use bench_harness::runner::{host_cores, today_utc, write_results_json_full, LatencyColumn};
use bench_harness::{install_service_panic_filter, run_service, Measurement, ServiceConfig, ServiceReport};

/// Thread counts the books must be invariant across. The last entry is
/// also rerun to prove same-seed stability.
const THREAD_AB: [usize; 3] = [1, 2, 4];

fn measurement(label: &'static str, r: &ServiceReport) -> Measurement {
    Measurement {
        workload: "server",
        allocator: label,
        total: r.elapsed,
        mem: r.elapsed,
        os_pages: r.high_water_pages,
        stats: region_core::AllocStats {
            total_allocs: r.ledger.completed,
            total_regions: r.ledger.submitted,
            ..Default::default()
        },
        inner_stats: None,
        costs: None,
        cache: None,
        checksum: r.digest,
    }
}

fn print_report(threads: usize, r: &ServiceReport) {
    let l = &r.ledger;
    println!(
        "  {threads:>2} thread(s): {} req in {:>7.1} ms ({:>8.0} req/s) — \
         {} ok, {} shed, {} failed ({} retries, {} degraded, {} faults, {} panics)",
        l.submitted,
        r.elapsed.as_secs_f64() * 1e3,
        r.throughput_rps(),
        l.completed,
        l.shed,
        l.failed,
        l.retries,
        l.degraded,
        l.faults,
        l.panics,
    );
}

fn main() {
    install_service_panic_filter();
    let quick = std::env::args().any(|a| a == "--quick");
    let mut args = std::env::args();
    let mut seed = 42u64;
    while let Some(a) = args.next() {
        if a == "--seed" {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("--seed needs a value");
                std::process::exit(2);
            });
            seed = v.parse().unwrap_or_else(|_| {
                eprintln!("bad seed: {v}");
                std::process::exit(2);
            });
        }
    }
    let mut cfg = if quick { ServiceConfig::quick(seed) } else { ServiceConfig::full(seed) };
    if std::env::var("REGION_SANITIZE").is_ok_and(|v| v == "1") {
        cfg.sanitize_rounds = true;
    }

    println!(
        "Region service: {} sessions x {} requests over {} rounds, seed {seed}, \
         watermarks {}, fault 1/{}, panic 1/{}",
        cfg.sessions,
        cfg.requests_per_session,
        cfg.rounds,
        cfg.marks,
        cfg.fault_one_in,
        cfg.panic_one_in,
    );

    // The books must not depend on the OS thread count, and a same-seed
    // rerun must land on the same bytes. Both are asserted on the full
    // encoded books (fleet ledger, per-session ledgers, digest,
    // footprint, quarantine counters) — not just the digest.
    let mut reports = Vec::new();
    for threads in THREAD_AB {
        let r = run_service(&ServiceConfig { threads, ..cfg });
        print_report(threads, &r);
        reports.push(r);
    }
    let books = reports[0].encode_books();
    for (threads, r) in THREAD_AB.iter().zip(&reports).skip(1) {
        assert_eq!(
            books,
            r.encode_books(),
            "books must not depend on the thread count (1 vs {threads})"
        );
    }
    let last = *THREAD_AB.last().expect("non-empty");
    let again = run_service(&ServiceConfig { threads: last, ..cfg });
    assert_eq!(books, again.encode_books(), "same-seed rerun must be byte-identical");

    let r1 = &reports[0];
    let rn = &reports[THREAD_AB.len() - 1];
    assert!(rn.ledger.conserves(), "ledger must conserve");
    println!(
        "  ledger conserved: {} submitted == {} completed + {} shed + {} failed",
        rn.ledger.submitted, rn.ledger.completed, rn.ledger.shed, rn.ledger.failed
    );
    println!(
        "  latency p50 {:.2} us, p99 {:.2} us, p999 {:.2} us ({last} threads)",
        rn.p50_us(),
        rn.p99_us(),
        rn.p999_us()
    );
    println!(
        "  footprint high-water {} pages (final {}), {} quarantined, {} reaped, \
         {} sanitize passes",
        rn.high_water_pages, rn.final_pages, rn.quarantined, rn.reaped, rn.sanitize_runs
    );
    println!(
        "  books {:016x} identical at {:?} threads and across reruns",
        rn.digest, THREAD_AB
    );

    let rows = [measurement("svc1", r1), measurement("svcN", rn)];
    let lat = LatencyColumn {
        p50_us: vec![r1.p50_us(), rn.p50_us()],
        p99_us: vec![r1.p99_us(), rn.p99_us()],
        p999_us: vec![r1.p999_us(), rn.p999_us()],
    };
    match write_results_json_full("server", &rows, None, Some(&lat)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write results JSON: {e}"),
    }

    let l = &rn.ledger;
    let json = format!(
        "{{\n  \"comment\": \"Region service under adversity: {} sessions serving seeded \
         request traffic on one shared address space, with injected allocation faults \
         (bounded deterministic retry), injected worker panics (quarantine + reap), and \
         footprint watermarks (degrade, then shed with a typed error). Books asserted \
         byte-identical at 1/2/{last} OS threads and across same-seed reruns; ledger \
         conserved (submitted == completed + shed + failed); clean audit and sanitize \
         every round. Latencies are wall clock and excluded from the books.\",\n  \
         \"date\": \"{}\",\n  \"host\": {{ \"cores\": {}, \"os\": \"{}\" }},\n  \
         \"config\": {{ \"seed\": {seed}, \"quick\": {quick}, \"sessions\": {}, \
         \"requests_per_session\": {}, \"rounds\": {}, \"soft_pages\": {}, \
         \"hard_pages\": {}, \"max_attempts\": {}, \"fault_one_in\": {}, \
         \"panic_one_in\": {} }},\n  \
         \"ledger\": {{ \"submitted\": {}, \"completed\": {}, \"shed\": {}, \
         \"failed\": {}, \"retries\": {}, \"degraded\": {}, \"faults\": {}, \
         \"panics\": {} }},\n  \
         \"latency_us\": {{ \"p50\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3} }},\n  \
         \"throughput_rps\": {:.0},\n  \
         \"footprint\": {{ \"high_water_pages\": {}, \"final_pages\": {} }},\n  \
         \"isolation\": {{ \"quarantined\": {}, \"reaped\": {}, \"sanitize_runs\": {} }},\n  \
         \"books\": \"{:016x}\",\n  \"threads_ab\": [1, 2, {last}]\n}}\n",
        cfg.sessions,
        today_utc(),
        host_cores(),
        std::env::consts::OS,
        cfg.sessions,
        cfg.requests_per_session,
        cfg.rounds,
        cfg.marks.soft_pages,
        cfg.marks.hard_pages,
        cfg.max_attempts,
        cfg.fault_one_in,
        cfg.panic_one_in,
        l.submitted,
        l.completed,
        l.shed,
        l.failed,
        l.retries,
        l.degraded,
        l.faults,
        l.panics,
        rn.p50_us(),
        rn.p99_us(),
        rn.p999_us(),
        rn.throughput_rps(),
        rn.high_water_pages,
        rn.final_pages,
        rn.quarantined,
        rn.reaped,
        rn.sanitize_runs,
        rn.digest,
    );
    let out = std::env::var("BENCH_SERVER_OUT").unwrap_or_else(|_| "BENCH_server.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}
