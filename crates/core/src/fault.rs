//! Deterministic fault injection for the region runtime.
//!
//! A [`FaultPlan`] decides, ahead of any side effect, whether a page
//! acquisition or an allocation should fail with
//! [`RegionError::FaultInjected`](crate::RegionError::FaultInjected).
//! Plans are pure functions of their construction parameters and an
//! optional seed, so the same plan driven by the same operation sequence
//! injects exactly the same faults — the chaos harness relies on this for
//! bit-identical re-runs.
//!
//! Faults are checked *before* the runtime mutates anything, so a faulted
//! operation is observationally a no-op (asserted by property tests).

use std::fmt;

/// The operation class a fault was injected into.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// Taking a page from the pool / the simulated OS.
    PageAcquisition,
    /// An `ralloc`/`rarrayalloc`/`rstralloc` call.
    Allocation,
    /// Heap growth (`sbrk`) past a byte budget, injected inside
    /// [`simheap::SimHeap`] via
    /// [`HeapConfig::sbrk_fault_after`](simheap::HeapConfig).
    Sbrk,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultSite::PageAcquisition => "page acquisition",
            FaultSite::Allocation => "allocation",
            FaultSite::Sbrk => "sbrk",
        })
    }
}

/// A deterministic schedule of injected failures.
///
/// ```
/// use region_core::{FaultPlan, RegionError, RegionRuntime};
///
/// let mut rt = RegionRuntime::new_safe();
/// rt.set_fault_plan(FaultPlan::new().fail_page_acquisition(2));
/// let r = rt.try_new_region().unwrap(); // acquisition #1 succeeds
/// assert!(matches!(
///     rt.try_new_region(),
///     Err(RegionError::FaultInjected { .. })
/// ));
/// assert!(rt.is_live(r), "the faulted operation changed nothing");
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// 1-based page-acquisition ordinals to fail.
    fail_pages: Vec<u64>,
    /// Fail every Mth allocation (the Mth, 2Mth, ...).
    every_mth_alloc: Option<u64>,
    /// Fail a seeded-random 1-in-N of allocations.
    alloc_one_in: Option<u64>,
    /// Make `sbrk` fail once the heap exceeds this many bytes (threaded
    /// into [`simheap::HeapConfig::sbrk_fault_after`] by
    /// `RegionRuntime::set_fault_plan`).
    sbrk_after: Option<u64>,
    /// xorshift64* state for `alloc_one_in`.
    rng: u64,
    pages_seen: u64,
    allocs_seen: u64,
    injected: u64,
}

impl FaultPlan {
    /// An empty plan that injects nothing.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan whose random decisions derive from `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        // splitmix64 scramble: distinct nearby seeds give unrelated
        // streams, and 0 cannot reach the all-zero xorshift fixpoint.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FaultPlan { rng: (z ^ (z >> 31)) | 1, ..FaultPlan::default() }
    }

    /// Fail the `nth` page acquisition (1-based). May be called multiple
    /// times to fail several ordinals.
    pub fn fail_page_acquisition(mut self, nth: u64) -> FaultPlan {
        self.fail_pages.push(nth);
        self
    }

    /// Fail every `m`th allocation attempt (`m >= 1`).
    pub fn fail_every_mth_alloc(mut self, m: u64) -> FaultPlan {
        assert!(m >= 1, "fail_every_mth_alloc(0)");
        self.every_mth_alloc = Some(m);
        self
    }

    /// Fail a seeded-random one in `n` allocation attempts.
    pub fn fail_allocs_one_in(mut self, n: u64) -> FaultPlan {
        assert!(n >= 1, "fail_allocs_one_in(0)");
        self.alloc_one_in = Some(n);
        self
    }

    /// Fail heap growth (`sbrk`) once the heap would exceed `bytes`.
    pub fn fail_sbrk_after(mut self, bytes: u64) -> FaultPlan {
        self.sbrk_after = Some(bytes);
        self
    }

    /// The configured sbrk byte budget, if any.
    pub fn sbrk_after(&self) -> Option<u64> {
        self.sbrk_after
    }

    /// Total faults this plan has injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Snapshot support: the plan's complete internal state — schedule and
    /// progress counters — in the order [`FaultPlan::from_raw_state`]
    /// consumes it. A plan rebuilt from this state continues injecting at
    /// exactly the point the original left off (same dice stream, same
    /// ordinals), which is what lets a snapshot be taken *inside* a fault
    /// window and still replay bit-identically.
    pub(crate) fn raw_state(&self) -> (&[u64], Option<u64>, Option<u64>, Option<u64>, [u64; 4]) {
        (
            &self.fail_pages,
            self.every_mth_alloc,
            self.alloc_one_in,
            self.sbrk_after,
            [self.rng, self.pages_seen, self.allocs_seen, self.injected],
        )
    }

    /// Rebuilds a plan from [`FaultPlan::raw_state`] output.
    pub(crate) fn from_raw_state(
        fail_pages: Vec<u64>,
        every_mth_alloc: Option<u64>,
        alloc_one_in: Option<u64>,
        sbrk_after: Option<u64>,
        counters: [u64; 4],
    ) -> FaultPlan {
        let [rng, pages_seen, allocs_seen, injected] = counters;
        FaultPlan {
            fail_pages,
            every_mth_alloc,
            alloc_one_in,
            sbrk_after,
            rng,
            pages_seen,
            allocs_seen,
            injected,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — tiny, deterministic, good enough for fault dice.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Called by the runtime before each page acquisition. Returns the
    /// 1-based ordinal if this acquisition must fail.
    pub(crate) fn check_page(&mut self) -> Option<u64> {
        self.pages_seen += 1;
        if self.fail_pages.contains(&self.pages_seen) {
            self.injected += 1;
            return Some(self.pages_seen);
        }
        None
    }

    /// Called by the runtime before each allocation. Returns the 1-based
    /// ordinal if this allocation must fail.
    pub(crate) fn check_alloc(&mut self) -> Option<u64> {
        self.allocs_seen += 1;
        let mth = self.every_mth_alloc.is_some_and(|m| self.allocs_seen % m == 0);
        let dice = self.alloc_one_in.is_some_and(|n| {
            // Consume one random draw per attempt so the stream is a pure
            // function of the attempt count, not of which faults fired.
            self.next_rand() % n == 0
        });
        if mth || dice {
            self.injected += 1;
            return Some(self.allocs_seen);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_page_fault_fires_exactly_once() {
        let mut p = FaultPlan::new().fail_page_acquisition(3);
        assert_eq!(p.check_page(), None);
        assert_eq!(p.check_page(), None);
        assert_eq!(p.check_page(), Some(3));
        assert_eq!(p.check_page(), None);
        assert_eq!(p.injected(), 1);
    }

    #[test]
    fn every_mth_alloc_fires_periodically() {
        let mut p = FaultPlan::new().fail_every_mth_alloc(3);
        let fired: Vec<bool> = (0..9).map(|_| p.check_alloc().is_some()).collect();
        assert_eq!(fired, [false, false, true, false, false, true, false, false, true]);
        assert_eq!(p.injected(), 3);
    }

    #[test]
    fn raw_state_round_trip_continues_the_dice_stream() {
        let mut p = FaultPlan::seeded(7).fail_allocs_one_in(5).fail_page_acquisition(9);
        for _ in 0..100 {
            p.check_alloc();
            p.check_page();
        }
        let (pages, mth, one_in, sbrk, counters) = p.raw_state();
        let mut q = FaultPlan::from_raw_state(pages.to_vec(), mth, one_in, sbrk, counters);
        let a: Vec<_> = (0..100).map(|_| p.check_alloc()).collect();
        let b: Vec<_> = (0..100).map(|_| q.check_alloc()).collect();
        assert_eq!(a, b, "rebuilt plan must continue the exact dice stream");
        assert_eq!(p.injected(), q.injected());
    }

    #[test]
    fn seeded_dice_are_reproducible() {
        let run = |seed| {
            let mut p = FaultPlan::seeded(seed).fail_allocs_one_in(4);
            (0..256).map(|_| p.check_alloc().is_some()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42), "same seed, same faults");
        assert_ne!(run(42), run(43), "different seeds diverge");
        let mut p = FaultPlan::seeded(42).fail_allocs_one_in(4);
        (0..256).for_each(|_| {
            p.check_alloc();
        });
        let hits = p.injected();
        assert!(hits > 16 && hits < 144, "1-in-4 dice wildly off: {hits}/256");
    }
}
