//! The region-**emulation** library (§5.2).
//!
//! "emulation: a region library that uses malloc and free to allocate and
//! free each individual object. This library approximates the performance
//! a region-based application would have if it were written with
//! malloc/free. ... Using this library imposes a small space overhead:
//! the objects allocated in a region must be kept in a linked list so
//! they can be freed when `deleteregion` is called."
//!
//! The paper uses it to produce the malloc/free bars for `mudlle` and
//! `lcc` (which are region-structured programs), over each of the malloc
//! baselines. [`EmulatedRegions`] is generic over any [`RawMalloc`].
//!
//! Emulation provides no safety: `delete_region` always succeeds and the
//! `store_ptr_*` operations are plain stores.

use region_core::{AllocStats, DescId, DescriptorTable, TypeDescriptor};
use simheap::{align_up, Addr, SimHeap, WORD};

use crate::RawMalloc;

/// Identifier of an emulated region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EmuRegionId(u32);

impl EmuRegionId {
    /// Raw index of the region.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs an id from [`EmuRegionId::index`] (for hosts that
    /// round-trip handles through untyped storage).
    pub fn from_index(index: u32) -> EmuRegionId {
        EmuRegionId(index)
    }
}

#[derive(Debug)]
struct EmuRegion {
    live: bool,
    /// Head of the in-heap linked list of this region's objects (each
    /// object is preceded by one link word — the emulation overhead).
    head: Addr,
    bytes: u64,
}

/// Regions emulated with malloc/free: one malloc per object, one free per
/// object at region deletion.
///
/// ```
/// use malloc_suite::{EmulatedRegions, LeaMalloc};
/// use simheap::SimHeap;
///
/// let mut heap = SimHeap::new();
/// let mut er = EmulatedRegions::new(LeaMalloc::new());
/// let r = er.new_region();
/// let a = er.rstralloc(&mut heap, r, 100);
/// heap.store_u32(a, 7);
/// er.delete_region(&mut heap, r); // frees each object individually
/// ```
#[derive(Debug)]
pub struct EmulatedRegions<M> {
    malloc: M,
    regions: Vec<EmuRegion>,
    descs: DescriptorTable,
    /// Region-level statistics *without* the emulation overhead (the
    /// paper's "(w/o overhead)" rows in Table 3 / Figure 8).
    stats: AllocStats,
    /// Host-side shadow of the region-pointer locals API, so workload code
    /// written for `RegionRuntime` runs unchanged.
    frames: Vec<Vec<Addr>>,
}

impl<M: RawMalloc> EmulatedRegions<M> {
    /// Wraps a malloc implementation in the region interface.
    pub fn new(malloc: M) -> EmulatedRegions<M> {
        EmulatedRegions {
            malloc,
            regions: Vec::new(),
            descs: DescriptorTable::new(),
            stats: AllocStats::default(),
            frames: Vec::new(),
        }
    }

    /// The underlying allocator (its stats include the emulation
    /// overhead — the paper's raw bars for `lcc` and `mudlle`).
    pub fn inner(&self) -> &M {
        &self.malloc
    }

    /// Registers a type descriptor (kept for interface parity; emulation
    /// only needs the size).
    pub fn register_type(&mut self, desc: TypeDescriptor) -> DescId {
        self.descs.register(desc)
    }

    /// Region-level statistics without emulation overhead.
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    /// Creates a region.
    pub fn new_region(&mut self) -> EmuRegionId {
        let id = EmuRegionId(self.regions.len() as u32);
        self.regions.push(EmuRegion { live: true, head: Addr::NULL, bytes: 0 });
        self.stats.on_region_created();
        id
    }

    /// `true` if the region has not been deleted.
    pub fn is_live(&self, r: EmuRegionId) -> bool {
        self.regions[r.0 as usize].live
    }

    fn alloc_linked(&mut self, heap: &mut SimHeap, r: EmuRegionId, size: u32) -> Addr {
        let info = &self.regions[r.0 as usize];
        assert!(info.live, "use of deleted region {r:?}");
        let block = self.malloc.malloc(heap, WORD + size);
        let info = &mut self.regions[r.0 as usize];
        heap.store_addr(block, info.head);
        info.head = block;
        let rounded = self.stats.on_alloc(size);
        let info = &mut self.regions[r.0 as usize];
        info.bytes += u64::from(rounded);
        let b = info.bytes;
        self.stats.note_region_bytes(b);
        block + WORD
    }

    /// `ralloc`: allocates a cleared object of the descriptor's type.
    pub fn ralloc(&mut self, heap: &mut SimHeap, r: EmuRegionId, desc: DescId) -> Addr {
        let size = self.descs.get(desc).size();
        let a = self.alloc_linked(heap, r, align_up(size, WORD));
        heap.fill(a, align_up(size, WORD), 0);
        a
    }

    /// `rarrayalloc`: allocates a cleared array.
    pub fn rarrayalloc(&mut self, heap: &mut SimHeap, r: EmuRegionId, n: u32, elem: DescId) -> Addr {
        let stride = align_up(self.descs.get(elem).size(), WORD);
        let payload = n.checked_mul(stride).expect("array size overflow").max(WORD);
        let a = self.alloc_linked(heap, r, payload);
        heap.fill(a, payload, 0);
        a
    }

    /// `rstralloc`: allocates pointer-free storage (not cleared).
    pub fn rstralloc(&mut self, heap: &mut SimHeap, r: EmuRegionId, size: u32) -> Addr {
        assert!(size > 0, "rstralloc of zero bytes");
        self.alloc_linked(heap, r, align_up(size, WORD))
    }

    /// `deleteregion`: frees every object individually by walking the
    /// linked list. Always succeeds (emulation provides no safety).
    pub fn delete_region(&mut self, heap: &mut SimHeap, r: EmuRegionId) -> bool {
        let info = &mut self.regions[r.0 as usize];
        assert!(info.live, "double delete of {r:?}");
        info.live = false;
        let mut cur = info.head;
        let bytes = info.bytes;
        while !cur.is_null() {
            let next = heap.load_addr(cur);
            self.malloc.free(heap, cur);
            cur = next;
        }
        self.stats.on_region_deleted(bytes);
        true
    }

    /// Plain store (emulation maintains no counts).
    pub fn store_ptr_region(&mut self, heap: &mut SimHeap, loc: Addr, v: Addr) {
        heap.store_addr(loc, v);
    }

    /// Plain store (emulation maintains no counts).
    pub fn store_ptr_global(&mut self, heap: &mut SimHeap, loc: Addr, v: Addr) {
        heap.store_addr(loc, v);
    }

    /// Interface parity with `RegionRuntime::push_frame`.
    pub fn push_frame(&mut self, n_slots: u32) {
        self.frames.push(vec![Addr::NULL; n_slots as usize]);
    }

    /// Interface parity with `RegionRuntime::pop_frame`.
    pub fn pop_frame(&mut self) {
        self.frames.pop().expect("pop_frame with no live frame");
    }

    /// Interface parity with `RegionRuntime::set_local`.
    pub fn set_local(&mut self, slot: u32, v: Addr) {
        let f = self.frames.last_mut().expect("no live frame");
        f[slot as usize] = v;
    }

    /// Interface parity with `RegionRuntime::get_local`.
    pub fn get_local(&mut self, slot: u32) -> Addr {
        let f = self.frames.last().expect("no live frame");
        f[slot as usize]
    }

    /// OS pages of the underlying allocator.
    pub fn os_pages(&self) -> u64 {
        self.malloc.os_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LeaMalloc, SunMalloc};

    #[test]
    fn objects_are_freed_on_delete() {
        let mut heap = SimHeap::new();
        let mut er = EmulatedRegions::new(SunMalloc::new());
        let r = er.new_region();
        for i in 1..50u32 {
            let a = er.rstralloc(&mut heap, r, i * 4);
            heap.store_u32(a, i);
        }
        assert!(er.inner().stats().live_bytes > 0);
        er.delete_region(&mut heap, r);
        assert_eq!(er.inner().stats().live_bytes, 0, "every object freed");
        assert_eq!(er.stats().live_bytes, 0);
    }

    #[test]
    fn overhead_is_one_word_per_object() {
        let mut heap = SimHeap::new();
        let mut er = EmulatedRegions::new(LeaMalloc::new());
        let r = er.new_region();
        for _ in 0..10 {
            er.rstralloc(&mut heap, r, 20);
        }
        // Region-level stats: 10×20; malloc-level: 10×24.
        assert_eq!(er.stats().total_bytes, 200);
        assert_eq!(er.inner().stats().total_bytes, 240);
    }

    #[test]
    fn ralloc_clears_memory() {
        let mut heap = SimHeap::new();
        let mut er = EmulatedRegions::new(SunMalloc::new());
        let d = er.register_type(TypeDescriptor::new("list", 8, vec![4]));
        let r = er.new_region();
        // Dirty the heap first.
        let junk = er.rstralloc(&mut heap, r, 64);
        heap.fill(junk, 64, 0xFF);
        er.delete_region(&mut heap, r);
        let r2 = er.new_region();
        let a = er.ralloc(&mut heap, r2, d);
        assert_eq!(heap.load_u32(a), 0);
        assert_eq!(heap.load_u32(a + 4), 0);
    }

    #[test]
    fn region_stats_match_region_runtime_shape() {
        let mut heap = SimHeap::new();
        let mut er = EmulatedRegions::new(SunMalloc::new());
        let r1 = er.new_region();
        let r2 = er.new_region();
        er.rstralloc(&mut heap, r1, 100);
        er.rstralloc(&mut heap, r2, 60);
        assert_eq!(er.stats().total_regions, 2);
        assert_eq!(er.stats().max_live_regions, 2);
        assert_eq!(er.stats().max_region_bytes, 100);
        er.delete_region(&mut heap, r1);
        assert_eq!(er.stats().live_regions, 1);
    }

    #[test]
    fn locals_shadow_works() {
        let mut er = EmulatedRegions::new(SunMalloc::new());
        er.push_frame(2);
        er.set_local(1, Addr::new(0x5000));
        assert_eq!(er.get_local(1), Addr::new(0x5000));
        assert_eq!(er.get_local(0), Addr::NULL);
        er.pop_frame();
    }

    #[test]
    #[should_panic(expected = "use of deleted region")]
    fn alloc_after_delete_panics() {
        let mut heap = SimHeap::new();
        let mut er = EmulatedRegions::new(SunMalloc::new());
        let r = er.new_region();
        er.delete_region(&mut heap, r);
        er.rstralloc(&mut heap, r, 8);
    }
}
