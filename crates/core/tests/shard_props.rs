//! Property tests for region runtimes on a sharded address space
//! (DESIGN §15).
//!
//! Two families:
//!
//! 1. **W=1 parity.** A random region-op program driven against a
//!    runtime on a private `SimHeap` and against a runtime on the single
//!    shard of a one-worker [`SharedSpace`] must be observationally
//!    identical: every returned address, every loaded value, every
//!    delete verdict, the full stats/costs/counter books, and a clean
//!    sanitize on both sides. On divergence the op sequence is shrunk
//!    with the same greedy delta-debugging pass as `par_props` (the
//!    workspace `proptest` shim does not shrink) and the minimal
//!    diverging program is reported with its seed.
//!
//! 2. **Merge determinism.** W runtimes on one shared space, each with a
//!    per-worker stamping sink, run fixed per-worker programs under
//!    different seeded interleavings — including real OS threads — and the
//!    canonical (worker, seq) merge of their access streams must be
//!    bit-identical across schedules.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use region_core::{RegionConfig, RegionId, RegionRuntime, TypeDescriptor};
use simheap::{Addr, HeapBackend, HeapShard, SharedEventLog, SharedSpace, SpaceConfig};

/// One step of a random region program. Indices are resolved modulo the
/// live tables at execution time, so any sequence is executable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    NewRegion,
    Ralloc { region: usize },
    ArrayAlloc { region: usize, n: u32 },
    StrAlloc { region: usize, size: u32 },
    /// Raw word store into a *data* field (never the pointer field —
    /// those go through barriers, which is exactly what the sanitizer
    /// checks).
    StoreData { obj: usize, field: u8, value: u32 },
    LoadData { obj: usize, field: u8 },
    /// Barriered store of one object's address into another's pointer
    /// field (the paper's unknown-barrier dispatch).
    Link { from: usize, to: usize },
    /// Clear a pointer field through the barrier.
    Unlink { obj: usize },
    /// Barriered store into global storage.
    GlobalSet { slot: usize, to: usize },
    GlobalClear { slot: usize },
    PushFrame { slots: u32 },
    PopFrame,
    SetLocal { slot: u32, obj: usize },
    Delete { region: usize },
    RegionOf { obj: usize },
}

/// The observation stream a program produces: everything a caller can
/// see. Two backends agree iff their streams agree.
type Obs = Vec<u64>;

const NODE_FIELDS: [u32; 3] = [0, 4, 12]; // data words of the 16-byte node (ptr at +8)

fn drive<H: HeapBackend>(mut rt: RegionRuntime<H>, ops: &[Op]) -> Obs {
    let mut obs = Obs::new();
    let node = rt.register_type(TypeDescriptor::new("node", 16, vec![8]));
    let mut regions: Vec<RegionId> = Vec::new();
    let mut objs: Vec<(Addr, RegionId)> = Vec::new(); // node objects only
    let mut frames: Vec<u32> = Vec::new();
    let globals = rt.alloc_globals(16 * 4);
    for &op in ops {
        match op {
            Op::NewRegion => {
                let r = rt.new_region();
                regions.push(r);
                obs.push(u64::from(r.index()));
            }
            Op::Ralloc { region } => {
                if regions.is_empty() {
                    continue;
                }
                let r = regions[region % regions.len()];
                match rt.try_ralloc(r, node) {
                    Ok(a) => {
                        objs.push((a, r));
                        obs.push(u64::from(a.raw()));
                    }
                    Err(e) => obs.push(0x8000_0000_0000_0000 | e.to_string().len() as u64),
                }
            }
            Op::ArrayAlloc { region, n } => {
                if regions.is_empty() {
                    continue;
                }
                let r = regions[region % regions.len()];
                match rt.try_rarrayalloc(r, 1 + n % 12, node) {
                    Ok(a) => obs.push(u64::from(a.raw())),
                    Err(e) => obs.push(0x8000_0000_0000_0000 | e.to_string().len() as u64),
                }
            }
            Op::StrAlloc { region, size } => {
                if regions.is_empty() {
                    continue;
                }
                let r = regions[region % regions.len()];
                match rt.try_rstralloc(r, 4 + size % 600) {
                    Ok(a) => obs.push(u64::from(a.raw())),
                    Err(e) => obs.push(0x8000_0000_0000_0000 | e.to_string().len() as u64),
                }
            }
            Op::StoreData { obj, field, value } => {
                if objs.is_empty() {
                    continue;
                }
                let (a, _) = objs[obj % objs.len()];
                let off = NODE_FIELDS[field as usize % NODE_FIELDS.len()];
                rt.heap_mut().store_u32(a.offset(off), value);
            }
            Op::LoadData { obj, field } => {
                if objs.is_empty() {
                    continue;
                }
                let (a, _) = objs[obj % objs.len()];
                let off = NODE_FIELDS[field as usize % NODE_FIELDS.len()];
                obs.push(u64::from(rt.heap_mut().load_u32(a.offset(off))));
            }
            Op::Link { from, to } => {
                if objs.is_empty() {
                    continue;
                }
                let (loc, _) = objs[from % objs.len()];
                let (val, _) = objs[to % objs.len()];
                rt.store_ptr_unknown(loc.offset(8), val);
            }
            Op::Unlink { obj } => {
                if objs.is_empty() {
                    continue;
                }
                let (loc, _) = objs[obj % objs.len()];
                rt.store_ptr_unknown(loc.offset(8), Addr::NULL);
            }
            Op::GlobalSet { slot, to } => {
                if objs.is_empty() {
                    continue;
                }
                let (val, _) = objs[to % objs.len()];
                rt.store_ptr_global(globals.offset((slot % 16) as u32 * 4), val);
            }
            Op::GlobalClear { slot } => {
                rt.store_ptr_global(globals.offset((slot % 16) as u32 * 4), Addr::NULL);
            }
            Op::PushFrame { slots } => {
                let n = 1 + slots % 4;
                rt.push_frame(n);
                frames.push(n);
            }
            Op::PopFrame => {
                if frames.pop().is_some() {
                    rt.pop_frame();
                }
            }
            Op::SetLocal { slot, obj } => {
                let Some(&n) = frames.last() else { continue };
                let val = if objs.is_empty() {
                    Addr::NULL
                } else {
                    objs[obj % objs.len()].0
                };
                rt.set_local(slot % n, val);
            }
            Op::Delete { region } => {
                if regions.is_empty() {
                    continue;
                }
                let r = regions[region % regions.len()];
                let deleted = match rt.try_delete_region(r) {
                    Ok(()) => true,
                    Err(e) => {
                        obs.push(0x4000_0000_0000_0000 | e.to_string().len() as u64);
                        false
                    }
                };
                obs.push(u64::from(deleted));
                if deleted {
                    // Dangling stores into pages a future region may own
                    // would corrupt object headers; drop the objects.
                    objs.retain(|&(_, owner)| owner != r);
                }
            }
            Op::RegionOf { obj } => {
                if objs.is_empty() {
                    continue;
                }
                let (a, _) = objs[obj % objs.len()];
                obs.push(rt.region_of(a).map_or(u64::MAX, |r| u64::from(r.index())));
            }
        }
    }
    // Close with the full books: stats, costs, counters, and the
    // sanitizer verdict — parity must cover the accounting, not just the
    // values.
    let s = rt.stats();
    obs.extend([
        s.total_allocs,
        s.total_bytes,
        s.live_bytes,
        s.max_live_bytes,
        s.total_regions,
        s.live_regions,
        s.max_live_regions,
        s.max_region_bytes,
    ]);
    let c = rt.costs();
    obs.extend([
        c.barriers_global,
        c.barriers_region,
        c.barriers_unknown,
        c.barriers_elided,
        c.barrier_instrs,
        c.frames_scanned,
        c.slots_scanned,
        c.scan_instrs,
        c.cleanup_objects,
        c.cleanup_ptrs,
        c.cleanup_pages,
        c.cleanup_instrs,
        c.deletes,
        c.deletes_failed,
    ]);
    obs.push(rt.heap().load_count());
    obs.push(rt.heap().store_count());
    obs.push(u64::from(rt.heap().brk().raw()));
    obs.push(u64::from(rt.sanitize().is_clean()));
    obs.push(rt.check_page_map_mirror());
    obs
}

fn on_simheap(ops: &[Op]) -> Obs {
    drive(RegionRuntime::with_config(RegionConfig::default()), ops)
}

fn on_single_shard(ops: &[Op]) -> Obs {
    let space = SharedSpace::new(SpaceConfig {
        max_bytes: RegionConfig::default().heap.max_bytes,
        workers: 1,
    });
    drive(RegionRuntime::with_config_on(RegionConfig::default(), space.shard(0)), ops)
}

fn gen_ops(rng: &mut StdRng, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let obj = rng.gen_range(0..64);
            let region = rng.gen_range(0..8);
            match rng.gen_range(0..16) {
                0 => Op::NewRegion,
                1 | 2 | 3 => Op::Ralloc { region },
                4 => Op::ArrayAlloc { region, n: rng.gen_range(0..12) },
                5 => Op::StrAlloc { region, size: rng.gen_range(0..600) },
                6 => Op::StoreData { obj, field: rng.gen(), value: rng.gen() },
                7 => Op::LoadData { obj, field: rng.gen() },
                8 => Op::Link { from: obj, to: rng.gen_range(0..64) },
                9 => Op::Unlink { obj },
                10 => Op::GlobalSet { slot: rng.gen_range(0..16), to: obj },
                11 => Op::GlobalClear { slot: rng.gen_range(0..16) },
                12 => Op::PushFrame { slots: rng.gen_range(0..4) },
                13 => Op::PopFrame,
                14 => Op::SetLocal { slot: rng.gen_range(0..4), obj },
                _ => {
                    if rng.gen_bool(0.5) {
                        Op::Delete { region }
                    } else {
                        Op::RegionOf { obj }
                    }
                }
            }
        })
        .collect()
}

/// Greedy delta-debugging, as in `par_props`: remove chunks while the
/// predicate keeps failing, halving the chunk when stuck.
fn shrink<F: Fn(&[Op]) -> bool>(ops: &[Op], fails: F) -> Vec<Op> {
    let mut cur = ops.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut cand = cur.clone();
            cand.drain(i..end);
            if fails(&cand) {
                cur = cand;
                progressed = true;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 && !progressed {
            return cur;
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[test]
fn single_shard_runtime_matches_simheap_runtime() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x5AAD ^ seed);
        let ops = gen_ops(&mut rng, 220);
        if on_simheap(&ops) != on_single_shard(&ops) {
            let minimal = shrink(&ops, |cand| on_simheap(cand) != on_single_shard(cand));
            panic!(
                "seed {seed}: shard W=1 diverged from SimHeap; minimal {}-op program:\n{:#?}\n\
                 simheap obs: {:?}\nshard obs:   {:?}",
                minimal.len(),
                minimal,
                on_simheap(&minimal),
                on_single_shard(&minimal),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Merge determinism across schedules
// ---------------------------------------------------------------------

/// The fixed program worker `w` runs, one step per call; every access it
/// performs depends only on (w, step), so the worker's trace stream is
/// schedule-independent by construction — which is what makes the
/// canonical merge deterministic.
struct WorkerScript {
    rt: RegionRuntime<HeapShard>,
    node: region_core::DescId,
    region: RegionId,
    objs: Vec<Addr>,
}

impl WorkerScript {
    fn new(space: &std::sync::Arc<SharedSpace>, w: u32) -> WorkerScript {
        let mut rt = RegionRuntime::with_config_on(RegionConfig::default(), space.shard(w));
        let node = rt.register_type(TypeDescriptor::new("node", 16, vec![8]));
        let region = rt.new_region();
        WorkerScript { rt, node, region, objs: Vec::new() }
    }

    fn step(&mut self, w: u32, i: u32) {
        match i % 5 {
            0 | 1 => {
                let a = self.rt.ralloc(self.region, self.node);
                self.objs.push(a);
            }
            2 => {
                let a = self.objs[(i as usize / 5) % self.objs.len()];
                self.rt.heap_mut().store_u32(a, w * 1_000_000 + i);
            }
            3 => {
                let a = self.objs[(i as usize / 5) % self.objs.len()];
                let _ = self.rt.heap_mut().load_u32(a.offset(4));
            }
            _ => {
                let from = self.objs[(i as usize / 5) % self.objs.len()];
                let to = self.objs[(i as usize / 3) % self.objs.len()];
                self.rt.store_ptr_unknown(from.offset(8), to);
            }
        }
    }
}

const MERGE_STEPS: u32 = 120;

/// Runs W workers to completion under a seeded scripted interleaving and
/// returns the canonical merge digest plus per-worker counters.
fn merged_run(workers: u32, order_seed: u64) -> (u64, Vec<(u64, u64)>) {
    let space = SharedSpace::new(SpaceConfig { max_bytes: 64 * 1024 * 1024, workers });
    let log = SharedEventLog::new();
    let mut scripts: Vec<WorkerScript> =
        (0..workers).map(|w| WorkerScript::new(&space, w)).collect();
    for (w, s) in scripts.iter_mut().enumerate() {
        s.rt.heap_mut().attach_sink(Box::new(log.sink(w as u32)));
    }
    let mut next = vec![0u32; workers as usize];
    let mut rng = StdRng::seed_from_u64(order_seed);
    for _ in 0..workers * MERGE_STEPS {
        let mut w = rng.gen_range(0..workers);
        while next[w as usize] == MERGE_STEPS {
            w = (w + 1) % workers;
        }
        scripts[w as usize].step(w, next[w as usize]);
        next[w as usize] += 1;
    }
    let counters = scripts
        .iter_mut()
        .map(|s| {
            s.rt.heap_mut().detach_sink();
            assert!(s.rt.sanitize().is_clean(), "worker runtime failed sanitize");
            (s.rt.heap().load_count(), s.rt.heap().store_count())
        })
        .collect();
    (log.digest(), counters)
}

/// The same W workers, each on its own OS thread with no scripted order
/// at all — true wall-clock nondeterminism.
fn threaded_run(workers: u32) -> (u64, Vec<(u64, u64)>) {
    let space = SharedSpace::new(SpaceConfig { max_bytes: 64 * 1024 * 1024, workers });
    let log = SharedEventLog::new();
    let mut counters = vec![(0u64, 0u64); workers as usize];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let space = std::sync::Arc::clone(&space);
                let log = log.clone();
                scope.spawn(move || {
                    let mut s = WorkerScript::new(&space, w);
                    s.rt.heap_mut().attach_sink(Box::new(log.sink(w)));
                    for i in 0..MERGE_STEPS {
                        s.step(w, i);
                    }
                    s.rt.heap_mut().detach_sink();
                    assert!(s.rt.sanitize().is_clean(), "worker runtime failed sanitize");
                    (s.rt.heap().load_count(), s.rt.heap().store_count())
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            counters[w] = h.join().expect("worker thread panicked");
        }
    });
    (log.digest(), counters)
}

#[test]
fn canonical_merge_is_bit_identical_across_schedules() {
    for workers in 1..=4u32 {
        let (d1, c1) = merged_run(workers, 0xA11CE);
        let (d2, c2) = merged_run(workers, 0xB0B0_CAFE);
        assert_eq!(d1, d2, "workers={workers}: digests differ between interleaving seeds");
        assert_eq!(c1, c2, "workers={workers}: per-worker counters differ between seeds");
        let (d3, c3) = threaded_run(workers);
        assert_eq!(d1, d3, "workers={workers}: threaded digest differs from scripted");
        assert_eq!(c1, c3, "workers={workers}: threaded counters differ from scripted");
    }
}

#[test]
fn shrinker_reports_minimal_diverging_programs() {
    // Sanity-check the shrinker against a synthetic predicate: "contains
    // a Delete and a NewRegion" — it must strip everything else.
    let mut rng = StdRng::seed_from_u64(7);
    let mut ops = gen_ops(&mut rng, 60);
    ops.retain(|o| !matches!(o, Op::Delete { .. } | Op::NewRegion));
    ops.insert(20.min(ops.len()), Op::NewRegion);
    ops.insert(40.min(ops.len()), Op::Delete { region: 0 });
    let fails = |cand: &[Op]| {
        cand.iter().any(|o| matches!(o, Op::Delete { .. }))
            && cand.iter().any(|o| matches!(o, Op::NewRegion))
    };
    let minimal = shrink(&ops, fails);
    assert_eq!(minimal.len(), 2);
    assert!(matches!(minimal[0], Op::NewRegion));
    assert!(matches!(minimal[1], Op::Delete { .. }));
}
