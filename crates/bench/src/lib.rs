//! The table/figure regeneration harness.
//!
//! One binary per artifact of the paper's evaluation:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — porting effort (diff between program variants) |
//! | `table2_3` | Tables 2 & 3 — allocation behaviour with regions / malloc |
//! | `fig8` | Figure 8 — memory requested from the OS vs by the program |
//! | `fig9` | Figure 9 — execution time, base vs memory management |
//! | `fig10` | Figure 10 — cycles lost to read/write stalls (cache sim) |
//! | `fig11` | Figure 11 — cost-of-safety breakdown |
//!
//! Set `SCALE=<n>` to grow the workloads (default 2); every binary
//! prints paper-style rows plus the measured shape next to the paper's
//! claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod golden;
pub mod results;
pub mod runner;
pub mod server;
pub mod supervise;

pub use diff::changed_lines;
pub use runner::{
    bench_workers, host_cores, measure_malloc, measure_region, measure_region_slow, results_json,
    results_json_full, run_matrix, run_matrix_checked, run_matrix_with, scale_from_env,
    write_results_json, write_results_json_full, Job, LatencyColumn, Measurement,
    RESULTS_SCHEMA_VERSION,
};
pub use server::{
    install_service_panic_filter, run_service, Ledger, ServiceConfig, ServiceReport,
    SERVICE_PANIC_MARKER,
};
pub use supervise::{supervise, JobOutcome, SuperviseConfig, WorkerReport};
