//! Admission control under memory pressure: footprint watermarks for a
//! long-lived region service (DESIGN §16).
//!
//! A region-per-request service cannot let its simulated OS footprint
//! grow without bound: the paper's runtime recycles freed pages inside
//! the allocator but never returns them to the OS, so the only way to
//! bound the footprint is to stop *admitting* work before the heap grows
//! past it. This module implements the classic two-watermark policy:
//!
//! * below the **soft** watermark every request is admitted unchanged
//!   ([`Admission::Accept`]);
//! * between soft and hard the service **degrades** — requests are still
//!   served, but with a shrunk allocation plan
//!   ([`Admission::Degrade`]);
//! * at or above the **hard** watermark requests are **shed** with the
//!   typed [`crate::RegionError::Overloaded`] — never a panic
//!   ([`Admission::Shed`]).
//!
//! The decision is a *pure function* of the observed footprint and the
//! configured [`Watermarks`]: no clocks, no randomness, no host state.
//! A service that feeds it a deterministic footprint (simulated
//! OS-footprint pages, not host RSS) therefore makes bit-identical
//! admission decisions on every same-seed run, which is what lets the
//! chaos harness assert ledger conservation across reruns and thread
//! counts.

use std::fmt;

/// Soft and hard footprint watermarks, in simulated OS pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Watermarks {
    /// Footprint at which the service starts degrading request plans.
    pub soft_pages: u64,
    /// Footprint at which the service starts shedding requests.
    pub hard_pages: u64,
}

impl Watermarks {
    /// Watermarks with `soft <= hard` enforced.
    ///
    /// # Panics
    ///
    /// Panics if `soft_pages > hard_pages` — an inverted pair would
    /// shed before degrading, which is a configuration bug, not a load
    /// condition.
    pub fn new(soft_pages: u64, hard_pages: u64) -> Watermarks {
        assert!(
            soft_pages <= hard_pages,
            "inverted watermarks: soft {soft_pages} > hard {hard_pages}"
        );
        Watermarks { soft_pages, hard_pages }
    }

    /// Watermarks high enough that no realistic footprint ever trips
    /// them — admission always accepts. Used by tests that want the
    /// service logic without backpressure.
    pub fn unbounded() -> Watermarks {
        Watermarks { soft_pages: u64::MAX, hard_pages: u64::MAX }
    }
}

impl fmt::Display for Watermarks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "soft {} / hard {} pages", self.soft_pages, self.hard_pages)
    }
}

/// The three-way admission verdict for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Footprint below the soft watermark: serve the request unchanged.
    Accept,
    /// Footprint in `[soft, hard)`: serve the request with a degraded
    /// (shrunk) allocation plan.
    Degrade,
    /// Footprint at or above the hard watermark: refuse the request
    /// with [`crate::RegionError::Overloaded`].
    Shed,
}

impl Admission {
    /// The pure admission decision: compares a footprint against the
    /// watermarks. This is the whole policy — everything else in
    /// [`AdmissionController`] is bookkeeping.
    pub fn decide(footprint_pages: u64, marks: Watermarks) -> Admission {
        if footprint_pages >= marks.hard_pages {
            Admission::Shed
        } else if footprint_pages >= marks.soft_pages {
            Admission::Degrade
        } else {
            Admission::Accept
        }
    }

    /// A small stable code for digest folding (chaos harnesses record
    /// admission decisions as observable history).
    pub fn code(self) -> u64 {
        match self {
            Admission::Accept => 0,
            Admission::Degrade => 1,
            Admission::Shed => 2,
        }
    }
}

/// Stateful wrapper over [`Admission::decide`]: tracks the footprint
/// high-water mark and counts decisions, so a service can report
/// `footprint high-water` and `accepted/degraded/shed` without keeping
/// its own books.
///
/// The counters are pure functions of the sequence of footprints fed to
/// [`AdmissionController::admit`] — the controller adds no state of its
/// own to the decision.
#[derive(Clone, Debug)]
pub struct AdmissionController {
    marks: Watermarks,
    high_water_pages: u64,
    accepted: u64,
    degraded: u64,
    shed: u64,
}

impl AdmissionController {
    /// A controller with zeroed books.
    pub fn new(marks: Watermarks) -> AdmissionController {
        AdmissionController { marks, high_water_pages: 0, accepted: 0, degraded: 0, shed: 0 }
    }

    /// Decides one request at the given footprint, updating the
    /// high-water mark and the decision counters.
    pub fn admit(&mut self, footprint_pages: u64) -> Admission {
        self.high_water_pages = self.high_water_pages.max(footprint_pages);
        let a = Admission::decide(footprint_pages, self.marks);
        match a {
            Admission::Accept => self.accepted += 1,
            Admission::Degrade => self.degraded += 1,
            Admission::Shed => self.shed += 1,
        }
        a
    }

    /// The configured watermarks.
    pub fn marks(&self) -> Watermarks {
        self.marks
    }

    /// Largest footprint ever fed to [`AdmissionController::admit`].
    pub fn high_water_pages(&self) -> u64 {
        self.high_water_pages
    }

    /// Requests admitted unchanged.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Requests admitted with a degraded plan.
    pub fn degraded(&self) -> u64 {
        self.degraded
    }

    /// Requests refused with [`crate::RegionError::Overloaded`].
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_bands_are_half_open() {
        let m = Watermarks::new(10, 20);
        assert_eq!(Admission::decide(0, m), Admission::Accept);
        assert_eq!(Admission::decide(9, m), Admission::Accept);
        assert_eq!(Admission::decide(10, m), Admission::Degrade);
        assert_eq!(Admission::decide(19, m), Admission::Degrade);
        assert_eq!(Admission::decide(20, m), Admission::Shed);
        assert_eq!(Admission::decide(u64::MAX, m), Admission::Shed);
    }

    #[test]
    fn decision_is_monotone_in_footprint() {
        // More pressure can only move the verdict toward shedding.
        let m = Watermarks::new(7, 31);
        let mut last = 0;
        for fp in 0..64 {
            let code = Admission::decide(fp, m).code();
            assert!(code >= last, "verdict regressed at footprint {fp}");
            last = code;
        }
    }

    #[test]
    fn equal_watermarks_skip_the_degrade_band() {
        let m = Watermarks::new(5, 5);
        assert_eq!(Admission::decide(4, m), Admission::Accept);
        assert_eq!(Admission::decide(5, m), Admission::Shed);
    }

    #[test]
    #[should_panic(expected = "inverted watermarks")]
    fn inverted_watermarks_are_rejected() {
        let _ = Watermarks::new(9, 3);
    }

    #[test]
    fn unbounded_never_sheds() {
        let m = Watermarks::unbounded();
        assert_eq!(Admission::decide(u64::MAX - 1, m), Admission::Accept);
    }

    #[test]
    fn controller_books_match_a_replay() {
        // Same footprint sequence twice: identical decisions and books —
        // the purity the service's determinism proof leans on.
        let run = |fps: &[u64]| {
            let mut c = AdmissionController::new(Watermarks::new(3, 6));
            let decisions: Vec<Admission> = fps.iter().map(|&f| c.admit(f)).collect();
            (decisions, c.accepted(), c.degraded(), c.shed(), c.high_water_pages())
        };
        let fps = [0, 2, 3, 5, 6, 9, 1, 6, 2];
        assert_eq!(run(&fps), run(&fps));
        let (decisions, accepted, degraded, shed, high) = run(&fps);
        assert_eq!(accepted + degraded + shed, fps.len() as u64);
        assert_eq!(accepted, 4);
        assert_eq!(degraded, 2);
        assert_eq!(shed, 3);
        assert_eq!(high, 9);
        assert_eq!(decisions[4], Admission::Shed);
    }

    #[test]
    fn shed_count_is_monotone_in_tighter_watermarks() {
        // Lowering the hard watermark can only shed more of the same
        // footprint sequence — the property the service's load-shedding
        // tests rely on.
        let fps: Vec<u64> = (0..100).map(|i| (i * 7) % 41).collect();
        let shed_at = |hard: u64| {
            let mut c = AdmissionController::new(Watermarks::new(hard.min(5), hard));
            for &f in &fps {
                c.admit(f);
            }
            c.shed()
        };
        let mut last = shed_at(60);
        for hard in [40, 30, 20, 10, 5] {
            let s = shed_at(hard);
            assert!(s >= last, "tightening hard to {hard} shed fewer requests");
            last = s;
        }
    }
}
