//! `mudlle` — a byte-code compiler for a scheme-like language (§5.1).
//!
//! The original mudlle already used unsafe regions; the paper's port
//! gives it "one region \[that\] holds the abstract syntax tree of the
//! file being compiled and one region ... created to hold the data
//! structures needed to compile each function", and notes that stale
//! global pointers had to be cleared before regions would delete.
//!
//! This reproduction parses a generated file of `define` forms into
//! in-heap cons cells, compiles each function to stack bytecode (emitted
//! into chained chunks, then flattened into an output buffer), and
//! repeats for several iterations — the paper compiles "the same
//! 500-line file 100 times".

use simheap::{Addr, SimHeap};

use crate::env::{MallocEnv, RegionEnv};
use crate::util::{rng, Checksum};
use rand::Rng;

// Cell layout: [tag][a][b][ival], 16 bytes. a/b are always pointers (or
// null), so one cleanup descriptor covers every tag.
const TAG_PAIR: u32 = 0; // a = car, b = cdr
const TAG_INT: u32 = 1; // ival = value
const TAG_SYM: u32 = 2; // a = string buffer, ival = length
const C_TAG: u32 = 0;
const C_A: u32 = 4;
const C_B: u32 = 8;
const C_IVAL: u32 = 12;
const CELL: u32 = 16;

// Bytecode chunk: [next][used][256 data bytes].
const CH_NEXT: u32 = 0;
const CH_USED: u32 = 4;
const CH_DATA: u32 = 8;
const CH_CAP: u32 = 256;
const CHUNK: u32 = CH_DATA + CH_CAP;

// Opcodes.
const OP_PUSHI: u8 = 1;
const OP_LOAD: u8 = 2;
const OP_ADD: u8 = 3;
const OP_SUB: u8 = 4;
const OP_MUL: u8 = 5;
const OP_LT: u8 = 6;
const OP_JZ: u8 = 7;
const OP_JMP: u8 = 8;
const OP_RET: u8 = 9;

/// Generates the source file: `30 × scale` function definitions over
/// two parameters, with arithmetic, comparisons and `if`.
pub fn input(scale: u32) -> String {
    let mut r = rng(0x0d11e);
    fn expr(r: &mut rand::rngs::StdRng, depth: u32, out: &mut String) {
        if depth == 0 || r.gen_ratio(1, 4) {
            if r.gen_bool(0.5) {
                out.push_str(if r.gen_bool(0.5) { "a" } else { "b" });
            } else {
                out.push_str(&r.gen_range(0..100i32).to_string());
            }
            return;
        }
        let op = ["+", "-", "*", "<", "if"][r.gen_range(0..5)];
        out.push('(');
        out.push_str(op);
        let arity = if op == "if" { 3 } else { 2 };
        for _ in 0..arity {
            out.push(' ');
            expr(r, depth - 1, out);
        }
        out.push(')');
    }
    let mut src = String::new();
    for i in 0..30 * scale {
        src.push_str(&format!("(define (f{i} a b) "));
        expr(&mut r, 4, &mut src);
        src.push_str(")\n");
    }
    src
}

/// A host-side cursor over the in-heap source text.
struct Cursor {
    base: Addr,
    len: u32,
    pos: u32,
}

impl Cursor {
    fn peek(&self, heap: &mut SimHeap) -> Option<u8> {
        if self.pos < self.len {
            Some(heap.load_u8(self.base + self.pos))
        } else {
            None
        }
    }

    fn skip_ws(&mut self, heap: &mut SimHeap) {
        while let Some(c) = self.peek(heap) {
            if c == b' ' || c == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

/// The abstract allocation interface both variants hand to the shared
/// parser/compiler walkers would defeat the purpose of measuring the
/// porting diff — instead each variant carries its own allocation code
/// and shares only the pure helpers below.
fn is_atom_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'+' || c == b'-' || c == b'*' || c == b'<'
}

/// Reads a cell field.
fn cf(heap: &mut SimHeap, cell: Addr, off: u32) -> u32 {
    heap.load_u32(cell + off)
}

/// Compares an in-heap symbol cell's name with a byte string.
fn sym_is(heap: &mut SimHeap, cell: Addr, name: &[u8]) -> bool {
    if cf(heap, cell, C_TAG) != TAG_SYM || cf(heap, cell, C_IVAL) != name.len() as u32 {
        return false;
    }
    let s = Addr::new(cf(heap, cell, C_A));
    name.iter().enumerate().all(|(i, &b)| heap.load_u8(s + i as u32) == b)
}

/// Appends `flat` bytecode bytes and folds them into the checksum.
fn account_code(heap: &mut SimHeap, flat: Addr, len: u32, sum: &mut Checksum) {
    let mut h = 0u64;
    for i in 0..len {
        h = h.wrapping_mul(131).wrapping_add(u64::from(heap.load_u8(flat + i)));
    }
    sum.add(u64::from(len));
    sum.add(h);
}

// --- begin malloc variant ---

/// mudlle with malloc/free: cons cells and chunks are malloc'd; the AST
/// is freed by a recursive walk after each compile iteration, compile
/// temporaries after each function.
pub fn run_malloc(env: &mut MallocEnv, scale: u32) -> u64 {
    let src = input(scale);
    let area = env.heap().sbrk(src.len() as u32);
    env.heap().load_bytes_untraced(area, src.as_bytes());
    let mut sum = Checksum::new();
    // Roots: 0 = file AST, 1..=40 protect stack for the parser/compiler.
    env.push_roots(48);
    let iterations = 2 * scale;
    for _ in 0..iterations {
        let mut cur = Cursor { base: area, len: src.len() as u32, pos: 0 };
        let ast = parse_file_m(env, &mut cur);
        env.set_root(0, ast);
        // Compile every (define ...) form.
        let mut form = ast;
        while !form.is_null() {
            let def = Addr::new(cf(env.heap(), form, C_A));
            compile_define_m(env, def, &mut sum);
            form = Addr::new(cf(env.heap(), form, C_B));
        }
        free_cells_m(env, ast);
        env.set_root(0, Addr::NULL);
    }
    env.pop_roots();
    sum.add(u64::from(iterations));
    sum.value()
}

/// Parses the whole file into a list of forms. Under the collector,
/// every malloc may trigger a collection, so partially-built structures
/// are kept reachable: each nesting level roots its list head (slot
/// `base`) and the element being linked (slot `base+1`); children use
/// `base+2`. Everything linked into the head is reachable through it.
fn parse_file_m(env: &mut MallocEnv, cur: &mut Cursor) -> Addr {
    parse_list_m(env, cur, 1, None)
}

/// Parses expressions until `terminator` (`)` for inner lists, EOF for
/// the file), building the cons list left to right.
fn parse_list_m(env: &mut MallocEnv, cur: &mut Cursor, slot: u32, terminator: Option<u8>) -> Addr {
    let mut head = Addr::NULL;
    let mut tail = Addr::NULL;
    loop {
        cur.skip_ws(env.heap());
        match (cur.peek(env.heap()), terminator) {
            (None, None) => break,
            (None, Some(_)) => panic!("unexpected eof in list"),
            (Some(c), Some(t)) if c == t => {
                cur.pos += 1;
                break;
            }
            _ => {}
        }
        let e = parse_expr_m(env, cur, slot + 2);
        env.set_root(slot + 1, e); // keep `e` alive across the cons malloc
        let cell = alloc_cell_m(env, TAG_PAIR, e, Addr::NULL, 0);
        if head.is_null() {
            head = cell;
            env.set_root(slot, head);
        } else {
            env.heap().store_addr(tail + C_B, cell);
        }
        tail = cell;
    }
    head
}

fn parse_expr_m(env: &mut MallocEnv, cur: &mut Cursor, slot: u32) -> Addr {
    cur.skip_ws(env.heap());
    match cur.peek(env.heap()).expect("unexpected eof") {
        b'(' => {
            cur.pos += 1;
            parse_list_m(env, cur, slot, Some(b')'))
        }
        c if c.is_ascii_digit() => {
            let mut v: i64 = 0;
            while let Some(c) = cur.peek(env.heap()) {
                if !c.is_ascii_digit() {
                    break;
                }
                v = v * 10 + i64::from(c - b'0');
                cur.pos += 1;
            }
            alloc_cell_m(env, TAG_INT, Addr::NULL, Addr::NULL, v as u32)
        }
        _ => {
            let start = cur.pos;
            while let Some(c) = cur.peek(env.heap()) {
                if !is_atom_char(c) {
                    break;
                }
                cur.pos += 1;
            }
            let len = cur.pos - start;
            let buf = env.malloc(len);
            env.set_root(slot, buf); // keep the name alive across the cell malloc
            env.heap().copy(buf, cur.base + start, len);
            alloc_cell_m(env, TAG_SYM, buf, Addr::NULL, len)
        }
    }
}

fn alloc_cell_m(env: &mut MallocEnv, tag: u32, a: Addr, b: Addr, ival: u32) -> Addr {
    let c = env.malloc(CELL);
    env.heap().store_u32(c + C_TAG, tag);
    env.heap().store_addr(c + C_A, a);
    env.heap().store_addr(c + C_B, b);
    env.heap().store_u32(c + C_IVAL, ival);
    c
}

/// Frees an AST recursively — the walk that regions make unnecessary.
fn free_cells_m(env: &mut MallocEnv, cell: Addr) {
    if cell.is_null() {
        return;
    }
    let tag = cf(env.heap(), cell, C_TAG);
    let a = Addr::new(cf(env.heap(), cell, C_A));
    let b = Addr::new(cf(env.heap(), cell, C_B));
    if tag == TAG_PAIR {
        free_cells_m(env, a);
        free_cells_m(env, b);
    } else if tag == TAG_SYM {
        env.free(a);
    }
    env.free(cell);
}

/// Compiles one `(define (name a b) body)` form.
fn compile_define_m(env: &mut MallocEnv, def: Addr, sum: &mut Checksum) {
    // def = (define (name a b) body)
    let rest = Addr::new(cf(env.heap(), def, C_B)); // ((name a b) body)
    let body_cell = Addr::new(cf(env.heap(), rest, C_B)); // (body)
    let body = Addr::new(cf(env.heap(), body_cell, C_A));
    // Emit into chained chunks (compile temporaries).
    let first = alloc_chunk_m(env);
    env.set_root(46, first);
    let mut state = EmitM { head: first, tail: first, len: 0, patches: Vec::new() };
    compile_expr_m(env, body, &mut state);
    emit_m(env, &mut state, OP_RET, &[]);
    // Flatten into an output buffer, apply jump patches.
    let flat = env.malloc(state.len);
    env.set_root(47, flat);
    let mut off = 0u32;
    let mut ch = state.head;
    while !ch.is_null() {
        let used = cf(env.heap(), ch, CH_USED);
        env.heap().copy(flat + off, ch + CH_DATA, used);
        off += used;
        ch = Addr::new(cf(env.heap(), ch, CH_NEXT));
    }
    for &(at, target) in &state.patches {
        env.heap().store_u8(flat + at, (target & 0xff) as u8);
        env.heap().store_u8(flat + at + 1, (target >> 8) as u8);
    }
    account_code(env.heap(), flat, state.len, sum);
    // Free the compile temporaries and the output.
    let mut ch = state.head;
    while !ch.is_null() {
        let next = Addr::new(cf(env.heap(), ch, CH_NEXT));
        env.free(ch);
        ch = next;
    }
    env.free(flat);
    env.set_root(46, Addr::NULL);
    env.set_root(47, Addr::NULL);
}

struct EmitM {
    head: Addr,
    tail: Addr,
    len: u32,
    patches: Vec<(u32, u32)>,
}

fn alloc_chunk_m(env: &mut MallocEnv) -> Addr {
    let c = env.malloc(CHUNK);
    env.heap().store_addr(c + CH_NEXT, Addr::NULL);
    env.heap().store_u32(c + CH_USED, 0);
    c
}

fn emit_m(env: &mut MallocEnv, st: &mut EmitM, op: u8, args: &[u8]) {
    let need = 1 + args.len() as u32;
    let used = cf(env.heap(), st.tail, CH_USED);
    if used + need > CH_CAP {
        let fresh = alloc_chunk_m(env);
        env.heap().store_addr(st.tail + CH_NEXT, fresh);
        st.tail = fresh;
    }
    let used = cf(env.heap(), st.tail, CH_USED);
    env.heap().store_u8(st.tail + CH_DATA + used, op);
    for (i, &b) in args.iter().enumerate() {
        env.heap().store_u8(st.tail + CH_DATA + used + 1 + i as u32, b);
    }
    env.heap().store_u32(st.tail + CH_USED, used + need);
    st.len += need;
}

fn compile_expr_m(env: &mut MallocEnv, e: Addr, st: &mut EmitM) {
    match cf(env.heap(), e, C_TAG) {
        TAG_INT => {
            let v = cf(env.heap(), e, C_IVAL);
            emit_m(env, st, OP_PUSHI, &v.to_le_bytes());
        }
        TAG_SYM => {
            let slot = if sym_is(env.heap(), e, b"a") { 0 } else { 1 };
            emit_m(env, st, OP_LOAD, &[slot]);
        }
        _ => {
            // (op args...)
            let head = Addr::new(cf(env.heap(), e, C_A));
            let args = Addr::new(cf(env.heap(), e, C_B));
            if sym_is(env.heap(), head, b"if") {
                let c = Addr::new(cf(env.heap(), args, C_A));
                let rest = Addr::new(cf(env.heap(), args, C_B));
                let t = Addr::new(cf(env.heap(), rest, C_A));
                let rest2 = Addr::new(cf(env.heap(), rest, C_B));
                let f = Addr::new(cf(env.heap(), rest2, C_A));
                compile_expr_m(env, c, st);
                let jz_at = st.len + 1;
                emit_m(env, st, OP_JZ, &[0, 0]);
                compile_expr_m(env, t, st);
                let jmp_at = st.len + 1;
                emit_m(env, st, OP_JMP, &[0, 0]);
                st.patches.push((jz_at, st.len));
                compile_expr_m(env, f, st);
                st.patches.push((jmp_at, st.len));
            } else {
                let x = Addr::new(cf(env.heap(), args, C_A));
                let rest = Addr::new(cf(env.heap(), args, C_B));
                let y = Addr::new(cf(env.heap(), rest, C_A));
                compile_expr_m(env, x, st);
                compile_expr_m(env, y, st);
                let op = if sym_is(env.heap(), head, b"+") {
                    OP_ADD
                } else if sym_is(env.heap(), head, b"-") {
                    OP_SUB
                } else if sym_is(env.heap(), head, b"*") {
                    OP_MUL
                } else {
                    OP_LT
                };
                emit_m(env, st, op, &[]);
            }
        }
    }
}

// --- end malloc variant ---

// --- begin region variant ---

/// mudlle with regions: the file AST lives in one region, each
/// function's compile temporaries in their own region, outputs in an
/// output region — all deleted wholesale, no walks.
pub fn run_region(env: &mut RegionEnv, scale: u32) -> u64 {
    let src = input(scale);
    let area = env.heap().sbrk(src.len() as u32);
    env.heap().load_bytes_untraced(area, src.as_bytes());
    let mut sum = Checksum::new();
    let d_cell =
        env.register_type(region_core::TypeDescriptor::new("mud_cell", CELL, vec![C_A, C_B]));
    let d_chunk =
        env.register_type(region_core::TypeDescriptor::new("mud_chunk", CHUNK, vec![CH_NEXT]));
    env.push_frame(2); // 0 = file AST, 1 = current flat output
    let iterations = 2 * scale;
    for _ in 0..iterations {
        let file_region = env.new_region();
        let out_region = env.new_region();
        let mut cur = Cursor { base: area, len: src.len() as u32, pos: 0 };
        let ast = parse_file_r(env, file_region, d_cell, &mut cur);
        env.set_local(0, ast);
        let mut form = ast;
        while !form.is_null() {
            let def = Addr::new(cf(env.heap(), form, C_A));
            compile_define_r(env, out_region, d_chunk, def, &mut sum);
            form = Addr::new(cf(env.heap(), form, C_B));
        }
        // No walking: throw both regions away at once. The AST local is
        // the stale pointer that must be cleared first (§5.1's mudlle!).
        env.set_local(0, Addr::NULL);
        assert!(env.delete_region(file_region), "file region must delete");
        assert!(env.delete_region(out_region), "output region must delete");
    }
    env.pop_frame();
    sum.add(u64::from(iterations));
    sum.value()
}

/// Parses the file into cells allocated in `r` (no rooting gymnastics:
/// nothing is ever collected out from under a region).
fn parse_file_r(env: &mut RegionEnv, r: crate::env::Rh, d_cell: crate::env::Dh, cur: &mut Cursor) -> Addr {
    let mut forms: Vec<Addr> = Vec::new();
    loop {
        cur.skip_ws(env.heap());
        if cur.peek(env.heap()).is_none() {
            break;
        }
        forms.push(parse_expr_r(env, r, d_cell, cur));
    }
    let mut list = Addr::NULL;
    for &f in forms.iter().rev() {
        list = alloc_cell_r(env, r, d_cell, TAG_PAIR, f, list, 0);
    }
    list
}

fn parse_expr_r(env: &mut RegionEnv, r: crate::env::Rh, d_cell: crate::env::Dh, cur: &mut Cursor) -> Addr {
    cur.skip_ws(env.heap());
    match cur.peek(env.heap()).expect("unexpected eof") {
        b'(' => {
            cur.pos += 1;
            let mut elems: Vec<Addr> = Vec::new();
            loop {
                cur.skip_ws(env.heap());
                if cur.peek(env.heap()) == Some(b')') {
                    cur.pos += 1;
                    break;
                }
                elems.push(parse_expr_r(env, r, d_cell, cur));
            }
            let mut list = Addr::NULL;
            for &e in elems.iter().rev() {
                list = alloc_cell_r(env, r, d_cell, TAG_PAIR, e, list, 0);
            }
            list
        }
        c if c.is_ascii_digit() => {
            let mut v: i64 = 0;
            while let Some(c) = cur.peek(env.heap()) {
                if !c.is_ascii_digit() {
                    break;
                }
                v = v * 10 + i64::from(c - b'0');
                cur.pos += 1;
            }
            alloc_cell_r(env, r, d_cell, TAG_INT, Addr::NULL, Addr::NULL, v as u32)
        }
        _ => {
            let start = cur.pos;
            while let Some(c) = cur.peek(env.heap()) {
                if !is_atom_char(c) {
                    break;
                }
                cur.pos += 1;
            }
            let len = cur.pos - start;
            let buf = env.rstralloc(r, len);
            env.heap().copy(buf, cur.base + start, len);
            alloc_cell_r(env, r, d_cell, TAG_SYM, buf, Addr::NULL, len)
        }
    }
}

fn alloc_cell_r(
    env: &mut RegionEnv,
    r: crate::env::Rh,
    d_cell: crate::env::Dh,
    tag: u32,
    a: Addr,
    b: Addr,
    ival: u32,
) -> Addr {
    let c = env.ralloc(r, d_cell);
    env.heap().store_u32(c + C_TAG, tag);
    // sameregion: every caller passes `a`/`b` as null, a cell of the
    // same parse tree in `r`, or an atom buffer rstralloc'd in `r`.
    env.store_ptr_region_same(c + C_A, a);
    env.store_ptr_region_same(c + C_B, b);
    env.heap().store_u32(c + C_IVAL, ival);
    c
}

/// Compiles one define form; temporaries in a fresh region, output in
/// the output region ("one region is created to hold the data structures
/// needed to compile each function").
fn compile_define_r(
    env: &mut RegionEnv,
    out_region: crate::env::Rh,
    d_chunk: crate::env::Dh,
    def: Addr,
    sum: &mut Checksum,
) {
    let tmp = env.new_region();
    let rest = Addr::new(cf(env.heap(), def, C_B));
    let body_cell = Addr::new(cf(env.heap(), rest, C_B));
    let body = Addr::new(cf(env.heap(), body_cell, C_A));
    let first = alloc_chunk_r(env, tmp, d_chunk);
    let mut state = EmitR { region: tmp, d_chunk, head: first, tail: first, len: 0, patches: Vec::new() };
    compile_expr_r(env, body, &mut state);
    emit_r(env, &mut state, OP_RET, &[]);
    // Flatten into the output region (the copy out of the temp region,
    // exactly as cfrac/grobner copy their survivors).
    let flat = env.rstralloc(out_region, state.len.max(4));
    let mut off = 0u32;
    let mut ch = state.head;
    while !ch.is_null() {
        let used = cf(env.heap(), ch, CH_USED);
        env.heap().copy(flat + off, ch + CH_DATA, used);
        off += used;
        ch = Addr::new(cf(env.heap(), ch, CH_NEXT));
    }
    for &(at, target) in &state.patches {
        env.heap().store_u8(flat + at, (target & 0xff) as u8);
        env.heap().store_u8(flat + at + 1, (target >> 8) as u8);
    }
    account_code(env.heap(), flat, state.len, sum);
    assert!(env.delete_region(tmp), "compile region must delete");
}

struct EmitR {
    region: crate::env::Rh,
    d_chunk: crate::env::Dh,
    head: Addr,
    tail: Addr,
    len: u32,
    patches: Vec<(u32, u32)>,
}

fn alloc_chunk_r(env: &mut RegionEnv, r: crate::env::Rh, d_chunk: crate::env::Dh) -> Addr {
    // ralloc clears the chunk: next = null, used = 0.
    env.ralloc(r, d_chunk)
}

fn emit_r(env: &mut RegionEnv, st: &mut EmitR, op: u8, args: &[u8]) {
    let need = 1 + args.len() as u32;
    let used = cf(env.heap(), st.tail, CH_USED);
    if used + need > CH_CAP {
        let fresh = alloc_chunk_r(env, st.region, st.d_chunk);
        // sameregion: the whole chunk chain lives in `st.region`.
        env.store_ptr_region_same(st.tail + CH_NEXT, fresh);
        st.tail = fresh;
    }
    let used = cf(env.heap(), st.tail, CH_USED);
    env.heap().store_u8(st.tail + CH_DATA + used, op);
    for (i, &b) in args.iter().enumerate() {
        env.heap().store_u8(st.tail + CH_DATA + used + 1 + i as u32, b);
    }
    env.heap().store_u32(st.tail + CH_USED, used + need);
    st.len += need;
}

fn compile_expr_r(env: &mut RegionEnv, e: Addr, st: &mut EmitR) {
    match cf(env.heap(), e, C_TAG) {
        TAG_INT => {
            let v = cf(env.heap(), e, C_IVAL);
            emit_r(env, st, OP_PUSHI, &v.to_le_bytes());
        }
        TAG_SYM => {
            let slot = if sym_is(env.heap(), e, b"a") { 0 } else { 1 };
            emit_r(env, st, OP_LOAD, &[slot]);
        }
        _ => {
            let head = Addr::new(cf(env.heap(), e, C_A));
            let args = Addr::new(cf(env.heap(), e, C_B));
            if sym_is(env.heap(), head, b"if") {
                let c = Addr::new(cf(env.heap(), args, C_A));
                let rest = Addr::new(cf(env.heap(), args, C_B));
                let t = Addr::new(cf(env.heap(), rest, C_A));
                let rest2 = Addr::new(cf(env.heap(), rest, C_B));
                let f = Addr::new(cf(env.heap(), rest2, C_A));
                compile_expr_r(env, c, st);
                let jz_at = st.len + 1;
                emit_r(env, st, OP_JZ, &[0, 0]);
                compile_expr_r(env, t, st);
                let jmp_at = st.len + 1;
                emit_r(env, st, OP_JMP, &[0, 0]);
                st.patches.push((jz_at, st.len));
                compile_expr_r(env, f, st);
                st.patches.push((jmp_at, st.len));
            } else {
                let x = Addr::new(cf(env.heap(), args, C_A));
                let rest = Addr::new(cf(env.heap(), args, C_B));
                let y = Addr::new(cf(env.heap(), rest, C_A));
                compile_expr_r(env, x, st);
                compile_expr_r(env, y, st);
                let op = if sym_is(env.heap(), head, b"+") {
                    OP_ADD
                } else if sym_is(env.heap(), head, b"-") {
                    OP_SUB
                } else if sym_is(env.heap(), head, b"*") {
                    OP_MUL
                } else {
                    OP_LT
                };
                emit_r(env, st, op, &[]);
            }
        }
    }
}

// --- end region variant ---

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{MallocKind, RegionKind};

    #[test]
    fn input_is_well_formed() {
        let src = input(1);
        assert_eq!(src.matches("(define").count(), 30);
        let opens = src.matches('(').count();
        let closes = src.matches(')').count();
        assert_eq!(opens, closes, "balanced parens");
    }

    #[test]
    fn all_allocators_agree_on_the_answer() {
        let expected = run_malloc(&mut MallocEnv::new(MallocKind::Sun), 1);
        for kind in [MallocKind::Bsd, MallocKind::Lea, MallocKind::Gc] {
            assert_eq!(run_malloc(&mut MallocEnv::new(kind), 1), expected, "{}", kind.name());
        }
        for kind in [RegionKind::Safe, RegionKind::Unsafe, RegionKind::Emulated(MallocKind::Lea)] {
            assert_eq!(run_region(&mut RegionEnv::new(kind), 1), expected, "{}", kind.name());
        }
    }

    #[test]
    fn region_structure_matches_the_paper() {
        let mut env = RegionEnv::new(RegionKind::Safe);
        run_region(&mut env, 1);
        // 2 iterations × (file + output + 30 per-function) regions.
        assert_eq!(env.stats().total_regions, 2 * 32);
        assert_eq!(env.stats().live_regions, 0);
        assert_eq!(env.costs().unwrap().deletes_failed, 0);
    }

    #[test]
    fn malloc_variant_frees_everything() {
        let mut env = MallocEnv::new(MallocKind::Lea);
        run_malloc(&mut env, 1);
        assert_eq!(env.stats().live_bytes, 0);
        assert!(env.stats().total_allocs > 2000);
    }
}
