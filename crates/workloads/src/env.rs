//! Uniform environments the workloads run against.
//!
//! Every benchmark exists in two source variants, as in the paper:
//! a malloc/free version (run against Sun, BSD, Lea and the collector —
//! [`MallocEnv`]) and a region version (run against the safe runtime,
//! the unsafe runtime, and malloc-backed emulation — [`RegionEnv`]).
//! The environments accumulate the wall-clock time spent inside memory
//! management, which becomes the "memory" share of Figure 9.

use std::time::{Duration, Instant};

use conservative_gc::BoehmGc;
use malloc_suite::{BsdMalloc, EmuRegionId, EmulatedRegions, LeaMalloc, RawMalloc, SunMalloc};
use region_core::{AllocStats, RegionConfig, RegionId, RegionRuntime, SafetyMode, TypeDescriptor};
use simheap::{Addr, SimHeap};

/// Which malloc/free implementation a [`MallocEnv`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MallocKind {
    /// Solaris-default stand-in (best fit, coalescing).
    Sun,
    /// Power-of-two freelists.
    Bsd,
    /// Doug Lea's malloc.
    Lea,
    /// Boehm–Weiser conservative collection (frees ignored).
    Gc,
}

impl MallocKind {
    /// All four baselines, in the paper's presentation order.
    pub const ALL: [MallocKind; 4] = [MallocKind::Sun, MallocKind::Bsd, MallocKind::Lea, MallocKind::Gc];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            MallocKind::Sun => "Sun",
            MallocKind::Bsd => "BSD",
            MallocKind::Lea => "Lea",
            MallocKind::Gc => "GC",
        }
    }
}

/// A malloc/free world: one allocator over one simulated heap.
pub struct MallocEnv {
    heap: SimHeap,
    alloc: Box<dyn RawMalloc>,
    kind: MallocKind,
    mem_time: Duration,
}

impl MallocEnv {
    /// Creates an environment for the given allocator.
    pub fn new(kind: MallocKind) -> MallocEnv {
        MallocEnv::on_heap(kind, SimHeap::new())
    }

    /// Creates an environment on a recycled heap (warm per-worker reuse).
    /// The heap is reset first, so the run is bit-identical to one on a
    /// fresh heap; only the host allocation backing it is reused.
    pub fn on_heap(kind: MallocKind, mut heap: SimHeap) -> MallocEnv {
        heap.reset();
        let alloc: Box<dyn RawMalloc> = match kind {
            MallocKind::Sun => Box::new(SunMalloc::new()),
            MallocKind::Bsd => Box::new(BsdMalloc::new()),
            MallocKind::Lea => Box::new(LeaMalloc::new()),
            MallocKind::Gc => Box::new(BoehmGc::new(&mut heap)),
        };
        MallocEnv { heap, alloc, kind, mem_time: Duration::ZERO }
    }

    /// Which allocator this is.
    pub fn kind(&self) -> MallocKind {
        self.kind
    }

    /// Allocates `size` bytes (timed as memory-management work).
    pub fn malloc(&mut self, size: u32) -> Addr {
        let t = Instant::now();
        let a = self.alloc.malloc(&mut self.heap, size);
        self.mem_time += t.elapsed();
        a
    }

    /// Frees a block (no-op under GC).
    pub fn free(&mut self, ptr: Addr) {
        let t = Instant::now();
        self.alloc.free(&mut self.heap, ptr);
        self.mem_time += t.elapsed();
    }

    /// The underlying heap, for data loads/stores.
    pub fn heap(&mut self) -> &mut SimHeap {
        &mut self.heap
    }

    /// Allocates zeroed global storage and registers it as GC roots.
    pub fn alloc_globals(&mut self, bytes: u32) -> Addr {
        let a = self.heap.sbrk(bytes);
        self.alloc.add_global_roots(a, bytes);
        a
    }

    /// Pushes a frame of `n` GC-root slots (no-op for real mallocs).
    pub fn push_roots(&mut self, n: u32) {
        self.alloc.push_roots(&mut self.heap, n);
    }

    /// Mirrors a pointer into root slot `i` (no-op for real mallocs).
    pub fn set_root(&mut self, i: u32, v: Addr) {
        self.alloc.set_root(&mut self.heap, i, v);
    }

    /// Pops the newest root frame.
    pub fn pop_roots(&mut self) {
        self.alloc.pop_roots(&mut self.heap);
    }

    /// Time spent inside the allocator so far.
    pub fn mem_time(&self) -> Duration {
        self.mem_time
    }

    /// Allocator statistics (Table 3).
    pub fn stats(&self) -> &AllocStats {
        self.alloc.stats()
    }

    /// Pages requested from the OS (Figure 8).
    pub fn os_pages(&self) -> u64 {
        self.alloc.os_pages()
    }

    /// Consumes the environment, returning its heap (e.g. to detach an
    /// attached cache-simulator sink).
    pub fn into_heap(self) -> SimHeap {
        self.heap
    }
}

/// Which region implementation a [`RegionEnv`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionKind {
    /// The safe runtime (reference counts maintained).
    Safe,
    /// The unsafe runtime (no reference counts — Hanson-style arenas).
    Unsafe,
    /// Region emulation over a malloc (the paper's `emulation` library).
    Emulated(MallocKind),
}

impl RegionKind {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            RegionKind::Safe => "Reg",
            RegionKind::Unsafe => "unsafe",
            RegionKind::Emulated(MallocKind::Sun) => "emu-Sun",
            RegionKind::Emulated(MallocKind::Bsd) => "emu-BSD",
            RegionKind::Emulated(MallocKind::Lea) => "emu-Lea",
            RegionKind::Emulated(MallocKind::Gc) => "emu-GC",
        }
    }
}

/// A uniform region handle (valid for whichever backend created it).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rh(u32);

/// A uniform type-descriptor handle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dh(u32);

enum RegionBackend {
    Real(Box<RegionRuntime>),
    Emulated { heap: SimHeap, er: Box<EmulatedRegions<Box<dyn RawMalloc>>> },
}

/// A region world: the real runtime (safe or unsafe) or emulation.
pub struct RegionEnv {
    backend: RegionBackend,
    kind: RegionKind,
    mem_time: Duration,
    /// Whether [`RegionEnv::store_ptr_region_same`] actually elides its
    /// barrier (off by default, so published counters reproduce).
    elide: bool,
    /// Parallel descriptor tables give identical `Dh` values.
    descs_real: Vec<region_core::DescId>,
    descs_emu: Vec<region_core::DescId>,
}

impl RegionEnv {
    /// Creates an environment of the given kind.
    pub fn new(kind: RegionKind) -> RegionEnv {
        RegionEnv::on_heap(kind, SimHeap::new())
    }

    /// Creates an environment on a recycled heap (warm per-worker reuse).
    /// The heap is reset first, so the run is bit-identical to one on a
    /// fresh heap; only the host allocation backing it is reused.
    pub fn on_heap(kind: RegionKind, mut heap: SimHeap) -> RegionEnv {
        let backend = match kind {
            RegionKind::Safe => RegionBackend::Real(Box::new(RegionRuntime::with_config_on(
                RegionConfig::default(),
                heap,
            ))),
            RegionKind::Unsafe => RegionBackend::Real(Box::new(RegionRuntime::with_config_on(
                RegionConfig { mode: SafetyMode::Unsafe, ..RegionConfig::default() },
                heap,
            ))),
            RegionKind::Emulated(mk) => {
                heap.reset();
                let alloc: Box<dyn RawMalloc> = match mk {
                    MallocKind::Sun => Box::new(SunMalloc::new()),
                    MallocKind::Bsd => Box::new(BsdMalloc::new()),
                    MallocKind::Lea => Box::new(LeaMalloc::new()),
                    MallocKind::Gc => Box::new(BoehmGc::new(&mut heap)),
                };
                RegionBackend::Emulated { heap, er: Box::new(EmulatedRegions::new(alloc)) }
            }
        };
        RegionEnv {
            backend,
            kind,
            mem_time: Duration::ZERO,
            elide: false,
            descs_real: Vec::new(),
            descs_emu: Vec::new(),
        }
    }

    /// Creates a safe environment with a custom runtime configuration
    /// (for ablations: staggering off, clearing off, …).
    pub fn with_config(config: RegionConfig) -> RegionEnv {
        let kind = match config.mode {
            SafetyMode::Safe => RegionKind::Safe,
            SafetyMode::Unsafe => RegionKind::Unsafe,
        };
        RegionEnv {
            backend: RegionBackend::Real(Box::new(RegionRuntime::with_config(config))),
            kind,
            mem_time: Duration::ZERO,
            elide: false,
            descs_real: Vec::new(),
            descs_emu: Vec::new(),
        }
    }

    /// Turns barrier elision on or off for this environment's
    /// [`RegionEnv::store_ptr_region_same`] calls. Off by default: the
    /// annotated workloads then behave exactly as before, so published
    /// Figure 11 counters stay reproducible.
    pub fn set_elide(&mut self, on: bool) {
        self.elide = on;
    }

    /// Which backend this is.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// Registers a type descriptor.
    pub fn register_type(&mut self, desc: TypeDescriptor) -> Dh {
        match &mut self.backend {
            RegionBackend::Real(rt) => {
                let id = rt.register_type(desc);
                self.descs_real.push(id);
                Dh(self.descs_real.len() as u32 - 1)
            }
            RegionBackend::Emulated { er, .. } => {
                let id = er.register_type(desc);
                self.descs_emu.push(id);
                Dh(self.descs_emu.len() as u32 - 1)
            }
        }
    }

    /// Creates a region.
    pub fn new_region(&mut self) -> Rh {
        let t = Instant::now();
        let rh = match &mut self.backend {
            RegionBackend::Real(rt) => Rh(rt.new_region().index()),
            RegionBackend::Emulated { er, .. } => Rh(er.new_region().index()),
        };
        self.mem_time += t.elapsed();
        rh
    }

    /// Deletes a region; `false` if live references blocked it (safe
    /// runtime only — emulation and the unsafe runtime always succeed).
    pub fn delete_region(&mut self, r: Rh) -> bool {
        let t = Instant::now();
        let ok = match &mut self.backend {
            RegionBackend::Real(rt) => rt.delete_region(RegionId::from_index(r.0)),
            RegionBackend::Emulated { heap, er } => er.delete_region(heap, EmuRegionId::from_index(r.0)),
        };
        self.mem_time += t.elapsed();
        ok
    }

    /// `ralloc`: one cleared object of type `d` in region `r`.
    pub fn ralloc(&mut self, r: Rh, d: Dh) -> Addr {
        let t = Instant::now();
        let a = match &mut self.backend {
            RegionBackend::Real(rt) => rt.ralloc(RegionId::from_index(r.0), self.descs_real[d.0 as usize]),
            RegionBackend::Emulated { heap, er } => {
                er.ralloc(heap, EmuRegionId::from_index(r.0), self.descs_emu[d.0 as usize])
            }
        };
        self.mem_time += t.elapsed();
        a
    }

    /// `rarrayalloc`: a cleared array of `n` objects of type `d`.
    pub fn rarrayalloc(&mut self, r: Rh, n: u32, d: Dh) -> Addr {
        let t = Instant::now();
        let a = match &mut self.backend {
            RegionBackend::Real(rt) => {
                rt.rarrayalloc(RegionId::from_index(r.0), n, self.descs_real[d.0 as usize])
            }
            RegionBackend::Emulated { heap, er } => {
                er.rarrayalloc(heap, EmuRegionId::from_index(r.0), n, self.descs_emu[d.0 as usize])
            }
        };
        self.mem_time += t.elapsed();
        a
    }

    /// `rstralloc`: `size` bytes of pointer-free storage (uncleared).
    pub fn rstralloc(&mut self, r: Rh, size: u32) -> Addr {
        let t = Instant::now();
        let a = match &mut self.backend {
            RegionBackend::Real(rt) => rt.rstralloc(RegionId::from_index(r.0), size),
            RegionBackend::Emulated { heap, er } => er.rstralloc(heap, EmuRegionId::from_index(r.0), size),
        };
        self.mem_time += t.elapsed();
        a
    }

    /// Barriered store of a region pointer into a region object.
    pub fn store_ptr_region(&mut self, loc: Addr, v: Addr) {
        let t = Instant::now();
        match &mut self.backend {
            RegionBackend::Real(rt) => rt.store_ptr_region(loc, v),
            RegionBackend::Emulated { heap, er } => er.store_ptr_region(heap, loc, v),
        }
        self.mem_time += t.elapsed();
    }

    /// Barrier-free store of a region pointer the caller has *proved*
    /// stays inside `loc`'s own region — the paper's `sameregion`
    /// qualifier (§3.3) applied by hand to a workload's hot stores.
    /// Under the real runtime this charges [`ELIDED_WRITE_INSTRS`] and
    /// still verifies the claim (an unsound call records an
    /// `ElisionUnsound` violation and falls back to the full barrier);
    /// the emulated backend has no counts to skip, so it degrades to
    /// the ordinary region store.
    ///
    /// Until [`RegionEnv::set_elide`] turns elision on, this is the
    /// ordinary barriered store, so annotating a site is behaviorally
    /// neutral by default.
    ///
    /// [`ELIDED_WRITE_INSTRS`]: region_core::ELIDED_WRITE_INSTRS
    pub fn store_ptr_region_same(&mut self, loc: Addr, v: Addr) {
        if !self.elide {
            return self.store_ptr_region(loc, v);
        }
        let t = Instant::now();
        match &mut self.backend {
            RegionBackend::Real(rt) => rt.store_ptr_region_same(loc, v),
            RegionBackend::Emulated { heap, er } => er.store_ptr_region(heap, loc, v),
        }
        self.mem_time += t.elapsed();
    }

    /// Barriered store of a region pointer into global storage.
    pub fn store_ptr_global(&mut self, loc: Addr, v: Addr) {
        let t = Instant::now();
        match &mut self.backend {
            RegionBackend::Real(rt) => rt.store_ptr_global(loc, v),
            RegionBackend::Emulated { heap, er } => er.store_ptr_global(heap, loc, v),
        }
        self.mem_time += t.elapsed();
    }

    /// Allocates zeroed global storage.
    pub fn alloc_globals(&mut self, bytes: u32) -> Addr {
        match &mut self.backend {
            RegionBackend::Real(rt) => rt.alloc_globals(bytes),
            RegionBackend::Emulated { heap, .. } => heap.sbrk(bytes),
        }
    }

    /// Pushes a frame of region-pointer locals (scanned by the safe
    /// runtime at `deleteregion`).
    pub fn push_frame(&mut self, n: u32) {
        match &mut self.backend {
            RegionBackend::Real(rt) => rt.push_frame(n),
            RegionBackend::Emulated { er, .. } => er.push_frame(n),
        }
    }

    /// Pops the newest frame.
    pub fn pop_frame(&mut self) {
        let t = Instant::now();
        match &mut self.backend {
            RegionBackend::Real(rt) => rt.pop_frame(),
            RegionBackend::Emulated { er, .. } => er.pop_frame(),
        }
        self.mem_time += t.elapsed();
    }

    /// Writes a region-pointer local (never reference-counted).
    pub fn set_local(&mut self, slot: u32, v: Addr) {
        match &mut self.backend {
            RegionBackend::Real(rt) => rt.set_local(slot, v),
            RegionBackend::Emulated { er, .. } => er.set_local(slot, v),
        }
    }

    /// Reads a region-pointer local.
    pub fn get_local(&mut self, slot: u32) -> Addr {
        match &mut self.backend {
            RegionBackend::Real(rt) => rt.get_local(slot),
            RegionBackend::Emulated { er, .. } => er.get_local(slot),
        }
    }

    /// The underlying heap, for data loads/stores.
    pub fn heap(&mut self) -> &mut SimHeap {
        match &mut self.backend {
            RegionBackend::Real(rt) => rt.heap_mut(),
            RegionBackend::Emulated { heap, .. } => heap,
        }
    }

    /// Region-level statistics (Table 2; for emulation, the "w/o
    /// overhead" view).
    pub fn stats(&self) -> &AllocStats {
        match &self.backend {
            RegionBackend::Real(rt) => rt.stats(),
            RegionBackend::Emulated { er, .. } => er.stats(),
        }
    }

    /// Underlying-malloc statistics when emulating (the "with overhead"
    /// view), `None` for the real runtime.
    pub fn emulation_inner_stats(&self) -> Option<&AllocStats> {
        match &self.backend {
            RegionBackend::Real(_) => None,
            RegionBackend::Emulated { er, .. } => Some(er.inner().stats()),
        }
    }

    /// The underlying runtime (real backends only): lets tests audit
    /// accounting the aggregate getters fold away, e.g. that
    /// [`region_core::RegionRuntime::host_mirror_bytes`] never leaks
    /// into a footprint figure.
    pub fn runtime(&self) -> Option<&region_core::RegionRuntime> {
        match &self.backend {
            RegionBackend::Real(rt) => Some(rt),
            RegionBackend::Emulated { .. } => None,
        }
    }

    /// Safety-cost counters (real runtime only).
    pub fn costs(&self) -> Option<&region_core::SafetyCosts> {
        match &self.backend {
            RegionBackend::Real(rt) => Some(rt.costs()),
            RegionBackend::Emulated { .. } => None,
        }
    }

    /// Runs the refcount sanitizer (real runtime only): recomputes every
    /// region's reference count from first principles and diffs against
    /// the incremental counts and the page-map mirror. `None` for
    /// emulated backends (no counts to audit).
    pub fn sanitize(&self) -> Option<region_core::SanitizeReport> {
        match &self.backend {
            RegionBackend::Real(rt) => Some(rt.sanitize()),
            RegionBackend::Emulated { .. } => None,
        }
    }

    /// Pages requested from the OS (Figure 8).
    pub fn os_pages(&self) -> u64 {
        match &self.backend {
            RegionBackend::Real(rt) => rt.os_heap_bytes() / u64::from(simheap::PAGE_SIZE),
            RegionBackend::Emulated { er, .. } => er.os_pages(),
        }
    }

    /// Time spent inside region operations so far.
    pub fn mem_time(&self) -> Duration {
        self.mem_time
    }

    /// Consumes the environment, returning its heap.
    pub fn into_heap(self) -> SimHeap {
        match self.backend {
            RegionBackend::Real(rt) => {
                // The runtime owns its heap; rebuild by moving out.
                rt.into_heap()
            }
            RegionBackend::Emulated { heap, .. } => heap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_env_round_trip_all_kinds() {
        for kind in MallocKind::ALL {
            let mut env = MallocEnv::new(kind);
            env.push_roots(1);
            let a = env.malloc(40);
            env.set_root(0, a);
            env.heap().store_u32(a, 123);
            assert_eq!(env.heap().load_u32(a), 123, "{}", kind.name());
            env.free(a);
            env.pop_roots();
            assert!(env.os_pages() > 0 || kind == MallocKind::Gc);
        }
    }

    #[test]
    fn region_env_uniform_over_backends() {
        for kind in [
            RegionKind::Safe,
            RegionKind::Unsafe,
            RegionKind::Emulated(MallocKind::Sun),
            RegionKind::Emulated(MallocKind::Lea),
        ] {
            let mut env = RegionEnv::new(kind);
            let d = env.register_type(TypeDescriptor::new("node", 8, vec![4]));
            let r = env.new_region();
            let a = env.ralloc(r, d);
            let b = env.ralloc(r, d);
            env.heap().store_u32(a, 7);
            env.store_ptr_region(a + 4, b);
            assert_eq!(env.heap().load_u32(a), 7, "{}", kind.name());
            let s = env.rstralloc(r, 100);
            env.heap().store_u32(s + 96, 9);
            assert!(env.delete_region(r), "{}", kind.name());
            assert_eq!(env.stats().total_allocs, 3);
        }
    }

    #[test]
    fn safe_env_blocks_deletion_on_live_local() {
        let mut env = RegionEnv::new(RegionKind::Safe);
        let d = env.register_type(TypeDescriptor::new("node", 8, vec![4]));
        let r = env.new_region();
        let a = env.ralloc(r, d);
        env.push_frame(1);
        env.set_local(0, a);
        assert!(!env.delete_region(r));
        env.set_local(0, Addr::NULL);
        assert!(env.delete_region(r));
        env.pop_frame();
    }

    #[test]
    fn emulation_reports_both_stat_views() {
        let mut env = RegionEnv::new(RegionKind::Emulated(MallocKind::Bsd));
        let r = env.new_region();
        env.rstralloc(r, 20);
        assert_eq!(env.stats().total_bytes, 20);
        assert_eq!(env.emulation_inner_stats().unwrap().total_bytes, 24);
        assert!(RegionEnv::new(RegionKind::Safe).emulation_inner_stats().is_none());
    }
}
