//! Property tests for the host-Rust [`Arena`]: no allocation ever
//! overlaps or corrupts another, alignment is always honoured, and reset
//! recycles capacity.

use proptest::prelude::*;
use region_core::Arena;

#[derive(Debug, Clone)]
enum Alloc {
    Byte(u8),
    Word(u32),
    Wide(u64),
    Slice(usize, u8),
    Text(String),
}

fn allocs() -> impl Strategy<Value = Vec<Alloc>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Alloc::Byte),
            any::<u32>().prop_map(Alloc::Word),
            any::<u64>().prop_map(Alloc::Wide),
            (1usize..300, any::<u8>()).prop_map(|(n, b)| Alloc::Slice(n, b)),
            "[a-z]{0,40}".prop_map(Alloc::Text),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn values_survive_all_subsequent_allocations(plan in allocs()) {
        let arena = Arena::new();
        enum Ref<'a> {
            Byte(&'a mut u8, u8),
            Word(&'a mut u32, u32),
            Wide(&'a mut u64, u64),
            Slice(&'a mut [u8], u8),
            Text(&'a mut str, String),
        }
        let mut refs = Vec::new();
        for a in &plan {
            match a {
                Alloc::Byte(v) => refs.push(Ref::Byte(arena.alloc(*v), *v)),
                Alloc::Word(v) => {
                    let r = arena.alloc(*v);
                    prop_assert_eq!(r as *const u32 as usize % 4, 0, "u32 misaligned");
                    refs.push(Ref::Word(r, *v));
                }
                Alloc::Wide(v) => {
                    let r = arena.alloc(*v);
                    prop_assert_eq!(r as *const u64 as usize % 8, 0, "u64 misaligned");
                    refs.push(Ref::Wide(r, *v));
                }
                Alloc::Slice(n, b) => refs.push(Ref::Slice(arena.alloc_slice_fill_with(*n, |_| *b), *b)),
                Alloc::Text(s) => refs.push(Ref::Text(arena.alloc_str(s), s.clone())),
            }
        }
        // Every earlier allocation is intact after all later ones.
        for r in &refs {
            match r {
                Ref::Byte(p, v) => prop_assert_eq!(**p, *v),
                Ref::Word(p, v) => prop_assert_eq!(**p, *v),
                Ref::Wide(p, v) => prop_assert_eq!(**p, *v),
                Ref::Slice(s, b) => prop_assert!(s.iter().all(|x| x == b)),
                Ref::Text(s, v) => prop_assert_eq!(&**s, v.as_str()),
            }
        }
    }

    #[test]
    fn reset_reclaims_without_regrowing(sizes in proptest::collection::vec(1usize..500, 1..50)) {
        let mut arena = Arena::new();
        for &n in &sizes {
            arena.alloc_slice_fill_with(n, |i| i as u8);
        }
        arena.reset();
        let cap = arena.capacity();
        // The same plan fits in the retained capacity plus at most the
        // chunks the first pass needed.
        for &n in &sizes {
            arena.alloc_slice_fill_with(n, |i| i as u8);
        }
        // Bounded regrowth: replaying the same plan must not blow the
        // capacity up unboundedly (the retained chunk absorbs most of it).
        prop_assert!(
            arena.capacity() <= cap * 3 + 8192,
            "capacity grew from {} to {}",
            cap,
            arena.capacity()
        );
        prop_assert_eq!(arena.allocated_bytes(), sizes.iter().sum::<usize>());
    }
}
