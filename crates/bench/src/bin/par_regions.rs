//! Parallel-region stress bench — the paper's §1 sketch under real
//! threads.
//!
//! Every worker registers with a shared [`ParRegionPool`], creates a
//! batch of regions, and then hammers a shared array of [`RefCell32`]
//! cells with atomic-exchange reference publishes (`exchange_ref`),
//! exactly the racy-write pattern the paper says must use an exchange.
//! Local reference counts are adjusted without synchronization; at the
//! end the main thread clears every cell and `try_delete` must succeed
//! for every region — the cross-thread count sums must all be zero no
//! matter how the schedule interleaved.
//!
//! The run is timed at one worker and at `BENCH_WORKERS` (default: the
//! machine) workers, and writes a schema-v3 results envelope (which
//! records the worker count alongside the rows) to
//! `results/par_regions.json`. The checksum folds only
//! schedule-independent facts (regions created, operations performed,
//! final liveness, final global counts, and the pool auditor's
//! counters), so for a fixed worker count it is identical across runs
//! no matter how the threads interleaved: an interleaving-dependent
//! digest would make the row useless as a regression anchor.

use std::sync::Arc;
use std::time::Instant;

use bench_harness::runner::{bench_workers, scale_from_env, write_results_json, Measurement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use region_core::par::{ParRegionPool, RefCell32};

/// Cells shared by every worker.
const CELLS: usize = 64;
/// Regions created by each worker.
const REGIONS_PER_WORKER: usize = 16;
/// Exchange operations per worker per unit of scale.
const OPS_PER_SCALE: u64 = 100_000;

/// FNV-1a, the same fold the golden traces use.
fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

struct RunResult {
    elapsed: std::time::Duration,
    regions: u64,
    ops: u64,
    digest: u64,
}

/// Runs the protocol with `workers` threads and verifies every
/// schedule-independent postcondition.
fn run(workers: usize, scale: u32) -> RunResult {
    let pool = ParRegionPool::new();
    // Registering the cells lets `pool.audit()` recompute the published
    // side of the books after the run.
    let cells: Vec<Arc<RefCell32>> = (0..CELLS).map(|_| pool.register_cell()).collect();
    let ops_per_worker = OPS_PER_SCALE * u64::from(scale);

    let t = Instant::now();
    let regions = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let pool = &pool;
                let cells = &cells;
                s.spawn(move || {
                    let mut thread = pool.register_thread();
                    let mine: Vec<_> =
                        (0..REGIONS_PER_WORKER).map(|_| thread.create_region()).collect();
                    // Deterministic per-thread schedule; the interleaving
                    // across threads is whatever the machine does.
                    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ w as u64);
                    for _ in 0..ops_per_worker {
                        let cell = &cells[rng.gen_range(0..CELLS)];
                        if rng.gen_range(0..4) == 0 {
                            thread.exchange_ref(cell, None);
                        } else {
                            let r = mine[rng.gen_range(0..mine.len())];
                            thread.exchange_ref(cell, Some(r));
                        }
                    }
                    mine
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("worker panicked"));
        }
        all
    });

    // Drop the references still parked in cells, then deletion must
    // succeed everywhere: the local counts sum to zero exactly when every
    // publish was balanced by a displacement or a clear.
    let mut main_thread = pool.register_thread();
    for cell in &cells {
        main_thread.exchange_ref(cell, None);
    }
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    // The books must balance before any deletion: counted == recomputed
    // for every region, no dead-thread residue, no dangling cells.
    let audit = pool.audit();
    assert!(audit.is_clean(), "pre-delete audit failed:\n{audit}");
    digest = fnv(digest, audit.regions_audited as u64);
    digest = fnv(digest, audit.cells_audited as u64);
    for &r in &regions {
        let count = pool.global_count(r);
        assert_eq!(count, 0, "unbalanced local counts for {r:?}");
        assert!(pool.try_delete(r), "zero-count region must delete");
        assert!(!pool.is_live(r));
        digest = fnv(digest, count as u64);
        digest = fnv(digest, u64::from(!pool.is_live(r)));
    }
    // And they must still balance after every region is gone.
    let audit = pool.audit();
    assert!(audit.is_clean(), "post-delete audit failed:\n{audit}");
    assert_eq!(audit.quarantined, 0, "a clean run must quarantine nothing");
    digest = fnv(digest, audit.quarantined as u64);
    let elapsed = t.elapsed();
    let regions = regions.len() as u64;
    let ops = ops_per_worker * workers as u64;
    digest = fnv(digest, regions);
    RunResult { elapsed, regions, ops, digest }
}

fn measurement(label: &'static str, m: &RunResult) -> Measurement {
    Measurement {
        workload: "par_regions",
        allocator: label,
        total: m.elapsed,
        mem: m.elapsed,
        os_pages: 0,
        stats: region_core::AllocStats {
            total_allocs: m.ops,
            total_regions: m.regions,
            ..Default::default()
        },
        inner_stats: None,
        costs: None,
        cache: None,
        checksum: m.digest,
    }
}

fn main() {
    let scale = scale_from_env();
    let workers = bench_workers();

    println!("Parallel regions: exchange-published references, scale {scale}");
    let serial = run(1, scale);
    let par = run(workers, scale);
    let par_again = run(workers, scale);
    assert_eq!(
        par.digest, par_again.digest,
        "schedule-independent digest must not vary between runs"
    );
    for (label, r) in [("1 worker", &serial), ("N workers", &par)] {
        let mops = r.ops as f64 / r.elapsed.as_secs_f64() / 1e6;
        println!(
            "  {label:<10} ({} threads): {} exchanges over {} regions in {:>7.1} ms ({mops:.1} M ops/s)",
            if std::ptr::eq(r, &serial) { 1 } else { workers },
            r.ops,
            r.regions,
            r.elapsed.as_secs_f64() * 1e3,
        );
    }
    println!(
        "  digest {:016x}; every region deleted with a zero count sum, audit clean",
        par.digest
    );

    let rows = [measurement("par1", &serial), measurement("parN", &par)];
    match write_results_json("par_regions", &rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write results JSON: {e}"),
    }
}
