//! The versioned snapshot codec: typed errors and length-checked byte I/O.
//!
//! A snapshot serializes the complete observable state of a
//! [`RegionRuntime`](crate::RegionRuntime) — the simulated heap image, the
//! region table, the page map and its host mirror, statistics and safety
//! costs, the shadow stack, the fault-injection schedule, recorded
//! violations, and the global pointer ledger — into a self-describing byte
//! stream (`RSNP`, version 1). Restoring it yields a runtime that is
//! *bit-identical* to the captured one: continuing from the restored state
//! produces the same digests, instruction counters, trace suffix, and
//! `sanitize()` verdict as the uninterrupted run. See DESIGN §14 for the
//! layout and compatibility rules.
//!
//! This module holds the parts shared by every producer and consumer: the
//! typed [`SnapshotError`] (corrupt input must *never* panic — the chaos
//! harness feeds truncated and bit-flipped snapshots in by design) and the
//! [`SnapWriter`] / [`SnapReader`] pair, a little-endian codec in the style
//! of the golden-trace format whose every read is bounds-checked.

use std::fmt;

/// Leading magic of a runtime snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"RSNP";

/// Current snapshot format version. Readers reject anything newer; older
/// versions are listed in DESIGN §14 with their upgrade rules (none yet —
/// version 1 is the first).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be decoded or accepted.
///
/// `Copy` on purpose, like [`RegionError`](crate::RegionError): errors
/// carry only scalars and static section names, so chaos harnesses can
/// record and fold them into deterministic digests without allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The input does not start with [`SNAPSHOT_MAGIC`] — it is not a
    /// snapshot at all (or the header was corrupted).
    BadMagic,
    /// The input claims a format version this build cannot read.
    UnsupportedVersion {
        /// The version the input claims.
        version: u32,
    },
    /// The input ended before the named section was fully read.
    Truncated {
        /// Section being decoded when the bytes ran out.
        section: &'static str,
    },
    /// A section decoded but its contents are structurally impossible
    /// (e.g. a heap image that is not a whole number of pages, a
    /// descriptor with out-of-bounds pointer offsets, an unknown enum
    /// tag). The byte offset pins the first bad field.
    Malformed {
        /// Section that failed validation.
        section: &'static str,
        /// Byte offset of the offending field within the input.
        offset: usize,
    },
    /// The input decoded fully but left unconsumed trailing bytes —
    /// almost certainly a truncation of a *different* snapshot spliced
    /// onto this one, so it is rejected rather than silently ignored.
    TrailingBytes {
        /// Number of bytes left over.
        extra: usize,
    },
    /// The restored runtime failed its mandatory post-restore
    /// [`sanitize()`](crate::RegionRuntime::sanitize) gate: the decoded
    /// books are internally inconsistent (reference counts or the
    /// page-map mirror do not recompute), so execution must not resume
    /// from this state. Violations *recorded before capture* round-trip
    /// as data and do not trip the gate.
    SanitizeFailed {
        /// Regions whose recomputed rc disagrees with the decoded one.
        rc_mismatches: usize,
        /// Pages where the decoded mirror disagrees with the in-heap map.
        mirror_mismatches: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SnapshotError::BadMagic => write!(f, "snapshot rejected: bad magic"),
            SnapshotError::UnsupportedVersion { version } => write!(
                f,
                "snapshot rejected: unsupported format version {version} (this build reads <= {SNAPSHOT_VERSION})"
            ),
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot rejected: truncated in section '{section}'")
            }
            SnapshotError::Malformed { section, offset } => {
                write!(f, "snapshot rejected: malformed section '{section}' at byte {offset}")
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "snapshot rejected: {extra} trailing byte(s) after the last section")
            }
            SnapshotError::SanitizeFailed { rc_mismatches, mirror_mismatches } => write!(
                f,
                "restored state failed the sanitize gate: {rc_mismatches} rc mismatch(es), \
                 {mirror_mismatches} mirror mismatch(es)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Little-endian byte writer for snapshot sections.
///
/// The writer is infallible; all validation lives on the read side.
#[derive(Default, Debug)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64` (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with no length prefix (caller encodes the length).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.u32(bytes.len() as u32);
        self.raw(bytes);
    }

    /// Appends `Some`/`None` as a tag byte plus the value when present.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Appends `Some`/`None` as a tag byte plus the value when present.
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
            None => self.u8(0),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over snapshot bytes.
///
/// Every read names the section being decoded (set with
/// [`SnapReader::section`]) so a truncation error pins where the input
/// ran out. No read panics: past-the-end access returns
/// [`SnapshotError::Truncated`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0, section: "header" }
    }

    /// Names the section subsequent reads belong to (for error reporting).
    pub fn section(&mut self, name: &'static str) {
        self.section = name;
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// A [`SnapshotError::Malformed`] at the current offset in the current
    /// section — for callers that decode a field successfully but find its
    /// value structurally impossible.
    pub fn malformed(&self) -> SnapshotError {
        SnapshotError::Malformed { section: self.section, offset: self.pos }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated { section: self.section })?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated { section: self.section });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Reads a `u32` length prefix followed by that many bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads an option written by [`SnapWriter::opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(self.malformed()),
        }
    }

    /// Reads an option written by [`SnapWriter::opt_u32`].
    pub fn opt_u32(&mut self) -> Result<Option<u32>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(self.malformed()),
        }
    }

    /// Asserts the input is fully consumed; trailing bytes are rejected.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        let extra = self.buf.len() - self.pos;
        if extra != 0 {
            return Err(SnapshotError::TrailingBytes { extra });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = SnapWriter::new();
        w.raw(&SNAPSHOT_MAGIC);
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.bytes(b"hello");
        w.opt_u64(Some(99));
        w.opt_u64(None);
        w.opt_u32(Some(3));
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.raw(4).unwrap(), &SNAPSHOT_MAGIC);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.opt_u64().unwrap(), Some(99));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u32().unwrap(), Some(3));
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed_and_names_the_section() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        r.section("stats");
        assert_eq!(r.u64(), Err(SnapshotError::Truncated { section: "stats" }));
    }

    #[test]
    fn length_prefix_cannot_read_past_end() {
        let mut w = SnapWriter::new();
        w.u32(1_000_000); // claims a million bytes follow
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.section("heap");
        assert_eq!(r.bytes(), Err(SnapshotError::Truncated { section: "heap" }));
    }

    #[test]
    fn bad_option_tag_is_malformed() {
        let mut r = SnapReader::new(&[9]);
        r.section("fault-plan");
        assert!(matches!(
            r.opt_u64(),
            Err(SnapshotError::Malformed { section: "fault-plan", .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = SnapReader::new(&[1, 2, 3]);
        assert_eq!(r.finish(), Err(SnapshotError::TrailingBytes { extra: 3 }));
    }

    #[test]
    fn display_messages_are_stable() {
        assert!(SnapshotError::BadMagic.to_string().contains("bad magic"));
        assert!(SnapshotError::UnsupportedVersion { version: 9 }
            .to_string()
            .contains("unsupported format version 9"));
        assert!(SnapshotError::SanitizeFailed { rc_mismatches: 1, mirror_mismatches: 0 }
            .to_string()
            .contains("sanitize gate"));
    }
}
