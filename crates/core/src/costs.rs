//! Cost accounting for the safety machinery (paper Figure 11 and §4.2–4.3).
//!
//! The paper divides the cost of safe regions into three parts:
//! *reference counting* on region-pointer writes, *stack scanning* when
//! `deleteregion` is called (plus the paired unscans on return), and
//! *cleanup* — walking a deleted region's objects to release the counts
//! they hold on other regions.
//!
//! We count each event and also accumulate a simulated instruction total
//! using the paper's own costs where it gives them: a statically-recognized
//! write to global storage costs **16** SPARC instructions and a write
//! within a region costs **23** (Figure 5). Costs the paper does not
//! quantify (the dynamic-dispatch write, per-slot scan work, per-object
//! cleanup work) use documented estimates of the same flavour.

/// Instruction cost of a reference-counted write to global storage
/// (paper Figure 5: "Global writes — 16 instructions").
pub const GLOBAL_WRITE_INSTRS: u64 = 16;

/// Instruction cost of a reference-counted write within a region
/// (paper Figure 5: "Region writes — 23 instructions").
pub const REGION_WRITE_INSTRS: u64 = 23;

/// Instruction cost of a write that could not be classified at compile
/// time and goes through the runtime dispatch routine (§4.2.2 mentions "a
/// more expensive runtime routine"; estimated as dispatch + region-write).
pub const UNKNOWN_WRITE_INSTRS: u64 = 31;

/// Instruction cost of a write whose barrier was statically elided by the
/// compiler's sameregion inference (the paper's `sameregion` qualifier,
/// §3.3). The store itself remains plus the null test the qualifier's
/// proof obligation still requires; all page-map lookups and count
/// adjustments are gone.
pub const ELIDED_WRITE_INSTRS: u64 = 2;

/// Estimated instructions to scan or unscan one stack slot (load the slot,
/// null test, page-map lookup, count adjustment).
pub const SCAN_SLOT_INSTRS: u64 = 8;

/// Estimated per-frame overhead of a scan or unscan (locate the liveness
/// map, adjust the high-water mark, patch the return address).
pub const SCAN_FRAME_INSTRS: u64 = 12;

/// Estimated instructions of cleanup bookkeeping per object (read the
/// cleanup word, dispatch, advance the scan pointer).
pub const CLEANUP_OBJECT_INSTRS: u64 = 6;

/// Estimated instructions per region-pointer word released during cleanup.
pub const CLEANUP_PTR_INSTRS: u64 = 8;

/// Counters for every component of the safety machinery.
///
/// All counters are zero in unsafe mode — the unsafe library is "identical
/// to the safe version, except that all support for maintaining reference
/// counts is disabled" (§4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SafetyCosts {
    /// Reference-counted writes to global storage.
    pub barriers_global: u64,
    /// Reference-counted writes to locations inside regions.
    pub barriers_region: u64,
    /// Writes classified at runtime (the expensive dispatch path).
    pub barriers_unknown: u64,
    /// Region-pointer writes whose barrier was statically elided
    /// (compile-time *sameregion* proof); charged
    /// [`ELIDED_WRITE_INSTRS`] each instead of a full barrier.
    pub barriers_elided: u64,
    /// Simulated instructions spent in write barriers.
    pub barrier_instrs: u64,
    /// Frames scanned by `deleteregion` stack scans.
    pub frames_scanned: u64,
    /// Stack slots examined during scans.
    pub slots_scanned: u64,
    /// Frames unscanned (on return into a scanned frame).
    pub frames_unscanned: u64,
    /// Stack slots examined during unscans.
    pub slots_unscanned: u64,
    /// Simulated instructions spent scanning/unscanning the stack.
    pub scan_instrs: u64,
    /// Objects walked by region cleanup.
    pub cleanup_objects: u64,
    /// Region-pointer words released by region cleanup.
    pub cleanup_ptrs: u64,
    /// Pages walked by region cleanup.
    pub cleanup_pages: u64,
    /// Simulated instructions spent in cleanup.
    pub cleanup_instrs: u64,
    /// Successful region deletions.
    pub deletes: u64,
    /// `deleteregion` calls refused because external references existed.
    pub deletes_failed: u64,
}

/// Attribution of `deleteregion` stack-scan work by outcome.
///
/// [`SafetyCosts::frames_scanned`] / [`SafetyCosts::slots_scanned`] charge
/// every scan the runtime performs — the paper's cost model prices a
/// refused `deleteregion` exactly like a successful one, because the work
/// was done either way. For tuning, though, the two populations matter
/// separately: a refused delete's scan is wasted work that the next
/// attempt will repeat in full, so an incremental deletion that keeps
/// getting blocked re-pays its scan on every retry. These counters split
/// out the refused share.
///
/// They are host-side diagnostics, deliberately **not** part of the
/// serialized `SafetyCosts` block (the RSNP v1 sixteen-counter layout is
/// frozen for byte compatibility); a restored runtime starts them at
/// zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanAttribution {
    /// Frames scanned by `deleteregion` attempts that were then refused
    /// (`DeleteBlocked`). Subset of [`SafetyCosts::frames_scanned`].
    pub refused_frames: u64,
    /// Stack slots examined by refused attempts. Subset of
    /// [`SafetyCosts::slots_scanned`].
    pub refused_slots: u64,
}

impl SafetyCosts {
    /// Total simulated instructions attributable to safety.
    pub fn total_instrs(&self) -> u64 {
        self.barrier_instrs + self.scan_instrs + self.cleanup_instrs
    }

    /// Fraction of safety instructions in each category
    /// `(reference counting, stack scan, cleanup)`; `(0, 0, 0)` when no
    /// safety work happened.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let total = self.total_instrs();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.barrier_instrs as f64 / t,
            self.scan_instrs as f64 / t,
            self.cleanup_instrs as f64 / t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_one() {
        let costs = SafetyCosts {
            barrier_instrs: 160,
            scan_instrs: 40,
            cleanup_instrs: 200,
            ..SafetyCosts::default()
        };
        let (rc, scan, clean) = costs.breakdown();
        assert!((rc + scan + clean - 1.0).abs() < 1e-12);
        assert!((rc - 0.4).abs() < 1e-12);
        assert!((scan - 0.1).abs() < 1e-12);
        assert!((clean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        assert_eq!(SafetyCosts::default().breakdown(), (0.0, 0.0, 0.0));
        assert_eq!(SafetyCosts::default().total_instrs(), 0);
    }
}
