//! Lexical analysis for C@.

use std::fmt;

use crate::CompileError;

/// A token kind (with payload for literals and identifiers).
///
/// Variants map one-to-one onto C@'s lexemes; their names are their
/// documentation.
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    // literals / names
    Int(i32),
    Ident(String),
    // keywords
    KwInt,
    KwVoid,
    KwRegion,
    KwStruct,
    KwGlobal,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwNull,
    KwPrint,
    KwNewregion,
    KwDeleteregion,
    KwRalloc,
    KwRarrayalloc,
    KwRstralloc,
    KwRegionof,
    KwCast,
    // punctuation
    At,        // @
    Star,      // *
    Amp,       // &
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow, // ->
    Assign,
    Plus,
    Minus,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::KwInt => write!(f, "int"),
            Tok::KwVoid => write!(f, "void"),
            Tok::KwRegion => write!(f, "Region"),
            Tok::KwStruct => write!(f, "struct"),
            Tok::KwGlobal => write!(f, "global"),
            Tok::KwIf => write!(f, "if"),
            Tok::KwElse => write!(f, "else"),
            Tok::KwWhile => write!(f, "while"),
            Tok::KwFor => write!(f, "for"),
            Tok::KwReturn => write!(f, "return"),
            Tok::KwBreak => write!(f, "break"),
            Tok::KwContinue => write!(f, "continue"),
            Tok::KwNull => write!(f, "null"),
            Tok::KwPrint => write!(f, "print"),
            Tok::KwNewregion => write!(f, "newregion"),
            Tok::KwDeleteregion => write!(f, "deleteregion"),
            Tok::KwRalloc => write!(f, "ralloc"),
            Tok::KwRarrayalloc => write!(f, "rarrayalloc"),
            Tok::KwRstralloc => write!(f, "rstralloc"),
            Tok::KwRegionof => write!(f, "regionof"),
            Tok::KwCast => write!(f, "cast"),
            Tok::At => write!(f, "@"),
            Tok::Star => write!(f, "*"),
            Tok::Amp => write!(f, "&"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Arrow => write!(f, "->"),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::EqEq => write!(f, "=="),
            Tok::Ne => write!(f, "!="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Bang => write!(f, "!"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source line (for diagnostics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "int" => Tok::KwInt,
        "void" => Tok::KwVoid,
        "Region" => Tok::KwRegion,
        "struct" => Tok::KwStruct,
        "global" => Tok::KwGlobal,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "for" => Tok::KwFor,
        "return" => Tok::KwReturn,
        "break" => Tok::KwBreak,
        "continue" => Tok::KwContinue,
        "null" => Tok::KwNull,
        "print" => Tok::KwPrint,
        "newregion" => Tok::KwNewregion,
        "deleteregion" => Tok::KwDeleteregion,
        "ralloc" => Tok::KwRalloc,
        "rarrayalloc" => Tok::KwRarrayalloc,
        "rstralloc" => Tok::KwRstralloc,
        "regionof" => Tok::KwRegionof,
        "cast" => Tok::KwCast,
        _ => return None,
    })
}

/// Tokenizes C@ source. Supports `//` and `/* */` comments.
///
/// # Errors
///
/// Returns a [`CompileError`] on unknown characters, malformed numbers, or
/// unterminated comments.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    macro_rules! push {
        ($t:expr) => {
            out.push(Token { tok: $t, line })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(start_line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let v: i32 = text
                    .parse()
                    .map_err(|_| CompileError::new(line, format!("integer literal too large: {text}")))?;
                push!(Tok::Int(v));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &source[start..i];
                match keyword(word) {
                    Some(t) => push!(t),
                    None => push!(Tok::Ident(word.to_string())),
                }
            }
            _ => {
                let two = |a: char, b: char| c == a && bytes.get(i + 1) == Some(&(b as u8));
                let (tok, len) = if two('-', '>') {
                    (Tok::Arrow, 2)
                } else if two('=', '=') {
                    (Tok::EqEq, 2)
                } else if two('!', '=') {
                    (Tok::Ne, 2)
                } else if two('<', '=') {
                    (Tok::Le, 2)
                } else if two('>', '=') {
                    (Tok::Ge, 2)
                } else if two('&', '&') {
                    (Tok::AndAnd, 2)
                } else if two('|', '|') {
                    (Tok::OrOr, 2)
                } else {
                    let t = match c {
                        '@' => Tok::At,
                        '*' => Tok::Star,
                        '&' => Tok::Amp,
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        ';' => Tok::Semi,
                        ',' => Tok::Comma,
                        '.' => Tok::Dot,
                        '=' => Tok::Assign,
                        '+' => Tok::Plus,
                        '-' => Tok::Minus,
                        '/' => Tok::Slash,
                        '%' => Tok::Percent,
                        '<' => Tok::Lt,
                        '>' => Tok::Gt,
                        '!' => Tok::Bang,
                        other => {
                            return Err(CompileError::new(line, format!("unexpected character {other:?}")))
                        }
                    };
                    (t, 1)
                };
                push!(tok);
                i += len;
            }
        }
    }
    out.push(Token { tok: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_the_figure1_flavor() {
        let ts = toks("Region r = newregion();");
        assert_eq!(
            ts,
            vec![
                Tok::KwRegion,
                Tok::Ident("r".into()),
                Tok::Assign,
                Tok::KwNewregion,
                Tok::LParen,
                Tok::RParen,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_region_pointer_types() {
        assert_eq!(
            toks("list@ p; list* q;"),
            vec![
                Tok::Ident("list".into()),
                Tok::At,
                Tok::Ident("p".into()),
                Tok::Semi,
                Tok::Ident("list".into()),
                Tok::Star,
                Tok::Ident("q".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("a->b == c != d <= e >= f && g || h"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::EqEq,
                Tok::Ident("c".into()),
                Tok::Ne,
                Tok::Ident("d".into()),
                Tok::Le,
                Tok::Ident("e".into()),
                Tok::Ge,
                Tok::Ident("f".into()),
                Tok::AndAnd,
                Tok::Ident("g".into()),
                Tok::OrOr,
                Tok::Ident("h".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let tokens = lex("// one\n/* two\nthree */ x").unwrap();
        assert_eq!(tokens[0].tok, Tok::Ident("x".into()));
        assert_eq!(tokens[0].line, 3);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn unknown_character_errors_with_line() {
        let err = lex("x\n$").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn huge_integer_errors() {
        assert!(lex("99999999999999999999").is_err());
    }
}
