//! The C@ virtual machine.
//!
//! The VM executes compiled [`Program`]s against a
//! [`RegionRuntime`]: region-pointer locals live on the runtime's shadow
//! stack (scanned by `deleteregion`), object fields live in simulated
//! heap pages, and every pointer store goes through the barrier the
//! compiler chose. Running the same program on a
//! [`SafetyMode::Unsafe`] runtime reproduces the paper's unsafe-region
//! measurements: identical code, with all reference-count maintenance
//! disabled.

use region_core::{DescId, RegionError, RegionId, RegionRuntime, SafetyMode};
use simheap::Addr;

use crate::bytecode::{Insn, ParamSlot, Program};

/// A runtime trap (C@ is memory-safe: errors stop execution cleanly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    /// What went wrong.
    pub message: String,
    /// Function in which the trap occurred.
    pub func: String,
    /// Source line of the trapping instruction.
    pub line: u32,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trap in `{}` (line {}): {}", self.func, self.line, self.message)
    }
}

impl std::error::Error for VmError {}

struct Frame {
    func: usize,
    pc: usize,
    locals: Vec<u32>,
    stack_base: usize,
}

/// The C@ virtual machine.
///
/// ```
/// use cq_lang::{compile, Vm};
/// use region_core::SafetyMode;
///
/// let program = compile("void main() { print(6 * 7); }")?;
/// let mut vm = Vm::new(program, SafetyMode::Safe);
/// vm.run()?;
/// assert_eq!(vm.output(), &[42]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Vm {
    program: Program,
    runtime: RegionRuntime,
    descs: Vec<DescId>,
    globals: Addr,
    stack: Vec<u32>,
    output: Vec<i32>,
    instructions: u64,
    fuel: u64,
}

impl Vm {
    /// Creates a VM for `program` with the given safety mode and the
    /// default instruction budget (200 million).
    pub fn new(program: Program, mode: SafetyMode) -> Vm {
        let mut runtime = match mode {
            SafetyMode::Safe => RegionRuntime::new_safe(),
            SafetyMode::Unsafe => RegionRuntime::new_unsafe(),
        };
        let descs = program.descriptors.iter().map(|d| runtime.register_type(d.clone())).collect();
        let globals = runtime.alloc_globals(program.globals_size);
        Vm {
            program,
            runtime,
            descs,
            globals,
            stack: Vec::new(),
            output: Vec::new(),
            instructions: 0,
            fuel: 200_000_000,
        }
    }

    /// Sets the instruction budget (a trap fires when exhausted).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// The ints printed so far.
    pub fn output(&self) -> &[i32] {
        &self.output
    }

    /// Instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The underlying region runtime (statistics, safety costs, heap).
    pub fn runtime(&self) -> &RegionRuntime {
        &self.runtime
    }

    /// Mutable access to the runtime (e.g. to attach a cache simulator to
    /// the heap before running).
    pub fn runtime_mut(&mut self) -> &mut RegionRuntime {
        &mut self.runtime
    }

    fn region_handle(id: Option<RegionId>) -> u32 {
        id.map_or(0, |r| r.index() + 1)
    }

    /// Runs `main` to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on null dereference, division by zero, use of
    /// a deleted or null region, or fuel exhaustion.
    pub fn run(&mut self) -> Result<(), VmError> {
        let main = self.program.main_idx;
        let mut frames = vec![Frame {
            func: main,
            pc: 0,
            locals: vec![0; self.program.funcs[main].host_slots as usize],
            stack_base: 0,
        }];
        macro_rules! trap {
            ($frames:expr, $msg:expr) => {{
                let f = $frames.last().expect("frame");
                let fun = &self.program.funcs[f.func];
                let line = fun.lines.get(f.pc.saturating_sub(1)).copied().unwrap_or(0);
                return Err(VmError { message: $msg.into(), func: fun.name.clone(), line });
            }};
        }

        if let Err(e) = self.runtime.try_push_frame(self.program.funcs[main].shadow_slots as u32) {
            trap!(frames, format!("entering main: {e}"));
        }

        loop {
            self.instructions += 1;
            if self.instructions > self.fuel {
                trap!(frames, "instruction budget exhausted (infinite loop?)");
            }
            let frame = frames.last_mut().expect("frame");
            let func = &self.program.funcs[frame.func];
            let Some(&insn) = func.code.get(frame.pc) else {
                trap!(frames, "fell off the end of the code");
            };
            frame.pc += 1;
            match insn {
                Insn::Const(v) => self.stack.push(v as u32),
                Insn::Null => self.stack.push(0),
                Insn::Pop => {
                    self.stack.pop();
                }
                Insn::LoadLocal(s) => {
                    let v = frame.locals[s as usize];
                    self.stack.push(v);
                }
                Insn::StoreLocal(s) => {
                    let v = self.stack.pop().expect("value");
                    frame.locals[s as usize] = v;
                }
                Insn::LoadRLocal(s) => {
                    let v = self.runtime.get_local(u32::from(s));
                    self.stack.push(v.raw());
                }
                Insn::StoreRLocal(s) => {
                    let v = self.stack.pop().expect("value");
                    self.runtime.set_local(u32::from(s), Addr::new(v));
                }
                Insn::LoadGlobal(off) => {
                    let v = self.runtime.heap_mut().load_u32(self.globals + off);
                    self.stack.push(v);
                }
                Insn::StoreGlobal(off) => {
                    let v = self.stack.pop().expect("value");
                    self.runtime.heap_mut().store_u32(self.globals + off, v);
                }
                Insn::StoreGlobalPtr(off) => {
                    let v = self.stack.pop().expect("value");
                    self.runtime.store_ptr_global(self.globals + off, Addr::new(v));
                }
                Insn::StoreGlobalPtrNoRc(off) => {
                    let v = self.stack.pop().expect("value");
                    self.runtime.store_ptr_global_norc(self.globals + off, Addr::new(v));
                }
                Insn::AddrOfGlobal(off) => self.stack.push((self.globals + off).raw()),
                Insn::LoadField(off) => {
                    let p = self.stack.pop().expect("pointer");
                    if p == 0 {
                        trap!(frames, "null pointer dereference");
                    }
                    let v = self.runtime.heap_mut().load_u32(Addr::new(p) + off);
                    self.stack.push(v);
                }
                Insn::StoreFieldInt(off) => {
                    let v = self.stack.pop().expect("value");
                    let p = self.stack.pop().expect("pointer");
                    if p == 0 {
                        trap!(frames, "null pointer dereference");
                    }
                    self.runtime.heap_mut().store_u32(Addr::new(p) + off, v);
                }
                Insn::StoreFieldRPtr(off) => {
                    let v = self.stack.pop().expect("value");
                    let p = self.stack.pop().expect("pointer");
                    if p == 0 {
                        trap!(frames, "null pointer dereference");
                    }
                    self.runtime.store_ptr_region(Addr::new(p) + off, Addr::new(v));
                }
                Insn::StoreFieldRPtrSame(off) => {
                    let v = self.stack.pop().expect("value");
                    let p = self.stack.pop().expect("pointer");
                    if p == 0 {
                        trap!(frames, "null pointer dereference");
                    }
                    self.runtime.store_ptr_region_same(Addr::new(p) + off, Addr::new(v));
                }
                Insn::StoreFieldUnknown(off) => {
                    let v = self.stack.pop().expect("value");
                    let p = self.stack.pop().expect("pointer");
                    if p == 0 {
                        trap!(frames, "null pointer dereference");
                    }
                    self.runtime.store_ptr_unknown(Addr::new(p) + off, Addr::new(v));
                }
                Insn::IndexLoad => {
                    let i = self.stack.pop().expect("index") as i32;
                    let p = self.stack.pop().expect("base");
                    if p == 0 {
                        trap!(frames, "null pointer dereference");
                    }
                    if i < 0 {
                        trap!(frames, "negative array index");
                    }
                    let v = self.runtime.heap_mut().load_u32(Addr::new(p) + (i as u32) * 4);
                    self.stack.push(v);
                }
                Insn::IndexStore => {
                    let v = self.stack.pop().expect("value");
                    let i = self.stack.pop().expect("index") as i32;
                    let p = self.stack.pop().expect("base");
                    if p == 0 {
                        trap!(frames, "null pointer dereference");
                    }
                    if i < 0 {
                        trap!(frames, "negative array index");
                    }
                    self.runtime.heap_mut().store_u32(Addr::new(p) + (i as u32) * 4, v);
                }
                Insn::IndexStruct(size) => {
                    let i = self.stack.pop().expect("index") as i32;
                    let p = self.stack.pop().expect("base");
                    if p == 0 {
                        trap!(frames, "null pointer dereference");
                    }
                    if i < 0 {
                        trap!(frames, "negative array index");
                    }
                    self.stack.push(p.wrapping_add((i as u32).wrapping_mul(size)));
                }
                Insn::Add | Insn::Sub | Insn::Mul | Insn::Div | Insn::Mod => {
                    let b = self.stack.pop().expect("rhs") as i32;
                    let a = self.stack.pop().expect("lhs") as i32;
                    let r = match insn {
                        Insn::Add => a.wrapping_add(b),
                        Insn::Sub => a.wrapping_sub(b),
                        Insn::Mul => a.wrapping_mul(b),
                        Insn::Div => {
                            if b == 0 {
                                trap!(frames, "division by zero");
                            }
                            a.wrapping_div(b)
                        }
                        Insn::Mod => {
                            if b == 0 {
                                trap!(frames, "division by zero");
                            }
                            a.wrapping_rem(b)
                        }
                        _ => unreachable!(),
                    };
                    self.stack.push(r as u32);
                }
                Insn::Neg => {
                    let a = self.stack.pop().expect("operand") as i32;
                    self.stack.push(a.wrapping_neg() as u32);
                }
                Insn::Not => {
                    let a = self.stack.pop().expect("operand");
                    self.stack.push(u32::from(a == 0));
                }
                Insn::CmpEq | Insn::CmpNe => {
                    let b = self.stack.pop().expect("rhs");
                    let a = self.stack.pop().expect("lhs");
                    let eq = a == b;
                    self.stack.push(u32::from(if insn == Insn::CmpEq { eq } else { !eq }));
                }
                Insn::CmpLt | Insn::CmpLe | Insn::CmpGt | Insn::CmpGe => {
                    let b = self.stack.pop().expect("rhs") as i32;
                    let a = self.stack.pop().expect("lhs") as i32;
                    let r = match insn {
                        Insn::CmpLt => a < b,
                        Insn::CmpLe => a <= b,
                        Insn::CmpGt => a > b,
                        Insn::CmpGe => a >= b,
                        _ => unreachable!(),
                    };
                    self.stack.push(u32::from(r));
                }
                Insn::Jump(t) => frame.pc = t as usize,
                Insn::JumpIfZero(t) => {
                    let v = self.stack.pop().expect("cond");
                    if v == 0 {
                        frame.pc = t as usize;
                    }
                }
                Insn::JumpIfNonZero(t) => {
                    let v = self.stack.pop().expect("cond");
                    if v != 0 {
                        frame.pc = t as usize;
                    }
                }
                Insn::Call(fi) => {
                    if frames.len() >= 10_000 {
                        trap!(frames, "call stack overflow (runaway recursion?)");
                    }
                    let callee = &self.program.funcs[fi as usize];
                    let argc = callee.params.len();
                    let args: Vec<u32> = self.stack.split_off(self.stack.len() - argc);
                    let mut locals = vec![0u32; callee.host_slots as usize];
                    // Bind parameters: the runtime frame must exist before
                    // shadow params are stored, and binding happens before
                    // any callee instruction — no scan can intervene.
                    if let Err(e) = self.runtime.try_push_frame(u32::from(callee.shadow_slots)) {
                        trap!(frames, format!("calling {}: {e}", callee.name));
                    }
                    for (v, ps) in args.iter().zip(&callee.params) {
                        match *ps {
                            ParamSlot::Host(s) => locals[s as usize] = *v,
                            ParamSlot::Shadow(s) => {
                                self.runtime.set_local(u32::from(s), Addr::new(*v))
                            }
                        }
                    }
                    let stack_base = self.stack.len();
                    frames.push(Frame { func: fi as usize, pc: 0, locals, stack_base });
                }
                Insn::Ret => {
                    let rv = self.stack.pop().expect("return value");
                    let done = frames.len() == 1;
                    let f = frames.pop().expect("frame");
                    self.runtime.pop_frame();
                    self.stack.truncate(f.stack_base);
                    if done {
                        return Ok(());
                    }
                    self.stack.push(rv);
                }
                Insn::RetVoid => {
                    let done = frames.len() == 1;
                    let f = frames.pop().expect("frame");
                    self.runtime.pop_frame();
                    self.stack.truncate(f.stack_base);
                    if done {
                        return Ok(());
                    }
                }
                Insn::NewRegion => match self.runtime.try_new_region() {
                    Ok(r) => self.stack.push(Self::region_handle(Some(r))),
                    Err(e) => trap!(frames, format!("newregion failed: {e}")),
                },
                Insn::DeleteRegionLocal(slot) => {
                    let h = frame.locals[slot as usize];
                    if h == 0 {
                        trap!(frames, "deleteregion of the null region");
                    }
                    let r = RegionId::from_index(h - 1);
                    let ok = match self.runtime.try_delete_region(r) {
                        Ok(()) => true,
                        Err(RegionError::DeleteBlocked { .. }) => false,
                        Err(RegionError::RegionDeleted { .. }) => {
                            trap!(frames, "deleteregion of an already-deleted region");
                        }
                        Err(e) => trap!(frames, format!("deleteregion of region {}: {e}", h - 1)),
                    };
                    if ok {
                        frames.last_mut().expect("frame").locals[slot as usize] = 0;
                    }
                    self.stack.push(u32::from(ok));
                }
                Insn::DeleteRegionGlobal(off) => {
                    let h = self.runtime.heap_mut().load_u32(self.globals + off);
                    if h == 0 {
                        trap!(frames, "deleteregion of the null region");
                    }
                    let r = RegionId::from_index(h - 1);
                    let ok = match self.runtime.try_delete_region(r) {
                        Ok(()) => true,
                        Err(RegionError::DeleteBlocked { .. }) => false,
                        Err(RegionError::RegionDeleted { .. }) => {
                            trap!(frames, "deleteregion of an already-deleted region");
                        }
                        Err(e) => trap!(frames, format!("deleteregion of region {}: {e}", h - 1)),
                    };
                    if ok {
                        self.runtime.heap_mut().store_u32(self.globals + off, 0);
                    }
                    self.stack.push(u32::from(ok));
                }
                Insn::RegionOf => {
                    let p = self.stack.pop().expect("pointer");
                    let r = self.runtime.region_of(Addr::new(p));
                    self.stack.push(Self::region_handle(r));
                }
                Insn::Ralloc(sid) => {
                    let r = self.pop_live_region(&frames)?;
                    match self.runtime.try_ralloc(r, self.descs[sid as usize]) {
                        Ok(a) => self.stack.push(a.raw()),
                        Err(e) => trap!(frames, format!("ralloc in region {}: {e}", r.index())),
                    }
                }
                Insn::RArrayAlloc(sid) => {
                    let n = self.stack.pop().expect("count") as i32;
                    if n < 0 {
                        trap!(frames, "negative array allocation count");
                    }
                    let r = self.pop_live_region(&frames)?;
                    match self.runtime.try_rarrayalloc(r, n as u32, self.descs[sid as usize]) {
                        Ok(a) => self.stack.push(a.raw()),
                        Err(e) => {
                            trap!(frames, format!("rarrayalloc in region {}: {e}", r.index()))
                        }
                    }
                }
                Insn::RStrAlloc => {
                    let n = self.stack.pop().expect("count") as i32;
                    if n <= 0 {
                        trap!(frames, "rstralloc of a non-positive size");
                    }
                    let r = self.pop_live_region(&frames)?;
                    let Some(bytes) = (n as u32).checked_mul(4) else {
                        trap!(frames, format!("rstralloc size overflow: {n} words"));
                    };
                    match self.runtime.try_rstralloc(r, bytes) {
                        Ok(a) => self.stack.push(a.raw()),
                        Err(e) => trap!(frames, format!("rstralloc in region {}: {e}", r.index())),
                    }
                }
                Insn::DupToRtmp { depth, slot } => {
                    let v = self.stack[self.stack.len() - 1 - depth as usize];
                    self.runtime.set_local(u32::from(slot), Addr::new(v));
                }
                Insn::ClearRtmp(slot) => {
                    self.runtime.set_local(u32::from(slot), Addr::NULL);
                }
                Insn::Print => {
                    let v = self.stack.pop().expect("value") as i32;
                    self.output.push(v);
                }
            }
        }
    }

    fn pop_live_region(&mut self, frames: &[Frame]) -> Result<RegionId, VmError> {
        let h = self.stack.pop().expect("region");
        let trap = |msg: &str| {
            let f = frames.last().expect("frame");
            let fun = &self.program.funcs[f.func];
            let line = fun.lines.get(f.pc.saturating_sub(1)).copied().unwrap_or(0);
            Err(VmError { message: msg.into(), func: fun.name.clone(), line })
        };
        if h == 0 {
            return trap("allocation in the null region");
        }
        let r = RegionId::from_index(h - 1);
        if !self.runtime.is_live(r) {
            return trap("allocation in a deleted region");
        }
        Ok(r)
    }
}
