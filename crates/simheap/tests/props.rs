//! Property tests: the simulated heap behaves like flat byte-addressable
//! memory with an append-only break.

use proptest::prelude::*;
use simheap::{Addr, SimHeap, PAGE_SIZE, WORD};

/// Model: a plain host byte vector addressed the same way.
#[derive(Debug, Clone)]
enum Op {
    StoreU8 { off: u32, val: u8 },
    StoreU32 { off: u32, val: u32 },
    Fill { off: u32, len: u32, byte: u8 },
    Copy { dst: u32, src: u32, len: u32 },
}

const AREA: u32 = 4 * PAGE_SIZE;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..AREA - 1, any::<u8>()).prop_map(|(off, val)| Op::StoreU8 { off, val }),
        (0..(AREA / WORD) - 1, any::<u32>())
            .prop_map(|(w, val)| Op::StoreU32 { off: w * WORD, val }),
        (0..AREA - 64, 0u32..64, any::<u8>()).prop_map(|(off, len, byte)| Op::Fill { off, len, byte }),
        (0..AREA / 2 - 64, 0u32..64).prop_map(|(d, len)| Op::Copy {
            dst: AREA / 2 + d,
            src: d,
            len
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn heap_matches_flat_memory_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut heap = SimHeap::new();
        let base = heap.sbrk_pages(AREA / PAGE_SIZE);
        let mut model = vec![0u8; AREA as usize];

        for op in &ops {
            match *op {
                Op::StoreU8 { off, val } => {
                    heap.store_u8(base + off, val);
                    model[off as usize] = val;
                }
                Op::StoreU32 { off, val } => {
                    heap.store_u32(base + off, val);
                    model[off as usize..off as usize + 4].copy_from_slice(&val.to_le_bytes());
                }
                Op::Fill { off, len, byte } => {
                    heap.fill(base + off, len, byte);
                    for b in &mut model[off as usize..(off + len) as usize] {
                        *b = byte;
                    }
                }
                Op::Copy { dst, src, len } => {
                    heap.copy(base + dst, base + src, len);
                    let (lo, hi) = model.split_at_mut(dst as usize);
                    hi[..len as usize].copy_from_slice(&lo[src as usize..(src + len) as usize]);
                }
            }
        }
        prop_assert_eq!(heap.snapshot(base, AREA), model);
    }

    #[test]
    fn sbrk_never_moves_down_and_zeroes(pages in proptest::collection::vec(1u32..4, 1..12)) {
        let mut heap = SimHeap::new();
        let mut prev_brk = heap.brk();
        for p in pages {
            let got = heap.sbrk_pages(p);
            prop_assert_eq!(got, prev_brk);
            prop_assert_eq!(heap.brk() - got, p * PAGE_SIZE);
            // new memory is zeroed
            prop_assert_eq!(heap.load_u32(got), 0);
            prop_assert_eq!(heap.load_u32(heap.brk() - WORD), 0);
            prev_brk = heap.brk();
        }
    }

    #[test]
    fn word_roundtrip(vals in proptest::collection::vec(any::<u32>(), 1..64)) {
        let mut heap = SimHeap::new();
        let base = heap.sbrk_pages(1);
        for (i, v) in vals.iter().enumerate() {
            heap.store_u32(base + (i as u32) * WORD, *v);
        }
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(heap.load_u32(base + (i as u32) * WORD), *v);
            prop_assert_eq!(heap.load_addr(base + (i as u32) * WORD), Addr::new(*v));
        }
    }
}
