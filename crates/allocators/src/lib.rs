//! The malloc/free baselines of the paper's evaluation (§5.2).
//!
//! Gay & Aiken compare regions against three malloc implementations and a
//! conservative collector:
//!
//! * **Sun** — "the default allocator supplied with Solaris 2.5.1", a
//!   best-fit allocator ([`SunMalloc`]);
//! * **BSD** — the CSRG/Kingsley power-of-two allocator: "it rounds
//!   allocations up to the nearest power of two ... fast allocation and
//!   deallocation but ... a very large memory overhead" ([`BsdMalloc`]);
//! * **Lea** — Doug Lea's malloc v2.6.4, binned best-fit with boundary
//!   tags and coalescing ([`LeaMalloc`]);
//! * the Boehm–Weiser collector, implemented in the `conservative-gc`
//!   crate against this crate's [`RawMalloc`] interface.
//!
//! The paper also uses an **emulation** library — "a region library that
//! uses malloc and free to allocate and free each individual object" — to
//! run region-structured programs on malloc; that is
//! [`EmulatedRegions`].
//!
//! All allocators operate on the simulated address space of `simheap`, so
//! their OS footprint (Figure 8) and memory access patterns (Figure 10)
//! are observable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bsd;
mod emulation;
mod lea;
mod sun;

pub use bsd::BsdMalloc;
pub use emulation::{EmuRegionId, EmulatedRegions};
pub use lea::LeaMalloc;
pub use sun::SunMalloc;

use region_core::AllocStats;
use simheap::{Addr, SimHeap};

/// The malloc/free interface every baseline implements.
///
/// The GC hooks (`push_roots` and friends) exist so that the same
/// workload code can run against the conservative collector: they
/// maintain a root area the collector scans, and are no-ops for real
/// malloc/free allocators (where liveness is explicit). The root API is
/// *write-only* — workloads keep their pointers in host variables and
/// mirror them into root slots.
pub trait RawMalloc {
    /// Allocates `size` bytes; the returned address is at least 4-aligned.
    /// `size` 0 is allowed and yields a minimal block.
    fn malloc(&mut self, heap: &mut SimHeap, size: u32) -> Addr;

    /// Frees a block previously returned by [`RawMalloc::malloc`].
    /// Freeing [`Addr::NULL`] is a no-op. Garbage collectors ignore this
    /// entirely (the paper disables all frees under the Boehm–Weiser
    /// collector).
    fn free(&mut self, heap: &mut SimHeap, ptr: Addr);

    /// Human-readable allocator name ("sun", "bsd", "lea", "gc").
    fn name(&self) -> &'static str;

    /// Pages this allocator has requested from the OS (Figure 8).
    fn os_pages(&self) -> u64;

    /// Allocation statistics (Table 3).
    fn stats(&self) -> &AllocStats;

    /// Pushes a frame of `n` root slots (no-op unless collecting).
    fn push_roots(&mut self, _heap: &mut SimHeap, _n: u32) {}

    /// Mirrors a pointer into root slot `i` of the newest root frame
    /// (no-op unless collecting).
    fn set_root(&mut self, _heap: &mut SimHeap, _i: u32, _v: Addr) {}

    /// Pops the newest root frame (no-op unless collecting).
    fn pop_roots(&mut self, _heap: &mut SimHeap) {}

    /// Registers a range of global storage the collector must treat as
    /// roots (no-op unless collecting).
    fn add_global_roots(&mut self, _start: Addr, _len: u32) {}
}

impl<T: RawMalloc + ?Sized> RawMalloc for Box<T> {
    fn malloc(&mut self, heap: &mut SimHeap, size: u32) -> Addr {
        (**self).malloc(heap, size)
    }
    fn free(&mut self, heap: &mut SimHeap, ptr: Addr) {
        (**self).free(heap, ptr)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn os_pages(&self) -> u64 {
        (**self).os_pages()
    }
    fn stats(&self) -> &AllocStats {
        (**self).stats()
    }
    fn push_roots(&mut self, heap: &mut SimHeap, n: u32) {
        (**self).push_roots(heap, n)
    }
    fn set_root(&mut self, heap: &mut SimHeap, i: u32, v: Addr) {
        (**self).set_root(heap, i, v)
    }
    fn pop_roots(&mut self, heap: &mut SimHeap) {
        (**self).pop_roots(heap)
    }
    fn add_global_roots(&mut self, start: Addr, len: u32) {
        (**self).add_global_roots(start, len)
    }
}

/// Tracks pages obtained from the simulated OS by one allocator.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct OsAccount {
    pub(crate) pages: u64,
}

impl OsAccount {
    pub(crate) fn sbrk_pages(&mut self, heap: &mut SimHeap, n: u32) -> Addr {
        self.pages += u64::from(n);
        heap.sbrk_pages(n)
    }
}
