//! Umbrella crate for the reproduction of Gay & Aiken,
//! *Memory Management with Explicit Regions* (PLDI 1998).
//!
//! This crate re-exports the member crates so examples and integration
//! tests can reach the whole system through one dependency:
//!
//! * [`region_core`] — the paper's safe region runtime and a host-Rust
//!   [`region_core::Arena`];
//! * [`simheap`] — the simulated 32-bit address space everything runs on;
//! * [`malloc_suite`] — the Sun/BSD/Lea malloc baselines and region
//!   emulation;
//! * [`conservative_gc`] — the Boehm–Weiser-style collector;
//! * [`cq_lang`] — the C@ language: compiler and VM with region pointers;
//! * [`workloads`] — the six benchmark programs of the evaluation;
//! * [`cache_sim`] — the UltraSparc-like cache simulator behind Figure 10.

#![forbid(unsafe_code)]

pub use cache_sim;
pub use conservative_gc;
pub use cq_lang;
pub use malloc_suite;
pub use region_core;
pub use simheap;
pub use workloads;
