//! Property tests for crash recovery: snapshotting an arbitrary valid op
//! sequence at **every prefix length**, restoring, and replaying the
//! suffix must be observationally identical to the uninterrupted run —
//! same final snapshot bytes (hence same heap image, counters, stats,
//! costs and fault-plan progress), same violations, same `sanitize()`
//! verdict. Runs with `REGION_SANITIZE=1` semantics: the sanitizer is
//! checked explicitly at every kill point on both arms.

use proptest::prelude::*;
use region_core::{DescId, FaultPlan, RegionId, RegionRuntime, TypeDescriptor};
use simheap::Addr;

#[derive(Debug, Clone)]
enum Op {
    New,
    Alloc { region: usize },
    Str { region: usize },
    Link { from: usize, to: usize },
    SetGlobal { g: usize, obj: usize },
    Delete { region: usize },
}

const NGLOBALS: usize = 2;

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(Op::New),
            5 => any::<usize>().prop_map(|region| Op::Alloc { region }),
            2 => any::<usize>().prop_map(|region| Op::Str { region }),
            3 => (any::<usize>(), any::<usize>()).prop_map(|(from, to)| Op::Link { from, to }),
            2 => (0..NGLOBALS, any::<usize>()).prop_map(|(g, obj)| Op::SetGlobal { g, obj }),
            3 => any::<usize>().prop_map(|region| Op::Delete { region }),
        ],
        1..40,
    )
}

/// Deterministic replay driver. All host-side bookkeeping (live regions,
/// object addresses) is a pure function of the op prefix, so it can be
/// rebuilt for the restored arm by replaying the same prefix — the only
/// state that crosses the simulated "kill" is the snapshot itself.
struct World {
    rt: RegionRuntime,
    node: DescId,
    globals: Addr,
    live: Vec<RegionId>,
    objs: Vec<Addr>,
}

impl World {
    fn new(plan: Option<FaultPlan>) -> World {
        let mut rt = RegionRuntime::new_safe();
        let node = rt.register_type(TypeDescriptor::new("node", 8, vec![4]));
        let globals = rt.alloc_globals(4 * NGLOBALS as u32);
        if let Some(plan) = plan {
            rt.set_fault_plan(plan);
        }
        World { rt, node, globals, live: Vec::new(), objs: Vec::new() }
    }

    /// Rebuilds a world around a restored runtime, adopting the
    /// bookkeeping of the world that was killed (addresses and region
    /// ids survive bit-identical restoration by construction).
    fn adopt(rt: RegionRuntime, donor: &World) -> World {
        World {
            rt,
            node: DescId::from_index(donor.node.index()),
            globals: donor.globals,
            live: donor.live.clone(),
            objs: donor.objs.clone(),
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::New => {
                if let Ok(r) = self.rt.try_new_region() {
                    self.live.push(r);
                }
            }
            Op::Alloc { region } => {
                if self.live.is_empty() {
                    return;
                }
                let r = self.live[region % self.live.len()];
                if let Ok(a) = self.rt.try_ralloc(r, self.node) {
                    self.objs.push(a);
                }
            }
            Op::Str { region } => {
                if self.live.is_empty() {
                    return;
                }
                let r = self.live[region % self.live.len()];
                let _ = self.rt.try_rstralloc(r, 24);
            }
            Op::Link { from, to } => {
                if self.objs.is_empty() {
                    return;
                }
                let fa = self.objs[from % self.objs.len()];
                let ta = self.objs[to % self.objs.len()];
                self.rt.store_ptr_region(fa + 4, ta);
            }
            Op::SetGlobal { g, obj } => {
                if self.objs.is_empty() {
                    return;
                }
                let a = self.objs[obj % self.objs.len()];
                self.rt.store_ptr_global(self.globals + 4 * *g as u32, a);
            }
            Op::Delete { region } => {
                if self.live.is_empty() {
                    return;
                }
                let r = self.live[region % self.live.len()];
                if self.rt.try_delete_region(r).is_ok() {
                    self.live.retain(|&x| x != r);
                    // Dangling object addresses are fine to keep: replay
                    // is deterministic on both arms either way, and the
                    // driver only stores through *linked* live objects.
                    // But dropping them keeps Link targeting live data.
                    self.objs.clear();
                }
            }
        }
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3))
}

/// One straight-through run plus, for every prefix length `k`, a
/// kill-at-`k` → restore → replay-suffix run; all arms must converge to
/// the same digest, counters, and sanitize verdict.
fn check_every_prefix(ops: &[Op], plan: Option<FaultPlan>) {
    // The uninterrupted control arm.
    let mut control = World::new(plan.clone());
    for op in ops {
        control.apply(op);
    }
    let want = control.rt.capture_snapshot();
    let want_digest = fnv(&want);
    let want_stats = *control.rt.stats();
    let want_clean = control.rt.sanitize().is_clean();

    for k in 0..=ops.len() {
        // Re-run the prefix, kill, snapshot, drop everything.
        let mut pre = World::new(plan.clone());
        for op in &ops[..k] {
            pre.apply(op);
        }
        let snap = pre.rt.capture_snapshot();
        let restored =
            RegionRuntime::restore_snapshot(&snap).expect("own snapshot must restore");
        // The restore gate ran sanitize; check the verdict explicitly
        // too, REGION_SANITIZE-style, before resuming.
        assert!(
            restored.sanitize().is_clean() == pre.rt.sanitize().is_clean(),
            "kill at {k}: restored sanitize verdict diverged"
        );
        let mut post = World::adopt(restored, &pre);
        drop(pre); // the "killed process"
        for op in &ops[k..] {
            post.apply(op);
        }
        let got = post.rt.capture_snapshot();
        assert_eq!(
            fnv(&got),
            want_digest,
            "kill at {k}/{}: replayed digest diverged from straight-through",
            ops.len()
        );
        assert_eq!(got, want, "kill at {k}: snapshot bytes diverged");
        assert_eq!(*post.rt.stats(), want_stats, "kill at {k}: stats diverged");
        assert_eq!(
            post.rt.sanitize().is_clean(),
            want_clean,
            "kill at {k}: sanitize verdict diverged"
        );
        assert_eq!(
            post.rt.violations(),
            control.rt.violations(),
            "kill at {k}: recorded violations diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot/restore at every prefix of an arbitrary fault-free
    /// sequence is invisible to the rest of the run.
    #[test]
    fn replay_from_any_prefix_matches_straight_through(ops in ops()) {
        check_every_prefix(&ops, None);
    }

    /// Same, with an injected-fault schedule running: the kill point can
    /// land *inside* a fault window, and the restored fault-plan
    /// progress must keep firing faults at exactly the same ops.
    #[test]
    fn replay_under_fault_injection_matches_straight_through(
        ops in ops(),
        seed in 1u64..1_000,
    ) {
        let plan = FaultPlan::seeded(seed).fail_every_mth_alloc(7).fail_allocs_one_in(13);
        check_every_prefix(&ops, Some(plan));
    }
}
