//! The C@ virtual machine's instruction set and program representation.
//!
//! The compiler classifies every pointer store at compile time — local,
//! global, region, or statically unknown — and emits a distinct
//! instruction for each, mirroring §4.2.2: local stores are free, global
//! and region stores carry the Figure 5 barriers, and unknown stores
//! dispatch at runtime.

use region_core::TypeDescriptor;

/// One VM instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Insn {
    /// Push a constant.
    Const(i32),
    /// Push the null pointer / null region (0).
    Null,
    /// Discard the top of stack.
    Pop,
    // --- locals ---
    /// Push host (int/Region/normal-pointer) local `slot`.
    LoadLocal(u16),
    /// Pop into host local `slot`.
    StoreLocal(u16),
    /// Push region-pointer local `slot` (a shadow-stack slot).
    LoadRLocal(u16),
    /// Pop into region-pointer local `slot` — **no reference counting**
    /// (§4.2.1: local writes are free under the deferred scheme).
    StoreRLocal(u16),
    // --- globals ---
    /// Push the word at globals+`off`.
    LoadGlobal(u32),
    /// Pop the word into globals+`off` (non-pointer data).
    StoreGlobal(u32),
    /// Pop a region pointer into globals+`off` with the 16-instruction
    /// global write barrier (Figure 5).
    StoreGlobalPtr(u32),
    /// Pop a region pointer into globals+`off` **without** reference
    /// counting: the inference pass proved every store to this global is
    /// null, so the barrier would move no counts (the *sameregion*
    /// analysis of §3.3 applied to global storage).
    StoreGlobalPtrNoRc(u32),
    /// Push the address of globals+`off` (for `&global_struct`).
    AddrOfGlobal(u32),
    // --- fields and arrays ---
    /// Pop a pointer, push the word at `ptr+off`. Traps on null.
    LoadField(u32),
    /// Pop value then pointer; store non-pointer data at `ptr+off`.
    StoreFieldInt(u32),
    /// Pop value then pointer; store a region pointer at `ptr+off` with
    /// the 23-instruction region write barrier (Figure 5).
    StoreFieldRPtr(u32),
    /// Pop value then pointer; the location's kind is unknown at compile
    /// time (a `*`-pointer target) — classify at runtime (§4.2.2).
    StoreFieldUnknown(u32),
    /// Pop value then pointer; store a region pointer at `ptr+off` with
    /// the barrier elided — the inference pass proved the value is null
    /// or lives in the same region as the target object (the paper's
    /// *sameregion* case, §3.3), so no counts can move.
    StoreFieldRPtrSame(u32),
    /// Pop index then `int@` base; push the int at `base + 4*index`.
    IndexLoad,
    /// Pop value, index, `int@` base; store the int (pointer-free data).
    IndexStore,
    /// Pop index then `S@` base; push `base + index*size` (address
    /// arithmetic on region pointers is allowed, §3.1).
    IndexStruct(u32),
    // --- arithmetic / logic ---
    /// Pop two ints, push their sum (wrapping).
    Add,
    /// Pop two ints, push lhs − rhs.
    Sub,
    /// Pop two ints, push product.
    Mul,
    /// Pop two ints, push quotient. Traps on division by zero.
    Div,
    /// Pop two ints, push remainder. Traps on division by zero.
    Mod,
    /// Negate the top int.
    Neg,
    /// Logical not: 0 → 1, non-zero → 0.
    Not,
    /// Pop two words, push 1 if equal else 0.
    CmpEq,
    /// Pop two words, push 1 if unequal else 0.
    CmpNe,
    /// Signed less-than.
    CmpLt,
    /// Signed less-or-equal.
    CmpLe,
    /// Signed greater-than.
    CmpGt,
    /// Signed greater-or-equal.
    CmpGe,
    // --- control ---
    /// Unconditional jump to code index.
    Jump(u32),
    /// Pop; jump if zero.
    JumpIfZero(u32),
    /// Pop; jump if non-zero.
    JumpIfNonZero(u32),
    /// Call function by index (arguments on the stack, left to right).
    Call(u16),
    /// Return the top of stack.
    Ret,
    /// Return from a void function.
    RetVoid,
    // --- regions ---
    /// Push a fresh region handle.
    NewRegion,
    /// Attempt to delete the region named by host local `slot`; on
    /// success the local is set to the null region (the paper's
    /// `deleteregion(&r)` writes NULL through its argument). Pushes 1/0.
    DeleteRegionLocal(u16),
    /// As [`Insn::DeleteRegionLocal`] for a `Region` global at `off`.
    DeleteRegionGlobal(u32),
    /// Pop a pointer, push its region handle (null region for globals).
    RegionOf,
    /// Pop a region handle, `ralloc` one object of struct `desc`.
    Ralloc(u16),
    /// Pop count then region, `rarrayalloc` an array of struct `desc`.
    RArrayAlloc(u16),
    /// Pop count then region, `rstralloc` `4*count` bytes of pointer-free
    /// storage. Traps if count ≤ 0.
    RStrAlloc,
    // --- scan-point bookkeeping ---
    /// Copy the eval-stack entry `depth` below the top into shadow slot
    /// `slot`, so a region pointer held in a "register" is visible to the
    /// stack scan across a call (the paper's per-call-site liveness maps,
    /// §4.2.3).
    DupToRtmp {
        /// 0 = top of stack.
        depth: u16,
        /// Destination shadow slot.
        slot: u16,
    },
    /// Null out shadow slot `slot` after the call completes.
    ClearRtmp(u16),
    // --- I/O ---
    /// Pop an int and append it to the program output.
    Print,
}

/// How a parameter is bound on function entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParamSlot {
    /// Bound to a host local.
    Host(u16),
    /// Bound to a shadow (region-pointer) slot.
    Shadow(u16),
}

/// A compiled function.
#[derive(Clone, Debug)]
pub struct Func {
    /// Function name (diagnostics).
    pub name: String,
    /// Where each parameter lands, in order.
    pub params: Vec<ParamSlot>,
    /// Number of host (non-region-pointer) local slots.
    pub host_slots: u16,
    /// Number of shadow slots (named region-pointer locals plus spill
    /// temporaries).
    pub shadow_slots: u16,
    /// Instructions.
    pub code: Vec<Insn>,
    /// Source line per instruction (diagnostics).
    pub lines: Vec<u32>,
}

/// A compiled C@ program.
#[derive(Clone, Debug)]
pub struct Program {
    /// Compiled functions; `main_idx` is the entry.
    pub funcs: Vec<Func>,
    /// Index of `main`.
    pub main_idx: usize,
    /// Bytes of global storage (zero-initialized; region pointers start
    /// null as §3.1 requires).
    pub globals_size: u32,
    /// One cleanup descriptor per struct, in struct-id order; the VM
    /// registers these with the region runtime so `DescId` = struct id.
    pub descriptors: Vec<TypeDescriptor>,
}

impl Program {
    /// Total instruction count across all functions.
    pub fn code_len(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}
