//! Declaration-level semantic analysis: struct layouts, global storage
//! layout, and function signatures.
//!
//! C@'s type system distinguishes region pointers (`S @`) from normal
//! pointers (`S *`); "the types `T@` and `T*` are different types, and no
//! implicit conversion exists between them although explicit casts are
//! allowed" (§3.1). Struct fields are all word-sized (ints, `Region`
//! handles, pointers, `int@` arrays), so a struct of *n* fields occupies
//! *4n* bytes; structs never appear as values, which enforces the paper's
//! ban on copying structs that contain region pointers by construction.

use std::collections::HashMap;

use crate::ast::{TypeExpr, Unit};
use crate::CompileError;

/// Index of a struct in the unit.
pub type StructId = usize;

/// A resolved C@ type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ty {
    /// `int`
    Int,
    /// `void` (function returns only)
    Void,
    /// `Region` (a first-class region handle; not reference-counted)
    Region,
    /// `int@` — region-allocated int array (a region pointer for
    /// reference-counting purposes)
    IntArray,
    /// `S@` — region pointer
    RPtr(StructId),
    /// `S*` — normal pointer (not reference-counted; the unsafe escape
    /// hatch reached via `cast<>`)
    NPtr(StructId),
    /// The type of `null`, assignable to any pointer type.
    Null,
}

impl Ty {
    /// `true` for the pointer kinds the reference-counting machinery must
    /// track (region pointers, including `int@`).
    pub fn is_region_ptr(self) -> bool {
        matches!(self, Ty::RPtr(_) | Ty::IntArray)
    }

    /// `true` for any pointer kind (region or normal).
    pub fn is_pointer(self) -> bool {
        matches!(self, Ty::RPtr(_) | Ty::NPtr(_) | Ty::IntArray)
    }

    /// Can a value of type `src` be assigned to a location of type `self`?
    pub fn accepts(self, src: Ty) -> bool {
        self == src || (src == Ty::Null && self.is_pointer())
    }

    /// Can values of these types be compared with `==`/`!=`?
    pub fn comparable(self, other: Ty) -> bool {
        self == other
            || (self == Ty::Null && (other.is_pointer() || other == Ty::Region))
            || (other == Ty::Null && (self.is_pointer() || self == Ty::Region))
    }
}

/// A struct's layout.
#[derive(Clone, Debug)]
pub struct StructInfo {
    /// Struct name.
    pub name: String,
    /// (name, type, byte offset) per field.
    pub fields: Vec<(String, Ty, u32)>,
    /// Size in bytes (4 × field count).
    pub size: u32,
    /// Byte offsets of region-pointer fields — the auto-generated cleanup
    /// function (§4.2.4).
    pub ptr_offsets: Vec<u32>,
}

impl StructInfo {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<(Ty, u32)> {
        self.fields.iter().find(|(n, _, _)| n == name).map(|&(_, ty, off)| (ty, off))
    }
}

/// A global variable's storage.
#[derive(Clone, Debug)]
pub struct GlobalInfo {
    /// Variable name.
    pub name: String,
    /// Type of the variable (`NPtr` for in-place struct values, with
    /// [`GlobalInfo::struct_value`] set).
    pub ty: Ty,
    /// Byte offset in the globals area.
    pub offset: u32,
    /// `Some(struct id)` when this is an in-place struct value.
    pub struct_value: Option<StructId>,
}

/// A function's signature.
#[derive(Clone, Debug)]
pub struct FuncSig {
    /// Function name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
}

/// The declaration tables produced by [`analyze`].
#[derive(Debug, Default)]
pub struct Decls {
    /// Struct layouts, indexed by [`StructId`].
    pub structs: Vec<StructInfo>,
    /// Struct name → id.
    pub struct_ids: HashMap<String, StructId>,
    /// Globals, in declaration order.
    pub globals: Vec<GlobalInfo>,
    /// Global name → index in [`Decls::globals`].
    pub global_ids: HashMap<String, usize>,
    /// Total size of the globals area in bytes.
    pub globals_size: u32,
    /// Function signatures, in declaration order.
    pub funcs: Vec<FuncSig>,
    /// Function name → index.
    pub func_ids: HashMap<String, usize>,
}

impl Decls {
    /// Resolves a syntactic type. `allow_void` permits `void` (function
    /// returns).
    pub fn resolve(&self, te: &TypeExpr, line: u32, allow_void: bool) -> Result<Ty, CompileError> {
        Ok(match te {
            TypeExpr::Int => Ty::Int,
            TypeExpr::Region => Ty::Region,
            TypeExpr::IntArray => Ty::IntArray,
            TypeExpr::Void => {
                if allow_void {
                    Ty::Void
                } else {
                    return Err(CompileError::new(line, "`void` is only a return type"));
                }
            }
            TypeExpr::RegionPtr(name) => Ty::RPtr(self.struct_id(name, line)?),
            TypeExpr::NormalPtr(name) => Ty::NPtr(self.struct_id(name, line)?),
        })
    }

    /// Looks up a struct by name.
    pub fn struct_id(&self, name: &str, line: u32) -> Result<StructId, CompileError> {
        self.struct_ids
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::new(line, format!("unknown struct `{name}`")))
    }

    /// Human-readable type name for diagnostics.
    pub fn ty_name(&self, ty: Ty) -> String {
        match ty {
            Ty::Int => "int".into(),
            Ty::Void => "void".into(),
            Ty::Region => "Region".into(),
            Ty::IntArray => "int@".into(),
            Ty::RPtr(s) => format!("{}@", self.structs[s].name),
            Ty::NPtr(s) => format!("{}*", self.structs[s].name),
            Ty::Null => "null".into(),
        }
    }
}

/// Builds the declaration tables and checks all declarations.
///
/// # Errors
///
/// Reports duplicate names, unknown struct references, and a missing or
/// ill-typed `main`.
pub fn analyze(unit: &Unit) -> Result<Decls, CompileError> {
    let mut decls = Decls::default();

    // Struct names first (so fields may reference any struct, including
    // forward and self references, as in `struct list`).
    for (i, s) in unit.structs.iter().enumerate() {
        if decls.struct_ids.insert(s.name.clone(), i).is_some() {
            return Err(CompileError::new(s.line, format!("duplicate struct `{}`", s.name)));
        }
    }
    for s in &unit.structs {
        let mut fields = Vec::new();
        let mut ptr_offsets = Vec::new();
        let mut seen = HashMap::new();
        for (i, (te, fname)) in s.fields.iter().enumerate() {
            if seen.insert(fname.clone(), ()).is_some() {
                return Err(CompileError::new(
                    s.line,
                    format!("duplicate field `{fname}` in struct `{}`", s.name),
                ));
            }
            let ty = decls.resolve(te, s.line, false)?;
            let off = (i as u32) * 4;
            if ty.is_region_ptr() {
                ptr_offsets.push(off);
            }
            fields.push((fname.clone(), ty, off));
        }
        let size = (s.fields.len() as u32).max(1) * 4;
        decls.structs.push(StructInfo { name: s.name.clone(), fields, size, ptr_offsets });
    }

    // Globals.
    let mut offset = 0u32;
    for g in &unit.globals {
        if decls.global_ids.contains_key(&g.name) {
            return Err(CompileError::new(g.line, format!("duplicate global `{}`", g.name)));
        }
        let (ty, struct_value, size) = match &g.struct_value {
            Some(sname) => {
                let sid = decls.struct_id(sname, g.line)?;
                (Ty::NPtr(sid), Some(sid), decls.structs[sid].size)
            }
            None => (decls.resolve(&g.ty, g.line, false)?, None, 4),
        };
        decls.global_ids.insert(g.name.clone(), decls.globals.len());
        decls.globals.push(GlobalInfo { name: g.name.clone(), ty, offset, struct_value });
        offset += size;
    }
    decls.globals_size = offset.max(4);

    // Function signatures.
    for f in &unit.funcs {
        if decls.func_ids.contains_key(&f.name) {
            return Err(CompileError::new(f.line, format!("duplicate function `{}`", f.name)));
        }
        let ret = decls.resolve(&f.ret, f.line, true)?;
        let mut params = Vec::new();
        for (te, _) in &f.params {
            params.push(decls.resolve(te, f.line, false)?);
        }
        decls.func_ids.insert(f.name.clone(), decls.funcs.len());
        decls.funcs.push(FuncSig { name: f.name.clone(), params, ret });
    }

    // main must exist as `void main()`.
    match decls.func_ids.get("main") {
        Some(&i) if decls.funcs[i].params.is_empty() && decls.funcs[i].ret == Ty::Void => {}
        Some(&i) => {
            return Err(CompileError::new(
                unit.funcs[i].line,
                "`main` must be declared `void main()`",
            ))
        }
        None => return Err(CompileError::new(1, "missing `void main()`")),
    }

    Ok(decls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn decls(src: &str) -> Result<Decls, CompileError> {
        analyze(&parse(src).unwrap())
    }

    #[test]
    fn struct_layout_is_word_per_field() {
        let d = decls(
            "struct list { int i; list@ next; int@ data; list* alias; Region home; }\
             ; void main() { }",
        )
        .unwrap();
        let s = &d.structs[0];
        assert_eq!(s.size, 20);
        assert_eq!(s.field("i"), Some((Ty::Int, 0)));
        assert_eq!(s.field("next"), Some((Ty::RPtr(0), 4)));
        assert_eq!(s.field("data"), Some((Ty::IntArray, 8)));
        assert_eq!(s.field("alias"), Some((Ty::NPtr(0), 12)));
        assert_eq!(s.field("home"), Some((Ty::Region, 16)));
        // cleanup covers the region pointers only: next and data.
        assert_eq!(s.ptr_offsets, vec![4, 8]);
    }

    #[test]
    fn globals_are_laid_out_in_order() {
        let d = decls(
            "struct p { int x; int y; };\
             global int a; global p v; global p@ q; void main() { }",
        )
        .unwrap();
        assert_eq!(d.globals[0].offset, 0);
        assert_eq!(d.globals[1].offset, 4);
        assert!(d.globals[1].struct_value.is_some());
        assert_eq!(d.globals[2].offset, 12, "struct value occupies 8 bytes");
        assert_eq!(d.globals_size, 16);
    }

    #[test]
    fn type_compatibility_rules() {
        let d = decls("struct s { int v; }; void main() { }").unwrap();
        let rp = Ty::RPtr(0);
        let np = Ty::NPtr(0);
        assert!(rp.accepts(Ty::Null));
        assert!(!rp.accepts(np), "no implicit @/* conversion (paper §3.1)");
        assert!(!np.accepts(rp));
        assert!(rp.comparable(Ty::Null));
        assert!(!rp.comparable(np));
        assert!(Ty::Region.comparable(Ty::Null));
        assert!(Ty::IntArray.is_region_ptr());
        assert!(!np.is_region_ptr());
        assert_eq!(d.ty_name(rp), "s@");
        assert_eq!(d.ty_name(np), "s*");
    }

    #[test]
    fn missing_main_is_an_error() {
        assert!(decls("struct s { int v; };").is_err());
    }

    #[test]
    fn bad_main_signature_is_an_error() {
        assert!(decls("int main() { return 0; }").is_err());
    }

    #[test]
    fn duplicate_names_are_errors() {
        assert!(decls("struct s { int v; }; struct s { int w; }; void main() { }").is_err());
        assert!(decls("global int x; global int x; void main() { }").is_err());
        assert!(decls("void f() { } void f() { } void main() { }").is_err());
        assert!(decls("struct s { int v; int v; }; void main() { }").is_err());
    }

    #[test]
    fn unknown_struct_is_an_error() {
        let err = decls("global nothere@ g; void main() { }").unwrap_err();
        assert!(err.message.contains("unknown struct"));
    }

    #[test]
    fn self_referential_structs_work() {
        let d = decls("struct tree { tree@ l; tree@ r; int v; }; void main() { }").unwrap();
        assert_eq!(d.structs[0].ptr_offsets, vec![0, 4]);
    }
}
