//! Quickstart: explicit regions in five minutes.
//!
//! Shows the three faces of the library:
//! 1. the host-Rust [`Arena`] (regions the way a Rust program uses them),
//! 2. the paper's safe [`RegionRuntime`] — allocation, reference counts,
//!    blocked and successful deletion,
//! 3. the deferred stack scanning that makes local pointers cheap.
//!
//! Run with `cargo run --example quickstart`.

use explicit_regions::region_core::{Arena, RegionRuntime, TypeDescriptor};
use explicit_regions::simheap::Addr;

fn main() {
    host_arena();
    safe_regions();
    deferred_stack_scanning();
}

/// Figure 1 of the paper, as idiomatic Rust: allocate a pile of arrays,
/// reclaim them all at once.
fn host_arena() {
    println!("== host arena (unsafe regions, Rust-style) ==");
    let mut arena = Arena::new();
    for i in 0..10usize {
        let xs = arena.alloc_slice_fill_with(i + 1, |j| (i * j) as u32);
        println!("  allocated array {i}: len {} last {:?}", xs.len(), xs.last());
    }
    println!("  {} bytes allocated, one reset frees them all", arena.allocated_bytes());
    arena.reset(); // deleteregion(&r)
    assert_eq!(arena.allocated_bytes(), 0);
    println!();
}

/// The paper's safety story: a region cannot die while another region or
/// global storage points into it.
fn safe_regions() {
    println!("== safe regions (reference-counted deletion) ==");
    let mut rt = RegionRuntime::new_safe();
    // struct list { int i; list@ next; }
    let list = rt.register_type(TypeDescriptor::new("list", 8, vec![4]));

    let r = rt.new_region();
    let tmp = rt.new_region();

    // Build [1, 2] in r; copy the head into tmp.
    let head = rt.ralloc(r, list);
    let second = rt.ralloc(r, list);
    rt.heap_mut().store_u32(head, 1);
    rt.heap_mut().store_u32(second, 2);
    rt.store_ptr_region(head + 4, second);

    let copy = rt.ralloc(tmp, list);
    let v = rt.heap_mut().load_u32(head);
    rt.heap_mut().store_u32(copy, v);
    rt.store_ptr_region(copy + 4, second); // cross-region pointer tmp → r

    println!("  rc(r) = {} (one external reference from tmp)", rt.rc(r));
    assert!(!rt.delete_region(r), "r must survive while tmp points in");
    println!("  deleteregion(r) refused — the copy still points into r");

    assert!(rt.delete_region(tmp), "tmp has no external references");
    println!("  deleteregion(tmp) ok — its cleanup released the count");
    assert!(rt.delete_region(r));
    println!("  deleteregion(r) ok — all storage reclaimed at once");
    println!("  safety cost: {:?} simulated instrs", rt.costs().total_instrs());
    println!();
}

/// Local variables never touch reference counts — `deleteregion` scans
/// the stack instead (the high-water-mark scheme of §4.2).
fn deferred_stack_scanning() {
    println!("== deferred reference counting for locals ==");
    let mut rt = RegionRuntime::new_safe();
    let node = rt.register_type(TypeDescriptor::new("node", 8, vec![4]));
    let r = rt.new_region();
    let p = rt.ralloc(r, node);

    rt.push_frame(1);
    rt.set_local(0, p); // no count update — locals are free
    println!("  rc(r) after storing a local = {} (deferred!)", rt.rc(r));
    assert!(!rt.delete_region(r), "the stack scan finds the live local");
    println!("  deleteregion(r) refused after scanning the stack");
    println!(
        "  frames scanned: {}, slots scanned: {}",
        rt.costs().frames_scanned,
        rt.costs().slots_scanned
    );
    rt.set_local(0, Addr::NULL);
    assert!(rt.delete_region(r));
    println!("  cleared the local; deleteregion(r) ok");
    rt.pop_frame();
}
