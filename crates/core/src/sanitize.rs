//! The refcount sanitizer's report types.
//!
//! [`RegionRuntime::sanitize`](crate::RegionRuntime::sanitize) recomputes
//! every live region's reference count *from first principles* — walking
//! recorded global pointer locations, every scanned stack frame, and every
//! live region's objects via their type descriptors (the same walk the
//! cleanup scan of paper Figure 7 performs) — and diffs the result against
//! the incrementally-maintained `rc` fields and the host-side page-map
//! mirror. The audit uses only uncounted `peek` reads, so it perturbs
//! neither the load/store counters nor an attached trace sink: benchmark
//! figures are bit-identical with the sanitizer on or off.

use std::fmt;

use crate::runtime::RegionId;

/// A region whose recomputed reference count disagrees with the
/// incrementally-maintained one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RcMismatch {
    /// The region concerned.
    pub region: RegionId,
    /// The incrementally-maintained count (`RegionRuntime::rc`).
    pub recorded: i64,
    /// The count recomputed by walking globals, scanned frames, and
    /// region objects.
    pub recomputed: i64,
}

/// A page whose host-mirror entry disagrees with the authoritative
/// in-heap page map.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MirrorMismatch {
    /// Heap page index.
    pub page_index: u32,
    /// `owner + 1` encoding read from the in-heap map.
    pub in_heap: u32,
    /// Same encoding from the host mirror.
    pub mirrored: u32,
}

/// A reference-count misuse observed at runtime and recorded instead of
/// aborting (the release-mode promotion of the old `debug_assert!`s).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RcViolation {
    /// `inc_rc` named a deleted region; the increment was skipped.
    IncOfDeleted {
        /// The dead region.
        region: RegionId,
    },
    /// `dec_rc` named a deleted region; the decrement was skipped.
    DecOfDeleted {
        /// The dead region.
        region: RegionId,
    },
    /// A decrement drove a live region's count negative.
    NegativeRc {
        /// The region concerned.
        region: RegionId,
        /// The (negative) count after the decrement.
        rc: i64,
    },
    /// An elided (barrier-free) store turned out not to satisfy its
    /// must-same-region proof obligation: the stored value lives in a
    /// region other than the location's own. The compiler's inference
    /// was unsound for this site.
    ElisionUnsound {
        /// Region owning the stored-to location (`None` for global
        /// storage, where the obligation is "stored value is null").
        loc_region: Option<RegionId>,
        /// Region of the stored value.
        value_region: Option<RegionId>,
    },
}

impl fmt::Display for RcViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RcViolation::IncOfDeleted { region } => {
                write!(f, "inc_rc of deleted region {region:?}")
            }
            RcViolation::DecOfDeleted { region } => {
                write!(f, "dec_rc of deleted region {region:?}")
            }
            RcViolation::NegativeRc { region, rc } => {
                write!(f, "reference count of {region:?} went negative ({rc})")
            }
            RcViolation::ElisionUnsound { loc_region, value_region } => {
                write!(
                    f,
                    "elided store of a value in {value_region:?} to a location in {loc_region:?}"
                )
            }
        }
    }
}

/// The outcome of one [`RegionRuntime::sanitize`](crate::RegionRuntime::sanitize) pass.
#[derive(Clone, Debug, Default)]
pub struct SanitizeReport {
    /// Regions that were live (and therefore audited).
    pub live_regions: u64,
    /// Regions parked mid-deletion (audited by deletion phase: fully
    /// until cleanup starts, from the cleanup cursors while it runs,
    /// not at all once only page returns remain).
    pub parked_regions: u64,
    /// Objects walked via descriptors across all live regions.
    pub objects_walked: u64,
    /// Pointer fields inspected during the object walk.
    pub ptr_fields_walked: u64,
    /// Recorded global pointer locations inspected.
    pub global_locs_walked: u64,
    /// Scanned-frame stack slots inspected.
    pub stack_slots_walked: u64,
    /// Page-map entries compared against the host mirror.
    pub mirror_entries_checked: u64,
    /// Regions whose recomputed rc disagrees with the incremental rc.
    pub rc_mismatches: Vec<RcMismatch>,
    /// Pages where mirror and in-heap map disagree.
    pub mirror_mismatches: Vec<MirrorMismatch>,
    /// Misuses recorded by the runtime since creation (not cleared by
    /// the audit).
    pub violations: Vec<RcViolation>,
}

impl SanitizeReport {
    /// `true` if the audit found no disagreement and no recorded misuse.
    pub fn is_clean(&self) -> bool {
        self.rc_mismatches.is_empty()
            && self.mirror_mismatches.is_empty()
            && self.violations.is_empty()
    }
}

impl fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sanitize: {} region(s) ({} parked), {} object(s), {} ptr field(s), {} global loc(s), \
             {} stack slot(s), {} map entr(ies) — ",
            self.live_regions,
            self.parked_regions,
            self.objects_walked,
            self.ptr_fields_walked,
            self.global_locs_walked,
            self.stack_slots_walked,
            self.mirror_entries_checked,
        )?;
        if self.is_clean() {
            return f.write_str("clean");
        }
        write!(
            f,
            "{} rc mismatch(es), {} mirror mismatch(es), {} violation(s)",
            self.rc_mismatches.len(),
            self.mirror_mismatches.len(),
            self.violations.len()
        )?;
        for m in &self.rc_mismatches {
            write!(
                f,
                "\n  rc mismatch: {:?} recorded {} recomputed {}",
                m.region, m.recorded, m.recomputed
            )?;
        }
        for m in &self.mirror_mismatches {
            write!(
                f,
                "\n  mirror mismatch: page {} in-heap {} mirrored {}",
                m.page_index, m.in_heap, m.mirrored
            )?;
        }
        for v in &self.violations {
            write!(f, "\n  violation: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_prints_clean() {
        let r = SanitizeReport::default();
        assert!(r.is_clean());
        assert!(r.to_string().ends_with("clean"));
    }

    #[test]
    fn dirty_report_lists_everything() {
        let r = SanitizeReport {
            rc_mismatches: vec![RcMismatch { region: RegionId(1), recorded: 2, recomputed: 1 }],
            violations: vec![RcViolation::NegativeRc { region: RegionId(0), rc: -1 }],
            ..SanitizeReport::default()
        };
        assert!(!r.is_clean());
        let s = r.to_string();
        assert!(s.contains("rc mismatch"));
        assert!(s.contains("went negative"));
    }
}
