//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small, deterministic subset of the `rand` 0.8 API that the
//! workload generators and tests actually use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] sampling helpers.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high quality
//! and fully deterministic, though the streams differ from upstream
//! `StdRng` (ChaCha12). Every consumer in this repository only relies on
//! determinism, not on matching upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (the one constructor we use).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full range.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. `lo < hi` is the caller's duty.
    fn sample_half_open(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
    /// The successor of `v` (for inclusive ranges); saturates.
    fn successor(v: Self) -> Self;
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        assert!(self.start < self.end, "gen_range called with an empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with an empty range");
        T::sample_half_open(rng, lo, T::successor(hi))
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut rngs::StdRng, lo: $t, hi: $t) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn successor(v: $t) -> $t {
                v.saturating_add(1)
            }
        }
        impl Standard for $t {
            fn draw(rng: &mut rngs::StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, usize);

impl SampleUniform for u64 {
    fn sample_half_open(rng: &mut rngs::StdRng, lo: u64, hi: u64) -> u64 {
        lo.wrapping_add(rng.next_u64() % (hi - lo))
    }
    fn successor(v: u64) -> u64 {
        v.saturating_add(1)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut rngs::StdRng, lo: $t, hi: $t) -> $t {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                ((lo as i64).wrapping_add((rng.next_u64() % span) as i64)) as $t
            }
            fn successor(v: $t) -> $t {
                v.saturating_add(1)
            }
        }
        impl Standard for $t {
            fn draw(rng: &mut rngs::StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut rngs::StdRng) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut rngs::StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// The sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Draws one uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draws one value from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        <f64 as Standard>::draw(self) < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator, "gen_ratio out of range");
        self.next_u64() % u64::from(denominator) < u64::from(numerator)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::SeedableRng;

    /// A deterministic 64-bit generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw 64-bit output used by every sampling helper.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = r.gen_range(-50..=50);
            assert!((-50..=50).contains(&w));
            let u: usize = r.gen_range(0..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean {sum}");
    }

    #[test]
    fn gen_ratio_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..4000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }
}
