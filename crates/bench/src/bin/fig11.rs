//! Figure 11 — the cost of safety, broken into its three components:
//! reference counting (write barriers), stack scanning (scan/unscan),
//! and region cleanup.
//!
//! Paper shape: the overall safety overhead is "from negligible (tile)
//! to 17% (lcc)", with the mix depending on how pointer-intensive each
//! program is. We report the measured safe-vs-unsafe time overhead and
//! split it by the simulated-instruction shares of the three components
//! (using the paper's own 16/23-instruction barrier costs).
//!
//! The `elided` column counts barriers replaced by the 2-instruction
//! unbarriered store thanks to *sameregion* annotations (§3.3). It is
//! zero unless `BENCH_ELIDE=1`, so the committed counters reproduce by
//! default. `--elision-ab` runs the interleaved min-of-N A/B instead
//! and records `BENCH_elision.json` at the repo root.

use bench_harness::runner::{
    host_cores, measure_region, measure_region_elide, scale_from_env, today_utc,
    write_results_json, Measurement,
};
use workloads::{RegionKind, Workload};

fn main() {
    let scale = scale_from_env();
    if std::env::args().any(|a| a == "--elision-ab") {
        elision_ab(scale);
        return;
    }
    println!("Figure 11: cost of safety, scale {scale}");
    println!(
        "{:<9} {:>10} {:>12} {:>10} {:>10} {:>10} {:>12} {:>8}",
        "Name", "overhead", "safety-instr", "rc %", "scan %", "cleanup %", "barriers", "elided"
    );
    let mut rows: Vec<Measurement> = Vec::new();
    for w in Workload::ALL {
        let safe = measure_region(w, RegionKind::Safe, scale, false);
        let unsafe_ = measure_region(w, RegionKind::Unsafe, scale, false);
        assert_eq!(safe.checksum, unsafe_.checksum);
        let costs = safe.costs.expect("safe run");
        let (rc, scan, cleanup) = costs.breakdown();
        let overhead = 100.0
            * (safe.total.as_secs_f64() - unsafe_.total.as_secs_f64())
            / unsafe_.total.as_secs_f64();
        println!(
            "{:<9} {:>9.1}% {:>12} {:>9.1}% {:>9.1}% {:>9.1}% {:>12} {:>8}",
            w.name(),
            overhead,
            costs.total_instrs(),
            rc * 100.0,
            scan * 100.0,
            cleanup * 100.0,
            costs.barriers_global + costs.barriers_region + costs.barriers_unknown,
            costs.barriers_elided,
        );
        rows.push(safe);
        rows.push(unsafe_);
    }
    match write_results_json("fig11", &rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write results json: {e}"),
    }
    println!();
    println!("Shape check vs paper: overhead stays modest (paper: ≤17%), and is");
    println!("dominated by reference counting for pointer-write-heavy programs and");
    println!("by cleanup for programs that delete many object-rich regions.");
}

/// Interleaved min-of-N A/B of the hand-annotated *sameregion* stores:
/// for each workload, alternate elision-off and elision-on runs, keep
/// the fastest wall clock per arm, and demand bit-identical checksums
/// plus a conserved barrier split. Panics (failing CI) if the counters
/// drift between repetitions or the flagship workloads stop eliding.
fn elision_ab(scale: u32) {
    const REPS: usize = 3;
    println!("Elision A/B: sameregion barrier elision, scale {scale}, min of {REPS}");
    println!(
        "{:<9} {:>13} {:>13} {:>10} {:>8} {:>10} {:>10}",
        "Name", "safety-base", "safety-elide", "reduction", "elided", "ms(base)", "ms(elide)"
    );
    let mut blocks: Vec<String> = Vec::new();
    for w in Workload::ALL {
        let mut base: Option<Measurement> = None;
        let mut opt: Option<Measurement> = None;
        let (mut base_ms, mut opt_ms) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..REPS {
            let a = measure_region_elide(w, RegionKind::Safe, scale, false);
            let b = measure_region_elide(w, RegionKind::Safe, scale, true);
            base_ms = base_ms.min(a.total.as_secs_f64() * 1e3);
            opt_ms = opt_ms.min(b.total.as_secs_f64() * 1e3);
            for (rep, prev) in [(&a, &base), (&b, &opt)] {
                if let Some(p) = prev {
                    assert_eq!(p.checksum, rep.checksum, "{}: checksum drift across reps", w.name());
                    assert_eq!(p.costs, rep.costs, "{}: cost drift across reps", w.name());
                }
            }
            base = Some(a);
            opt = Some(b);
        }
        let (base, opt) = (base.unwrap(), opt.unwrap());
        assert_eq!(base.checksum, opt.checksum, "{}: elision changed the answer", w.name());
        let cb = base.costs.expect("safe run");
        let co = opt.costs.expect("safe run");
        assert_eq!(cb.barriers_elided, 0, "{}: baseline must not elide", w.name());
        assert_eq!(
            cb.barriers_global + cb.barriers_region + cb.barriers_unknown,
            co.barriers_global + co.barriers_region + co.barriers_unknown + co.barriers_elided,
            "{}: barrier split not conserved",
            w.name()
        );
        let reduction = if cb.total_instrs() == 0 {
            0.0
        } else {
            100.0 * (cb.total_instrs() - co.total_instrs()) as f64 / cb.total_instrs() as f64
        };
        println!(
            "{:<9} {:>13} {:>13} {:>9.1}% {:>8} {:>10.1} {:>10.1}",
            w.name(),
            cb.total_instrs(),
            co.total_instrs(),
            reduction,
            co.barriers_elided,
            base_ms,
            opt_ms,
        );
        if matches!(w, Workload::Grobner | Workload::Tile | Workload::Mudlle) {
            assert!(co.barriers_elided > 0, "{}: expected elided barriers", w.name());
            assert!(
                co.total_instrs() < cb.total_instrs(),
                "{}: expected a safety-instruction reduction",
                w.name()
            );
        }
        blocks.push(format!(
            "    \"{}\": {{ \"safety_instrs_base\": {}, \"safety_instrs_elided\": {}, \
             \"instr_reduction_pct\": {:.2}, \"barriers_full_base\": {}, \
             \"barriers_full_elided\": {}, \"barriers_elided\": {}, \
             \"min_total_ms_base\": {:.1}, \"min_total_ms_elided\": {:.1} }}",
            w.name(),
            cb.total_instrs(),
            co.total_instrs(),
            reduction,
            cb.barriers_global + cb.barriers_region + cb.barriers_unknown,
            co.barriers_global + co.barriers_region + co.barriers_unknown,
            co.barriers_elided,
            base_ms,
            opt_ms,
        ));
    }
    let json = format!(
        "{{\n  \"comment\": \"Sameregion barrier elision A/B: per-workload safe runs with the \
         hand-annotated elidable stores off vs on, interleaved, min of {REPS}. Counters are \
         deterministic (asserted across reps); wall times are the min. Elided stores charge \
         2 instrs instead of the Figure-5 16/23/31.\",\n  \
         \"date\": \"{}\",\n  \"host\": {{ \"cores\": {}, \"os\": \"{}\" }},\n  \
         \"scale\": {scale},\n  \"reps\": {REPS},\n  \"workloads\": {{\n{}\n  }}\n}}\n",
        today_utc(),
        host_cores(),
        std::env::consts::OS,
        blocks.join(",\n"),
    );
    // `BENCH_ELISION_OUT` redirects the record (CI's --quick smoke must
    // not clobber the committed default-scale BENCH_elision.json).
    let out = std::env::var("BENCH_ELISION_OUT").unwrap_or_else(|_| "BENCH_elision.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}

