//! Property tests: the cache model agrees with a naive reference model
//! (a set-associative LRU cache simulated with explicit lists), and its
//! counters obey basic conservation laws.

use cache_sim::{CacheConfig, MemStats, MemorySystem};
use proptest::prelude::*;
use simheap::{Access, AccessSink};

/// A naive LRU model of one cache level.
struct ModelCache {
    sets: Vec<Vec<u32>>,
    line_shift: u32,
    nsets: u32,
    assoc: usize,
}

impl ModelCache {
    fn new(bytes: u32, line: u32, assoc: u32) -> ModelCache {
        let nsets = bytes / line / assoc;
        ModelCache {
            sets: vec![Vec::new(); nsets as usize],
            line_shift: line.trailing_zeros(),
            nsets,
            assoc: assoc as usize,
        }
    }

    fn read(&mut self, addr: u32) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line % self.nsets) as usize];
        if let Some(p) = set.iter().position(|&t| t == line) {
            set.remove(p);
            set.insert(0, line);
            true
        } else {
            if set.len() == self.assoc {
                set.pop();
            }
            set.insert(0, line);
            false
        }
    }
}

fn accesses() -> impl Strategy<Value = Vec<(u32, bool)>> {
    proptest::collection::vec(
        (0x1000u32..0x40000, any::<bool>()).prop_map(|(a, w)| (a & !3, w)),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// L1 read hit/miss decisions match the naive LRU model exactly.
    /// (Writes are write-through no-allocate: they never install L1
    /// lines, but they refresh LRU on hit — mirrored in the model.)
    #[test]
    fn l1_read_hits_match_lru_model(accs in accesses()) {
        let cfg = CacheConfig { l1_assoc: 2, ..CacheConfig::default() };
        let mut sys = MemorySystem::new(cfg);
        let mut model = ModelCache::new(cfg.l1_bytes, cfg.l1_line, cfg.l1_assoc);
        let mut expected_hits = 0u64;
        let mut expected_misses = 0u64;
        for &(addr, is_write) in &accs {
            if is_write {
                // no-write-allocate: refresh only.
                let line = addr >> model.line_shift;
                let set = &mut model.sets[(line % model.nsets) as usize];
                if let Some(p) = set.iter().position(|&t| t == line) {
                    set.remove(p);
                    set.insert(0, line);
                }
                sys.access(Access::write(addr, 4));
            } else {
                if model.read(addr) {
                    expected_hits += 1;
                } else {
                    expected_misses += 1;
                }
                sys.access(Access::read(addr, 4));
            }
        }
        let s = sys.stats();
        prop_assert_eq!(s.l1_hits, expected_hits);
        prop_assert_eq!(s.l1_misses, expected_misses);
    }

    /// Conservation: reads = hits + misses; every L1 miss goes to L2;
    /// stall cycles are bounded by misses × worst-case latency.
    #[test]
    fn counters_obey_conservation(accs in accesses()) {
        let mut sys = MemorySystem::default();
        let (mut reads, mut writes) = (0u64, 0u64);
        for &(addr, is_write) in &accs {
            if is_write {
                writes += 1;
                sys.access(Access::write(addr, 4));
            } else {
                reads += 1;
                sys.access(Access::read(addr, 4));
            }
        }
        let s: MemStats = sys.stats();
        prop_assert_eq!(s.reads, reads);
        prop_assert_eq!(s.writes, writes);
        prop_assert_eq!(s.l1_hits + s.l1_misses, reads);
        // L2 sees every L1 read miss and every store drain.
        prop_assert_eq!(s.l2_hits + s.l2_misses, s.l1_misses + writes);
        let cfg = CacheConfig::default();
        prop_assert!(s.read_stall_cycles <= s.l1_misses * cfg.mem_stall);
        prop_assert!(s.total_cycles >= (reads + writes) * cfg.gap_cycles);
    }

    /// Determinism: the same access stream always produces identical
    /// counters.
    #[test]
    fn simulation_is_deterministic(accs in accesses()) {
        let run = || {
            let mut sys = MemorySystem::default();
            for &(addr, is_write) in &accs {
                sys.access(if is_write { Access::write(addr, 4) } else { Access::read(addr, 4) });
            }
            sys.stats()
        };
        prop_assert_eq!(run(), run());
    }
}
