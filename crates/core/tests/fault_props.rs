//! Property tests for the failure model: the sanitizer agrees with the
//! incremental state after arbitrary valid op sequences, a single
//! injected fault is observationally a no-op, and a blocked delete
//! frees nothing and leaves the region fully usable.

use proptest::prelude::*;
use region_core::{FaultPlan, FaultSite, RegionError, RegionId, RegionRuntime, TypeDescriptor};
use simheap::Addr;

#[derive(Debug, Clone)]
enum Op {
    New,
    Alloc { region: usize },
    Str { region: usize },
    Link { from: usize, to: usize },
    SetGlobal { g: usize, obj: usize },
    ClearGlobal { g: usize },
    Delete { region: usize },
}

const NGLOBALS: usize = 4;

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(Op::New),
            5 => any::<usize>().prop_map(|region| Op::Alloc { region }),
            2 => any::<usize>().prop_map(|region| Op::Str { region }),
            3 => (any::<usize>(), any::<usize>()).prop_map(|(from, to)| Op::Link { from, to }),
            2 => (0..NGLOBALS, any::<usize>()).prop_map(|(g, obj)| Op::SetGlobal { g, obj }),
            1 => (0..NGLOBALS).prop_map(|g| Op::ClearGlobal { g }),
            3 => any::<usize>().prop_map(|region| Op::Delete { region }),
        ],
        1..100,
    )
}

/// Test driver: replays ops through the fallible API, keeping just
/// enough bookkeeping to aim ops at live regions and objects. All
/// invariant checks use plain asserts — a violation fails the case.
struct World {
    rt: RegionRuntime,
    node: region_core::DescId,
    globals: Addr,
    live: Vec<RegionId>,
    objs: Vec<(RegionId, Addr)>,
    faults_seen: u64,
    blocked_seen: u64,
}

impl World {
    fn new(plan: Option<FaultPlan>) -> World {
        let mut rt = RegionRuntime::new_safe();
        let node = rt.register_type(TypeDescriptor::new("node", 8, vec![4]));
        let globals = rt.alloc_globals(4 * NGLOBALS as u32);
        if let Some(plan) = plan {
            rt.set_fault_plan(plan);
        }
        World { rt, node, globals, live: Vec::new(), objs: Vec::new(), faults_seen: 0, blocked_seen: 0 }
    }

    fn sanitize_clean(&self, when: &str) {
        let report = self.rt.sanitize();
        assert!(report.is_clean(), "sanitize dirty {when}: {report}");
    }

    /// Applies one op. Any typed failure must be observationally a
    /// no-op, and the sanitizer must stay clean through it.
    fn apply(&mut self, op: &Op) {
        let allocs = self.rt.stats().total_allocs;
        let pages = self.rt.data_pages();
        let regions = self.rt.stats().live_regions;
        let mut failed: Option<RegionError> = None;
        match op {
            Op::New => match self.rt.try_new_region() {
                Ok(r) => self.live.push(r),
                Err(e) => failed = Some(e),
            },
            Op::Alloc { region } => {
                if self.live.is_empty() {
                    return;
                }
                let r = self.live[region % self.live.len()];
                match self.rt.try_ralloc(r, self.node) {
                    Ok(a) => self.objs.push((r, a)),
                    Err(e) => failed = Some(e),
                }
            }
            Op::Str { region } => {
                if self.live.is_empty() {
                    return;
                }
                let r = self.live[region % self.live.len()];
                if let Err(e) = self.rt.try_rstralloc(r, 40) {
                    failed = Some(e);
                }
            }
            Op::Link { from, to } => {
                if self.objs.is_empty() {
                    return;
                }
                let (_, fa) = self.objs[from % self.objs.len()];
                let (_, ta) = self.objs[to % self.objs.len()];
                self.rt.store_ptr_region(fa + 4, ta);
            }
            Op::SetGlobal { g, obj } => {
                if self.objs.is_empty() {
                    return;
                }
                let (_, a) = self.objs[obj % self.objs.len()];
                self.rt.store_ptr_global(self.globals + 4 * *g as u32, a);
            }
            Op::ClearGlobal { g } => {
                self.rt.store_ptr_global(self.globals + 4 * *g as u32, Addr::NULL);
            }
            Op::Delete { region } => {
                if self.live.is_empty() {
                    return;
                }
                let r = self.live[region % self.live.len()];
                match self.rt.try_delete_region(r) {
                    Ok(()) => {
                        self.live.retain(|&x| x != r);
                        self.objs.retain(|&(owner, _)| owner != r);
                    }
                    Err(RegionError::DeleteBlocked { region: br, rc }) => {
                        // A blocked delete frees nothing and the region
                        // stays fully usable.
                        assert_eq!(br, r);
                        assert!(rc > 0);
                        assert!(self.rt.is_live(r), "blocked delete killed the region");
                        assert_eq!(self.rt.data_pages(), pages, "blocked delete freed pages");
                        assert_eq!(self.rt.stats().live_regions, regions);
                        match self.rt.try_ralloc(r, self.node) {
                            Ok(a) => self.objs.push((r, a)),
                            Err(RegionError::FaultInjected { .. }) => {}
                            Err(e) => panic!("blocked region unusable: {e}"),
                        }
                        self.blocked_seen += 1;
                        self.sanitize_clean("after blocked delete");
                    }
                    Err(e) => panic!("delete of live region failed with {e}"),
                }
            }
        }
        if let Some(e) = failed {
            assert!(
                matches!(
                    e,
                    RegionError::FaultInjected { site: FaultSite::PageAcquisition, .. }
                ),
                "only the injected page fault may fail these ops, got {e}"
            );
            // Single-fault consistency: the faulted op changed nothing.
            assert_eq!(self.rt.stats().total_allocs, allocs, "faulted op counted an alloc");
            assert_eq!(self.rt.data_pages(), pages, "faulted op kept a page");
            assert_eq!(self.rt.stats().live_regions, regions, "faulted op changed regions");
            self.faults_seen += 1;
            self.sanitize_clean("after injected fault");
        }
    }

    /// Clears all roots and links, then deletes everything; the runtime
    /// must end completely empty with a clean sanitizer.
    fn drain(&mut self) {
        self.rt.clear_fault_plan();
        for g in 0..NGLOBALS {
            self.rt.store_ptr_global(self.globals + 4 * g as u32, Addr::NULL);
        }
        for i in 0..self.objs.len() {
            let (_, a) = self.objs[i];
            self.rt.store_ptr_region(a + 4, Addr::NULL);
        }
        for r in std::mem::take(&mut self.live) {
            assert!(
                self.rt.try_delete_region(r).is_ok(),
                "region {r:?} must delete once unrooted"
            );
        }
        assert_eq!(self.rt.stats().live_regions, 0);
        self.sanitize_clean("after drain");
        assert!(self.rt.violations().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The from-first-principles recount agrees with the incremental
    /// reference counts at every step of an arbitrary valid sequence.
    #[test]
    fn sanitize_agrees_after_arbitrary_ops(ops in ops()) {
        let mut w = World::new(None);
        for (i, op) in ops.iter().enumerate() {
            w.apply(op);
            if i % 7 == 0 {
                w.sanitize_clean("mid-sequence");
            }
        }
        w.sanitize_clean("at end");
        w.drain();
    }

    /// A single injected page-acquisition fault is observationally a
    /// no-op: nothing allocated, no page taken, no region half-created,
    /// and the sanitizer stays clean — after which the world drains as
    /// if the fault never happened.
    #[test]
    fn single_fault_is_a_noop(ops in ops(), nth in 1u64..30) {
        let mut w = World::new(Some(FaultPlan::new().fail_page_acquisition(nth)));
        for op in &ops {
            w.apply(op);
        }
        // (Whether the fault fired depends on how many pages the
        // sequence acquires; when it did, `apply` verified the no-op.)
        w.drain();
    }

    /// Sequences that park a pointer in a global root always see their
    /// delete blocked, and the block is harmless.
    #[test]
    fn rooted_regions_never_delete(ops in ops()) {
        let mut w = World::new(None);
        let r = w.rt.try_new_region().expect("first region");
        w.live.push(r);
        let a = w.rt.try_ralloc(r, w.node).expect("first object");
        w.objs.push((r, a));
        // A root slot the op stream can never touch.
        let root = w.rt.alloc_globals(4);
        w.rt.store_ptr_global(root, a);
        for op in &ops {
            w.apply(op);
        }
        assert!(w.rt.is_live(r), "rooted region deleted");
        prop_assert!(w.blocked_seen == 0 || w.rt.sanitize().is_clean());
        w.rt.store_ptr_global(root, Addr::NULL);
        w.drain();
    }
}
