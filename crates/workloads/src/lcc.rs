//! `lcc` — a C compiler front end (§5.1).
//!
//! The paper's lcc is the real retargetable C compiler (the same one the
//! authors modified to build C@); its benchmark input is a 6000-line C
//! file. This reproduction implements the allocation-relevant part — a
//! lexer, a recursive-descent parser building per-statement ASTs in the
//! simulated heap, per-function symbol tables, and a constant-folding
//! walk over every statement — over a generated C-subset file.
//!
//! Region structure, per the paper: lcc processes (and discards) data
//! statement by statement, and the port "create\[s\] a region for every
//! hundred statements compiled rather than for every statement" — so
//! statement ASTs live in a rotating region, while symbol tables live in
//! a per-function region. Statement nodes point at symbol entries
//! *across* regions, exercising the cross-region reference counts.

use simheap::{Addr, SimHeap};

use crate::env::{MallocEnv, RegionEnv};
use crate::util::{rng, Checksum};
use rand::Rng;

// AST node: [kind][a][b][c][val], 20 bytes; a/b/c are node or symbol
// pointers (or null).
const N_KIND: u32 = 0;
const N_A: u32 = 4;
const N_B: u32 = 8;
const N_C: u32 = 12;
const N_VAL: u32 = 16;
const NODE: u32 = 20;

const K_INT: u32 = 1;
const K_VAR: u32 = 2;
const K_ADD: u32 = 3;
const K_SUB: u32 = 4;
const K_MUL: u32 = 5;
const K_LT: u32 = 6;
const K_GT: u32 = 7;
const K_ASSIGN: u32 = 8;
const K_DECL: u32 = 9;
const K_IF: u32 = 10;
const K_WHILE: u32 = 11;
const K_RET: u32 = 12;
const K_SEQ: u32 = 13;

// Symbol entry: [next][name][len][idx], 16 bytes.
const S_NEXT: u32 = 0;
const S_NAME: u32 = 4;
const S_LEN: u32 = 8;
const S_IDX: u32 = 12;
const SYM: u32 = 16;

/// Generates the input file: `6 × scale` functions of ~25 statements.
pub fn input(scale: u32) -> String {
    let mut r = rng(0x1cc);
    let mut src = String::new();
    for f in 0..6 * scale {
        src.push_str(&format!("int f{f}(int a, int b) {{\n"));
        let mut vars = vec!["a".to_string(), "b".to_string()];
        let mut stmts = 0;
        while stmts < 25 {
            let pick = r.gen_range(0..10);
            let expr = gen_expr(&mut r, &vars, 3);
            match pick {
                0..=3 => {
                    let v = format!("x{}", vars.len());
                    src.push_str(&format!("  int {v} = {expr};\n"));
                    vars.push(v);
                }
                4..=6 => {
                    let v = &vars[r.gen_range(0..vars.len())];
                    src.push_str(&format!("  {v} = {expr};\n"));
                }
                7 => {
                    let v = &vars[r.gen_range(0..vars.len())];
                    let e2 = gen_expr(&mut r, &vars, 2);
                    src.push_str(&format!(
                        "  if ({expr} < {e2}) {{ {v} = {v} + 1; }} else {{ {v} = {v} - 1; }}\n"
                    ));
                }
                8 => {
                    let v = &vars[r.gen_range(0..vars.len())];
                    src.push_str(&format!("  while ({v} > 0) {{ {v} = {v} - 17; }}\n"));
                }
                _ => {
                    src.push_str(&format!("  return {expr};\n"));
                }
            }
            stmts += 1;
        }
        src.push_str("  return a;\n}\n");
    }
    src
}

fn gen_expr(r: &mut rand::rngs::StdRng, vars: &[String], depth: u32) -> String {
    if depth == 0 || r.gen_ratio(2, 5) {
        if r.gen_bool(0.5) {
            vars[r.gen_range(0..vars.len())].clone()
        } else {
            r.gen_range(0..1000i32).to_string()
        }
    } else {
        let op = ["+", "-", "*"][r.gen_range(0..3)];
        format!("({} {} {})", gen_expr(r, vars, depth - 1), op, gen_expr(r, vars, depth - 1))
    }
}

/// Host-side token over the in-heap source.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tok {
    Int(i32),
    Ident { start: u32, len: u32 },
    KwInt,
    KwIf,
    KwElse,
    KwWhile,
    KwReturn,
    Punct(u8),
    Eof,
}

struct Lexer {
    base: Addr,
    len: u32,
    pos: u32,
    tok: Tok,
}

impl Lexer {
    fn new(heap: &mut SimHeap, base: Addr, len: u32) -> Lexer {
        let mut lx = Lexer { base, len, pos: 0, tok: Tok::Eof };
        lx.advance(heap);
        lx
    }

    fn text_is(&self, heap: &mut SimHeap, start: u32, len: u32, word: &[u8]) -> bool {
        len == word.len() as u32
            && word.iter().enumerate().all(|(i, &b)| heap.load_u8(self.base + start + i as u32) == b)
    }

    fn advance(&mut self, heap: &mut SimHeap) {
        while self.pos < self.len {
            let c = heap.load_u8(self.base + self.pos);
            if c == b' ' || c == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos >= self.len {
            self.tok = Tok::Eof;
            return;
        }
        let c = heap.load_u8(self.base + self.pos);
        self.tok = if c.is_ascii_digit() {
            let mut v = 0i64;
            while self.pos < self.len {
                let c = heap.load_u8(self.base + self.pos);
                if !c.is_ascii_digit() {
                    break;
                }
                v = v * 10 + i64::from(c - b'0');
                self.pos += 1;
            }
            Tok::Int(v as i32)
        } else if c.is_ascii_alphabetic() {
            let start = self.pos;
            while self.pos < self.len {
                let c = heap.load_u8(self.base + self.pos);
                if !c.is_ascii_alphanumeric() {
                    break;
                }
                self.pos += 1;
            }
            let len = self.pos - start;
            if self.text_is(heap, start, len, b"int") {
                Tok::KwInt
            } else if self.text_is(heap, start, len, b"if") {
                Tok::KwIf
            } else if self.text_is(heap, start, len, b"else") {
                Tok::KwElse
            } else if self.text_is(heap, start, len, b"while") {
                Tok::KwWhile
            } else if self.text_is(heap, start, len, b"return") {
                Tok::KwReturn
            } else {
                Tok::Ident { start, len }
            }
        } else {
            self.pos += 1;
            Tok::Punct(c)
        };
    }

    fn eat_punct(&mut self, heap: &mut SimHeap, c: u8) {
        assert_eq!(self.tok, Tok::Punct(c), "expected {:?}", c as char);
        self.advance(heap);
    }
}

/// Constant-fold/checksum walk over one statement tree (pure reads).
fn fold(heap: &mut SimHeap, node: Addr) -> i64 {
    if node.is_null() {
        return 0;
    }
    let kind = heap.load_u32(node + N_KIND);
    let a = heap.load_addr(node + N_A);
    let b = heap.load_addr(node + N_B);
    let c = heap.load_addr(node + N_C);
    match kind {
        K_INT => i64::from(heap.load_u32(node + N_VAL) as i32),
        K_VAR => {
            let idx = heap.load_u32(a + S_IDX);
            i64::from(idx) * 7 + 1
        }
        K_ADD => fold(heap, a).wrapping_add(fold(heap, b)),
        K_SUB => fold(heap, a).wrapping_sub(fold(heap, b)),
        K_MUL => fold(heap, a).wrapping_mul(fold(heap, b)) & 0xFFFF_FFFF,
        K_LT => i64::from(fold(heap, a) < fold(heap, b)),
        K_GT => i64::from(fold(heap, a) > fold(heap, b)),
        K_ASSIGN => fold(heap, a).wrapping_add(fold(heap, b)).wrapping_mul(3),
        K_DECL => {
            // `a` is the declared symbol's table entry, not a node.
            let idx = heap.load_u32(a + S_IDX);
            (i64::from(idx) * 7 + 1).wrapping_add(fold(heap, b)).wrapping_mul(3)
        }
        K_IF => fold(heap, a)
            .wrapping_add(fold(heap, b).wrapping_mul(5))
            .wrapping_add(fold(heap, c).wrapping_mul(7)),
        K_WHILE => fold(heap, a).wrapping_add(fold(heap, b).wrapping_mul(11)),
        K_RET => fold(heap, a).wrapping_mul(13),
        K_SEQ => fold(heap, a).wrapping_add(fold(heap, b).wrapping_mul(17)),
        other => unreachable!("bad node kind {other}"),
    }
}

/// Looks a source identifier up in a symbol chain (heap-to-heap compare).
fn sym_lookup(heap: &mut SimHeap, mut chain: Addr, src: Addr, start: u32, len: u32) -> Addr {
    while !chain.is_null() {
        if heap.load_u32(chain + S_LEN) == len {
            let name = heap.load_addr(chain + S_NAME);
            if (0..len).all(|i| heap.load_u8(name + i) == heap.load_u8(src + start + i)) {
                return chain;
            }
        }
        chain = heap.load_addr(chain + S_NEXT);
    }
    Addr::NULL
}

// --- begin malloc variant ---

/// lcc with malloc/free: statement ASTs freed tree by tree after each
/// statement is processed, symbol tables at function end.
pub fn run_malloc(env: &mut MallocEnv, scale: u32) -> u64 {
    let src = input(scale);
    let area = env.heap().sbrk(src.len() as u32);
    env.heap().load_bytes_untraced(area, src.as_bytes());
    let mut sum = Checksum::new();
    // Roots: 0 = symtab chain, 1 = current statement, 2.. parser depth.
    env.push_roots(24);
    let mut lx = Lexer::new(env.heap(), area, src.len() as u32);
    let mut functions = 0u64;
    let mut statements = 0u64;
    while lx.tok != Tok::Eof {
        // int f(int a, int b) {
        assert_eq!(lx.tok, Tok::KwInt);
        lx.advance(env.heap());
        let Tok::Ident { .. } = lx.tok else { panic!("function name expected") };
        lx.advance(env.heap());
        lx.eat_punct(env.heap(), b'(');
        let mut symtab = Addr::NULL;
        let mut nsyms = 0u32;
        env.set_root(0, symtab);
        while lx.tok != Tok::Punct(b')') {
            if lx.tok == Tok::KwInt || lx.tok == Tok::Punct(b',') {
                lx.advance(env.heap());
                continue;
            }
            let Tok::Ident { start, len } = lx.tok else { panic!("param expected") };
            symtab = sym_insert_m(env, symtab, area, start, len, nsyms);
            env.set_root(0, symtab);
            nsyms += 1;
            lx.advance(env.heap());
        }
        lx.eat_punct(env.heap(), b')');
        lx.eat_punct(env.heap(), b'{');
        // Statements, processed and freed one at a time.
        while lx.tok != Tok::Punct(b'}') {
            let stmt = parse_stmt_m(env, &mut lx, area, &mut symtab, &mut nsyms, 2);
            env.set_root(1, stmt);
            statements += 1;
            sum.add(fold(env.heap(), stmt) as u64);
            free_tree_m(env, stmt);
            env.set_root(1, Addr::NULL);
        }
        lx.eat_punct(env.heap(), b'}');
        // Function over: free the symbol table.
        let mut s = symtab;
        while !s.is_null() {
            let next = env.heap().load_addr(s + S_NEXT);
            let name = env.heap().load_addr(s + S_NAME);
            env.free(name);
            env.free(s);
            s = next;
        }
        env.set_root(0, Addr::NULL);
        functions += 1;
        sum.add(u64::from(nsyms));
    }
    env.pop_roots();
    sum.add(functions);
    sum.add(statements);
    sum.value()
}

fn node_m(env: &mut MallocEnv, kind: u32, a: Addr, b: Addr, c: Addr, val: u32) -> Addr {
    let n = env.malloc(NODE);
    env.heap().store_u32(n + N_KIND, kind);
    env.heap().store_addr(n + N_A, a);
    env.heap().store_addr(n + N_B, b);
    env.heap().store_addr(n + N_C, c);
    env.heap().store_u32(n + N_VAL, val);
    n
}

fn sym_insert_m(env: &mut MallocEnv, chain: Addr, src: Addr, start: u32, len: u32, idx: u32) -> Addr {
    let name = env.malloc(len);
    env.set_root(20, name);
    env.heap().copy(name, src + start, len);
    let s = env.malloc(SYM);
    env.heap().store_addr(s + S_NEXT, chain);
    env.heap().store_addr(s + S_NAME, name);
    env.heap().store_u32(s + S_LEN, len);
    env.heap().store_u32(s + S_IDX, idx);
    env.set_root(20, Addr::NULL);
    s
}

/// Frees a statement tree (symbol entries are shared — not freed here).
fn free_tree_m(env: &mut MallocEnv, n: Addr) {
    if n.is_null() {
        return;
    }
    let kind = env.heap().load_u32(n + N_KIND);
    if kind != K_VAR && kind != K_DECL {
        // K_VAR's and K_DECL's `a` is a symbol entry, owned by the
        // symbol table — not part of this tree.
        let a = env.heap().load_addr(n + N_A);
        free_tree_m(env, a);
    }
    let b = env.heap().load_addr(n + N_B);
    let c = env.heap().load_addr(n + N_C);
    free_tree_m(env, b);
    free_tree_m(env, c);
    env.free(n);
}

fn parse_stmt_m(
    env: &mut MallocEnv,
    lx: &mut Lexer,
    src: Addr,
    symtab: &mut Addr,
    nsyms: &mut u32,
    slot: u32,
) -> Addr {
    match lx.tok {
        Tok::KwInt => {
            // int x = expr ;
            lx.advance(env.heap());
            let Tok::Ident { start, len } = lx.tok else { panic!("name expected") };
            lx.advance(env.heap());
            *symtab = sym_insert_m(env, *symtab, src, start, len, *nsyms);
            env.set_root(0, *symtab);
            *nsyms += 1;
            lx.eat_punct(env.heap(), b'=');
            let init = parse_expr_m(env, lx, src, *symtab, slot);
            lx.eat_punct(env.heap(), b';');
            env.set_root(slot, init);
            node_m(env, K_DECL, *symtab, init, Addr::NULL, 0)
        }
        Tok::KwIf => {
            lx.advance(env.heap());
            lx.eat_punct(env.heap(), b'(');
            let cond = parse_expr_m(env, lx, src, *symtab, slot);
            env.set_root(slot, cond);
            lx.eat_punct(env.heap(), b')');
            let then_b = parse_block_m(env, lx, src, symtab, nsyms, slot + 1);
            env.set_root(slot + 1, then_b);
            let else_b = if lx.tok == Tok::KwElse {
                lx.advance(env.heap());
                parse_block_m(env, lx, src, symtab, nsyms, slot + 2)
            } else {
                Addr::NULL
            };
            env.set_root(slot + 2, else_b);
            node_m(env, K_IF, cond, then_b, else_b, 0)
        }
        Tok::KwWhile => {
            lx.advance(env.heap());
            lx.eat_punct(env.heap(), b'(');
            let cond = parse_expr_m(env, lx, src, *symtab, slot);
            env.set_root(slot, cond);
            lx.eat_punct(env.heap(), b')');
            let body = parse_block_m(env, lx, src, symtab, nsyms, slot + 1);
            env.set_root(slot + 1, body);
            node_m(env, K_WHILE, cond, body, Addr::NULL, 0)
        }
        Tok::KwReturn => {
            lx.advance(env.heap());
            let e = parse_expr_m(env, lx, src, *symtab, slot);
            env.set_root(slot, e);
            lx.eat_punct(env.heap(), b';');
            node_m(env, K_RET, e, Addr::NULL, Addr::NULL, 0)
        }
        Tok::Ident { start, len } => {
            // x = expr ;
            lx.advance(env.heap());
            let entry = sym_lookup(env.heap(), *symtab, src, start, len);
            assert!(!entry.is_null(), "undeclared identifier");
            let var = node_m(env, K_VAR, entry, Addr::NULL, Addr::NULL, 0);
            env.set_root(slot, var);
            lx.eat_punct(env.heap(), b'=');
            let e = parse_expr_m(env, lx, src, *symtab, slot + 1);
            env.set_root(slot + 1, e);
            lx.eat_punct(env.heap(), b';');
            node_m(env, K_ASSIGN, var, e, Addr::NULL, 0)
        }
        other => panic!("unexpected token {other:?}"),
    }
}

/// `{ stmt* }` as a K_SEQ chain.
fn parse_block_m(
    env: &mut MallocEnv,
    lx: &mut Lexer,
    src: Addr,
    symtab: &mut Addr,
    nsyms: &mut u32,
    slot: u32,
) -> Addr {
    lx.eat_punct(env.heap(), b'{');
    let mut head = Addr::NULL;
    let mut tail = Addr::NULL;
    while lx.tok != Tok::Punct(b'}') {
        let s = parse_stmt_m(env, lx, src, symtab, nsyms, slot + 1);
        env.set_root(slot + 1, s);
        let cell = node_m(env, K_SEQ, s, Addr::NULL, Addr::NULL, 0);
        if head.is_null() {
            head = cell;
            env.set_root(slot, head);
        } else {
            env.heap().store_addr(tail + N_B, cell);
        }
        tail = cell;
    }
    lx.eat_punct(env.heap(), b'}');
    head
}

fn parse_expr_m(env: &mut MallocEnv, lx: &mut Lexer, src: Addr, symtab: Addr, slot: u32) -> Addr {
    // add := mul (('+'|'-') mul)*
    let mut lhs = parse_term_m(env, lx, src, symtab, slot);
    loop {
        let kind = match lx.tok {
            Tok::Punct(b'+') => K_ADD,
            Tok::Punct(b'-') => K_SUB,
            Tok::Punct(b'<') => K_LT,
            Tok::Punct(b'>') => K_GT,
            _ => break,
        };
        lx.advance(env.heap());
        env.set_root(slot, lhs);
        let rhs = parse_term_m(env, lx, src, symtab, slot + 1);
        env.set_root(slot + 1, rhs);
        lhs = node_m(env, kind, lhs, rhs, Addr::NULL, 0);
    }
    lhs
}

fn parse_term_m(env: &mut MallocEnv, lx: &mut Lexer, src: Addr, symtab: Addr, slot: u32) -> Addr {
    let mut lhs = parse_atom_m(env, lx, src, symtab, slot);
    while lx.tok == Tok::Punct(b'*') {
        lx.advance(env.heap());
        env.set_root(slot, lhs);
        let rhs = parse_atom_m(env, lx, src, symtab, slot + 1);
        env.set_root(slot + 1, rhs);
        lhs = node_m(env, K_MUL, lhs, rhs, Addr::NULL, 0);
    }
    lhs
}

fn parse_atom_m(env: &mut MallocEnv, lx: &mut Lexer, src: Addr, symtab: Addr, slot: u32) -> Addr {
    match lx.tok {
        Tok::Int(v) => {
            lx.advance(env.heap());
            node_m(env, K_INT, Addr::NULL, Addr::NULL, Addr::NULL, v as u32)
        }
        Tok::Ident { start, len } => {
            lx.advance(env.heap());
            let entry = sym_lookup(env.heap(), symtab, src, start, len);
            assert!(!entry.is_null(), "undeclared identifier");
            node_m(env, K_VAR, entry, Addr::NULL, Addr::NULL, 0)
        }
        Tok::Punct(b'(') => {
            lx.advance(env.heap());
            let e = parse_expr_m(env, lx, src, symtab, slot);
            lx.eat_punct(env.heap(), b')');
            e
        }
        other => panic!("unexpected token in expression: {other:?}"),
    }
}

// --- end malloc variant ---

// --- begin region variant ---

/// lcc with regions: symbol tables in a per-function region, statement
/// ASTs in a region rotated every hundred statements (the paper's
/// choice). Statement nodes point into the function region, so rotation
/// exercises cross-region reference counting and cleanup.
pub fn run_region(env: &mut RegionEnv, scale: u32) -> u64 {
    let src = input(scale);
    let area = env.heap().sbrk(src.len() as u32);
    env.heap().load_bytes_untraced(area, src.as_bytes());
    let mut sum = Checksum::new();
    let d_node =
        env.register_type(region_core::TypeDescriptor::new("lcc_node", NODE, vec![N_A, N_B, N_C]));
    let d_sym =
        env.register_type(region_core::TypeDescriptor::new("lcc_sym", SYM, vec![S_NEXT, S_NAME]));
    let mut lx = Lexer::new(env.heap(), area, src.len() as u32);
    let mut functions = 0u64;
    let mut statements = 0u64;
    let mut stmt_region = env.new_region();
    let mut in_region = 0u32; // statements compiled into the current region
    env.push_frame(1); // local for the statement being processed
    while lx.tok != Tok::Eof {
        assert_eq!(lx.tok, Tok::KwInt);
        lx.advance(env.heap());
        let Tok::Ident { .. } = lx.tok else { panic!("function name expected") };
        lx.advance(env.heap());
        lx.eat_punct(env.heap(), b'(');
        let func_region = env.new_region();
        let mut symtab = Addr::NULL;
        let mut nsyms = 0u32;
        while lx.tok != Tok::Punct(b')') {
            if lx.tok == Tok::KwInt || lx.tok == Tok::Punct(b',') {
                lx.advance(env.heap());
                continue;
            }
            let Tok::Ident { start, len } = lx.tok else { panic!("param expected") };
            symtab = sym_insert_r(env, func_region, d_sym, symtab, area, start, len, nsyms);
            nsyms += 1;
            lx.advance(env.heap());
        }
        lx.eat_punct(env.heap(), b')');
        lx.eat_punct(env.heap(), b'{');
        while lx.tok != Tok::Punct(b'}') {
            let stmt = parse_stmt_r(
                env,
                &mut lx,
                area,
                stmt_region,
                func_region,
                d_node,
                d_sym,
                &mut symtab,
                &mut nsyms,
            );
            env.set_local(0, stmt);
            statements += 1;
            in_region += 1;
            sum.add(fold(env.heap(), stmt) as u64);
            env.set_local(0, Addr::NULL);
            // "a region for every hundred statements compiled"
            if in_region == 100 {
                assert!(env.delete_region(stmt_region), "statement region must delete");
                stmt_region = env.new_region();
                in_region = 0;
            }
        }
        lx.eat_punct(env.heap(), b'}');
        // Function over: the statement region may still hold pointers to
        // this function's symbols, so rotate it before deleting the
        // function region.
        assert!(env.delete_region(stmt_region));
        stmt_region = env.new_region();
        in_region = 0;
        symtab = Addr::NULL;
        let _ = symtab;
        assert!(env.delete_region(func_region), "function region must delete");
        functions += 1;
        sum.add(u64::from(nsyms));
    }
    env.pop_frame();
    assert!(env.delete_region(stmt_region));
    sum.add(functions);
    sum.add(statements);
    sum.value()
}

#[allow(clippy::too_many_arguments)] // mirrors the C API shape
fn node_r(
    env: &mut RegionEnv,
    r: crate::env::Rh,
    d: crate::env::Dh,
    kind: u32,
    a: Addr,
    b: Addr,
    c: Addr,
    val: u32,
) -> Addr {
    let n = env.ralloc(r, d);
    env.heap().store_u32(n + N_KIND, kind);
    env.store_ptr_region(n + N_A, a);
    env.store_ptr_region(n + N_B, b);
    env.store_ptr_region(n + N_C, c);
    env.heap().store_u32(n + N_VAL, val);
    n
}

#[allow(clippy::too_many_arguments)]
fn sym_insert_r(
    env: &mut RegionEnv,
    r: crate::env::Rh,
    d_sym: crate::env::Dh,
    chain: Addr,
    src: Addr,
    start: u32,
    len: u32,
    idx: u32,
) -> Addr {
    let name = env.rstralloc(r, len);
    env.heap().copy(name, src + start, len);
    let s = env.ralloc(r, d_sym);
    env.store_ptr_region(s + S_NEXT, chain);
    env.store_ptr_region(s + S_NAME, name);
    env.heap().store_u32(s + S_LEN, len);
    env.heap().store_u32(s + S_IDX, idx);
    s
}

#[allow(clippy::too_many_arguments)]
fn parse_stmt_r(
    env: &mut RegionEnv,
    lx: &mut Lexer,
    src: Addr,
    sr: crate::env::Rh,
    fr: crate::env::Rh,
    d_node: crate::env::Dh,
    d_sym: crate::env::Dh,
    symtab: &mut Addr,
    nsyms: &mut u32,
) -> Addr {
    match lx.tok {
        Tok::KwInt => {
            lx.advance(env.heap());
            let Tok::Ident { start, len } = lx.tok else { panic!("name expected") };
            lx.advance(env.heap());
            *symtab = sym_insert_r(env, fr, d_sym, *symtab, src, start, len, *nsyms);
            *nsyms += 1;
            lx.eat_punct(env.heap(), b'=');
            let init = parse_expr_r(env, lx, src, sr, d_node, *symtab);
            lx.eat_punct(env.heap(), b';');
            node_r(env, sr, d_node, K_DECL, *symtab, init, Addr::NULL, 0)
        }
        Tok::KwIf => {
            lx.advance(env.heap());
            lx.eat_punct(env.heap(), b'(');
            let cond = parse_expr_r(env, lx, src, sr, d_node, *symtab);
            lx.eat_punct(env.heap(), b')');
            let then_b = parse_block_r(env, lx, src, sr, fr, d_node, d_sym, symtab, nsyms);
            let else_b = if lx.tok == Tok::KwElse {
                lx.advance(env.heap());
                parse_block_r(env, lx, src, sr, fr, d_node, d_sym, symtab, nsyms)
            } else {
                Addr::NULL
            };
            node_r(env, sr, d_node, K_IF, cond, then_b, else_b, 0)
        }
        Tok::KwWhile => {
            lx.advance(env.heap());
            lx.eat_punct(env.heap(), b'(');
            let cond = parse_expr_r(env, lx, src, sr, d_node, *symtab);
            lx.eat_punct(env.heap(), b')');
            let body = parse_block_r(env, lx, src, sr, fr, d_node, d_sym, symtab, nsyms);
            node_r(env, sr, d_node, K_WHILE, cond, body, Addr::NULL, 0)
        }
        Tok::KwReturn => {
            lx.advance(env.heap());
            let e = parse_expr_r(env, lx, src, sr, d_node, *symtab);
            lx.eat_punct(env.heap(), b';');
            node_r(env, sr, d_node, K_RET, e, Addr::NULL, Addr::NULL, 0)
        }
        Tok::Ident { start, len } => {
            lx.advance(env.heap());
            let entry = sym_lookup(env.heap(), *symtab, src, start, len);
            assert!(!entry.is_null(), "undeclared identifier");
            let var = node_r(env, sr, d_node, K_VAR, entry, Addr::NULL, Addr::NULL, 0);
            lx.eat_punct(env.heap(), b'=');
            let e = parse_expr_r(env, lx, src, sr, d_node, *symtab);
            lx.eat_punct(env.heap(), b';');
            node_r(env, sr, d_node, K_ASSIGN, var, e, Addr::NULL, 0)
        }
        other => panic!("unexpected token {other:?}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn parse_block_r(
    env: &mut RegionEnv,
    lx: &mut Lexer,
    src: Addr,
    sr: crate::env::Rh,
    fr: crate::env::Rh,
    d_node: crate::env::Dh,
    d_sym: crate::env::Dh,
    symtab: &mut Addr,
    nsyms: &mut u32,
) -> Addr {
    lx.eat_punct(env.heap(), b'{');
    let mut head = Addr::NULL;
    let mut tail = Addr::NULL;
    while lx.tok != Tok::Punct(b'}') {
        let s = parse_stmt_r(env, lx, src, sr, fr, d_node, d_sym, symtab, nsyms);
        let cell = node_r(env, sr, d_node, K_SEQ, s, Addr::NULL, Addr::NULL, 0);
        if head.is_null() {
            head = cell;
        } else {
            env.store_ptr_region(tail + N_B, cell);
        }
        tail = cell;
    }
    lx.eat_punct(env.heap(), b'}');
    head
}

fn parse_expr_r(
    env: &mut RegionEnv,
    lx: &mut Lexer,
    src: Addr,
    sr: crate::env::Rh,
    d_node: crate::env::Dh,
    symtab: Addr,
) -> Addr {
    let mut lhs = parse_term_r(env, lx, src, sr, d_node, symtab);
    loop {
        let kind = match lx.tok {
            Tok::Punct(b'+') => K_ADD,
            Tok::Punct(b'-') => K_SUB,
            Tok::Punct(b'<') => K_LT,
            Tok::Punct(b'>') => K_GT,
            _ => break,
        };
        lx.advance(env.heap());
        let rhs = parse_term_r(env, lx, src, sr, d_node, symtab);
        lhs = node_r(env, sr, d_node, kind, lhs, rhs, Addr::NULL, 0);
    }
    lhs
}

fn parse_term_r(
    env: &mut RegionEnv,
    lx: &mut Lexer,
    src: Addr,
    sr: crate::env::Rh,
    d_node: crate::env::Dh,
    symtab: Addr,
) -> Addr {
    let mut lhs = parse_atom_r(env, lx, src, sr, d_node, symtab);
    while lx.tok == Tok::Punct(b'*') {
        lx.advance(env.heap());
        let rhs = parse_atom_r(env, lx, src, sr, d_node, symtab);
        lhs = node_r(env, sr, d_node, K_MUL, lhs, rhs, Addr::NULL, 0);
    }
    lhs
}

fn parse_atom_r(
    env: &mut RegionEnv,
    lx: &mut Lexer,
    src: Addr,
    sr: crate::env::Rh,
    d_node: crate::env::Dh,
    symtab: Addr,
) -> Addr {
    match lx.tok {
        Tok::Int(v) => {
            lx.advance(env.heap());
            node_r(env, sr, d_node, K_INT, Addr::NULL, Addr::NULL, Addr::NULL, v as u32)
        }
        Tok::Ident { start, len } => {
            lx.advance(env.heap());
            let entry = sym_lookup(env.heap(), symtab, src, start, len);
            assert!(!entry.is_null(), "undeclared identifier");
            node_r(env, sr, d_node, K_VAR, entry, Addr::NULL, Addr::NULL, 0)
        }
        Tok::Punct(b'(') => {
            lx.advance(env.heap());
            let e = parse_expr_r(env, lx, src, sr, d_node, symtab);
            lx.eat_punct(env.heap(), b')');
            e
        }
        other => panic!("unexpected token in expression: {other:?}"),
    }
}

// --- end region variant ---

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{MallocKind, RegionKind};

    #[test]
    fn input_looks_like_c() {
        let src = input(1);
        assert_eq!(src.matches("int f").count(), 6);
        assert!(src.contains("while ("));
        assert!(src.contains("if ("));
        assert!(src.contains("return"));
    }

    #[test]
    fn all_allocators_agree_on_the_answer() {
        let expected = run_malloc(&mut MallocEnv::new(MallocKind::Sun), 1);
        for kind in [MallocKind::Bsd, MallocKind::Lea, MallocKind::Gc] {
            assert_eq!(run_malloc(&mut MallocEnv::new(kind), 1), expected, "{}", kind.name());
        }
        for kind in [RegionKind::Safe, RegionKind::Unsafe, RegionKind::Emulated(MallocKind::Sun)] {
            assert_eq!(run_region(&mut RegionEnv::new(kind), 1), expected, "{}", kind.name());
        }
    }

    #[test]
    fn malloc_variant_frees_everything() {
        let mut env = MallocEnv::new(MallocKind::Lea);
        run_malloc(&mut env, 1);
        assert_eq!(env.stats().live_bytes, 0);
        assert!(env.stats().total_allocs > 1_000, "got {}", env.stats().total_allocs);
    }

    #[test]
    fn region_variant_rotates_and_cleans_up() {
        let mut env = RegionEnv::new(RegionKind::Safe);
        run_region(&mut env, 1);
        let stats = env.stats();
        assert_eq!(stats.live_regions, 0);
        // 6 function regions + at least one statement region per function.
        assert!(stats.total_regions >= 12, "got {}", stats.total_regions);
        assert_eq!(env.costs().unwrap().deletes_failed, 0);
        // Cross-region pointers (statement nodes → symbols) exercised the
        // cleanup scan.
        assert!(env.costs().unwrap().cleanup_ptrs > 0);
    }
}
