//! Figure 8 — memory requested from the OS by each allocator, next to
//! the memory the program itself requested.
//!
//! Paper shape: regions rank first or second everywhere (from 9% less to
//! 19% more than Lea's allocator); BSD and the collector "use a lot of
//! memory, which makes them unsuitable for some applications".

use bench_harness::runner::{kb, measure_malloc, measure_region, pages_kb, scale_from_env};
use workloads::{MallocKind, RegionKind, Workload};

fn main() {
    let scale = scale_from_env();
    println!("Figure 8: Memory overhead, OS kbytes (requested kbytes in parens), scale {scale}");
    println!(
        "{:<9} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Name", "requested", "Sun", "BSD", "Lea", "GC", "Reg", "unsafe"
    );
    for w in Workload::ALL {
        let mut row = format!("{:<9}", w.name());
        let reg = measure_region(w, RegionKind::Safe, scale, false);
        row += &format!(" {:>12.1}", kb(reg.stats.max_live_bytes));
        for kind in MallocKind::ALL {
            let m = measure_malloc(w, kind, scale, false);
            row += &format!(" {:>9.0}", pages_kb(m.os_pages));
        }
        row += &format!(" {:>9.0}", pages_kb(reg.os_pages));
        let unsf = measure_region(w, RegionKind::Unsafe, scale, false);
        row += &format!(" {:>9.0}", pages_kb(unsf.os_pages));
        println!("{row}");
        // The paper's extra bars for the emulated programs.
        if matches!(w, Workload::Mudlle | Workload::Lcc) {
            let e = measure_region(w, RegionKind::Emulated(MallocKind::Lea), scale, false);
            println!(
                "{:<9} {:>12} {:>9} (emulation over Lea; region data w/o overhead {:.0} KB)",
                "  emu",
                "",
                format!("{:.0}", pages_kb(e.os_pages)),
                kb(e.stats.max_live_bytes),
            );
        }
    }
    println!();
    println!("Shape check vs paper: Reg ranks first or second on every row;");
    println!("BSD (power-of-two rounding) and GC (heap-doubling headroom) are the");
    println!("heavy consumers, as in the paper's clipped cfrac/tile bars.");
}
