//! Abstract syntax for C@.

/// A type as written in source, before resolution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `void` (function returns only)
    Void,
    /// `Region`
    Region,
    /// `int @` — a region-allocated array of ints (from `rstralloc`).
    IntArray,
    /// `S @` — region pointer to struct `S` (the paper's `struct S @`).
    RegionPtr(String),
    /// `S *` — normal pointer to struct `S`.
    NormalPtr(String),
}

/// One `struct` definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(TypeExpr, String)>,
    /// Source line of the definition.
    pub line: u32,
}

/// One `global` variable.
#[derive(Clone, Debug)]
pub struct GlobalDef {
    /// Declared type. `TypeExpr::RegionPtr`/`NormalPtr`/`Int`/`Region` are
    /// word-sized; a bare struct global is declared as `global S name;`
    /// via [`GlobalDef::struct_value`].
    pub ty: TypeExpr,
    /// `Some(struct name)` when this global is an in-place struct value
    /// (addressable with `&name`).
    pub struct_value: Option<String>,
    /// Variable name.
    pub name: String,
    /// Source line.
    pub line: u32,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FuncDef {
    /// Return type (`TypeExpr::Void` for `void`).
    pub ret: TypeExpr,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(TypeExpr, String)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A whole translation unit.
#[derive(Clone, Debug, Default)]
pub struct Unit {
    /// Struct definitions, in order.
    pub structs: Vec<StructDef>,
    /// Global variables, in order.
    pub globals: Vec<GlobalDef>,
    /// Functions, in order.
    pub funcs: Vec<FuncDef>,
}

/// Statements.
///
/// Variant fields are self-describing syntax parts (`cond`, `body`,
/// `line`, …).
#[allow(missing_docs)]
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `T x = e;` — every local is initialized at declaration (C@
    /// requires this for anything containing region pointers; we require
    /// it uniformly).
    Decl { ty: TypeExpr, name: String, init: Expr, line: u32 },
    /// `lv = e;`
    Assign { target: Expr, value: Expr, line: u32 },
    /// An expression evaluated for effect.
    Expr { expr: Expr, line: u32 },
    /// `if (c) s1 else s2`
    If { cond: Expr, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>, line: u32 },
    /// `while (c) s`
    While { cond: Expr, body: Vec<Stmt>, line: u32 },
    /// `for (init; c; step) s` — `continue` jumps to `step`.
    For { init: Box<Stmt>, cond: Expr, step: Box<Stmt>, body: Vec<Stmt>, line: u32 },
    /// `return e?;`
    Return { value: Option<Expr>, line: u32 },
    /// `print(e);` — appends an int to the program output.
    Print { value: Expr, line: u32 },
    /// `break;` — exit the innermost loop.
    Break { line: u32 },
    /// `continue;` — next iteration of the innermost loop.
    Continue { line: u32 },
}

/// Binary operators.
#[allow(missing_docs)] // names are the documentation
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// Unary operators.
#[allow(missing_docs)] // names are the documentation
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    Neg,
    Not,
}

/// Expressions. Every node carries its source line.
///
/// Variant fields are self-describing syntax parts.
#[allow(missing_docs)]
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Int { value: i32, line: u32 },
    /// `null` (assignable to any pointer type).
    Null { line: u32 },
    /// Variable reference (local, parameter, or global).
    Var { name: String, line: u32 },
    /// `e.f` or `e->f` (identical in C@: member access auto-dereferences).
    Field { base: Box<Expr>, field: String, line: u32 },
    /// `e[i]` on an `int@` array.
    Index { base: Box<Expr>, index: Box<Expr>, line: u32 },
    /// Binary operation.
    Bin { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr>, line: u32 },
    /// Unary operation.
    Un { op: UnOp, operand: Box<Expr>, line: u32 },
    /// `f(args)`.
    Call { name: String, args: Vec<Expr>, line: u32 },
    /// `newregion()`.
    NewRegion { line: u32 },
    /// `deleteregion(var)` — the argument must name a `Region` variable;
    /// on success it is set to the null region (the paper's
    /// `deleteregion(Region *r)` writes NULL through its argument).
    DeleteRegion { var: String, line: u32 },
    /// `ralloc(r, S)` — allocate one cleared `S` in `r`.
    Ralloc { region: Box<Expr>, struct_name: String, line: u32 },
    /// `rarrayalloc(r, n, S)` — allocate a cleared array of `n` `S`.
    RArrayAlloc { region: Box<Expr>, count: Box<Expr>, struct_name: String, line: u32 },
    /// `rstralloc(r, n)` — allocate `n` ints of pointer-free storage.
    RStrAlloc { region: Box<Expr>, count: Box<Expr>, line: u32 },
    /// `regionof(e)`.
    RegionOf { operand: Box<Expr>, line: u32 },
    /// `cast<T>(e)` — the explicit (unsafe) conversion between pointer
    /// kinds that C@ allows (§3.1).
    Cast { ty: TypeExpr, operand: Box<Expr>, line: u32 },
    /// `&g` where `g` is a global struct value.
    AddrOfGlobal { name: String, line: u32 },
}

impl Expr {
    /// The source line of this expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Int { line, .. }
            | Expr::Null { line }
            | Expr::Var { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Bin { line, .. }
            | Expr::Un { line, .. }
            | Expr::Call { line, .. }
            | Expr::NewRegion { line }
            | Expr::DeleteRegion { line, .. }
            | Expr::Ralloc { line, .. }
            | Expr::RArrayAlloc { line, .. }
            | Expr::RStrAlloc { line, .. }
            | Expr::RegionOf { line, .. }
            | Expr::Cast { line, .. }
            | Expr::AddrOfGlobal { line, .. } => *line,
        }
    }
}
