//! Allocation statistics in the shape of the paper's Tables 2 and 3.
//!
//! The paper reports, per benchmark: total allocations, total kbytes
//! allocated (sizes rounded to the nearest multiple of four), the maximum
//! kbytes allocated at any one time, and — for regions — total/maximum
//! region counts and region size statistics.

/// Running allocation statistics.
///
/// `region-core` and `malloc-suite` both maintain one of these, so the
/// benchmark harness can print Table 2 (regions) and Table 3 (malloc) rows
/// from the same structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Total number of allocations performed ("Total allocs").
    pub total_allocs: u64,
    /// Total bytes allocated, each size rounded up to a multiple of four
    /// ("Total kbytes allocated", reported in bytes here).
    pub total_bytes: u64,
    /// Bytes currently allocated (requested, rounded to four).
    pub live_bytes: u64,
    /// High-water mark of [`AllocStats::live_bytes`] ("Max. kbytes
    /// allocated").
    pub max_live_bytes: u64,
    /// Total number of regions ever created ("Total regions"; zero for
    /// malloc-style allocators).
    pub total_regions: u64,
    /// Number of regions currently live.
    pub live_regions: u64,
    /// High-water mark of live regions ("Max. regions").
    pub max_live_regions: u64,
    /// Largest number of requested bytes ever held by a single region
    /// ("Max. kbytes in region").
    pub max_region_bytes: u64,
}

impl AllocStats {
    /// Records an allocation of `size` requested bytes; returns the
    /// four-byte-rounded size that was accounted.
    pub fn on_alloc(&mut self, size: u32) -> u32 {
        let rounded = size.div_ceil(4) * 4;
        self.total_allocs += 1;
        self.total_bytes += u64::from(rounded);
        self.live_bytes += u64::from(rounded);
        self.max_live_bytes = self.max_live_bytes.max(self.live_bytes);
        rounded
    }

    /// Records freeing `rounded` accounted bytes (a single `free`, or the
    /// whole footprint of a deleted region).
    pub fn on_free(&mut self, rounded: u64) {
        debug_assert!(self.live_bytes >= rounded, "freeing more than live");
        self.live_bytes -= rounded;
    }

    /// Records creation of a region.
    pub fn on_region_created(&mut self) {
        self.total_regions += 1;
        self.live_regions += 1;
        self.max_live_regions = self.max_live_regions.max(self.live_regions);
    }

    /// Records deletion of a region whose accounted footprint was
    /// `region_bytes`.
    pub fn on_region_deleted(&mut self, region_bytes: u64) {
        debug_assert!(self.live_regions > 0);
        self.live_regions -= 1;
        self.on_free(region_bytes);
    }

    /// Notes a region's current footprint for the "Max. kbytes in region"
    /// column.
    pub fn note_region_bytes(&mut self, region_bytes: u64) {
        self.max_region_bytes = self.max_region_bytes.max(region_bytes);
    }

    /// Average requested bytes per region over all regions ever created
    /// ("Avg. kbytes per region"). Returns 0.0 when no regions were created.
    pub fn avg_bytes_per_region(&self) -> f64 {
        if self.total_regions == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.total_regions as f64
        }
    }

    /// Average allocations per region ("Avg. allocs per region").
    pub fn avg_allocs_per_region(&self) -> f64 {
        if self.total_regions == 0 {
            0.0
        } else {
            self.total_allocs as f64 / self.total_regions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_to_four() {
        let mut s = AllocStats::default();
        assert_eq!(s.on_alloc(1), 4);
        assert_eq!(s.on_alloc(4), 4);
        assert_eq!(s.on_alloc(13), 16);
        assert_eq!(s.total_allocs, 3);
        assert_eq!(s.total_bytes, 24);
        assert_eq!(s.live_bytes, 24);
        assert_eq!(s.max_live_bytes, 24);
    }

    #[test]
    fn free_lowers_live_but_not_max() {
        let mut s = AllocStats::default();
        s.on_alloc(100);
        s.on_alloc(100);
        s.on_free(100);
        assert_eq!(s.live_bytes, 100);
        assert_eq!(s.max_live_bytes, 200);
    }

    #[test]
    fn region_counters() {
        let mut s = AllocStats::default();
        s.on_region_created();
        s.on_region_created();
        assert_eq!(s.live_regions, 2);
        assert_eq!(s.max_live_regions, 2);
        let b = u64::from(s.on_alloc(40));
        s.note_region_bytes(b);
        s.on_region_deleted(b);
        assert_eq!(s.live_regions, 1);
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.max_region_bytes, 40);
        s.on_region_created();
        assert_eq!(s.total_regions, 3);
        assert_eq!(s.max_live_regions, 2);
    }

    #[test]
    fn averages() {
        let mut s = AllocStats::default();
        assert_eq!(s.avg_bytes_per_region(), 0.0);
        assert_eq!(s.avg_allocs_per_region(), 0.0);
        s.on_region_created();
        s.on_region_created();
        s.on_alloc(8);
        s.on_alloc(8);
        s.on_alloc(8);
        assert_eq!(s.avg_bytes_per_region(), 12.0);
        assert_eq!(s.avg_allocs_per_region(), 1.5);
    }
}
