//! Micro-benchmark of `regionof` — the paper's one-load page-map query
//! that sits inside every write barrier. Untraced runs answer from the
//! host-mirrored page map; traced runs walk the in-heap chunked map so
//! cache simulation sees the real access pattern.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cache_sim::MemorySystem;
use region_core::{RegionRuntime, TypeDescriptor};
use simheap::Addr;

fn populated_runtime() -> (RegionRuntime, Vec<Addr>) {
    let mut rt = RegionRuntime::new_safe();
    let d = rt.register_type(TypeDescriptor::new("node", 8, vec![4]));
    let mut addrs = Vec::new();
    for _ in 0..64 {
        let r = rt.new_region();
        for _ in 0..256 {
            addrs.push(rt.ralloc(r, d));
        }
    }
    (rt, addrs)
}

fn bench_region_of(c: &mut Criterion) {
    let mut g = c.benchmark_group("region_of");
    g.sample_size(20);

    g.bench_function("mirror(untraced)", |b| {
        let (mut rt, addrs) = populated_runtime();
        let mut i = 0;
        b.iter(|| {
            i = (i + 127) % addrs.len();
            black_box(rt.region_of(black_box(addrs[i])));
        });
    });

    g.bench_function("in_heap(traced)", |b| {
        let (mut rt, addrs) = populated_runtime();
        rt.heap_mut().attach_sink(Box::new(MemorySystem::default()));
        let mut i = 0;
        b.iter(|| {
            i = (i + 127) % addrs.len();
            black_box(rt.region_of(black_box(addrs[i])));
        });
    });

    g.bench_function("null_pointer", |b| {
        let (mut rt, _) = populated_runtime();
        b.iter(|| black_box(rt.region_of(black_box(Addr::NULL))));
    });

    g.bench_function("barrier_self_overwrite", |b| {
        let (mut rt, addrs) = populated_runtime();
        let g_slot = rt.alloc_globals(4);
        rt.store_ptr_global(g_slot, addrs[0]);
        b.iter(|| rt.store_ptr_global(g_slot, black_box(addrs[0])));
    });

    g.finish();
}

criterion_group!(benches, bench_region_of);
criterion_main!(benches);
