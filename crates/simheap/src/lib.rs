//! A simulated 32-bit process address space.
//!
//! Every memory-management system in this repository — the region runtime of
//! [Gay & Aiken, PLDI 1998], the malloc baselines, the conservative garbage
//! collector, and the C@ virtual machine — allocates out of a [`SimHeap`]
//! rather than out of host memory. This buys three things the paper's
//! evaluation needs:
//!
//! 1. **Deterministic footprint measurement.** The heap grows with an
//!    `sbrk`-style call in 4 KB pages and records its high-water mark, which
//!    is exactly the "memory requested from the operating system" series of
//!    the paper's Figure 8.
//! 2. **Observable access streams.** Every load and store can be forwarded to
//!    an [`AccessSink`] (the cache simulator implements one), reproducing the
//!    read/write-stall measurements of Figure 10.
//! 3. **Conservative scanning.** Pointers are plain `u32` offsets
//!    ([`Addr`]), so a Boehm–Weiser-style collector can scan any range of
//!    the address space for values that look like pointers — no host
//!    `unsafe` required anywhere in the simulation stack.
//!
//! # Example
//!
//! ```
//! use simheap::{SimHeap, Addr, PAGE_SIZE};
//!
//! let mut heap = SimHeap::new();
//! let page = heap.sbrk_pages(1);
//! heap.store_u32(page, 0xdead_beef);
//! assert_eq!(heap.load_u32(page), 0xdead_beef);
//! assert_eq!(heap.os_bytes(), PAGE_SIZE as u64 * 2); // one guard + one data page
//! ```
//!
//! [Gay & Aiken, PLDI 1998]: https://doi.org/10.1145/277650.277748

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod backend;
mod heap;
mod shard;
mod trace;

pub use addr::{align_up, Addr, PAGE_SIZE, WORD};
pub use backend::HeapBackend;
pub use heap::{HeapConfig, HeapError, HeapImage, SimHeap};
pub use shard::{HeapShard, SharedSpace, SpaceConfig};
pub use trace::{
    Access, AccessEvent, AccessKind, AccessRange, AccessSink, CopyRange, CountingSink,
    EventRecordingSink, RecordingSink, SharedEventLog, SharedLogSink, StampedEvent,
};
