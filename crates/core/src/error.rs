//! Typed errors for the region runtime.
//!
//! The paper's prototype aborts on every failure (simulated OOM, misuse of
//! a deleted region, oversized allocation). A production runtime must
//! instead *report* — a benchmark matrix or a server must survive one
//! failed allocation. Every fallible `try_*` entry point of
//! [`crate::RegionRuntime`] returns a [`RegionError`]; the historical
//! panicking APIs are thin wrappers that `panic!` with the error's
//! [`Display`](std::fmt::Display) text, preserving the original messages.

use std::fmt;

use simheap::HeapError;

use crate::fault::FaultSite;
use crate::par::ParRegionId;
use crate::runtime::RegionId;
use crate::snapshot::SnapshotError;

/// Everything that can go wrong in the region runtime.
///
/// `Copy` on purpose: errors carry only scalars, so they can be recorded,
/// compared, and folded into deterministic chaos digests without
/// allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionError {
    /// The simulated OS refused to grow the heap (`max_bytes` or the
    /// 32-bit address space was exhausted).
    OutOfMemory {
        /// Total heap size the failed growth would have reached.
        requested: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// An operation named a region that has already been deleted.
    RegionDeleted {
        /// The dead region.
        region: RegionId,
    },
    /// An operation named a region that is *doomed* — an incremental
    /// `deleteregion` has begun (the zero-reference proof succeeded and
    /// the region is parked mid-cleanup) but not yet finished. Unlike
    /// [`RegionError::RegionDeleted`] the pages still exist, but the
    /// region can never become usable again; allocation into it is a
    /// typed refusal, never a panic.
    RegionDoomed {
        /// The parked region.
        region: RegionId,
    },
    /// `try_delete_region` found external references after a full stack
    /// scan; nothing was freed and the region is still usable (§4.2).
    DeleteBlocked {
        /// The region that could not be deleted.
        region: RegionId,
        /// Its exact reference count at the scan.
        rc: i64,
    },
    /// `count * stride` (or the header bytes on top) overflowed `u32` in
    /// `try_rarrayalloc`.
    SizeOverflow {
        /// Requested element count.
        count: u32,
        /// Aligned element stride in bytes.
        stride: u32,
    },
    /// A single allocation exceeded one page — the prototype's documented
    /// limit ("allocations of at most one page", §4.1).
    ObjectTooLarge {
        /// Requested size including headers, in bytes.
        bytes: u32,
    },
    /// `try_rstralloc` of zero bytes.
    ZeroAlloc,
    /// An operation dereferenced or named the null region/pointer.
    NullDeref,
    /// The shadow stack of region-pointer locals is full.
    StackOverflow {
        /// Total slot capacity of the shadow stack.
        slots: u32,
    },
    /// A [`crate::FaultPlan`] deliberately failed this operation.
    FaultInjected {
        /// Which operation class was failed.
        site: FaultSite,
        /// Ordinal of the faulted operation at that site (1-based for
        /// page acquisitions and allocations; granted bytes for sbrk).
        count: u64,
    },
    /// A runtime snapshot could not be decoded or failed its restore
    /// gate; wraps the typed [`SnapshotError`] so `try_*`-style callers
    /// see one failure surface for heap, region, and snapshot errors.
    Snapshot(SnapshotError),
    /// A region service shed this request: the observed OS footprint was
    /// at or above the hard admission watermark
    /// ([`crate::pressure::Watermarks`]). Load shedding is a typed,
    /// recoverable refusal — never a panic — so callers can retry later
    /// or report the rejection (DESIGN §16).
    Overloaded {
        /// Footprint (simulated OS pages) observed at admission.
        pages: u64,
        /// The hard watermark that was reached.
        hard_pages: u64,
    },
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RegionError::OutOfMemory { requested, limit } => write!(
                f,
                "simulated out of memory: requested {requested} bytes (limit {limit})"
            ),
            RegionError::RegionDeleted { region } => {
                write!(f, "use of deleted region {region:?}")
            }
            RegionError::RegionDoomed { region } => {
                write!(f, "use of doomed region {region:?}: incremental deletion in progress")
            }
            RegionError::DeleteBlocked { region, rc } => write!(
                f,
                "deletion of {region:?} blocked: {rc} external reference(s) remain"
            ),
            RegionError::SizeOverflow { count, stride } => write!(
                f,
                "array size overflow: {count} elements of {stride} bytes"
            ),
            RegionError::ObjectTooLarge { bytes } => write!(
                f,
                "region allocation of {bytes} bytes exceeds one page \
                 (the prototype only handles allocations of at most one page, §4.1)"
            ),
            RegionError::ZeroAlloc => write!(f, "rstralloc of zero bytes"),
            RegionError::NullDeref => write!(f, "null region dereference"),
            RegionError::StackOverflow { slots } => {
                write!(f, "simulated stack overflow ({slots} slots)")
            }
            RegionError::FaultInjected { site, count } => {
                write!(f, "injected fault: {site} #{count}")
            }
            RegionError::Snapshot(e) => write!(f, "{e}"),
            RegionError::Overloaded { pages, hard_pages } => write!(
                f,
                "request shed: footprint {pages} pages at or above hard watermark {hard_pages}"
            ),
        }
    }
}

impl std::error::Error for RegionError {}

/// Everything that can go wrong in the parallel pool
/// ([`crate::par::ParRegionPool`]).
///
/// Like [`RegionError`], `Copy` on purpose: chaos harnesses record and
/// fold these into deterministic digests without allocation. The key
/// distinction the crash-safety layer introduces (DESIGN §12) is *why* a
/// deletion is blocked — by references live threads still hold (retry
/// after they release), or by counts orphaned by dead threads (only
/// [`crate::par::ParRegionPool::reap_orphans`] can clear those).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParRegionError {
    /// The region was already deleted or never existed.
    DeadOrUnknown {
        /// The region named.
        region: ParRegionId,
    },
    /// Deletion blocked by live threads' references; the caller can retry
    /// once they are released. The region stays in the live state.
    BlockedByLiveRefs {
        /// The region that could not be deleted.
        region: ParRegionId,
        /// Sum of live threads' local counts (> 0).
        sum: i64,
    },
    /// Deletion blocked (at least in part) by counts orphaned by dead
    /// threads; the region has been moved to the quarantined state and
    /// only an explicit [`crate::par::ParRegionPool::reap_orphans`] pass
    /// will reclaim it.
    BlockedByOrphans {
        /// The region quarantined.
        region: ParRegionId,
        /// Sum of live threads' local counts (may be negative).
        live_sum: i64,
        /// The orphan-ledger residue (nonzero).
        orphan_sum: i64,
    },
}

impl fmt::Display for ParRegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ParRegionError::DeadOrUnknown { region } => {
                write!(f, "try_delete of dead or unknown region {region:?}")
            }
            ParRegionError::BlockedByLiveRefs { region, sum } => write!(
                f,
                "deletion of {region:?} blocked: {sum} live reference(s) remain"
            ),
            ParRegionError::BlockedByOrphans { region, live_sum, orphan_sum } => write!(
                f,
                "deletion of {region:?} blocked by orphaned counts: \
                 {orphan_sum} orphaned + {live_sum} live — region quarantined"
            ),
        }
    }
}

impl std::error::Error for ParRegionError {}

impl From<SnapshotError> for RegionError {
    fn from(e: SnapshotError) -> RegionError {
        RegionError::Snapshot(e)
    }
}

impl From<HeapError> for RegionError {
    fn from(e: HeapError) -> RegionError {
        match e {
            HeapError::OutOfMemory { requested, limit } => {
                RegionError::OutOfMemory { requested, limit }
            }
            HeapError::FaultInjected { granted, .. } => {
                RegionError::FaultInjected { site: FaultSite::Sbrk, count: granted }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_historical_panic_messages() {
        // The panicking wrappers panic with `Display` text; these
        // substrings are what existing `#[should_panic]` tests (and VM
        // trap-message tests) match on.
        let r = RegionId(3);
        assert!(RegionError::RegionDeleted { region: r }.to_string().contains("use of deleted region"));
        assert!(RegionError::RegionDoomed { region: r }.to_string().contains("use of doomed region"));
        assert!(RegionError::ObjectTooLarge { bytes: 9000 }.to_string().contains("exceeds one page"));
        assert!(RegionError::SizeOverflow { count: u32::MAX, stride: 8 }
            .to_string()
            .contains("array size overflow"));
        assert!(RegionError::ZeroAlloc.to_string().contains("rstralloc of zero bytes"));
        assert!(RegionError::StackOverflow { slots: 64 }
            .to_string()
            .contains("simulated stack overflow"));
        assert!(RegionError::OutOfMemory { requested: 1, limit: 0 }
            .to_string()
            .contains("simulated out of memory"));
        assert!(RegionError::Overloaded { pages: 900, hard_pages: 800 }
            .to_string()
            .contains("request shed"));
    }

    #[test]
    fn snapshot_errors_convert() {
        let e: RegionError = SnapshotError::BadMagic.into();
        assert_eq!(e, RegionError::Snapshot(SnapshotError::BadMagic));
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn heap_errors_convert() {
        let e: RegionError = HeapError::OutOfMemory { requested: 10, limit: 5 }.into();
        assert_eq!(e, RegionError::OutOfMemory { requested: 10, limit: 5 });
        let e: RegionError = HeapError::FaultInjected { granted: 4096, budget: 4096 }.into();
        assert_eq!(e, RegionError::FaultInjected { site: FaultSite::Sbrk, count: 4096 });
    }
}
