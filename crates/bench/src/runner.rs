//! Workload execution and measurement shared by every table/figure
//! binary.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use cache_sim::{MemStats, MemorySystem};
use region_core::{AllocStats, SafetyCosts};
use simheap::SimHeap;
use workloads::{MallocEnv, MallocKind, RegionEnv, RegionKind, Workload};

use crate::supervise::{supervise, JobOutcome, SuperviseConfig};

/// Locks the warm-heap pool, tolerating poison: a panic inside a matrix
/// cell happens while the pool is *unlocked* (heaps are popped before and
/// pushed after a run), so a poisoned lock only means some other cell
/// died — the pooled heaps themselves are fine to reuse.
fn lock_pool(pool: &Mutex<Vec<SimHeap>>) -> MutexGuard<'_, Vec<SimHeap>> {
    pool.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Workload scale, from the `SCALE` environment variable (default 2).
/// Passing `--quick` to a benchmark binary forces scale 1 (CI smoke
/// runs). An unparseable `SCALE` warns instead of silently defaulting.
pub fn scale_from_env() -> u32 {
    if std::env::args().any(|a| a == "--quick") {
        return 1;
    }
    match std::env::var("SCALE") {
        Ok(s) => match s.trim().parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("warning: SCALE={s:?} is not an unsigned integer; using default 2");
                2
            }
        },
        Err(_) => 2,
    }
}

/// Everything measured from one workload × allocator run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name.
    pub workload: &'static str,
    /// Allocator/backend name as used in the paper's figures.
    pub allocator: &'static str,
    /// Wall-clock time of the whole run.
    pub total: Duration,
    /// Time inside memory management (the "memory" share of Figure 9).
    pub mem: Duration,
    /// Pages requested from the OS (Figure 8).
    pub os_pages: u64,
    /// Allocation statistics (Tables 2/3).
    pub stats: AllocStats,
    /// Underlying-malloc statistics for emulation runs ("with overhead").
    pub inner_stats: Option<AllocStats>,
    /// Safety-cost counters (safe-region runs only; Figure 11).
    pub costs: Option<SafetyCosts>,
    /// Cache-simulator counters (traced runs only; Figure 10).
    pub cache: Option<MemStats>,
    /// The workload's answer (must agree across allocators).
    pub checksum: u64,
}

impl Measurement {
    /// The "base" share of Figure 9.
    pub fn base(&self) -> Duration {
        self.total.saturating_sub(self.mem)
    }
}

/// Runs the malloc/free variant of a workload under one allocator.
/// `traced` attaches the cache simulator (slower; for Figure 10).
pub fn measure_malloc(w: Workload, kind: MallocKind, scale: u32, traced: bool) -> Measurement {
    measure_malloc_on(w, kind, scale, traced, SimHeap::new()).0
}

/// [`measure_malloc`] on a recycled heap, returning the (reset-ready) heap
/// for the next run. The environment resets the heap before use, so the
/// measurement is bit-identical to a fresh-heap run.
pub fn measure_malloc_on(
    w: Workload,
    kind: MallocKind,
    scale: u32,
    traced: bool,
    heap: SimHeap,
) -> (Measurement, SimHeap) {
    let mut env = MallocEnv::on_heap(kind, heap);
    if traced {
        env.heap().attach_sink(Box::new(MemorySystem::default()));
    }
    let t = Instant::now();
    let checksum = w.run_malloc(&mut env, scale);
    let total = t.elapsed();
    let mem = env.mem_time();
    let os_pages = env.os_pages();
    let stats = *env.stats();
    let mut heap = env.into_heap();
    let cache = if traced {
        let sink = heap.detach_sink().expect("sink attached");
        Some(MemorySystem::from_sink(sink).stats())
    } else {
        None
    };
    let m = Measurement {
        workload: w.name(),
        allocator: kind.name(),
        total,
        mem,
        os_pages,
        stats,
        inner_stats: None,
        costs: None,
        cache,
        checksum,
    };
    (m, heap)
}

/// Whether benchmark region runs elide hand-annotated *sameregion*
/// barriers (`BENCH_ELIDE=1`). Off by default, so every published
/// counter reproduces; the elision A/B turns it on per run instead.
pub fn elide_from_env() -> bool {
    std::env::var("BENCH_ELIDE").is_ok_and(|v| v == "1")
}

/// Runs the region variant of a workload under one region backend.
pub fn measure_region(w: Workload, kind: RegionKind, scale: u32, traced: bool) -> Measurement {
    measure_region_on(w, kind, scale, traced, SimHeap::new()).0
}

/// [`measure_region`] with barrier elision explicitly on or off,
/// ignoring `BENCH_ELIDE` — the elision A/B drives both arms from one
/// process.
pub fn measure_region_elide(w: Workload, kind: RegionKind, scale: u32, elide: bool) -> Measurement {
    run_region_elide(w.name(), kind, scale, false, elide, SimHeap::new(), |env| {
        w.run_region(env, scale)
    })
    .0
}

/// [`measure_region`] on a recycled heap (see [`measure_malloc_on`]).
pub fn measure_region_on(
    w: Workload,
    kind: RegionKind,
    scale: u32,
    traced: bool,
    heap: SimHeap,
) -> (Measurement, SimHeap) {
    run_region_fn(w.name(), kind, scale, traced, heap, |env| w.run_region(env, scale))
}

/// Runs moss's "slow" (single-region, interleaved) layout — the extra
/// bar of Figures 9 and 10.
pub fn measure_region_slow(kind: RegionKind, scale: u32, traced: bool) -> Measurement {
    measure_region_slow_on(kind, scale, traced, SimHeap::new()).0
}

/// [`measure_region_slow`] on a recycled heap (see [`measure_malloc_on`]).
pub fn measure_region_slow_on(
    kind: RegionKind,
    scale: u32,
    traced: bool,
    heap: SimHeap,
) -> (Measurement, SimHeap) {
    let (mut m, heap) = run_region_fn("moss", kind, scale, traced, heap, |env| {
        workloads::moss::run_region_slow(env, scale)
    });
    m.allocator = "Slow";
    (m, heap)
}

fn run_region_fn(
    name: &'static str,
    kind: RegionKind,
    scale: u32,
    traced: bool,
    heap: SimHeap,
    run: impl FnOnce(&mut RegionEnv) -> u64,
) -> (Measurement, SimHeap) {
    run_region_elide(name, kind, scale, traced, elide_from_env(), heap, run)
}

fn run_region_elide(
    name: &'static str,
    kind: RegionKind,
    _scale: u32,
    traced: bool,
    elide: bool,
    heap: SimHeap,
    run: impl FnOnce(&mut RegionEnv) -> u64,
) -> (Measurement, SimHeap) {
    let mut env = RegionEnv::on_heap(kind, heap);
    env.set_elide(elide);
    if traced {
        env.heap().attach_sink(Box::new(MemorySystem::default()));
    }
    let t = Instant::now();
    let checksum = run(&mut env);
    let total = t.elapsed();
    let mem = env.mem_time();
    let os_pages = env.os_pages();
    let stats = *env.stats();
    let inner_stats = env.emulation_inner_stats().copied();
    let costs = env.costs().copied();
    if std::env::var("REGION_SANITIZE").is_ok_and(|v| v == "1") {
        if let Some(report) = env.sanitize() {
            assert!(
                report.is_clean(),
                "REGION_SANITIZE: {name}/{} left a dirty runtime: {report}",
                kind.name()
            );
        }
    }
    let mut heap = env.into_heap();
    let cache = if traced {
        let sink = heap.detach_sink().expect("sink attached");
        Some(MemorySystem::from_sink(sink).stats())
    } else {
        None
    };
    let m = Measurement {
        workload: name,
        allocator: kind.name(),
        total,
        mem,
        os_pages,
        stats,
        inner_stats,
        costs,
        cache,
        checksum,
    };
    (m, heap)
}

// ----------------------------------------------------------------------
// Parallel workload × allocator matrix
// ----------------------------------------------------------------------

/// One cell of a workload × allocator matrix.
#[derive(Clone, Copy, Debug)]
pub enum Job {
    /// The malloc/free variant of a workload under one allocator.
    Malloc(Workload, MallocKind),
    /// The region variant of a workload under one region backend.
    Region(Workload, RegionKind),
    /// moss's "slow" single-region layout (Figures 9/10 extra bar).
    MossSlow(RegionKind),
}

impl Job {
    /// Runs this cell and returns its measurement.
    pub fn run(self, scale: u32, traced: bool) -> Measurement {
        self.run_warm(SimHeap::new(), scale, traced).0
    }

    /// Runs this cell on a recycled heap and hands the heap back for the
    /// next cell. The environment resets the heap before use, so every
    /// counter, checksum, and footprint row is bit-identical to a
    /// fresh-heap run; only the host allocation backing the simulated
    /// memory is reused.
    pub fn run_warm(self, heap: SimHeap, scale: u32, traced: bool) -> (Measurement, SimHeap) {
        match self {
            Job::Malloc(w, kind) => measure_malloc_on(w, kind, scale, traced, heap),
            Job::Region(w, kind) => measure_region_on(w, kind, scale, traced, heap),
            Job::MossSlow(kind) => measure_region_slow_on(kind, scale, traced, heap),
        }
    }
}

/// Runs every cell of a matrix, fanning jobs across worker threads.
///
/// Each [`Measurement`] owns an independent `SimHeap`, so cells are
/// embarrassingly parallel; workers (bounded by the machine's available
/// parallelism) pull cells from a shared cursor, and results are
/// returned **in matrix order** regardless of completion order, so
/// output stays deterministic.
pub fn run_matrix(jobs: &[Job], scale: u32, traced: bool) -> Vec<Measurement> {
    run_matrix_with(jobs, scale, traced, bench_workers())
}

/// [`run_matrix`] warm-started from a captured heap snapshot: the pool
/// is pre-seeded with one heap restored from `image` per worker, so a
/// cell's first run adopts memory already grown to the snapshot's break
/// instead of paying workload setup's `sbrk` growth on a cold heap.
/// Environments reset adopted heaps before use, so every deterministic
/// field — checksums, counters, footprints, traces — is bit-identical
/// to a cold start (asserted by `warm_start_from_snapshot_matches_cold`);
/// only host-allocation reuse differs.
pub fn run_matrix_from_snapshot(
    jobs: &[Job],
    scale: u32,
    traced: bool,
    image: &simheap::HeapImage,
) -> Vec<Measurement> {
    let workers = bench_workers();
    let seed: Vec<SimHeap> =
        (0..workers.min(jobs.len())).map(|_| SimHeap::from_image(image)).collect();
    let rows = run_matrix_checked_seeded(jobs, scale, traced, workers, seed);
    let failures: Vec<String> = rows
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().err().map(|e| format!("{:?}: {e}", jobs[i])))
        .collect();
    assert!(
        failures.is_empty(),
        "{} of {} matrix cells failed:\n  {}",
        failures.len(),
        jobs.len(),
        failures.join("\n  ")
    );
    rows.into_iter().map(|r| r.expect("failures checked above")).collect()
}

/// The worker count benches fan across: `BENCH_WORKERS` if set (min 1),
/// else the machine's available parallelism. Recorded in every
/// `results/*.json` envelope so multi-core reruns are comparable with
/// single-core baselines.
pub fn bench_workers() -> usize {
    match std::env::var("BENCH_WORKERS").ok().and_then(|w| w.parse().ok()) {
        Some(w) if w >= 1 => w,
        _ => host_cores(),
    }
}

/// The machine's detected core count (available parallelism), 1 if
/// undetectable.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The worker count for the figures' **parallel pass**: `BENCH_PAR_WORKERS`
/// if set (min 1), else at least 3 even on a single-core machine. The
/// floor keeps single-core CI honest — the pass always exercises real
/// cross-thread scheduling, so "parallel execution does not perturb
/// simulated results" is checked everywhere, not just on big hosts.
pub fn par_bench_workers() -> usize {
    match std::env::var("BENCH_PAR_WORKERS").ok().and_then(|w| w.parse().ok()) {
        Some(w) if w >= 1 => w,
        _ => host_cores().max(3),
    }
}

/// [`run_matrix`] with an explicit worker count (normally taken from the
/// machine, overridable with `BENCH_WORKERS`).
///
/// Panics only after **every** cell has finished, listing each failed
/// cell — one faulted job costs that job, not the matrix.
pub fn run_matrix_with(jobs: &[Job], scale: u32, traced: bool, workers: usize) -> Vec<Measurement> {
    let rows = run_matrix_checked(jobs, scale, traced, workers);
    let failures: Vec<String> = rows
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().err().map(|e| format!("{:?}: {e}", jobs[i])))
        .collect();
    assert!(
        failures.is_empty(),
        "{} of {} matrix cells failed:\n  {}",
        failures.len(),
        jobs.len(),
        failures.join("\n  ")
    );
    rows.into_iter().map(|r| r.expect("failures checked above")).collect()
}

/// [`run_matrix_with`], but a cell that panics yields `Err(message)` in
/// its slot instead of taking down the matrix. A thin wrapper over
/// [`supervise`] (single attempt, no deadline): each job runs under
/// `catch_unwind` and the other workers keep draining the cursor. The
/// chaos harness uses this to assert that an injected fault degrades one
/// measurement, not the run.
pub fn run_matrix_checked(
    jobs: &[Job],
    scale: u32,
    traced: bool,
    workers: usize,
) -> Vec<Result<Measurement, String>> {
    run_matrix_checked_seeded(jobs, scale, traced, workers, Vec::new())
}

/// [`run_matrix_checked`] with the warm pool pre-seeded (restored
/// snapshot heaps for [`run_matrix_from_snapshot`], empty for a cold
/// start).
fn run_matrix_checked_seeded(
    jobs: &[Job],
    scale: u32,
    traced: bool,
    workers: usize,
    seed: Vec<SimHeap>,
) -> Vec<Result<Measurement, String>> {
    let cfg = SuperviseConfig { workers, ..SuperviseConfig::default() };
    // Warm heap pool: finished cells return their SimHeap and the next
    // cell adopts it (reset-and-reuse), so a long matrix allocates ~one
    // heap per worker instead of one per cell. A cell that panics drops
    // its heap with the unwound environment — a possibly-corrupt heap is
    // never recycled, keeping fault containment intact.
    let pool: Arc<Mutex<Vec<SimHeap>>> = Arc::new(Mutex::new(seed));
    let closures: Vec<_> = jobs
        .iter()
        .map(|&job| {
            let pool = Arc::clone(&pool);
            move |_attempt: u32| {
                let warm = lock_pool(&pool).pop().unwrap_or_else(SimHeap::new);
                let (m, heap) = job.run_warm(warm, scale, traced);
                lock_pool(&pool).push(heap);
                m
            }
        })
        .collect();
    supervise(closures, &cfg)
        .into_iter()
        .map(|r| match r.outcome {
            JobOutcome::Completed(m) => Ok(m),
            JobOutcome::Panicked(msg) => Err(msg),
            JobOutcome::TimedOut(d) => Err(format!("timed out after {d:?}")),
        })
        .collect()
}

/// The version stamped into every `results/*.json` document. Bump it
/// whenever the shape of [`results_json`] changes; `compare_results`
/// refuses to diff documents with mismatched versions.
///
/// v3 added `workers` and `host_cores` to the envelope so multi-core
/// reruns are comparable with single-core baselines.
pub const RESULTS_SCHEMA_VERSION: u64 = 3;

/// The parallel-pass column attached to a results document: the worker
/// count the pass fanned out to, and one wall-clock total per matrix row
/// (same order as the serial rows). Kept separate from [`Measurement`]
/// so documents without a parallel pass stay byte-identical to the
/// pre-column format — `compare_results` treats the absent column as
/// equal (see `OPT_TIME_FIELDS`).
#[derive(Debug, Clone)]
pub struct ParColumn {
    /// How many workers the parallel pass used (`par_bench_workers()`).
    pub workers: usize,
    /// Wall-clock `total_ms` of each cell under the parallel pass, in
    /// matrix order. Must be one entry per serial row.
    pub total_ms: Vec<f64>,
}

/// Tail-latency columns attached by service-shaped benches (the region
/// server): per-row p50/p99/p999 request latency in microseconds. Like
/// [`ParColumn`], kept separate from [`Measurement`] so documents
/// without the columns stay byte-identical to the older format —
/// `compare_results` treats the absent columns as equal and, because
/// latency is wall-clock shaped, downgrades drift to a warning (see
/// `LATENCY_TIME_FIELDS`).
#[derive(Debug, Clone)]
pub struct LatencyColumn {
    /// Median request latency per row, in microseconds.
    pub p50_us: Vec<f64>,
    /// 99th-percentile request latency per row, in microseconds.
    pub p99_us: Vec<f64>,
    /// 99.9th-percentile request latency per row, in microseconds.
    pub p999_us: Vec<f64>,
    /// Median `deleteregion`-increment pause per row, in microseconds.
    /// Leave empty to omit the pause columns entirely (documents written
    /// before incremental deletion stay byte-identical; `compare_results`
    /// treats the absent columns as equal).
    pub pause_p50_us: Vec<f64>,
    /// 99th-percentile `deleteregion`-increment pause per row, in
    /// microseconds. Empty omits, like [`LatencyColumn::pause_p50_us`].
    pub pause_p99_us: Vec<f64>,
}

impl LatencyColumn {
    /// The pause-free column set: request quantiles only, pause columns
    /// omitted from the document.
    pub fn new(p50_us: Vec<f64>, p99_us: Vec<f64>, p999_us: Vec<f64>) -> LatencyColumn {
        LatencyColumn { p50_us, p99_us, p999_us, pause_p50_us: Vec::new(), pause_p99_us: Vec::new() }
    }
}

/// Serializes measurements as a versioned JSON document and writes them
/// to `results/<name>.json` (creating the directory), returning the
/// path. Hand-rolled: the harness has no serialization dependency.
pub fn write_results_json(name: &str, rows: &[Measurement]) -> std::io::Result<std::path::PathBuf> {
    write_results_json_with_par(name, rows, None)
}

/// [`write_results_json`] with an optional parallel-pass column. `None`
/// writes the exact pre-column document.
pub fn write_results_json_with_par(
    name: &str,
    rows: &[Measurement],
    par: Option<&ParColumn>,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, results_json_with_par(name, rows, par))?;
    Ok(path)
}

/// [`write_results_json_with_par`] plus the optional tail-latency
/// columns. `None` for both extras writes the exact pre-column document.
pub fn write_results_json_full(
    name: &str,
    rows: &[Measurement],
    par: Option<&ParColumn>,
    lat: Option<&LatencyColumn>,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, results_json_full(name, rows, par, lat))?;
    Ok(path)
}

/// The commit the results were produced from: `GIT_COMMIT` if set, else
/// `.git/HEAD` (following one level of `ref:` indirection), else
/// `"unknown"`. Best-effort — benches may run outside a checkout.
fn commit_id() -> String {
    if let Ok(c) = std::env::var("GIT_COMMIT") {
        return c.trim().to_string();
    }
    let head = match std::fs::read_to_string(".git/HEAD") {
        Ok(h) => h.trim().to_string(),
        Err(_) => return "unknown".to_string(),
    };
    match head.strip_prefix("ref: ") {
        Some(r) => std::fs::read_to_string(format!(".git/{r}"))
            .map_or_else(|_| "unknown".to_string(), |c| c.trim().to_string()),
        None => head,
    }
}

/// The JSON document written by [`write_results_json`]: a schema-v3
/// envelope (`schema_version`, `bench`, `commit`, `workers`,
/// `host_cores`) wrapping the row array. Deterministic counters are
/// worker-count-independent (each cell owns its `SimHeap`); wall-clock
/// fields are not, which is why the envelope records how wide the run
/// fanned out — `compare_results` downgrades time drift to a warning
/// when the two documents disagree on `workers`.
pub fn results_json(name: &str, rows: &[Measurement]) -> String {
    results_json_with_par(name, rows, None)
}

/// [`results_json`] with an optional parallel-pass column: the envelope
/// gains `par_workers` and every row a `par_total_ms` cell. With `None`
/// the output is byte-identical to the pre-column format, so old and new
/// documents diff cleanly.
pub fn results_json_with_par(name: &str, rows: &[Measurement], par: Option<&ParColumn>) -> String {
    results_json_full(name, rows, par, None)
}

/// [`results_json_with_par`] plus the optional tail-latency columns:
/// every row gains `p50_us`/`p99_us`/`p999_us` cells. With `None` the
/// output is byte-identical to [`results_json_with_par`], so service
/// documents diff cleanly against plain ones.
pub fn results_json_full(
    name: &str,
    rows: &[Measurement],
    par: Option<&ParColumn>,
    lat: Option<&LatencyColumn>,
) -> String {
    if let Some(p) = par {
        assert_eq!(
            p.total_ms.len(),
            rows.len(),
            "parallel pass must cover the matrix: one par_total_ms per row"
        );
    }
    if let Some(l) = lat {
        assert!(
            l.p50_us.len() == rows.len()
                && l.p99_us.len() == rows.len()
                && l.p999_us.len() == rows.len(),
            "latency columns must cover the matrix: one quantile triple per row"
        );
        assert!(
            (l.pause_p50_us.is_empty() && l.pause_p99_us.is_empty())
                || (l.pause_p50_us.len() == rows.len() && l.pause_p99_us.len() == rows.len()),
            "pause columns must be omitted entirely or cover the matrix"
        );
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("\"schema_version\": {RESULTS_SCHEMA_VERSION},\n"));
    out.push_str(&format!("\"bench\": \"{name}\",\n"));
    out.push_str(&format!("\"commit\": \"{}\",\n", commit_id()));
    out.push_str(&format!("\"workers\": {},\n", bench_workers()));
    out.push_str(&format!("\"host_cores\": {},\n", host_cores()));
    if let Some(p) = par {
        out.push_str(&format!("\"par_workers\": {},\n", p.workers));
    }
    out.push_str("\"rows\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let s = &m.stats;
        out.push_str("  {");
        out.push_str(&format!("\"workload\": \"{}\", ", m.workload));
        out.push_str(&format!("\"allocator\": \"{}\", ", m.allocator));
        out.push_str(&format!("\"total_ms\": {:.3}, ", m.total.as_secs_f64() * 1e3));
        out.push_str(&format!("\"mem_ms\": {:.3}, ", m.mem.as_secs_f64() * 1e3));
        if let Some(p) = par {
            out.push_str(&format!("\"par_total_ms\": {:.3}, ", p.total_ms[i]));
        }
        if let Some(l) = lat {
            out.push_str(&format!("\"p50_us\": {:.3}, ", l.p50_us[i]));
            out.push_str(&format!("\"p99_us\": {:.3}, ", l.p99_us[i]));
            out.push_str(&format!("\"p999_us\": {:.3}, ", l.p999_us[i]));
            if !l.pause_p50_us.is_empty() {
                out.push_str(&format!("\"pause_p50_us\": {:.3}, ", l.pause_p50_us[i]));
                out.push_str(&format!("\"pause_p99_us\": {:.3}, ", l.pause_p99_us[i]));
            }
        }
        out.push_str(&format!("\"os_pages\": {}, ", m.os_pages));
        out.push_str(&format!("\"total_allocs\": {}, ", s.total_allocs));
        out.push_str(&format!("\"total_bytes\": {}, ", s.total_bytes));
        out.push_str(&format!("\"max_live_bytes\": {}, ", s.max_live_bytes));
        if let Some(c) = &m.costs {
            out.push_str(&format!("\"safety_instrs\": {}, ", c.total_instrs()));
            out.push_str(&format!("\"barriers_elided\": {}, ", c.barriers_elided));
        }
        if let Some(c) = &m.cache {
            out.push_str(&format!(
                "\"read_stall_cycles\": {}, \"write_stall_cycles\": {}, ",
                c.read_stall_cycles, c.write_stall_cycles
            ));
        }
        out.push_str(&format!("\"checksum\": {}}}", m.checksum));
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n}\n");
    out
}

/// UTC calendar date, `YYYY-MM-DD`, from the system clock (civil-from-days,
/// Hinnant's algorithm) — keeps the `BENCH_*.json` convention without a
/// date-time dependency.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Formats a byte count as the paper's kbytes.
pub fn kb(bytes: u64) -> f64 {
    bytes as f64 / 1024.0
}

/// Formats a page count as kbytes.
pub fn pages_kb(pages: u64) -> f64 {
    pages as f64 * 4.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::panic_message;

    #[test]
    fn malloc_and_region_measurements_agree_on_checksum() {
        let a = measure_malloc(Workload::Tile, MallocKind::Lea, 1, false);
        let b = measure_region(Workload::Tile, RegionKind::Safe, 1, false);
        assert_eq!(a.checksum, b.checksum);
        assert!(a.total >= a.mem);
        assert!(a.os_pages > 0);
        assert!(b.costs.is_some());
        assert!(a.costs.is_none());
    }

    #[test]
    fn traced_runs_produce_cache_stats() {
        let m = measure_region(Workload::Mudlle, RegionKind::Unsafe, 1, true);
        let cache = m.cache.expect("traced");
        assert!(cache.reads > 10_000);
        assert!(cache.writes > 1_000);
    }

    #[test]
    fn matrix_results_follow_job_order() {
        let jobs = [
            Job::Malloc(Workload::Cfrac, MallocKind::Lea),
            Job::Region(Workload::Cfrac, RegionKind::Safe),
            Job::Region(Workload::Cfrac, RegionKind::Unsafe),
            Job::Malloc(Workload::Tile, MallocKind::Lea),
        ];
        // Force real worker threads: the deterministic ordering must hold
        // even on a single-core machine where run_matrix would go serial.
        let rows = run_matrix_with(&jobs, 1, false, 3);
        assert_eq!(rows.len(), 4);
        assert_eq!((rows[0].workload, rows[0].allocator), ("cfrac", MallocKind::Lea.name()));
        assert_eq!(rows[1].allocator, RegionKind::Safe.name());
        assert_eq!(rows[2].allocator, RegionKind::Unsafe.name());
        assert_eq!(rows[3].workload, "tile");
        // Parallel execution must not perturb simulated results.
        assert_eq!(rows[0].checksum, rows[1].checksum);
        assert_eq!(rows[1].checksum, rows[2].checksum);
        let serial = jobs[1].run(1, false);
        assert_eq!(rows[1].checksum, serial.checksum);
        assert_eq!(rows[1].os_pages, serial.os_pages);
        assert_eq!(rows[1].stats.total_allocs, serial.stats.total_allocs);
    }

    #[test]
    fn par_column_is_opt_in_and_leaves_plain_documents_untouched() {
        let jobs = [
            Job::Malloc(Workload::Cfrac, MallocKind::Lea),
            Job::Region(Workload::Cfrac, RegionKind::Safe),
        ];
        let rows = run_matrix(&jobs, 1, false);
        // None = byte-identical to the historical writer.
        let plain = results_json("fig_test", &rows);
        assert_eq!(plain, results_json_with_par("fig_test", &rows, None));
        assert!(!plain.contains("par_"), "no par fields without a parallel pass");
        // Some = envelope + one cell per row, nothing else moves.
        let par = ParColumn { workers: 3, total_ms: vec![12.5, 0.25] };
        let with = results_json_with_par("fig_test", &rows, Some(&par));
        assert!(with.contains("\"par_workers\": 3,"));
        assert!(with.contains("\"par_total_ms\": 12.500, "));
        assert!(with.contains("\"par_total_ms\": 0.250, "));
        assert_eq!(
            with.matches("par_total_ms").count(),
            rows.len(),
            "exactly one par cell per row"
        );
    }

    #[test]
    #[should_panic(expected = "one par_total_ms per row")]
    fn par_column_must_cover_every_row() {
        let rows = run_matrix(&[Job::Malloc(Workload::Cfrac, MallocKind::Lea)], 1, false);
        let par = ParColumn { workers: 3, total_ms: Vec::new() };
        let _ = results_json_with_par("fig_test", &rows, Some(&par));
    }

    #[test]
    fn latency_columns_are_opt_in_and_leave_plain_documents_untouched() {
        let jobs = [
            Job::Malloc(Workload::Cfrac, MallocKind::Lea),
            Job::Region(Workload::Cfrac, RegionKind::Safe),
        ];
        let rows = run_matrix(&jobs, 1, false);
        // None = byte-identical to the historical writer.
        let plain = results_json_with_par("fig_test", &rows, None);
        assert_eq!(plain, results_json_full("fig_test", &rows, None, None));
        assert!(!plain.contains("p50_us"), "no latency fields without a latency pass");
        // Some = three cells per row, nothing else moves.
        let lat =
            LatencyColumn::new(vec![0.9, 1.1], vec![250.0, 260.5], vec![400.0, 410.25]);
        let with = results_json_full("fig_test", &rows, None, Some(&lat));
        assert!(with.contains("\"p50_us\": 0.900, "));
        assert!(with.contains("\"p99_us\": 260.500, "));
        assert!(with.contains("\"p999_us\": 410.250, "));
        for f in ["p50_us", "p99_us", "p999_us"] {
            assert_eq!(with.matches(f).count(), rows.len(), "one {f} cell per row");
        }
        // Empty pause vectors omit the pause columns entirely.
        assert!(!with.contains("pause_p50_us"), "empty pause vectors must omit the columns");
        // Populated ones add exactly two cells per row, nothing else moves.
        let paused = LatencyColumn {
            pause_p50_us: vec![2.0, 2.5],
            pause_p99_us: vec![40.0, 41.5],
            ..lat.clone()
        };
        let with_pause = results_json_full("fig_test", &rows, None, Some(&paused));
        assert!(with_pause.contains("\"pause_p50_us\": 2.000, "));
        assert!(with_pause.contains("\"pause_p99_us\": 41.500, "));
        for f in ["pause_p50_us", "pause_p99_us"] {
            assert_eq!(with_pause.matches(f).count(), rows.len(), "one {f} cell per row");
        }
    }

    #[test]
    #[should_panic(expected = "one quantile triple per row")]
    fn latency_columns_must_cover_every_row() {
        let rows = run_matrix(&[Job::Malloc(Workload::Cfrac, MallocKind::Lea)], 1, false);
        let lat = LatencyColumn::new(vec![1.0], Vec::new(), vec![2.0]);
        let _ = results_json_full("fig_test", &rows, None, Some(&lat));
    }

    #[test]
    #[should_panic(expected = "omitted entirely or cover the matrix")]
    fn pause_columns_must_cover_every_row_or_be_absent() {
        let rows = run_matrix(&[Job::Malloc(Workload::Cfrac, MallocKind::Lea)], 1, false);
        let lat = LatencyColumn {
            pause_p50_us: vec![1.0],
            pause_p99_us: Vec::new(),
            ..LatencyColumn::new(vec![1.0], vec![2.0], vec![3.0])
        };
        let _ = results_json_full("fig_test", &rows, None, Some(&lat));
    }

    #[test]
    fn warm_heap_reuse_is_invisible_in_measurements() {
        // More jobs than workers forces every worker to recycle its heap
        // across cells; a traced cell in the middle checks that an
        // attached sink never leaks into the next adopter. Every
        // deterministic field must match a fresh-heap serial run, for
        // 1 worker and for several.
        let jobs = [
            Job::Region(Workload::Tile, RegionKind::Safe),
            Job::Malloc(Workload::Tile, MallocKind::Gc),
            Job::Malloc(Workload::Cfrac, MallocKind::Lea),
            Job::Region(Workload::Cfrac, RegionKind::Unsafe),
            Job::Malloc(Workload::Tile, MallocKind::Bsd),
            Job::Region(Workload::Tile, RegionKind::Emulated(MallocKind::Sun)),
        ];
        let fresh: Vec<Measurement> = jobs.iter().map(|j| j.run(1, false)).collect();
        for workers in [1, 3] {
            let warm = run_matrix_with(&jobs, 1, false, workers);
            for (f, w) in fresh.iter().zip(&warm) {
                assert_eq!(f.checksum, w.checksum, "{}/{} x{workers}", f.workload, f.allocator);
                assert_eq!(f.os_pages, w.os_pages, "{}/{} x{workers}", f.workload, f.allocator);
                assert_eq!(f.stats, w.stats, "{}/{} x{workers}", f.workload, f.allocator);
                assert_eq!(f.costs, w.costs, "{}/{} x{workers}", f.workload, f.allocator);
            }
        }
        // And a traced run recycled onto a previously-traced heap keeps
        // cache counters bit-identical to a fresh traced run.
        let traced_jobs = [
            Job::Malloc(Workload::Tile, MallocKind::Gc),
            Job::Malloc(Workload::Tile, MallocKind::Gc),
        ];
        let rows = run_matrix_with(&traced_jobs, 1, true, 1);
        let fresh = traced_jobs[0].run(1, true);
        assert_eq!(rows[0].cache, fresh.cache);
        assert_eq!(rows[1].cache, fresh.cache, "recycled heap must trace identically");
    }

    #[test]
    fn warm_start_from_snapshot_matches_cold() {
        // A heap image captured after a real run is already grown to that
        // run's break; warm-starting the matrix from it must change no
        // deterministic field relative to cold empty heaps.
        let (_, heap) =
            measure_region_on(Workload::Tile, RegionKind::Safe, 1, false, SimHeap::new());
        let image = heap.capture_image();
        let jobs = [
            Job::Region(Workload::Tile, RegionKind::Safe),
            Job::Malloc(Workload::Cfrac, MallocKind::Lea),
            Job::Region(Workload::Cfrac, RegionKind::Unsafe),
            Job::Malloc(Workload::Tile, MallocKind::Bsd),
        ];
        let cold: Vec<Measurement> = jobs.iter().map(|j| j.run(1, false)).collect();
        let warm = run_matrix_from_snapshot(&jobs, 1, false, &image);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.checksum, w.checksum, "{}/{}", c.workload, c.allocator);
            assert_eq!(c.os_pages, w.os_pages, "{}/{}", c.workload, c.allocator);
            assert_eq!(c.stats, w.stats, "{}/{}", c.workload, c.allocator);
            assert_eq!(c.costs, w.costs, "{}/{}", c.workload, c.allocator);
        }
        // Traced cells adopt the snapshot heap too: cache counters must
        // stay bit-identical to a cold traced run.
        let traced_jobs = [Job::Malloc(Workload::Tile, MallocKind::Gc)];
        let warm = run_matrix_from_snapshot(&traced_jobs, 1, true, &image);
        let cold = traced_jobs[0].run(1, true);
        assert_eq!(warm[0].cache, cold.cache, "snapshot heap must trace identically");
    }

    #[test]
    fn results_json_is_wellformed_and_versioned() {
        let rows = run_matrix(&[Job::Region(Workload::Cfrac, RegionKind::Safe)], 1, false);
        let json = results_json("smoke", &rows);
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert!(json.contains(&format!("\"schema_version\": {RESULTS_SCHEMA_VERSION}")));
        assert!(json.contains("\"bench\": \"smoke\""));
        assert!(json.contains("\"commit\": \""));
        assert!(json.contains("\"workers\": "));
        assert!(json.contains("\"host_cores\": "));
        assert!(json.contains("\"rows\": [\n"));
        assert!(json.contains("\"workload\": \"cfrac\""));
        assert!(json.contains("\"safety_instrs\""));
        assert!(json.contains("\"checksum\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn region_sanitize_hook_passes_on_a_clean_run() {
        // Env vars are process-global: serialize against any parallel
        // test also measuring regions by keeping the window tiny.
        std::env::set_var("REGION_SANITIZE", "1");
        let m = measure_region(Workload::Cfrac, RegionKind::Safe, 1, false);
        std::env::remove_var("REGION_SANITIZE");
        assert!(m.os_pages > 0);
    }

    #[test]
    fn checked_matrix_returns_ok_cells_and_decodes_panics() {
        let jobs = [
            Job::Region(Workload::Cfrac, RegionKind::Unsafe),
            Job::Malloc(Workload::Cfrac, MallocKind::Lea),
        ];
        let rows = run_matrix_checked(&jobs, 1, false, 2);
        assert!(rows.iter().all(Result::is_ok));
        assert_eq!(
            rows[0].as_ref().unwrap().checksum,
            rows[1].as_ref().unwrap().checksum
        );
        // Panic payloads of both common shapes decode to their message;
        // anything else degrades to a placeholder instead of panicking
        // again inside the matrix.
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new(String::from("kaboom"))), "kaboom");
        assert!(panic_message(Box::new(17u32)).contains("non-string"));
    }

    #[test]
    fn slow_moss_is_measured_separately() {
        let m = measure_region_slow(RegionKind::Unsafe, 1, false);
        assert_eq!(m.allocator, "Slow");
        let normal = measure_region(Workload::Moss, RegionKind::Unsafe, 1, false);
        assert_eq!(m.checksum, normal.checksum, "layouts must not change the answer");
    }
}
