//! Body type checking and bytecode generation.
//!
//! The compiler's load-bearing duties, mirroring §3–4 of the paper:
//!
//! * enforce the `@`/`*` distinction (no implicit conversions; explicit
//!   `cast<>` only);
//! * classify every pointer **store** as local / global / region /
//!   statically-unknown and emit the matching barrier instruction
//!   ("our compiler attempts to distinguish writes to local variables,
//!   global storage and regions at compile-time", §4.2.2);
//! * keep every live region pointer visible to the stack scan: named
//!   region-pointer locals live in shadow-stack slots, and any region
//!   pointer held on the evaluation stack across a potential scan point
//!   (a call or `deleteregion`) is spilled to a shadow temporary — the
//!   moral equivalent of the paper's per-call-site liveness maps
//!   (§4.2.3);
//! * generate a cleanup descriptor per struct (C@ has no `union`, so
//!   "the cleanup function could be generated automatically by the
//!   compiler", §4.2.4).

use std::collections::HashMap;

use region_core::TypeDescriptor;

use crate::ast::*;
use crate::bytecode::{Func, Insn, ParamSlot, Program};
use crate::infer::ElisionPlan;
use crate::sema::{analyze, Decls, Ty};
use crate::CompileError;

/// Compiles a C@ source file to a [`Program`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, or type error with its line.
pub fn compile(source: &str) -> Result<Program, CompileError> {
    compile_inner(source, false)
}

/// Compiles with the *sameregion* inference of [`crate::infer`] enabled:
/// stores the analysis proves cannot move reference counts are emitted as
/// the barrier-free [`Insn::StoreFieldRPtrSame`] /
/// [`Insn::StoreGlobalPtrNoRc`]. Everything else is identical to
/// [`compile`], which keeps the paper-faithful Figure 5 codegen.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or type error with its line.
pub fn compile_elide(source: &str) -> Result<Program, CompileError> {
    compile_inner(source, true)
}

fn compile_inner(source: &str, elide: bool) -> Result<Program, CompileError> {
    let unit = crate::parser::parse(source)?;
    let decls = analyze(&unit)?;
    let plan = if elide { Some(crate::infer::infer(&unit, &decls)) } else { None };
    let mut funcs = Vec::new();
    for (fi, f) in unit.funcs.iter().enumerate() {
        funcs.push(FuncCompiler::new(&decls, f, plan.as_ref().map(|p| (p, fi))).compile()?);
    }
    let descriptors = decls
        .structs
        .iter()
        .map(|s| TypeDescriptor::new(s.name.clone(), s.size, s.ptr_offsets.clone()))
        .collect();
    Ok(Program {
        main_idx: decls.func_ids["main"],
        funcs,
        globals_size: decls.globals_size,
        descriptors,
    })
}

#[derive(Clone, Copy)]
enum Slot {
    Host(u16),
    Shadow(u16),
}

#[derive(Clone, Copy)]
struct Local {
    ty: Ty,
    slot: Slot,
}

struct FuncCompiler<'a> {
    decls: &'a Decls,
    func: &'a FuncDef,
    ret: Ty,
    scopes: Vec<HashMap<String, Local>>,
    n_host: u16,
    n_shadow: u16,
    tmp_free: Vec<u16>,
    stack: Vec<Ty>,
    code: Vec<Insn>,
    lines: Vec<u32>,
    loops: Vec<LoopCtx>,
    /// Elision plan and this function's index, when compiling with the
    /// sameregion inference enabled.
    plan: Option<(&'a ElisionPlan, usize)>,
    /// Sequential number of the next `Stmt::Assign`, matching the
    /// numbering `infer` uses (statements in source order; `for` visits
    /// init, body, step).
    next_site: u32,
}

/// Break/continue bookkeeping for one enclosing loop.
struct LoopCtx {
    /// Indices of `Jump` placeholders to patch to the loop exit.
    break_jumps: Vec<usize>,
    /// Where `continue` goes: a known code index (`while`: the condition)
    /// or pending patches (`for`: the step clause, not yet emitted).
    continue_target: Option<u32>,
    /// `Jump` placeholders to patch once the continue target is known.
    continue_jumps: Vec<usize>,
    /// Scope depth just outside the loop body: jumping out must clear the
    /// region-pointer locals of every deeper scope (they would otherwise
    /// be the stale pointers of §5.1).
    scope_depth: usize,
}

impl<'a> FuncCompiler<'a> {
    fn new(
        decls: &'a Decls,
        func: &'a FuncDef,
        plan: Option<(&'a ElisionPlan, usize)>,
    ) -> FuncCompiler<'a> {
        let ret = decls.resolve(&func.ret, func.line, true).expect("checked by analyze");
        FuncCompiler {
            decls,
            func,
            ret,
            scopes: vec![HashMap::new()],
            n_host: 0,
            n_shadow: 0,
            tmp_free: Vec::new(),
            stack: Vec::new(),
            code: Vec::new(),
            lines: Vec::new(),
            loops: Vec::new(),
            plan,
            next_site: 0,
        }
    }

    /// Numbers this assign site and reports whether the inference proved
    /// its barrier redundant.
    fn take_elide(&mut self) -> bool {
        let site = self.next_site;
        self.next_site += 1;
        self.plan.is_some_and(|(p, fi)| p.elides(fi, site))
    }

    /// Emits `ClearRtmp` for the region-pointer locals of every scope
    /// deeper than `depth` (used when a jump leaves those scopes).
    fn clear_scopes_deeper_than(&mut self, depth: usize, line: u32) {
        let slots: Vec<u16> = self
            .scopes
            .iter()
            .skip(depth)
            .flat_map(|scope| {
                scope.values().filter_map(|l| match l.slot {
                    Slot::Shadow(s) => Some(s),
                    Slot::Host(_) => None,
                })
            })
            .collect();
        for slot in slots {
            self.emit(Insn::ClearRtmp(slot), line);
        }
    }

    fn err(&self, line: u32, msg: impl Into<String>) -> CompileError {
        CompileError::new(line, msg)
    }

    fn emit(&mut self, insn: Insn, line: u32) {
        self.code.push(insn);
        self.lines.push(line);
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Emits a jump whose target is patched later.
    fn emit_patch(&mut self, make: fn(u32) -> Insn, line: u32) -> usize {
        let at = self.code.len();
        self.emit(make(u32::MAX), line);
        at
    }

    fn patch(&mut self, at: usize) {
        let target = self.here();
        self.code[at] = match self.code[at] {
            Insn::Jump(_) => Insn::Jump(target),
            Insn::JumpIfZero(_) => Insn::JumpIfZero(target),
            Insn::JumpIfNonZero(_) => Insn::JumpIfNonZero(target),
            other => unreachable!("patching non-jump {other:?}"),
        };
    }

    fn define(&mut self, name: &str, ty: Ty, line: u32) -> Result<Slot, CompileError> {
        let slot = if ty.is_region_ptr() {
            let s = Slot::Shadow(self.n_shadow);
            self.n_shadow += 1;
            s
        } else {
            let s = Slot::Host(self.n_host);
            self.n_host += 1;
            s
        };
        let scope = self.scopes.last_mut().expect("scope");
        if scope.insert(name.to_string(), Local { ty, slot }).is_some() {
            return Err(self.err(line, format!("duplicate local `{name}`")));
        }
        Ok(slot)
    }

    fn lookup(&self, name: &str) -> Option<Local> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn alloc_tmp(&mut self) -> u16 {
        self.tmp_free.pop().unwrap_or_else(|| {
            let s = self.n_shadow;
            self.n_shadow += 1;
            s
        })
    }

    /// At a scan point (call or `deleteregion`), copy every region
    /// pointer on the evaluation stack below the top `keep_top` entries
    /// into shadow temporaries so the stack scan can see them.
    fn spill_for_scan(&mut self, keep_top: usize, line: u32) -> Vec<u16> {
        let len = self.stack.len();
        let mut tmps = Vec::new();
        for i in 0..len.saturating_sub(keep_top) {
            if self.stack[i].is_region_ptr() {
                let slot = self.alloc_tmp();
                self.emit(Insn::DupToRtmp { depth: (len - 1 - i) as u16, slot }, line);
                tmps.push(slot);
            }
        }
        tmps
    }

    fn release_tmps(&mut self, tmps: Vec<u16>, line: u32) {
        for slot in tmps {
            self.emit(Insn::ClearRtmp(slot), line);
            self.tmp_free.push(slot);
        }
    }

    fn compile(mut self) -> Result<Func, CompileError> {
        // Bind parameters in order.
        let mut params = Vec::new();
        for (te, name) in &self.func.params {
            let ty = self.decls.resolve(te, self.func.line, false)?;
            let slot = self.define(name, ty, self.func.line)?;
            params.push(match slot {
                Slot::Host(s) => ParamSlot::Host(s),
                Slot::Shadow(s) => ParamSlot::Shadow(s),
            });
        }
        let body = self.func.body.clone();
        self.block(&body)?;
        // Implicit return (C-like leniency: a non-void function falling
        // off the end returns 0).
        let last_line = self.lines.last().copied().unwrap_or(self.func.line);
        if self.ret == Ty::Void {
            self.emit(Insn::RetVoid, last_line);
        } else {
            self.emit(Insn::Const(0), last_line);
            self.emit(Insn::Ret, last_line);
        }
        Ok(Func {
            name: self.func.name.clone(),
            params,
            host_slots: self.n_host,
            shadow_slots: self.n_shadow,
            code: self.code,
            lines: self.lines,
        })
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.stmt(s)?;
            debug_assert!(self.stack.is_empty(), "stack imbalance after statement");
        }
        // The prototype "considers all variables in scope to be live"
        // (§4.2.3) — so variables that leave scope must stop being live:
        // null out the block's region-pointer locals, or they would be
        // exactly the "stale pointers that prevent a region from being
        // deleted" the paper complains about (§5.1).
        let line = self.lines.last().copied().unwrap_or(self.func.line);
        let dead: Vec<u16> = self
            .scopes
            .last()
            .expect("scope")
            .values()
            .filter_map(|l| match l.slot {
                Slot::Shadow(s) => Some(s),
                Slot::Host(_) => None,
            })
            .collect();
        for slot in dead {
            self.emit(Insn::ClearRtmp(slot), line);
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Decl { ty, name, init, line } => {
                let ty = self.decls.resolve(ty, *line, false)?;
                let vty = self.expr(init)?;
                if !ty.accepts(vty) {
                    return Err(self.err(
                        *line,
                        format!(
                            "cannot initialize `{}` of type {} with {}",
                            name,
                            self.decls.ty_name(ty),
                            self.decls.ty_name(vty)
                        ),
                    ));
                }
                let slot = self.define(name, ty, *line)?;
                self.stack.pop();
                match slot {
                    Slot::Host(i) => self.emit(Insn::StoreLocal(i), *line),
                    Slot::Shadow(i) => self.emit(Insn::StoreRLocal(i), *line),
                }
                Ok(())
            }
            Stmt::Assign { target, value, line } => self.assign(target, value, *line),
            Stmt::Expr { expr, line } => {
                let ty = self.expr(expr)?;
                if ty != Ty::Void {
                    self.stack.pop();
                    self.emit(Insn::Pop, *line);
                }
                Ok(())
            }
            Stmt::If { cond, then_branch, else_branch, line } => {
                let cty = self.expr(cond)?;
                if cty != Ty::Int {
                    return Err(self.err(*line, "if condition must be int"));
                }
                self.stack.pop();
                let jelse = self.emit_patch(Insn::JumpIfZero, *line);
                self.block(then_branch)?;
                if else_branch.is_empty() {
                    self.patch(jelse);
                } else {
                    let jend = self.emit_patch(Insn::Jump, *line);
                    self.patch(jelse);
                    self.block(else_branch)?;
                    self.patch(jend);
                }
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                let top = self.here();
                let cty = self.expr(cond)?;
                if cty != Ty::Int {
                    return Err(self.err(*line, "while condition must be int"));
                }
                self.stack.pop();
                let jexit = self.emit_patch(Insn::JumpIfZero, *line);
                self.loops.push(LoopCtx {
                    break_jumps: Vec::new(),
                    continue_target: Some(top),
                    continue_jumps: Vec::new(),
                    scope_depth: self.scopes.len(),
                });
                self.block(body)?;
                self.emit(Insn::Jump(top), *line);
                self.patch(jexit);
                let ctx = self.loops.pop().expect("loop context");
                debug_assert!(ctx.continue_jumps.is_empty());
                for j in ctx.break_jumps {
                    self.patch(j);
                }
                Ok(())
            }
            Stmt::For { init, cond, step, body, line } => {
                // Desugared with its own scope:
                //   { init; top: if (!cond) exit; body; step: step; goto top; }
                self.scopes.push(HashMap::new());
                self.stmt(init)?;
                let top = self.here();
                let cty = self.expr(cond)?;
                if cty != Ty::Int {
                    return Err(self.err(*line, "for condition must be int"));
                }
                self.stack.pop();
                let jexit = self.emit_patch(Insn::JumpIfZero, *line);
                self.loops.push(LoopCtx {
                    break_jumps: Vec::new(),
                    continue_target: None, // the step is not yet emitted
                    continue_jumps: Vec::new(),
                    scope_depth: self.scopes.len(),
                });
                self.block(body)?;
                let ctx = self.loops.pop().expect("loop context");
                // `continue` lands here, on the step clause.
                for j in ctx.continue_jumps {
                    self.patch(j);
                }
                self.stmt(step)?;
                self.emit(Insn::Jump(top), *line);
                self.patch(jexit);
                for j in ctx.break_jumps {
                    self.patch(j);
                }
                // Clear the init-scope region pointers (as block() does).
                let last_line = self.lines.last().copied().unwrap_or(*line);
                self.clear_scopes_deeper_than(self.scopes.len() - 1, last_line);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Break { line } => {
                let Some(ctx) = self.loops.last() else {
                    return Err(self.err(*line, "`break` outside a loop"));
                };
                let depth = ctx.scope_depth;
                self.clear_scopes_deeper_than(depth, *line);
                let j = self.emit_patch(Insn::Jump, *line);
                self.loops.last_mut().expect("loop context").break_jumps.push(j);
                Ok(())
            }
            Stmt::Continue { line } => {
                let Some(ctx) = self.loops.last() else {
                    return Err(self.err(*line, "`continue` outside a loop"));
                };
                let (depth, target) = (ctx.scope_depth, ctx.continue_target);
                self.clear_scopes_deeper_than(depth, *line);
                match target {
                    Some(t) => self.emit(Insn::Jump(t), *line),
                    None => {
                        let j = self.emit_patch(Insn::Jump, *line);
                        self.loops.last_mut().expect("loop context").continue_jumps.push(j);
                    }
                }
                Ok(())
            }
            Stmt::Return { value, line } => {
                match (value, self.ret) {
                    (None, Ty::Void) => self.emit(Insn::RetVoid, *line),
                    (None, _) => return Err(self.err(*line, "missing return value")),
                    (Some(_), Ty::Void) => {
                        return Err(self.err(*line, "void function returns a value"))
                    }
                    (Some(e), ret) => {
                        let ty = self.expr(e)?;
                        if !ret.accepts(ty) {
                            return Err(self.err(
                                *line,
                                format!(
                                    "return type mismatch: expected {}, found {}",
                                    self.decls.ty_name(ret),
                                    self.decls.ty_name(ty)
                                ),
                            ));
                        }
                        self.stack.pop();
                        self.emit(Insn::Ret, *line);
                    }
                }
                Ok(())
            }
            Stmt::Print { value, line } => {
                let ty = self.expr(value)?;
                if ty != Ty::Int {
                    return Err(self.err(*line, "print takes an int"));
                }
                self.stack.pop();
                self.emit(Insn::Print, *line);
                Ok(())
            }
        }
    }

    /// Compiles `target = value`, classifying the write (§4.2.2) and
    /// dropping the barrier where the sameregion inference proved it
    /// redundant (§3.3).
    fn assign(&mut self, target: &Expr, value: &Expr, line: u32) -> Result<(), CompileError> {
        let elide = self.take_elide();
        match target {
            Expr::Var { name, .. } => {
                if let Some(local) = self.lookup(name) {
                    let vty = self.expr(value)?;
                    if !local.ty.accepts(vty) {
                        return Err(self.type_mismatch(line, local.ty, vty));
                    }
                    self.stack.pop();
                    match local.slot {
                        // "Writes to local variables never update
                        // reference counts" (§4.2.1).
                        Slot::Host(i) => self.emit(Insn::StoreLocal(i), line),
                        Slot::Shadow(i) => self.emit(Insn::StoreRLocal(i), line),
                    }
                    return Ok(());
                }
                let Some(&gi) = self.decls.global_ids.get(name) else {
                    return Err(self.err(line, format!("unknown variable `{name}`")));
                };
                let g = &self.decls.globals[gi];
                if g.struct_value.is_some() {
                    return Err(self.err(line, "cannot assign to a struct global (copying structs is forbidden)"));
                }
                let (gty, off) = (g.ty, g.offset);
                let vty = self.expr(value)?;
                if !gty.accepts(vty) {
                    return Err(self.type_mismatch(line, gty, vty));
                }
                self.stack.pop();
                if gty.is_region_ptr() && elide {
                    // Proven null-stable: the barrier would move no counts.
                    self.emit(Insn::StoreGlobalPtrNoRc(off), line);
                } else if gty.is_region_ptr() {
                    self.emit(Insn::StoreGlobalPtr(off), line); // 16-insn barrier
                } else {
                    self.emit(Insn::StoreGlobal(off), line);
                }
                Ok(())
            }
            Expr::Field { base, field, line: fline } => {
                let bty = self.expr(base)?;
                let (fty, off, base_is_region) = self.field_of(bty, field, *fline)?;
                let vty = self.expr(value)?;
                if !fty.accepts(vty) {
                    return Err(self.type_mismatch(line, fty, vty));
                }
                self.stack.pop();
                self.stack.pop();
                let insn = if !fty.is_region_ptr() {
                    Insn::StoreFieldInt(off)
                } else if base_is_region && elide {
                    // Proven same-region (value and overwritten value both
                    // null-or-in the base's region): no counts can move.
                    Insn::StoreFieldRPtrSame(off)
                } else if base_is_region {
                    Insn::StoreFieldRPtr(off) // 23-insn region barrier
                } else {
                    // A `*`-pointer target may point at global storage or
                    // (via a cast) into a region: classify at runtime.
                    Insn::StoreFieldUnknown(off)
                };
                self.emit(insn, line);
                Ok(())
            }
            Expr::Index { base, index, line: iline } => {
                let bty = self.expr(base)?;
                if bty != Ty::IntArray {
                    return Err(self.err(
                        *iline,
                        "only int@ arrays support indexed assignment (struct elements are assigned by field)",
                    ));
                }
                let ity = self.expr(index)?;
                if ity != Ty::Int {
                    return Err(self.err(*iline, "array index must be int"));
                }
                let vty = self.expr(value)?;
                if vty != Ty::Int {
                    return Err(self.err(line, "int@ arrays hold pointer-free data (ints) only"));
                }
                self.stack.truncate(self.stack.len() - 3);
                self.emit(Insn::IndexStore, line);
                Ok(())
            }
            _ => Err(self.err(line, "this expression is not assignable")),
        }
    }

    fn type_mismatch(&self, line: u32, want: Ty, got: Ty) -> CompileError {
        self.err(
            line,
            format!(
                "type mismatch: expected {}, found {} (explicit cast<> required between @ and *)",
                self.decls.ty_name(want),
                self.decls.ty_name(got)
            ),
        )
    }

    /// Resolves `base.field`; returns (field type, offset, base-is-@).
    fn field_of(&self, bty: Ty, field: &str, line: u32) -> Result<(Ty, u32, bool), CompileError> {
        let (sid, is_region) = match bty {
            Ty::RPtr(s) => (s, true),
            Ty::NPtr(s) => (s, false),
            other => {
                return Err(self.err(
                    line,
                    format!("member access on non-struct-pointer type {}", self.decls.ty_name(other)),
                ))
            }
        };
        let info = &self.decls.structs[sid];
        let (fty, off) = info.field(field).ok_or_else(|| {
            self.err(line, format!("struct `{}` has no field `{field}`", info.name))
        })?;
        Ok((fty, off, is_region))
    }

    /// Compiles an expression, pushing its abstract type; returns it.
    fn expr(&mut self, e: &Expr) -> Result<Ty, CompileError> {
        let ty = self.expr_inner(e)?;
        if ty != Ty::Void {
            self.stack.push(ty);
        }
        Ok(ty)
    }

    fn expr_inner(&mut self, e: &Expr) -> Result<Ty, CompileError> {
        match e {
            Expr::Int { value, line } => {
                self.emit(Insn::Const(*value), *line);
                Ok(Ty::Int)
            }
            Expr::Null { line } => {
                self.emit(Insn::Null, *line);
                Ok(Ty::Null)
            }
            Expr::Var { name, line } => {
                if let Some(local) = self.lookup(name) {
                    match local.slot {
                        Slot::Host(i) => self.emit(Insn::LoadLocal(i), *line),
                        Slot::Shadow(i) => self.emit(Insn::LoadRLocal(i), *line),
                    }
                    return Ok(local.ty);
                }
                let Some(&gi) = self.decls.global_ids.get(name) else {
                    return Err(self.err(*line, format!("unknown variable `{name}`")));
                };
                let g = &self.decls.globals[gi];
                if g.struct_value.is_some() {
                    return Err(self.err(
                        *line,
                        format!("struct global `{name}` is not a value; use `&{name}`"),
                    ));
                }
                self.emit(Insn::LoadGlobal(g.offset), *line);
                Ok(g.ty)
            }
            Expr::Field { base, field, line } => {
                let bty = self.expr(base)?;
                let (fty, off, _) = self.field_of(bty, field, *line)?;
                self.stack.pop();
                self.emit(Insn::LoadField(off), *line);
                Ok(fty)
            }
            Expr::Index { base, index, line } => {
                let bty = self.expr(base)?;
                let ity = self.expr(index)?;
                if ity != Ty::Int {
                    return Err(self.err(*line, "array index must be int"));
                }
                self.stack.pop();
                self.stack.pop();
                match bty {
                    Ty::IntArray => {
                        self.emit(Insn::IndexLoad, *line);
                        Ok(Ty::Int)
                    }
                    Ty::RPtr(s) => {
                        // Address arithmetic on region pointers (§3.1):
                        // arr[i] is the i-th element's address.
                        let size = self.decls.structs[s].size;
                        self.emit(Insn::IndexStruct(size), *line);
                        Ok(Ty::RPtr(s))
                    }
                    other => Err(self.err(
                        *line,
                        format!("cannot index type {}", self.decls.ty_name(other)),
                    )),
                }
            }
            Expr::Un { op, operand, line } => {
                let ty = self.expr(operand)?;
                if ty != Ty::Int {
                    return Err(self.err(*line, "unary operator needs an int"));
                }
                self.stack.pop();
                self.emit(if *op == UnOp::Neg { Insn::Neg } else { Insn::Not }, *line);
                Ok(Ty::Int)
            }
            Expr::Bin { op: BinOp::And, lhs, rhs, line } => self.short_circuit(lhs, rhs, true, *line),
            Expr::Bin { op: BinOp::Or, lhs, rhs, line } => self.short_circuit(lhs, rhs, false, *line),
            Expr::Bin { op, lhs, rhs, line } => {
                let lty = self.expr(lhs)?;
                let rty = self.expr(rhs)?;
                self.stack.pop();
                self.stack.pop();
                let insn = match op {
                    BinOp::Add => Insn::Add,
                    BinOp::Sub => Insn::Sub,
                    BinOp::Mul => Insn::Mul,
                    BinOp::Div => Insn::Div,
                    BinOp::Mod => Insn::Mod,
                    BinOp::Lt => Insn::CmpLt,
                    BinOp::Le => Insn::CmpLe,
                    BinOp::Gt => Insn::CmpGt,
                    BinOp::Ge => Insn::CmpGe,
                    BinOp::Eq => Insn::CmpEq,
                    BinOp::Ne => Insn::CmpNe,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                match op {
                    BinOp::Eq | BinOp::Ne => {
                        if !lty.comparable(rty) {
                            return Err(self.err(
                                *line,
                                format!(
                                    "cannot compare {} with {}",
                                    self.decls.ty_name(lty),
                                    self.decls.ty_name(rty)
                                ),
                            ));
                        }
                    }
                    _ => {
                        if lty != Ty::Int || rty != Ty::Int {
                            return Err(self.err(*line, "arithmetic needs int operands"));
                        }
                    }
                }
                self.emit(insn, *line);
                Ok(Ty::Int)
            }
            Expr::Call { name, args, line } => {
                let Some(&fi) = self.decls.func_ids.get(name) else {
                    return Err(self.err(*line, format!("unknown function `{name}`")));
                };
                let sig = self.decls.funcs[fi].clone();
                if sig.params.len() != args.len() {
                    return Err(self.err(
                        *line,
                        format!(
                            "`{name}` takes {} arguments, {} given",
                            sig.params.len(),
                            args.len()
                        ),
                    ));
                }
                for (arg, want) in args.iter().zip(&sig.params) {
                    let got = self.expr(arg)?;
                    if !want.accepts(got) {
                        return Err(self.type_mismatch(arg.line(), *want, got));
                    }
                }
                // A call may transitively reach `deleteregion`: make the
                // region pointers currently held on the eval stack visible
                // to the scan.
                let tmps = self.spill_for_scan(args.len(), *line);
                self.emit(Insn::Call(fi as u16), *line);
                self.stack.truncate(self.stack.len() - args.len());
                self.release_tmps(tmps, *line);
                Ok(sig.ret)
            }
            Expr::NewRegion { line } => {
                self.emit(Insn::NewRegion, *line);
                Ok(Ty::Region)
            }
            Expr::DeleteRegion { var, line } => {
                let tmps = self.spill_for_scan(0, *line);
                if let Some(local) = self.lookup(var) {
                    if local.ty != Ty::Region {
                        return Err(self.err(*line, "deleteregion needs a Region variable"));
                    }
                    let Slot::Host(slot) = local.slot else { unreachable!("Region is host-slotted") };
                    self.emit(Insn::DeleteRegionLocal(slot), *line);
                } else if let Some(&gi) = self.decls.global_ids.get(var) {
                    let g = &self.decls.globals[gi];
                    if g.ty != Ty::Region {
                        return Err(self.err(*line, "deleteregion needs a Region variable"));
                    }
                    self.emit(Insn::DeleteRegionGlobal(g.offset), *line);
                } else {
                    return Err(self.err(*line, format!("unknown variable `{var}`")));
                }
                self.release_tmps(tmps, *line);
                Ok(Ty::Int)
            }
            Expr::Ralloc { region, struct_name, line } => {
                let rty = self.expr(region)?;
                if rty != Ty::Region {
                    return Err(self.err(*line, "ralloc needs a Region"));
                }
                let sid = self.decls.struct_id(struct_name, *line)?;
                self.stack.pop();
                self.emit(Insn::Ralloc(sid as u16), *line);
                Ok(Ty::RPtr(sid))
            }
            Expr::RArrayAlloc { region, count, struct_name, line } => {
                let rty = self.expr(region)?;
                if rty != Ty::Region {
                    return Err(self.err(*line, "rarrayalloc needs a Region"));
                }
                let cty = self.expr(count)?;
                if cty != Ty::Int {
                    return Err(self.err(*line, "array count must be int"));
                }
                let sid = self.decls.struct_id(struct_name, *line)?;
                self.stack.pop();
                self.stack.pop();
                self.emit(Insn::RArrayAlloc(sid as u16), *line);
                Ok(Ty::RPtr(sid))
            }
            Expr::RStrAlloc { region, count, line } => {
                let rty = self.expr(region)?;
                if rty != Ty::Region {
                    return Err(self.err(*line, "rstralloc needs a Region"));
                }
                let cty = self.expr(count)?;
                if cty != Ty::Int {
                    return Err(self.err(*line, "rstralloc count must be int"));
                }
                self.stack.pop();
                self.stack.pop();
                self.emit(Insn::RStrAlloc, *line);
                Ok(Ty::IntArray)
            }
            Expr::RegionOf { operand, line } => {
                let ty = self.expr(operand)?;
                if !ty.is_pointer() && ty != Ty::Null {
                    return Err(self.err(*line, "regionof needs a pointer"));
                }
                self.stack.pop();
                self.emit(Insn::RegionOf, *line);
                Ok(Ty::Region)
            }
            Expr::Cast { ty, operand, line } => {
                let want = self.decls.resolve(ty, *line, false)?;
                let got = self.expr(operand)?;
                if !want.is_pointer() || (!got.is_pointer() && got != Ty::Null) {
                    return Err(self.err(*line, "cast<> converts between pointer types only"));
                }
                // Casts are free at runtime — and unsafe, like the paper's
                // casts between T@ and T* (§3.1).
                self.stack.pop();
                Ok(want)
            }
            Expr::AddrOfGlobal { name, line } => {
                let Some(&gi) = self.decls.global_ids.get(name) else {
                    return Err(self.err(*line, format!("unknown global `{name}`")));
                };
                let g = &self.decls.globals[gi];
                let Some(sid) = g.struct_value else {
                    return Err(self.err(*line, "`&` applies to struct globals only"));
                };
                self.emit(Insn::AddrOfGlobal(g.offset), *line);
                Ok(Ty::NPtr(sid))
            }
        }
    }

    /// `a && b` / `a || b` with short-circuit evaluation, yielding 0/1.
    fn short_circuit(
        &mut self,
        lhs: &Expr,
        rhs: &Expr,
        is_and: bool,
        line: u32,
    ) -> Result<Ty, CompileError> {
        let lty = self.expr(lhs)?;
        if lty != Ty::Int {
            return Err(self.err(line, "logical operator needs int operands"));
        }
        self.stack.pop();
        let jshort = self.emit_patch(
            if is_and { Insn::JumpIfZero } else { Insn::JumpIfNonZero },
            line,
        );
        let rty = self.expr(rhs)?;
        if rty != Ty::Int {
            return Err(self.err(line, "logical operator needs int operands"));
        }
        self.stack.pop();
        let jshort2 = self.emit_patch(
            if is_and { Insn::JumpIfZero } else { Insn::JumpIfNonZero },
            line,
        );
        self.emit(Insn::Const(if is_and { 1 } else { 0 }), line);
        let jend = self.emit_patch(Insn::Jump, line);
        self.patch(jshort);
        self.patch(jshort2);
        self.emit(Insn::Const(if is_and { 0 } else { 1 }), line);
        self.patch(jend);
        Ok(Ty::Int)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Program {
        compile(src).unwrap()
    }

    fn fails(src: &str) -> CompileError {
        compile(src).unwrap_err()
    }

    #[test]
    fn compiles_figure3() {
        let p = ok(r#"
            struct list { int i; list@ next; };
            list@ cons(Region r, int x, list@ l) {
                list@ p = ralloc(r, list);
                p.i = x;
                p.next = l;
                return p;
            }
            list@ copy_list(Region r, list@ l) {
                if (l == null) return null;
                else return cons(r, l.i, copy_list(r, l.next));
            }
            void main() {
                Region tmp = newregion();
                list@ l = cons(tmp, 1, null);
                l = copy_list(tmp, l);
                deleteregion(tmp);
            }
        "#);
        assert_eq!(p.funcs.len(), 3);
        assert_eq!(p.descriptors.len(), 1);
        assert_eq!(p.descriptors[0].ptr_offsets(), &[4]);
    }

    #[test]
    fn region_field_store_gets_region_barrier() {
        let p = ok(r#"
            struct list { int i; list@ next; };
            void main() {
                Region r = newregion();
                list@ p = ralloc(r, list);
                p.next = p;
                p.i = 3;
            }
        "#);
        let code = &p.funcs[p.main_idx].code;
        assert!(code.contains(&Insn::StoreFieldRPtr(4)), "pointer field: region barrier");
        assert!(code.contains(&Insn::StoreFieldInt(0)), "int field: plain store");
    }

    #[test]
    fn global_pointer_store_gets_global_barrier() {
        let p = ok(r#"
            struct list { int i; list@ next; };
            global list@ head;
            global int n;
            void main() {
                head = null;
                n = 5;
            }
        "#);
        let code = &p.funcs[p.main_idx].code;
        assert!(code.contains(&Insn::StoreGlobalPtr(0)));
        assert!(code.contains(&Insn::StoreGlobal(4)));
    }

    #[test]
    fn normal_pointer_store_is_unknown() {
        let p = ok(r#"
            struct list { int i; list@ next; };
            global list gv;
            void main() {
                list* p = &gv;
                p.next = null;
            }
        "#);
        let code = &p.funcs[p.main_idx].code;
        assert!(
            code.contains(&Insn::StoreFieldUnknown(4)),
            "store through a * pointer must use the runtime-dispatch barrier"
        );
    }

    #[test]
    fn local_pointer_store_is_free() {
        let p = ok(r#"
            struct list { int i; list@ next; };
            void main() {
                Region r = newregion();
                list@ p = ralloc(r, list);
                p = null;
            }
        "#);
        let code = &p.funcs[p.main_idx].code;
        assert!(code.iter().filter(|i| matches!(i, Insn::StoreRLocal(_))).count() >= 2);
        assert!(!code.iter().any(|i| matches!(
            i,
            Insn::StoreGlobalPtr(_) | Insn::StoreFieldRPtr(_) | Insn::StoreFieldUnknown(_)
        )));
    }

    #[test]
    fn pointer_across_call_is_spilled() {
        // `use2(p, mk(r))`: p's value sits on the eval stack while mk runs;
        // the compiler must make it scannable.
        let p = ok(r#"
            struct list { int i; list@ next; };
            list@ mk(Region r) { return ralloc(r, list); }
            int use2(list@ a, list@ b) { return a.i + b.i; }
            void main() {
                Region r = newregion();
                list@ p = ralloc(r, list);
                int x = use2(p, mk(r));
            }
        "#);
        let code = &p.funcs[p.main_idx].code;
        assert!(
            code.iter().any(|i| matches!(i, Insn::DupToRtmp { .. })),
            "a region pointer live across a call must be spilled to a shadow temp"
        );
        assert!(code.iter().any(|i| matches!(i, Insn::ClearRtmp(_))));
    }

    #[test]
    fn no_implicit_pointer_kind_conversion() {
        let err = fails(r#"
            struct s { int v; };
            global s gv;
            void main() {
                Region r = newregion();
                s@ p = ralloc(r, s);
                s* q = p;
            }
        "#);
        assert!(
            err.message.contains("s*") && err.message.contains("s@"),
            "got: {}",
            err.message
        );
    }

    #[test]
    fn explicit_cast_is_allowed() {
        ok(r#"
            struct s { int v; };
            void main() {
                Region r = newregion();
                s@ p = ralloc(r, s);
                s* q = cast<s*>(p);
                q.v = 3;
            }
        "#);
    }

    #[test]
    fn struct_copy_is_rejected() {
        let err = fails(r#"
            struct s { int v; };
            global s a;
            global s b;
            void main() { a = b; }
        "#);
        assert!(err.message.contains("struct"), "got: {}", err.message);
    }

    #[test]
    fn deleteregion_requires_region_variable() {
        let err = fails(r#"
            void main() {
                int x = 3;
                deleteregion(x);
            }
        "#);
        assert!(err.message.contains("Region"));
    }

    #[test]
    fn condition_must_be_int() {
        let err = fails(r#"
            struct s { int v; };
            void main() {
                Region r = newregion();
                s@ p = ralloc(r, s);
                if (p) { }
            }
        "#);
        assert!(err.message.contains("int"));
    }

    #[test]
    fn int_array_rejects_pointer_elements() {
        // Casting to int@ and indexing yields an int, so this is legal...
        ok(r#"
            struct s { int v; };
            void main() {
                Region r = newregion();
                int@ a = rstralloc(r, 4);
                s@ p = ralloc(r, s);
                a[0] = cast<int@>(p)[0];
            }
        "#);
        // ...but an int cannot be assigned to the array variable itself.
        let err = fails(r#"
            struct s { int v; };
            void main() {
                Region r = newregion();
                int@ a = rstralloc(r, 4);
                a = 1;
            }
        "#);
        assert!(err.message.contains("type mismatch"));
    }

    #[test]
    fn undeclared_names_error_with_line() {
        let err = fails("void main() {\n  x = 3;\n}");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown variable"));
    }

    /// Instructions of the named function under the eliding compiler.
    fn elided(src: &str, func: &str) -> Vec<Insn> {
        let p = compile_elide(src).expect("program should compile");
        p.funcs.iter().find(|f| f.name == func).expect("function exists").code.clone()
    }

    #[test]
    fn elision_drops_the_figure3_cons_barrier() {
        let src = r#"
            struct list { int i; list@ next; };
            list@ cons(Region r, int x, list@ l) {
                list@ p = ralloc(r, list);
                p.i = x;
                p.next = l;
                return p;
            }
            list@ copy_list(Region r, list@ l) {
                if (l == null) return null;
                else return cons(r, l.i, copy_list(r, l.next));
            }
            void main() {
                Region tmp = newregion();
                list@ l = cons(tmp, 1, null);
                l = copy_list(tmp, l);
                deleteregion(tmp);
            }
        "#;
        let code = elided(src, "cons");
        assert!(code.contains(&Insn::StoreFieldRPtrSame(4)), "p.next = l proven sameregion");
        assert!(!code.contains(&Insn::StoreFieldRPtr(4)), "no residual barrier");
        // The plain compiler still emits the paper-faithful barrier.
        let base = compile(src).unwrap();
        let cons = base.funcs.iter().find(|f| f.name == "cons").unwrap();
        assert!(cons.code.contains(&Insn::StoreFieldRPtr(4)));
        assert!(!cons.code.contains(&Insn::StoreFieldRPtrSame(4)));
    }

    #[test]
    fn elision_keeps_the_barrier_across_regions() {
        let code = elided(
            r#"
            struct list { int i; list@ next; };
            void main() {
                Region r = newregion();
                Region s = newregion();
                list@ p = ralloc(r, list);
                list@ q = ralloc(s, list);
                p.next = q;
            }
        "#,
            "main",
        );
        assert!(code.contains(&Insn::StoreFieldRPtr(4)), "cross-region store keeps its barrier");
        assert!(!code.contains(&Insn::StoreFieldRPtrSame(4)));
    }

    #[test]
    fn elision_rewrites_null_stable_global_stores() {
        let code = elided(
            r#"
            struct list { int i; list@ next; };
            global list@ head;
            void main() {
                head = null;
                head = null;
            }
        "#,
            "main",
        );
        assert!(code.contains(&Insn::StoreGlobalPtrNoRc(0)), "null-stable global elides rc work");
        assert!(!code.contains(&Insn::StoreGlobalPtr(0)));
    }

    #[test]
    fn elision_keeps_global_barrier_once_a_real_pointer_lands() {
        let code = elided(
            r#"
            struct list { int i; list@ next; };
            global list@ head;
            void main() {
                Region r = newregion();
                head = ralloc(r, list);
                head = null;
            }
        "#,
            "main",
        );
        assert!(code.contains(&Insn::StoreGlobalPtr(0)), "non-null store demotes the global");
        assert!(!code.contains(&Insn::StoreGlobalPtrNoRc(0)));
    }
}
