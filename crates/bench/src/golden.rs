//! Golden access-trace recording and comparison for Figure 10.
//!
//! The cache simulator's stall counts are only as trustworthy as the
//! access stream feeding them. A *golden trace* pins that stream down: a
//! recording of every simulated load/store a workload performs, written
//! to `results/golden/`, that later runs are diffed against. Because the
//! whole heap is simulated, the stream is bit-deterministic — any
//! divergence is a real behaviour change, and the comparison reports the
//! **first diverging access** so the culprit operation can be found by
//! ordinal.
//!
//! The file format is a small binary (the full stream for `cfrac` at
//! scale 2 is tens of millions of accesses — JSON would be absurd).
//! **Version 2** (written by [`GoldenTrace::to_bytes`]) compresses runs
//! of equally-strided accesses into range records, mirroring the batched
//! [`simheap::AccessEvent`] protocol:
//!
//! ```text
//! magic    b"RGLD"        4 bytes
//! version  u32 LE         2
//! scale    u32 LE         workload scale the trace was recorded at
//! total    u64 LE         total word accesses in the run
//! hash     u64 LE         FNV-1a over the entire word stream
//! kept     u32 LE         word accesses covered by the records below
//! nrecords u32 LE         number of records that follow
//! record   tag u8:
//!   0 = word   addr u32 LE, then (size & 0x7f) | kind<<7     (6 bytes)
//!   1 = range  start u32, len u32, stride u32, sizekind u8  (14 bytes)
//! ```
//!
//! A range record stands for `len` accesses at `start + i*stride`
//! (wrapping), all with the same size and kind — runs shorter than
//! [`MIN_RUN`] are stored as word records. `total`, `hash`, the kept
//! count, and [`GoldenTrace::compare`] are all defined over the **word
//! expansion**, so a v2 file diffs exactly against streams recorded
//! before batching existed; [`GoldenTrace::from_bytes`] is the
//! canonicalizing expander and still reads the v1 format (version 1,
//! no `nrecords`, 5-byte word records), which keeps previously committed
//! goldens checkable.
//!
//! Only a bounded prefix ([`TraceRecorder::CAP`] words) is stored;
//! the `total`/`hash` pair still covers the whole stream, so a
//! divergence past the prefix is detected (reported as "beyond the
//! recorded prefix") even though the exact offset is then unknown.

use simheap::{Access, AccessKind, AccessSink};
use workloads::{RegionEnv, RegionKind, Workload};

/// Runs the safe-region variant of a workload with a [`TraceRecorder`]
/// attached, returning the finished recording.
pub fn record_region_trace(w: Workload, scale: u32) -> TraceRecorder {
    let mut env = RegionEnv::new(RegionKind::Safe);
    env.heap().attach_sink(Box::new(TraceRecorder::new()));
    w.run_region(&mut env, scale);
    let mut heap = env.into_heap();
    let sink = heap.detach_sink().expect("sink attached");
    *sink.into_any().downcast::<TraceRecorder>().expect("TraceRecorder attached")
}

/// An [`AccessSink`] that keeps a bounded prefix of the stream plus a
/// running hash and count of all of it.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    /// Verbatim prefix of the stream, capped at [`TraceRecorder::CAP`].
    pub prefix: Vec<Access>,
    /// Total accesses observed (may exceed the prefix length).
    pub total: u64,
    /// FNV-1a hash over every access observed.
    pub hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

fn access_word(a: Access) -> u64 {
    let kind = match a.kind {
        AccessKind::Read => 0u64,
        AccessKind::Write => 1,
    };
    (a.addr as u64) | ((a.size as u64) << 32) | (kind << 40)
}

impl TraceRecorder {
    /// Maximum number of accesses stored verbatim (~5 MB on disk).
    pub const CAP: usize = 1_000_000;

    /// An empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder { prefix: Vec::new(), total: 0, hash: FNV_OFFSET }
    }
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder::new()
    }
}

impl AccessSink for TraceRecorder {
    fn access(&mut self, access: Access) {
        self.total += 1;
        self.hash = fold(self.hash, access_word(access));
        if self.prefix.len() < TraceRecorder::CAP {
            self.prefix.push(access);
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// A golden trace, as stored on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenTrace {
    /// Workload scale the trace was recorded at.
    pub scale: u32,
    /// Total accesses in the recorded run.
    pub total: u64,
    /// FNV-1a hash of the whole stream.
    pub hash: u64,
    /// Verbatim prefix of the stream.
    pub prefix: Vec<Access>,
}

const MAGIC: &[u8; 4] = b"RGLD";
const VERSION: u32 = 2;

/// Minimum equally-strided run length worth a range record (a range
/// record is 14 bytes; four 6-byte word records are 24).
pub const MIN_RUN: usize = 4;

fn sizekind_byte(a: Access) -> u8 {
    let kind = match a.kind {
        AccessKind::Read => 0u8,
        AccessKind::Write => 0x80,
    };
    (a.size & 0x7f) | kind
}

fn parse_sizekind(b: u8) -> (u8, AccessKind) {
    (b & 0x7f, if b & 0x80 != 0 { AccessKind::Write } else { AccessKind::Read })
}

impl GoldenTrace {
    /// Builds a golden trace from a finished recorder.
    pub fn from_recorder(rec: &TraceRecorder, scale: u32) -> GoldenTrace {
        GoldenTrace { scale, total: rec.total, hash: rec.hash, prefix: rec.prefix.clone() }
    }

    /// Serializes to the version-2 binary golden format, run-length
    /// compressing the word prefix into range records. Lossless:
    /// [`GoldenTrace::from_bytes`] expands back to the identical word
    /// prefix (asserted by a round-trip property test).
    pub fn to_bytes(&self) -> Vec<u8> {
        let p = &self.prefix;
        let mut recs = Vec::with_capacity(p.len());
        let mut nrecords: u32 = 0;
        // Longest equally-strided same-size/kind run starting at `i`.
        let run_at = |i: usize| -> (usize, u32) {
            let a = p[i];
            if i + 1 >= p.len() || p[i + 1].size != a.size || p[i + 1].kind != a.kind {
                return (1, 0);
            }
            let stride = p[i + 1].addr.wrapping_sub(a.addr);
            let mut run = 2;
            while i + run < p.len()
                && p[i + run].size == a.size
                && p[i + run].kind == a.kind
                && p[i + run].addr == a.addr.wrapping_add((run as u32).wrapping_mul(stride))
            {
                run += 1;
            }
            (run, stride)
        };
        let mut i = 0;
        while i < p.len() {
            let a = p[i];
            let (run, stride) = run_at(i);
            if run >= MIN_RUN {
                recs.push(1u8);
                recs.extend_from_slice(&a.addr.to_le_bytes());
                recs.extend_from_slice(&(run as u32).to_le_bytes());
                recs.extend_from_slice(&stride.to_le_bytes());
                recs.push(sizekind_byte(a));
                i += run;
            } else {
                recs.push(0u8);
                recs.extend_from_slice(&a.addr.to_le_bytes());
                recs.push(sizekind_byte(a));
                i += 1;
            }
            nrecords += 1;
        }
        let mut out = Vec::with_capacity(36 + recs.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.scale.to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        out.extend_from_slice(&self.hash.to_le_bytes());
        out.extend_from_slice(&(self.prefix.len() as u32).to_le_bytes());
        out.extend_from_slice(&nrecords.to_le_bytes());
        out.extend_from_slice(&recs);
        out
    }

    /// Parses the binary golden format — the canonicalizing expander.
    /// Accepts both version 1 (one 5-byte record per word) and version 2
    /// (tagged word/range records); either way the result is the plain
    /// word prefix, so traces written before and after batching compare
    /// under the same [`GoldenTrace::compare`].
    pub fn from_bytes(data: &[u8]) -> Result<GoldenTrace, String> {
        let take4 = |at: usize| -> Result<[u8; 4], String> {
            data.get(at..at + 4)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| format!("truncated golden trace at byte {at}"))
        };
        let take8 = |at: usize| -> Result<[u8; 8], String> {
            data.get(at..at + 8)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| format!("truncated golden trace at byte {at}"))
        };
        if data.get(..4) != Some(MAGIC.as_slice()) {
            return Err("not a golden trace (bad magic)".to_string());
        }
        let version = u32::from_le_bytes(take4(4)?);
        if version != 1 && version != VERSION {
            return Err(format!("golden trace version {version}, expected 1 or {VERSION}"));
        }
        let scale = u32::from_le_bytes(take4(8)?);
        let total = u64::from_le_bytes(take8(12)?);
        let hash = u64::from_le_bytes(take8(20)?);
        let kept = u32::from_le_bytes(take4(28)?) as usize;
        let mut prefix = Vec::with_capacity(kept);
        if version == 1 {
            let body = data
                .get(32..32 + kept * 5)
                .ok_or_else(|| format!("truncated golden trace: {kept} records promised"))?;
            for rec in body.chunks_exact(5) {
                let addr = u32::from_le_bytes(rec[..4].try_into().expect("chunk of 5"));
                let (size, kind) = parse_sizekind(rec[4]);
                prefix.push(Access { addr, size, kind });
            }
        } else {
            let nrecords = u32::from_le_bytes(take4(32)?);
            let mut at = 36;
            for _ in 0..nrecords {
                let tag = *data
                    .get(at)
                    .ok_or_else(|| format!("truncated golden trace at byte {at}"))?;
                match tag {
                    0 => {
                        let addr = u32::from_le_bytes(take4(at + 1)?);
                        let (size, kind) = parse_sizekind(
                            *data
                                .get(at + 5)
                                .ok_or_else(|| format!("truncated golden trace at byte {at}"))?,
                        );
                        prefix.push(Access { addr, size, kind });
                        at += 6;
                    }
                    1 => {
                        let start = u32::from_le_bytes(take4(at + 1)?);
                        let len = u32::from_le_bytes(take4(at + 5)?);
                        let stride = u32::from_le_bytes(take4(at + 9)?);
                        let (size, kind) = parse_sizekind(
                            *data
                                .get(at + 13)
                                .ok_or_else(|| format!("truncated golden trace at byte {at}"))?,
                        );
                        for i in 0..len {
                            prefix.push(Access {
                                addr: start.wrapping_add(i.wrapping_mul(stride)),
                                size,
                                kind,
                            });
                        }
                        at += 14;
                    }
                    t => return Err(format!("unknown golden record tag {t} at byte {at}")),
                }
            }
            if prefix.len() != kept {
                return Err(format!(
                    "golden trace expands to {} words but header promises {kept}",
                    prefix.len()
                ));
            }
        }
        Ok(GoldenTrace { scale, total, hash, prefix })
    }

    /// Compares a fresh recording against this golden trace. `Ok(())`
    /// means the streams are identical (same total, same whole-stream
    /// hash); `Err` describes the first observable divergence.
    pub fn compare(&self, fresh: &TraceRecorder, fresh_scale: u32) -> Result<(), String> {
        if self.scale != fresh_scale {
            return Err(format!(
                "scale mismatch: golden recorded at scale {}, replay ran at {fresh_scale}",
                self.scale
            ));
        }
        let n = self.prefix.len().min(fresh.prefix.len());
        for i in 0..n {
            let (g, f) = (self.prefix[i], fresh.prefix[i]);
            if g != f {
                return Err(format!(
                    "first divergence at access #{i}: golden {g:?}, replay {f:?}"
                ));
            }
        }
        if self.total != fresh.total {
            return Err(format!(
                "prefix matches but stream length changed: golden {} accesses, replay {} \
                 (first divergence beyond the recorded prefix of {})",
                self.total, fresh.total, n
            ));
        }
        if self.hash != fresh.hash {
            return Err(format!(
                "prefix and length match but whole-stream hash differs \
                 (divergence beyond the recorded prefix of {n}): \
                 golden {:016x}, replay {:016x}",
                self.hash, fresh.hash
            ));
        }
        Ok(())
    }
}

/// The on-disk location for a figure's golden trace.
pub fn golden_path(bench: &str, workload: &str, scale: u32) -> std::path::PathBuf {
    std::path::Path::new("results")
        .join("golden")
        .join(format!("{bench}-{workload}-s{scale}.trace"))
}

/// The on-disk location for a figure's golden end-of-run *state*
/// snapshot (the `RSNP` bytes of
/// [`RegionRuntime::capture_snapshot`](region_core::RegionRuntime::capture_snapshot)).
///
/// Where a golden trace pins the access *stream*, a golden state pins
/// the complete final runtime — every heap byte, region record, counter,
/// and page-map entry — so a behaviour change that happens to leave the
/// stream-shape alone (or one too cheap to trace) is still caught, and
/// [`crate::diff::snapshot_divergence`] can name the exact field that
/// moved.
pub fn golden_state_path(bench: &str, workload: &str, scale: u32) -> std::path::PathBuf {
    std::path::Path::new("results")
        .join("golden")
        .join(format!("{bench}-{workload}-s{scale}.state"))
}

/// Runs the safe-region variant of a workload untraced and captures the
/// final runtime state as snapshot bytes. The whole heap is simulated,
/// so the bytes are deterministic: any two runs of the same workload at
/// the same scale on any machine produce identical output.
pub fn record_region_state(w: Workload, scale: u32) -> Vec<u8> {
    let mut env = RegionEnv::new(RegionKind::Safe);
    w.run_region(&mut env, scale);
    env.runtime().expect("safe-region env has a real runtime").capture_snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: u32) -> TraceRecorder {
        let mut rec = TraceRecorder::new();
        for i in 0..n {
            rec.access(Access::read(0x1000 + i * 4, 4));
            rec.access(Access::write(0x2000 + i * 4, if i % 2 == 0 { 4 } else { 1 }));
        }
        rec
    }

    #[test]
    fn round_trips_through_bytes() {
        let rec = stream(100);
        let g = GoldenTrace::from_recorder(&rec, 2);
        let back = GoldenTrace::from_bytes(&g.to_bytes()).expect("parses");
        assert_eq!(g, back);
        assert!(back.compare(&rec, 2).is_ok());
    }

    #[test]
    fn v2_compresses_strided_runs_and_expands_back() {
        let mut rec = TraceRecorder::new();
        // A long word-strided store run (one range record) …
        for i in 0..1000u32 {
            rec.access(Access::write(0x4000 + i * 4, 4));
        }
        // … an isolated access, a same-address run (stride 0) …
        rec.access(Access::read(0x9000, 1));
        for _ in 0..5 {
            rec.access(Access::read(0x9100, 4));
        }
        // … and a wide-strided read run.
        for i in 0..7u32 {
            rec.access(Access::read(0x5000 + i * 64, 4));
        }
        let g = GoldenTrace::from_recorder(&rec, 1);
        let bytes = g.to_bytes();
        assert!(
            bytes.len() < 200,
            "1013 accesses must compress into a handful of records: {} bytes",
            bytes.len()
        );
        let back = GoldenTrace::from_bytes(&bytes).expect("parses");
        assert_eq!(back, g, "expansion must be lossless");
        assert!(back.compare(&rec, 1).is_ok());
    }

    #[test]
    fn runs_shorter_than_min_run_stay_word_records() {
        let mut rec = TraceRecorder::new();
        for i in 0..(MIN_RUN as u32 - 1) {
            rec.access(Access::read(0x1000 + i * 4, 4));
        }
        let g = GoldenTrace::from_recorder(&rec, 1);
        let bytes = g.to_bytes();
        // 36-byte header + three 6-byte word records, no range records.
        assert_eq!(bytes.len(), 36 + (MIN_RUN - 1) * 6);
        assert_eq!(GoldenTrace::from_bytes(&bytes).expect("parses"), g);
    }

    /// Goldens recorded before the batched protocol (format version 1,
    /// one 5-byte record per word) must keep parsing and comparing —
    /// this is the compatibility contract that lets committed v1 traces
    /// guard the refactor itself.
    #[test]
    fn v1_files_still_parse_and_compare() {
        let rec = stream(40);
        let g = GoldenTrace::from_recorder(&rec, 3);
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"RGLD");
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&3u32.to_le_bytes());
        v1.extend_from_slice(&g.total.to_le_bytes());
        v1.extend_from_slice(&g.hash.to_le_bytes());
        v1.extend_from_slice(&(g.prefix.len() as u32).to_le_bytes());
        for a in &g.prefix {
            v1.extend_from_slice(&a.addr.to_le_bytes());
            let kind = if a.kind == AccessKind::Write { 0x80u8 } else { 0 };
            v1.push((a.size & 0x7f) | kind);
        }
        let back = GoldenTrace::from_bytes(&v1).expect("v1 parses");
        assert_eq!(back, g, "v1 and v2 expand to the same words");
        assert!(back.compare(&rec, 3).is_ok());
    }

    #[test]
    fn reports_first_divergence_offset() {
        let golden = GoldenTrace::from_recorder(&stream(100), 1);
        let mut fresh = TraceRecorder::new();
        for (i, &a) in golden.prefix.iter().enumerate() {
            let mut a = a;
            if i == 57 {
                a.addr ^= 4; // a single flipped access
            }
            fresh.access(a);
        }
        let err = golden.compare(&fresh, 1).expect_err("must diverge");
        assert!(err.contains("access #57"), "got: {err}");
    }

    #[test]
    fn detects_divergence_past_the_prefix_by_hash_and_length() {
        let mut golden_rec = stream(50);
        let mut fresh = stream(50);
        // Same prefix, one extra access in the replay.
        fresh.access(Access::read(0x9000, 4));
        let golden = GoldenTrace::from_recorder(&golden_rec, 1);
        let err = golden.compare(&fresh, 1).expect_err("length changed");
        assert!(err.contains("stream length changed"), "got: {err}");

        // Same length, but pretend the tail (past the stored prefix)
        // differed: truncate the stored prefix, then perturb the hash.
        golden_rec.hash ^= 1;
        let golden = GoldenTrace {
            prefix: golden_rec.prefix[..10].to_vec(),
            ..GoldenTrace::from_recorder(&golden_rec, 1)
        };
        let fresh = stream(50);
        let err = golden.compare(&fresh, 1).expect_err("hash differs");
        assert!(err.contains("hash differs"), "got: {err}");
    }

    #[test]
    fn rejects_foreign_files() {
        assert!(GoldenTrace::from_bytes(b"JSON{}").is_err());
        let mut bytes = GoldenTrace::from_recorder(&stream(3), 1).to_bytes();
        bytes[4] = 99; // version
        assert!(GoldenTrace::from_bytes(&bytes).unwrap_err().contains("version"));
        bytes.truncate(30);
        bytes[4] = 1;
        assert!(GoldenTrace::from_bytes(&bytes).is_err());
    }
}
