//! Figure 10 — processor cycles lost to read and write stalls, from the
//! cache simulator replaying each run's access stream.
//!
//! Paper shape: BSD's automatic size segregation stalls less than the
//! other explicit allocators; moss's optimized two-region version has
//! roughly half the stalls of its naive single-region port.
//!
//! Traced cells are the most expensive in the harness (every simulated
//! access feeds the cache model), so fanning the matrix across worker
//! threads pays off most here.

use bench_harness::diff::snapshot_divergence;
use bench_harness::golden::{
    golden_path, golden_state_path, record_region_state, record_region_trace, GoldenTrace,
};
use bench_harness::runner::{
    run_matrix, scale_from_env, write_results_json, Job, Measurement,
};
use workloads::{MallocKind, RegionKind, Workload};

fn kstalls(m: &Measurement) -> (f64, f64) {
    let c = m.cache.expect("traced run");
    (c.read_stall_cycles as f64 / 1e3, c.write_stall_cycles as f64 / 1e3)
}

fn workload_by_name(name: &str) -> Workload {
    *Workload::ALL.iter().find(|w| w.name() == name).unwrap_or_else(|| {
        let names: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
        eprintln!("fig10: unknown workload {name:?}; expected one of {names:?}");
        std::process::exit(2);
    })
}

/// `--record-golden <workload>` / `--check-golden <workload>`: pin down
/// or re-verify the safe-region access stream feeding the cache model.
/// `--record-golden-state` / `--check-golden-state` do the same for the
/// *end state*: the full `RSNP` runtime snapshot after the workload, with
/// [`snapshot_divergence`] naming the first drifted field on mismatch.
/// Returns `true` if a golden mode ran (the matrix is skipped).
fn golden_mode(scale: u32) -> bool {
    let args: Vec<String> = std::env::args().collect();
    let value_of =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1));
    if let Some(name) = value_of("--record-golden") {
        let w = workload_by_name(name);
        let rec = record_region_trace(w, scale);
        let golden = GoldenTrace::from_recorder(&rec, scale);
        let path = golden_path("fig10", name, scale);
        std::fs::create_dir_all(path.parent().expect("under results/")).expect("mkdir");
        std::fs::write(&path, golden.to_bytes()).expect("write golden trace");
        println!(
            "recorded golden trace for {name} at scale {scale}: {} accesses \
             ({} kept verbatim), hash {:016x} -> {}",
            rec.total,
            golden.prefix.len(),
            rec.hash,
            path.display()
        );
        return true;
    }
    if let Some(name) = value_of("--check-golden") {
        let w = workload_by_name(name);
        let path = golden_path("fig10", name, scale);
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            eprintln!(
                "fig10: no golden trace at {} ({e}); record one with --record-golden {name}",
                path.display()
            );
            std::process::exit(2);
        });
        let golden = GoldenTrace::from_bytes(&bytes).unwrap_or_else(|e| {
            eprintln!("fig10: {}: {e}", path.display());
            std::process::exit(2);
        });
        let rec = record_region_trace(w, scale);
        match golden.compare(&rec, scale) {
            Ok(()) => println!(
                "golden trace for {name} holds: {} accesses, hash {:016x}",
                rec.total, rec.hash
            ),
            Err(e) => {
                eprintln!("fig10: golden trace for {name} DIVERGED: {e}");
                std::process::exit(1);
            }
        }
        return true;
    }
    if let Some(name) = value_of("--record-golden-state") {
        let w = workload_by_name(name);
        let snap = record_region_state(w, scale);
        let path = golden_state_path("fig10", name, scale);
        std::fs::create_dir_all(path.parent().expect("under results/")).expect("mkdir");
        std::fs::write(&path, &snap).expect("write golden state");
        println!(
            "recorded golden end-state for {name} at scale {scale}: {} bytes -> {}",
            snap.len(),
            path.display()
        );
        return true;
    }
    if let Some(name) = value_of("--check-golden-state") {
        let w = workload_by_name(name);
        let path = golden_state_path("fig10", name, scale);
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            eprintln!(
                "fig10: no golden state at {} ({e}); record one with \
                 --record-golden-state {name}",
                path.display()
            );
            std::process::exit(2);
        });
        let fresh = record_region_state(w, scale);
        match snapshot_divergence(&golden, &fresh) {
            None => println!(
                "golden end-state for {name} holds: {} bytes, bit-identical",
                fresh.len()
            ),
            Some(msg) => {
                eprintln!("fig10: golden end-state for {name} DIVERGED: {msg}");
                std::process::exit(1);
            }
        }
        return true;
    }
    false
}

fn main() {
    let scale = scale_from_env();
    if golden_mode(scale) {
        return;
    }
    let mut jobs = Vec::new();
    for w in Workload::ALL {
        for kind in MallocKind::ALL {
            jobs.push(Job::Malloc(w, kind));
        }
        jobs.push(Job::Region(w, RegionKind::Safe));
        jobs.push(Job::Region(w, RegionKind::Unsafe));
        if w == Workload::Moss {
            jobs.push(Job::MossSlow(RegionKind::Safe));
        }
    }
    let rows = run_matrix(&jobs, scale, true);

    println!("Figure 10: kilocycles lost to stalls, read+write (write), scale {scale}");
    println!(
        "{:<9} {:>15} {:>15} {:>15} {:>15} {:>15} {:>15}",
        "Name", "Sun", "BSD", "Lea", "GC", "Reg", "unsafe"
    );
    let mut cursor = rows.iter();
    for w in Workload::ALL {
        let mut row = format!("{:<9}", w.name());
        for _ in MallocKind::ALL {
            let m = cursor.next().expect("malloc cell");
            let (r, wr) = kstalls(m);
            row += &format!(" {:>8.0} ({:>4.0})", r + wr, wr);
        }
        let reg = cursor.next().expect("safe-region cell");
        let (r, wr) = kstalls(reg);
        row += &format!(" {:>8.0} ({:>4.0})", r + wr, wr);
        let unsf = cursor.next().expect("unsafe-region cell");
        let (r, wr) = kstalls(unsf);
        row += &format!(" {:>8.0} ({:>4.0})", r + wr, wr);
        println!("{row}");
        if w == Workload::Moss {
            let slow = cursor.next().expect("moss-slow cell");
            let (sr, sw) = kstalls(slow);
            let (or_, ow) = kstalls(reg);
            println!(
                "{:<9}  moss 'Slow': {:.0}k stalls vs optimized {:.0}k — ratio {:.2}×",
                "",
                sr + sw,
                or_ + ow,
                (sr + sw) / (or_ + ow).max(1.0),
            );
        }
    }
    match write_results_json("fig10", &rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write results JSON: {e}"),
    }
    println!();
    println!("Shape check vs paper: the optimized moss layout roughly halves its");
    println!("stalls; allocators that segregate by size or pack regions tightly");
    println!("stall less than general-purpose heaps on the hot structures.");
}
