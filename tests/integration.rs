//! Cross-crate integration tests: the C@ language on the region runtime,
//! the workloads across every allocator, and the emulation library's
//! equivalence with real regions.

use explicit_regions::cq_lang::{compile, Vm};
use explicit_regions::region_core::SafetyMode;
use explicit_regions::workloads::{MallocEnv, MallocKind, RegionEnv, RegionKind, Workload};

/// Every workload computes the same answer under every memory manager —
/// the correctness anchor of the whole evaluation.
#[test]
fn workloads_agree_across_all_seven_memory_managers() {
    for w in Workload::ALL {
        let expected = w.run_malloc(&mut MallocEnv::new(MallocKind::Sun), 1);
        for kind in [MallocKind::Bsd, MallocKind::Lea, MallocKind::Gc] {
            let got = w.run_malloc(&mut MallocEnv::new(kind), 1);
            assert_eq!(got, expected, "{} under {}", w.name(), kind.name());
        }
        for kind in [RegionKind::Safe, RegionKind::Unsafe, RegionKind::Emulated(MallocKind::Lea)]
        {
            let got = w.run_region(&mut RegionEnv::new(kind), 1);
            assert_eq!(got, expected, "{} under {}", w.name(), kind.name());
        }
    }
}

/// Region runs leave nothing behind: no live regions, no live bytes, no
/// failed deletions (every workload was written to clear its stale
/// pointers, as §5.1 required of the original ports).
#[test]
fn region_workloads_clean_up_completely() {
    for w in Workload::ALL {
        let mut env = RegionEnv::new(RegionKind::Safe);
        w.run_region(&mut env, 1);
        let stats = env.stats();
        assert_eq!(stats.live_regions, 0, "{}", w.name());
        assert_eq!(stats.live_bytes, 0, "{}", w.name());
        assert_eq!(env.costs().unwrap().deletes_failed, 0, "{}", w.name());
    }
}

/// Malloc runs under real allocators free every byte (no leaks in the
/// malloc variants), and the GC reclaims everything reachable-no-more.
#[test]
fn malloc_workloads_do_not_leak() {
    for w in Workload::ALL {
        for kind in [MallocKind::Sun, MallocKind::Bsd, MallocKind::Lea] {
            let mut env = MallocEnv::new(kind);
            w.run_malloc(&mut env, 1);
            assert_eq!(env.stats().live_bytes, 0, "{} under {}", w.name(), kind.name());
        }
    }
}

/// A C@ program whose behaviour depends on every layer at once:
/// compiler-placed barriers, the page map, stack scanning, and cleanup.
#[test]
fn cq_program_exercises_full_stack() {
    let program = compile(
        r#"
        struct node { int v; node@ next; };
        global node@ cache;

        node@ build(Region r, int n) {
            node@ head = null;
            int i = 0;
            while (i < n) {
                node@ fresh = ralloc(r, node);
                fresh.v = i;
                fresh.next = head;
                head = fresh;
                i = i + 1;
            }
            return head;
        }

        int total(node@ l) {
            int s = 0;
            while (l != null) { s = s + l.v; l = l.next; }
            return s;
        }

        void main() {
            Region work = newregion();
            node@ list = build(work, 100);
            print(total(list));
            cache = list;                 // global keeps the region alive
            list = null;
            print(deleteregion(work));    // 0
            cache = null;
            print(deleteregion(work));    // 1
        }
    "#,
    )
    .expect("compiles");
    let mut vm = Vm::new(program, SafetyMode::Safe);
    vm.run().expect("runs");
    assert_eq!(vm.output(), &[4950, 0, 1]);
    let costs = vm.runtime().costs();
    assert_eq!(costs.barriers_region, 100, "one barrier per next-link");
    assert!(costs.barriers_global >= 2);
    assert_eq!(costs.deletes_failed, 1);
    assert_eq!(costs.deletes, 1);
    assert!(costs.cleanup_objects >= 100);
    assert_eq!(vm.runtime().stats().live_regions, 0);
}

/// The same C@ program runs in both safety modes with identical output
/// (when it deletes nothing that is still referenced).
#[test]
fn cq_safe_and_unsafe_modes_agree_when_program_is_clean() {
    let src = r#"
        struct pair { int a; pair@ link; };
        void main() {
            int round = 0;
            while (round < 10) {
                Region r = newregion();
                pair@ arr = rarrayalloc(r, 50, pair);
                int i = 0;
                while (i < 50) {
                    arr[i].a = i * round;
                    i = i + 1;
                }
                print(arr[49].a);
                arr = null;
                deleteregion(r);
                round = round + 1;
            }
        }
    "#;
    let p = compile(src).expect("compiles");
    let mut safe = Vm::new(p.clone(), SafetyMode::Safe);
    safe.run().expect("safe run");
    let mut unsafe_vm = Vm::new(p, SafetyMode::Unsafe);
    unsafe_vm.run().expect("unsafe run");
    assert_eq!(safe.output(), unsafe_vm.output());
    assert!(safe.runtime().costs().total_instrs() > 0);
    assert_eq!(unsafe_vm.runtime().costs().total_instrs(), 0);
}

/// Emulated regions behave observably like real regions for
/// region-structured code (the paper used emulation to get the
/// malloc bars of mudlle and lcc).
#[test]
fn emulation_is_observationally_equivalent_to_real_regions() {
    for w in [Workload::Mudlle, Workload::Lcc] {
        let real = w.run_region(&mut RegionEnv::new(RegionKind::Safe), 1);
        for mk in [MallocKind::Sun, MallocKind::Bsd, MallocKind::Lea] {
            let emu = w.run_region(&mut RegionEnv::new(RegionKind::Emulated(mk)), 1);
            assert_eq!(emu, real, "{} emulated over {}", w.name(), mk.name());
        }
    }
}

/// The region-level statistics of an emulated run match the real
/// runtime's (same program, same region structure).
#[test]
fn emulation_statistics_match_real_region_structure() {
    let mut real = RegionEnv::new(RegionKind::Safe);
    Workload::Mudlle.run_region(&mut real, 1);
    let mut emu = RegionEnv::new(RegionKind::Emulated(MallocKind::Lea));
    Workload::Mudlle.run_region(&mut emu, 1);
    assert_eq!(real.stats().total_regions, emu.stats().total_regions);
    assert_eq!(real.stats().total_allocs, emu.stats().total_allocs);
    assert_eq!(real.stats().total_bytes, emu.stats().total_bytes);
    // The emulation overhead is visible only in the inner malloc stats.
    let inner = emu.emulation_inner_stats().unwrap();
    assert_eq!(
        inner.total_bytes,
        emu.stats().total_bytes + 4 * emu.stats().total_allocs,
        "one link word per object"
    );
}

/// Regression: the cfrac region variant once held a bignum constant in a
/// host variable across a region rotation — a dangling pointer invisible
/// to the stack scan (host variables are not shadow-stack slots). Larger
/// scales exercise several rotations.
#[test]
fn cfrac_agrees_across_rotations_at_larger_scale() {
    let m = Workload::Cfrac.run_malloc(&mut MallocEnv::new(MallocKind::Lea), 2);
    let r = Workload::Cfrac.run_region(&mut RegionEnv::new(RegionKind::Unsafe), 2);
    assert_eq!(m, r);
}
