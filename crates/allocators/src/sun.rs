//! The "Sun" baseline: a best-fit allocator with coalescing, standing in
//! for the default Solaris 2.5.1 malloc (§5.2).
//!
//! The real Solaris allocator keeps free blocks in a self-adjusting
//! (Cartesian) tree ordered by size and coalesces aggressively; we model
//! it as exact best-fit over a size-ordered set with immediate
//! coalescing. Block headers (one word: size plus an in-use bit) live in
//! the simulated heap; the best-fit index itself is host-side, as the
//! tree's pointer chasing is not the interesting part of the comparison.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use region_core::AllocStats;
use simheap::{align_up, Addr, SimHeap, PAGE_SIZE, WORD};

use crate::{OsAccount, RawMalloc};

const INUSE: u32 = 1;
/// Smallest block (header + minimum payload), in bytes.
const MIN_BLOCK: u32 = 8;

/// Best-fit malloc with boundary headers and immediate coalescing.
///
/// ```
/// use malloc_suite::{RawMalloc, SunMalloc};
/// use simheap::SimHeap;
///
/// let mut heap = SimHeap::new();
/// let mut m = SunMalloc::new();
/// let a = m.malloc(&mut heap, 100);
/// heap.store_u32(a, 7);
/// m.free(&mut heap, a);
/// let b = m.malloc(&mut heap, 100);
/// assert_eq!(a, b, "best fit reuses the freed block");
/// ```
#[derive(Debug, Default)]
pub struct SunMalloc {
    /// Free blocks ordered by (size, address) for best-fit.
    by_size: BTreeSet<(u32, u32)>,
    /// Free blocks by start address, for coalescing.
    by_addr: BTreeMap<u32, u32>,
    /// Live blocks: user pointer → accounted (stats) bytes.
    live: HashMap<u32, u32>,
    os: OsAccount,
    stats: AllocStats,
}

impl SunMalloc {
    /// Creates an allocator with no memory.
    pub fn new() -> SunMalloc {
        SunMalloc::default()
    }

    fn insert_free(&mut self, heap: &mut SimHeap, mut start: u32, mut size: u32) {
        // Coalesce with the predecessor if adjacent.
        if let Some((&pstart, &psize)) = self.by_addr.range(..start).next_back() {
            if pstart + psize == start {
                self.by_addr.remove(&pstart);
                self.by_size.remove(&(psize, pstart));
                start = pstart;
                size += psize;
            }
        }
        // Coalesce with the successor if adjacent.
        if let Some(&nsize) = self.by_addr.get(&(start + size)) {
            let nstart = start + size;
            self.by_addr.remove(&nstart);
            self.by_size.remove(&(nsize, nstart));
            size += nsize;
        }
        heap.store_u32(Addr::new(start), size); // free header (in-use bit clear)
        self.by_addr.insert(start, size);
        self.by_size.insert((size, start));
    }

    /// Number of blocks on the free list (diagnostics).
    pub fn free_blocks(&self) -> usize {
        self.by_addr.len()
    }
}

impl RawMalloc for SunMalloc {
    fn malloc(&mut self, heap: &mut SimHeap, size: u32) -> Addr {
        let need = (WORD + align_up(size, WORD)).max(MIN_BLOCK);
        // Best fit: smallest free block that is large enough.
        let found = self.by_size.range((need, 0)..).next().copied();
        let (bsize, start) = match found {
            Some(b) => b,
            None => {
                // Grow the heap and retry (the fresh block may coalesce
                // with a free block at the old break).
                let pages = need.div_ceil(PAGE_SIZE);
                let a = self.os.sbrk_pages(heap, pages);
                self.insert_free(heap, a.raw(), pages * PAGE_SIZE);
                self.by_size
                    .range((need, 0)..)
                    .next()
                    .copied()
                    .expect("fresh memory must satisfy the request")
            }
        };
        self.by_size.remove(&(bsize, start));
        self.by_addr.remove(&start);
        // Split off the tail if it is big enough to be a block.
        let (used, rest) = if bsize - need >= MIN_BLOCK { (need, bsize - need) } else { (bsize, 0) };
        if rest > 0 {
            self.insert_free(heap, start + used, rest);
        }
        heap.store_u32(Addr::new(start), used | INUSE);
        let accounted = self.stats.on_alloc(size);
        let ptr = Addr::new(start + WORD);
        self.live.insert(ptr.raw(), accounted);
        ptr
    }

    fn free(&mut self, heap: &mut SimHeap, ptr: Addr) {
        if ptr.is_null() {
            return;
        }
        let accounted = self.live.remove(&ptr.raw()).expect("invalid or double free");
        self.stats.on_free(u64::from(accounted));
        let start = ptr.raw() - WORD;
        let hdr = heap.load_u32(Addr::new(start));
        assert!(hdr & INUSE != 0, "freeing a free block");
        self.insert_free(heap, start, hdr & !INUSE);
    }

    fn name(&self) -> &'static str {
        "sun"
    }

    fn os_pages(&self) -> u64 {
        self.os.pages
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimHeap, SunMalloc) {
        (SimHeap::new(), SunMalloc::new())
    }

    #[test]
    fn alloc_free_realloc_reuses_memory() {
        let (mut heap, mut m) = setup();
        let a = m.malloc(&mut heap, 64);
        let b = m.malloc(&mut heap, 64);
        assert_ne!(a, b);
        m.free(&mut heap, a);
        let c = m.malloc(&mut heap, 64);
        assert_eq!(a, c, "freed block is reused");
        m.free(&mut heap, b);
        m.free(&mut heap, c);
    }

    #[test]
    fn coalescing_rebuilds_large_blocks() {
        let (mut heap, mut m) = setup();
        let ptrs: Vec<Addr> = (0..8).map(|_| m.malloc(&mut heap, 400)).collect();
        let pages = m.os_pages();
        for p in ptrs {
            m.free(&mut heap, p);
        }
        // All adjacent blocks merged: one big allocation now fits without
        // growing the heap.
        assert_eq!(m.free_blocks(), 1);
        let big = m.malloc(&mut heap, 3000);
        assert_eq!(m.os_pages(), pages, "no new pages needed after coalescing");
        m.free(&mut heap, big);
    }

    #[test]
    fn best_fit_prefers_tightest_block() {
        let (mut heap, mut m) = setup();
        // Build free blocks of 3 sizes with live separators (so they
        // cannot coalesce).
        let big = m.malloc(&mut heap, 512);
        let _sep1 = m.malloc(&mut heap, 16);
        let small = m.malloc(&mut heap, 64);
        let _sep2 = m.malloc(&mut heap, 16);
        m.free(&mut heap, big);
        m.free(&mut heap, small);
        let got = m.malloc(&mut heap, 60);
        assert_eq!(got, small, "best fit picks the 64-byte hole, not the 512");
    }

    #[test]
    fn writes_survive_neighbor_churn() {
        let (mut heap, mut m) = setup();
        let keep = m.malloc(&mut heap, 40);
        for i in 0..10u32 {
            heap.store_u32(keep + i * 4, i ^ 0xABCD);
        }
        for _ in 0..100 {
            let t = m.malloc(&mut heap, 24);
            m.free(&mut heap, t);
        }
        for i in 0..10u32 {
            assert_eq!(heap.load_u32(keep + i * 4), i ^ 0xABCD);
        }
        m.free(&mut heap, keep);
    }

    #[test]
    fn zero_sized_malloc_is_valid() {
        let (mut heap, mut m) = setup();
        let a = m.malloc(&mut heap, 0);
        assert!(!a.is_null());
        m.free(&mut heap, a);
    }

    #[test]
    fn free_null_is_noop() {
        let (mut heap, mut m) = setup();
        m.free(&mut heap, Addr::NULL);
    }

    #[test]
    #[should_panic(expected = "invalid or double free")]
    fn double_free_panics() {
        let (mut heap, mut m) = setup();
        let a = m.malloc(&mut heap, 16);
        m.free(&mut heap, a);
        m.free(&mut heap, a);
    }

    #[test]
    fn stats_track_requested_sizes() {
        let (mut heap, mut m) = setup();
        let a = m.malloc(&mut heap, 10);
        let _b = m.malloc(&mut heap, 20);
        assert_eq!(m.stats().total_allocs, 2);
        assert_eq!(m.stats().total_bytes, 12 + 20);
        assert_eq!(m.stats().live_bytes, 32);
        m.free(&mut heap, a);
        assert_eq!(m.stats().live_bytes, 20);
        assert_eq!(m.stats().max_live_bytes, 32);
    }

    #[test]
    fn large_allocations_span_pages() {
        let (mut heap, mut m) = setup();
        let a = m.malloc(&mut heap, 5 * PAGE_SIZE);
        heap.store_u32(a + 5 * PAGE_SIZE - 4, 99);
        assert_eq!(heap.load_u32(a + 5 * PAGE_SIZE - 4), 99);
        m.free(&mut heap, a);
    }
}
