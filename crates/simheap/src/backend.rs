//! The heap surface the region runtime is generic over.
//!
//! `RegionRuntime` historically owned a concrete [`SimHeap`]. The sharded
//! address space (see [`crate::shard`]) introduces a second backing store
//! — a [`HeapShard`](crate::HeapShard) handle onto one page-range slice
//! of a [`SharedSpace`](crate::SharedSpace) — so the subset of the heap
//! API the runtime actually uses is factored into this trait. Both
//! implementations keep identical observable semantics (panic messages,
//! counter increments, OOM/fault error fields), which is what lets a
//! single-shard space reproduce every `SimHeap` golden bit-for-bit.

use crate::{Addr, HeapConfig, HeapError};

/// Word-addressed simulated memory with sbrk growth, access counters and
/// optional tracing — the contract [`crate::SimHeap`] has always offered,
/// as a trait so region runtimes can also run on a [`crate::HeapShard`].
///
/// Semantics are specified by `SimHeap`'s documentation; implementations
/// must match its panics ("simulated segfault" / "simulated bus error"),
/// its counter accounting (including [`HeapBackend::fill`]'s
/// head/words/tail memset cost model) and its error fields exactly, so
/// that swapping backends never changes a deterministic measurement.
pub trait HeapBackend {
    /// Current program break (one past the last mapped byte this handle
    /// can grow).
    fn brk(&self) -> Addr;
    /// Extends the mapped range by `pages` zeroed pages, returning the
    /// first new page's address, or a typed OOM/fault error leaving the
    /// break unmoved.
    fn try_sbrk_pages(&mut self, pages: u32) -> Result<Addr, HeapError>;
    /// Panicking wrapper over [`HeapBackend::try_sbrk_pages`].
    fn sbrk_pages(&mut self, pages: u32) -> Addr {
        self.try_sbrk_pages(pages).unwrap_or_else(|e| panic!("{e}"))
    }
    /// Sets (or clears) the injected sbrk fault budget.
    fn set_sbrk_fault_after(&mut self, budget: Option<u64>);
    /// Reinitializes this handle to an empty heap under `config`,
    /// dropping any attached sink.
    fn reset_with(&mut self, config: HeapConfig);

    /// Loads a 32-bit word (panics on unmapped/misaligned addresses).
    fn load_u32(&mut self, addr: Addr) -> u32;
    /// Stores a 32-bit word.
    fn store_u32(&mut self, addr: Addr, value: u32);
    /// [`HeapBackend::load_u32`] with the single-branch fast-path checks.
    fn load_u32_fast(&mut self, addr: Addr) -> u32;
    /// [`HeapBackend::store_u32`] with the single-branch fast-path checks.
    fn store_u32_fast(&mut self, addr: Addr, value: u32);
    /// Loads an address-sized value and interprets it as an address.
    fn load_addr(&mut self, addr: Addr) -> Addr {
        Addr::new(self.load_u32(addr))
    }
    /// Stores an address.
    fn store_addr(&mut self, addr: Addr, value: Addr) {
        self.store_u32(addr, value.raw());
    }
    /// Reads a word without charging a load or emitting a trace record
    /// (host-side inspection only — sanitizers, auditors, tests).
    fn peek_u32(&self, addr: Addr) -> u32;
    /// Fills `len` bytes with `byte`, counting stores per the memset cost
    /// model (head bytes, whole words, tail bytes).
    fn fill(&mut self, addr: Addr, len: u32, byte: u8);
    /// Loads `len` words starting at `start`, `stride` bytes apart, as
    /// one batched access.
    fn load_u32_range(&mut self, start: Addr, len: u32, stride: u32) -> Vec<u32>;

    /// `true` if an access sink is attached (host-side mirrors must then
    /// take the in-heap path so the sink misses nothing).
    fn is_tracing(&self) -> bool;
    /// Charges `n` simulated loads without touching memory (host-mirror
    /// answers; must not be called while tracing).
    fn charge_loads(&mut self, n: u64);
    /// Number of loads performed since construction/reset.
    fn load_count(&self) -> u64;
    /// Number of stores performed since construction/reset.
    fn store_count(&self) -> u64;

    /// Announces that the page at `page_index` is now owned by the region
    /// encoded as `cell` (`region index + 1`, 0 = released). The runtime
    /// calls this on every page-map write; a [`crate::HeapShard`]
    /// publishes the entry to the space-wide atomic mirror so other
    /// workers (and the world auditor) can classify the page without
    /// touching this worker's in-heap map. Free-standing heaps have no
    /// one to tell: the default is a no-op.
    fn publish_page_owner(&mut self, page_index: u32, cell: u32) {
        let _ = (page_index, cell);
    }
}

impl HeapBackend for crate::SimHeap {
    fn brk(&self) -> Addr {
        SimHeapInherent::brk(self)
    }
    fn try_sbrk_pages(&mut self, pages: u32) -> Result<Addr, HeapError> {
        SimHeapInherent::try_sbrk_pages(self, pages)
    }
    fn set_sbrk_fault_after(&mut self, budget: Option<u64>) {
        SimHeapInherent::set_sbrk_fault_after(self, budget);
    }
    fn reset_with(&mut self, config: HeapConfig) {
        SimHeapInherent::reset_with(self, config);
    }
    fn load_u32(&mut self, addr: Addr) -> u32 {
        SimHeapInherent::load_u32(self, addr)
    }
    fn store_u32(&mut self, addr: Addr, value: u32) {
        SimHeapInherent::store_u32(self, addr, value);
    }
    fn load_u32_fast(&mut self, addr: Addr) -> u32 {
        SimHeapInherent::load_u32_fast(self, addr)
    }
    fn store_u32_fast(&mut self, addr: Addr, value: u32) {
        SimHeapInherent::store_u32_fast(self, addr, value);
    }
    fn peek_u32(&self, addr: Addr) -> u32 {
        SimHeapInherent::peek_u32(self, addr)
    }
    fn fill(&mut self, addr: Addr, len: u32, byte: u8) {
        SimHeapInherent::fill(self, addr, len, byte);
    }
    fn load_u32_range(&mut self, start: Addr, len: u32, stride: u32) -> Vec<u32> {
        SimHeapInherent::load_u32_range(self, start, len, stride)
    }
    fn is_tracing(&self) -> bool {
        SimHeapInherent::is_tracing(self)
    }
    fn charge_loads(&mut self, n: u64) {
        SimHeapInherent::charge_loads(self, n);
    }
    fn load_count(&self) -> u64 {
        SimHeapInherent::load_count(self)
    }
    fn store_count(&self) -> u64 {
        SimHeapInherent::store_count(self)
    }
}

/// Alias so the delegating impl above reads unambiguously: these are the
/// inherent `SimHeap` methods, not recursive trait calls.
use crate::SimHeap as SimHeapInherent;
