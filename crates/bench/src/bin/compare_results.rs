//! Diffs two versioned `results/*.json` documents, failing (exit 1) on
//! schema/shape changes, on any drift in the deterministic simulation
//! counters, or on wall-clock regressions beyond a tolerance. When the
//! two documents were recorded at different `workers` counts, time
//! drift is reported as a warning (exit 0) instead — cross-machine
//! timings are advisory, but the deterministic counters must still
//! match exactly.
//!
//! ```text
//! compare_results <old.json> <new.json> [--tolerance <pct>] [--ignore-time]
//! ```
//!
//! Typical use: re-run a figure before and after a change and gate on
//! the diff —
//!
//! ```text
//! cargo run --release --bin fig8 && cp results/fig8.json /tmp/fig8-old.json
//! # ...hack...
//! cargo run --release --bin fig8
//! cargo run --release --bin compare_results -- /tmp/fig8-old.json results/fig8.json
//! ```

use bench_harness::results::{compare_docs_full, Json};

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("compare_results: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("compare_results: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 25.0;
    let mut ignore_time = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ignore-time" => ignore_time = true,
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("compare_results: --tolerance needs a number (percent)");
                        std::process::exit(2);
                    });
            }
            f if !f.starts_with("--") => files.push(f.to_string()),
            other => {
                eprintln!("compare_results: unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let [old_path, new_path] = files.as_slice() else {
        eprintln!("usage: compare_results <old.json> <new.json> [--tolerance <pct>] [--ignore-time]");
        std::process::exit(2);
    };

    let old = load(old_path);
    let new = load(new_path);
    let cmp = compare_docs_full(&old, &new, tolerance, ignore_time);
    for w in &cmp.warnings {
        eprintln!("compare_results: warning: {w}");
    }
    if cmp.is_ok() {
        let rows = new.get("rows").and_then(Json::as_arr).map_or(0, <[Json]>::len);
        println!(
            "OK: {rows} rows agree (deterministic counters exact, time within {tolerance}%{}{})",
            if ignore_time { ", time ignored" } else { "" },
            if cmp.warnings.is_empty() { "" } else { ", with warnings" }
        );
        return;
    }
    eprintln!(
        "compare_results: {} difference(s) between {old_path} and {new_path}:",
        cmp.errors.len()
    );
    for d in &cmp.errors {
        eprintln!("  - {d}");
    }
    std::process::exit(1);
}
