//! A line diff for reproducing Table 1 (porting effort).
//!
//! The paper counts "the number of changed or extra lines of code in the
//! region-based version, based on the results of `diff -f`". We compute
//! the same quantity between our malloc-variant and region-variant
//! source sections: the number of lines of the region version that do
//! not appear (in order) in the malloc version — i.e. its lines minus
//! the longest common subsequence.

/// Number of changed-or-added lines in `region` relative to `malloc`
/// (whitespace-trimmed; blank lines ignored).
pub fn changed_lines(malloc: &str, region: &str) -> usize {
    let a: Vec<&str> = malloc.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
    let b: Vec<&str> = region.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
    b.len() - lcs_len(&a, &b)
}

/// Number of significant (non-blank) lines.
pub fn significant_lines(src: &str) -> usize {
    src.lines().map(str::trim).filter(|l| !l.is_empty()).count()
}

/// Classic O(n·m) LCS length with a rolling row.
fn lcs_len(a: &[&str], b: &[&str]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for &la in a {
        for (j, &lb) in b.iter().enumerate() {
            cur[j + 1] = if la == lb { prev[j] + 1 } else { cur[j].max(prev[j + 1]) };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sources_have_zero_changes() {
        let s = "a\nb\nc\n";
        assert_eq!(changed_lines(s, s), 0);
    }

    #[test]
    fn counts_added_and_modified_lines() {
        let a = "one\ntwo\nthree\n";
        let b = "one\ntwo-changed\nthree\nfour\n";
        assert_eq!(changed_lines(a, b), 2);
    }

    #[test]
    fn deletions_do_not_count_as_region_lines() {
        // Lines only in the malloc version (e.g. free() calls) are not
        // "lines in the region-based version".
        let a = "one\nfree(x)\ntwo\n";
        let b = "one\ntwo\n";
        assert_eq!(changed_lines(a, b), 0);
    }

    #[test]
    fn whitespace_and_blanks_are_ignored() {
        let a = "  one\n\n two \n";
        let b = "one\ntwo\n\n\n";
        assert_eq!(changed_lines(a, b), 0);
        assert_eq!(significant_lines(b), 2);
    }

    #[test]
    fn reordered_lines_count_once() {
        let a = "a\nb\nc\n";
        let b = "c\na\nb\n"; // LCS is "a b" (or "b c"): one changed line
        assert_eq!(changed_lines(a, b), 1);
    }
}
