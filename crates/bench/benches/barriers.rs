//! Micro-benchmark of the write barriers of paper Figure 5: the cost of
//! a reference-counted pointer store to global storage (16 SPARC
//! instructions in the paper), within a region (23), through the
//! runtime-dispatch path, and — for contrast — a plain local store,
//! which the deferred scheme makes free of counting entirely.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use region_core::{RegionRuntime, TypeDescriptor};
use simheap::Addr;

fn bench_barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("pointer_store");
    g.sample_size(20);

    let mut rt = RegionRuntime::new_safe();
    let d = rt.register_type(TypeDescriptor::new("node", 8, vec![4]));
    let g_slot = rt.alloc_globals(4);
    let r1 = rt.new_region();
    let r2 = rt.new_region();
    let a = rt.ralloc(r1, d);
    let b = rt.ralloc(r2, d);
    rt.push_frame(1);

    g.bench_function("local(free)", |bch| {
        bch.iter(|| rt.set_local(0, black_box(a)));
    });
    g.bench_function("global(16 instr)", |bch| {
        bch.iter(|| rt.store_ptr_global(g_slot, black_box(a)));
    });
    g.bench_function("region_same(23 instr)", |bch| {
        bch.iter(|| rt.store_ptr_region(a + 4, black_box(a)));
    });
    g.bench_function("region_cross(23 instr)", |bch| {
        bch.iter(|| rt.store_ptr_region(a + 4, black_box(b)));
    });
    g.bench_function("unknown(dispatch)", |bch| {
        bch.iter(|| rt.store_ptr_unknown(a + 4, black_box(b)));
    });

    let mut unsafe_rt = RegionRuntime::new_unsafe();
    let du = unsafe_rt.register_type(TypeDescriptor::new("node", 8, vec![4]));
    let ru = unsafe_rt.new_region();
    let au = unsafe_rt.ralloc(ru, du);
    g.bench_function("plain_store(unsafe mode)", |bch| {
        bch.iter(|| unsafe_rt.store_ptr_region(au + 4, black_box(Addr::NULL)));
    });

    g.finish();
}

criterion_group!(benches, bench_barriers);
criterion_main!(benches);
