//! Figure 8 — memory requested from the OS by each allocator, next to
//! the memory the program itself requested.
//!
//! Paper shape: regions rank first or second everywhere (from 9% less to
//! 19% more than Lea's allocator); BSD and the collector "use a lot of
//! memory, which makes them unsuitable for some applications".
//!
//! The workload × allocator matrix runs on worker threads; rows print
//! in matrix order. `--only <workload>` restricts the matrix to one
//! row — handy for CI smoke runs (e.g. the `REGION_SANITIZE=1` check).

use bench_harness::runner::{
    kb, pages_kb, par_bench_workers, run_matrix, run_matrix_with, scale_from_env,
    write_results_json_with_par, Job, ParColumn,
};
use workloads::{MallocKind, RegionKind, Workload};

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let scale = scale_from_env();
    let args: Vec<String> = std::env::args().collect();
    let only: Option<Workload> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|name| {
            *Workload::ALL.iter().find(|w| w.name() == name.as_str()).unwrap_or_else(|| {
                let names: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
                eprintln!("fig8: unknown workload {name:?}; expected one of {names:?}");
                std::process::exit(2);
            })
        });
    let selected: Vec<Workload> =
        Workload::ALL.iter().copied().filter(|w| only.is_none_or(|o| o == *w)).collect();
    let mut jobs = Vec::new();
    for &w in &selected {
        jobs.push(Job::Region(w, RegionKind::Safe));
        for kind in MallocKind::ALL {
            jobs.push(Job::Malloc(w, kind));
        }
        jobs.push(Job::Region(w, RegionKind::Unsafe));
        if matches!(w, Workload::Mudlle | Workload::Lcc) {
            jobs.push(Job::Region(w, RegionKind::Emulated(MallocKind::Lea)));
        }
    }
    let serial_t0 = std::time::Instant::now();
    let rows = run_matrix(&jobs, scale, false);
    let serial_wall = serial_t0.elapsed();

    // Parallel pass: the same matrix fanned across real worker threads
    // (min 3, so a single-core CI host still exercises cross-thread
    // scheduling). Every simulated counter must match the serial pass
    // bit for bit — only wall clock is allowed to move.
    let par_workers = par_bench_workers();
    let par_t0 = std::time::Instant::now();
    let par_rows = run_matrix_with(&jobs, scale, false, par_workers);
    let par_wall = par_t0.elapsed();
    for (s, p) in rows.iter().zip(&par_rows) {
        let cell = format!("{}/{}", s.workload, s.allocator);
        assert_eq!(s.os_pages, p.os_pages, "{cell}: os_pages perturbed by parallelism");
        assert_eq!(s.checksum, p.checksum, "{cell}: checksum perturbed by parallelism");
        assert_eq!(s.stats, p.stats, "{cell}: alloc stats perturbed by parallelism");
    }

    println!("Figure 8: Memory overhead, OS kbytes (requested kbytes in parens), scale {scale}");
    println!(
        "{:<9} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Name", "requested", "Sun", "BSD", "Lea", "GC", "Reg", "unsafe"
    );
    let mut cursor = rows.iter();
    for &w in &selected {
        let mut row = format!("{:<9}", w.name());
        let reg = cursor.next().expect("safe-region cell");
        row += &format!(" {:>12.1}", kb(reg.stats.max_live_bytes));
        for _ in MallocKind::ALL {
            let m = cursor.next().expect("malloc cell");
            row += &format!(" {:>9.0}", pages_kb(m.os_pages));
        }
        row += &format!(" {:>9.0}", pages_kb(reg.os_pages));
        let unsf = cursor.next().expect("unsafe-region cell");
        row += &format!(" {:>9.0}", pages_kb(unsf.os_pages));
        println!("{row}");
        // The paper's extra bars for the emulated programs.
        if matches!(w, Workload::Mudlle | Workload::Lcc) {
            let e = cursor.next().expect("emulation cell");
            println!(
                "{:<9} {:>12} {:>9} (emulation over Lea; region data w/o overhead {:.0} KB)",
                "  emu",
                "",
                format!("{:.0}", pages_kb(e.os_pages)),
                kb(e.stats.max_live_bytes),
            );
        }
    }
    // Parallel-speedup column: per-workload wall clock of the serial
    // pass vs the fanned-out pass, plus the matrix-level wall.
    println!();
    println!(
        "Parallel pass ({par_workers} workers): matrix wall {:.0} ms vs serial {:.0} ms \
         ({:.2}x); counters bit-identical",
        ms(par_wall),
        ms(serial_wall),
        ms(serial_wall) / ms(par_wall).max(1e-9),
    );
    println!("{:<9} {:>10} {:>10} {:>8}", "Name", "serial ms", "par ms", "speedup");
    let mut speed: Vec<(&str, f64, f64)> = Vec::new();
    for (s, p) in rows.iter().zip(&par_rows) {
        match speed.last_mut() {
            Some(e) if e.0 == s.workload => {
                e.1 += ms(s.total);
                e.2 += ms(p.total);
            }
            _ => speed.push((s.workload, ms(s.total), ms(p.total))),
        }
    }
    for (w, sm, pm) in &speed {
        println!("{w:<9} {sm:>10.0} {pm:>10.0} {:>7.2}x", sm / pm.max(1e-9));
    }

    // A filtered run is a smoke check, not the artifact: only the full
    // matrix may replace results/fig8.json.
    if only.is_none() {
        let par = ParColumn {
            workers: par_workers,
            total_ms: par_rows.iter().map(|m| ms(m.total)).collect(),
        };
        match write_results_json_with_par("fig8", &rows, Some(&par)) {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\nwarning: could not write results JSON: {e}"),
        }
    }
    println!();
    println!("Shape check vs paper: Reg ranks first or second on every row;");
    println!("BSD (power-of-two rounding) and GC (heap-doubling headroom) are the");
    println!("heavy consumers, as in the paper's clipped cfrac/tile bars.");
}
