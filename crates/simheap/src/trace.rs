//! Memory access tracing.
//!
//! A [`SimHeap`](crate::SimHeap) can forward every load and store it performs
//! to an [`AccessSink`]. The cache simulator in the `cache-sim` crate is the
//! main consumer; [`CountingSink`] and [`RecordingSink`] are lightweight
//! sinks used in tests and diagnostics.
//!
//! # The batched access-event protocol
//!
//! The heap describes its memory traffic as a stream of [`AccessEvent`]s.
//! Scalar loads and stores arrive as [`AccessEvent::Word`]; the bulk
//! operations (`fill`, `copy`, strided bulk reads) arrive as a single
//! [`AccessEvent::Range`] or [`AccessEvent::CopyRange`] record instead of
//! one `Word` per touched word. Every event has one **canonical word
//! expansion** ([`AccessEvent::for_each_word`]), and the protocol contract
//! is:
//!
//! > the expansion of the event stream is bit-identical — same addresses,
//! > sizes, kinds, **and order** — to the per-word stream the heap emitted
//! > before batching existed.
//!
//! Sinks that only implement [`AccessSink::access`] keep working unchanged:
//! the provided [`AccessSink::event`] method expands each event through the
//! canonical expansion. Sinks that can consume ranges natively (the cache
//! simulator, counters) override `event` and must produce results
//! bit-identical to the expanded stream — property tests in this crate and
//! in `cache-sim` enforce exactly that.
//!
//! `CopyRange` exists because a two-variant protocol (`Word` | `Range`)
//! cannot express a `memcpy` faithfully: the per-word stream of a copy is
//! *interleaved* load/store pairs, and splitting it into one read range
//! plus one write range would reorder the stream, changing cache hit/miss
//! behaviour and diverging from recorded golden traces.

/// Whether an access reads or writes memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One memory access performed by the simulated program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// Byte address of the access.
    pub addr: u32,
    /// Size of the access in bytes (1, 2 or 4).
    pub size: u8,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// Convenience constructor for a read.
    pub fn read(addr: u32, size: u8) -> Access {
        Access { addr, size, kind: AccessKind::Read }
    }

    /// Convenience constructor for a write.
    pub fn write(addr: u32, size: u8) -> Access {
        Access { addr, size, kind: AccessKind::Write }
    }
}

/// `len` equally-sized, equally-spaced accesses of one kind: the batched
/// record a bulk `fill` or strided bulk read emits.
///
/// Canonical expansion: `Access { addr: start + i*stride, size, kind }`
/// for `i` in `0..len`, in increasing `i`. `len == 0` expands to nothing;
/// `stride == 0` means `len` accesses to the same address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessRange {
    /// Address of the first access.
    pub start: u32,
    /// Number of accesses.
    pub len: u32,
    /// Byte distance between consecutive access addresses.
    pub stride: u32,
    /// Bytes touched by each access (1, 2 or 4).
    pub size: u8,
    /// Read or write.
    pub kind: AccessKind,
}

/// `len` interleaved load/store pairs: the batched record a bulk `copy`
/// emits.
///
/// Canonical expansion, for `i` in `0..len`:
/// `Read(src + i*stride, size)` then `Write(dst + i*stride, size)` —
/// exactly the element-at-a-time order of a simulated `memcpy`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CopyRange {
    /// Address of the first load.
    pub src: u32,
    /// Address of the first store.
    pub dst: u32,
    /// Number of load/store pairs.
    pub len: u32,
    /// Byte distance between consecutive elements.
    pub stride: u32,
    /// Bytes per element (1, 2 or 4).
    pub size: u8,
}

/// One record of the batched access protocol. See the module docs for the
/// expansion contract.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessEvent {
    /// A single scalar access.
    Word(Access),
    /// A batched run of same-kind accesses (bulk fill, strided bulk read).
    Range(AccessRange),
    /// A batched run of interleaved load/store pairs (bulk copy).
    CopyRange(CopyRange),
}

impl AccessEvent {
    /// The canonical word expansion, in stream order.
    pub fn for_each_word(self, mut f: impl FnMut(Access)) {
        match self {
            AccessEvent::Word(a) => f(a),
            AccessEvent::Range(r) => {
                for i in 0..r.len {
                    f(Access { addr: r.start.wrapping_add(i.wrapping_mul(r.stride)), size: r.size, kind: r.kind });
                }
            }
            AccessEvent::CopyRange(c) => {
                for i in 0..c.len {
                    let off = i.wrapping_mul(c.stride);
                    f(Access::read(c.src.wrapping_add(off), c.size));
                    f(Access::write(c.dst.wrapping_add(off), c.size));
                }
            }
        }
    }

    /// Number of word-level accesses this event expands to.
    pub fn word_count(self) -> u64 {
        match self {
            AccessEvent::Word(_) => 1,
            AccessEvent::Range(r) => u64::from(r.len),
            AccessEvent::CopyRange(c) => 2 * u64::from(c.len),
        }
    }

    /// Total bytes transferred by the expansion.
    pub fn byte_count(self) -> u64 {
        match self {
            AccessEvent::Word(a) => u64::from(a.size),
            AccessEvent::Range(r) => u64::from(r.len) * u64::from(r.size),
            AccessEvent::CopyRange(c) => 2 * u64::from(c.len) * u64::from(c.size),
        }
    }
}

/// A consumer of simulated memory accesses.
///
/// Implementors receive every load/store the heap performs while attached.
/// The `cache-sim` crate implements this for its memory-system model.
///
/// The heap delivers traffic through [`AccessSink::event`]. A sink only
/// interested in word-level accesses implements [`AccessSink::access`] and
/// inherits the default `event`, which expands each event canonically. A
/// sink overriding `event` for speed must be observationally identical to
/// the expansion.
///
/// Sinks are `Send` so a heap (with or without a sink attached) can move
/// between benchmark worker threads.
pub trait AccessSink: Send {
    /// Called once per word-level memory access, in program order (unless
    /// [`AccessSink::event`] is overridden).
    fn access(&mut self, access: Access);

    /// Called once per protocol event, in program order. The default
    /// implementation is the canonicalizing word-expansion adapter.
    fn event(&mut self, event: AccessEvent) {
        event.for_each_word(|a| self.access(a));
    }

    /// Converts the boxed sink into `Any`, so callers of
    /// [`SimHeap::detach_sink`](crate::SimHeap::detach_sink) can downcast
    /// back to the concrete sink they attached. The canonical
    /// implementation is `fn into_any(self: Box<Self>) -> Box<dyn Any> { self }`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// An [`AccessSink`] that simply counts reads and writes. Consumes batched
/// events in O(1).
///
/// ```
/// use simheap::{SimHeap, CountingSink, AccessSink};
///
/// let mut heap = SimHeap::new();
/// let p = heap.sbrk_pages(1);
/// heap.attach_sink(Box::new(CountingSink::default()));
/// heap.store_u32(p, 1);
/// heap.load_u32(p);
/// let sink = heap.detach_sink().unwrap();
/// ```
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of read accesses observed.
    pub reads: u64,
    /// Number of write accesses observed.
    pub writes: u64,
    /// Total bytes transferred.
    pub bytes: u64,
}

impl AccessSink for CountingSink {
    fn access(&mut self, access: Access) {
        match access.kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
        self.bytes += u64::from(access.size);
    }

    fn event(&mut self, event: AccessEvent) {
        match event {
            AccessEvent::Word(a) => self.access(a),
            AccessEvent::Range(r) => {
                match r.kind {
                    AccessKind::Read => self.reads += u64::from(r.len),
                    AccessKind::Write => self.writes += u64::from(r.len),
                }
                self.bytes += event.byte_count();
            }
            AccessEvent::CopyRange(c) => {
                self.reads += u64::from(c.len);
                self.writes += u64::from(c.len);
                self.bytes += event.byte_count();
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// An [`AccessSink`] that records every word-level access; intended for
/// small tests only (it grows without bound). Batched events are recorded
/// through the canonical expansion, so the log is the per-word stream.
#[derive(Default, Debug, Clone)]
pub struct RecordingSink {
    /// The accesses observed so far, in program order.
    pub log: Vec<Access>,
}

impl AccessSink for RecordingSink {
    fn access(&mut self, access: Access) {
        self.log.push(access);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// An [`AccessSink`] that records raw protocol events *without* expanding
/// them — for tests asserting that bulk operations actually batch.
#[derive(Default, Debug, Clone)]
pub struct EventRecordingSink {
    /// The events observed so far, in program order.
    pub log: Vec<AccessEvent>,
}

impl AccessSink for EventRecordingSink {
    fn access(&mut self, access: Access) {
        self.log.push(AccessEvent::Word(access));
    }

    fn event(&mut self, event: AccessEvent) {
        self.log.push(event);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

// ----------------------------------------------------------------------
// Per-worker stamped logs with a canonical merge
// ----------------------------------------------------------------------

/// One protocol event stamped with its origin: which worker emitted it
/// and where it sat in that worker's own emission order.
///
/// `(worker, seq)` is a total order over every event a sharded run
/// produces — each worker's sequence counter is private to it — so a
/// multi-worker trace has exactly one canonical serialization no matter
/// how the OS interleaved the threads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StampedEvent {
    /// The worker (shard slot) that performed the access.
    pub worker: u32,
    /// Position in that worker's own stream, starting at 0.
    pub seq: u64,
    /// The access event itself.
    pub event: AccessEvent,
}

/// A shared collection point for the stamped streams of many workers.
///
/// Each worker attaches a [`SharedLogSink`] (from
/// [`SharedEventLog::sink`]) to its heap shard; events arrive in
/// arbitrary cross-worker interleavings but [`SharedEventLog::merged`]
/// returns them in the canonical `(worker, seq)` order, which is
/// bit-identical for any thread count and any schedule — the property
/// the shard regression suites pin.
#[derive(Clone, Default, Debug)]
pub struct SharedEventLog {
    events: std::sync::Arc<std::sync::Mutex<Vec<StampedEvent>>>,
}

impl SharedEventLog {
    /// Creates an empty log.
    pub fn new() -> SharedEventLog {
        SharedEventLog::default()
    }

    fn push(&self, ev: StampedEvent) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(ev);
    }

    /// A sink stamping events as `worker`'s stream. Sequence numbers are
    /// owned by the sink, so one worker must not attach two sinks with
    /// the same id.
    pub fn sink(&self, worker: u32) -> SharedLogSink {
        SharedLogSink { log: self.clone(), worker, seq: 0 }
    }

    /// Every event logged so far, in canonical `(worker, seq)` order.
    pub fn merged(&self) -> Vec<StampedEvent> {
        let mut all = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        all.sort_by_key(|e| (e.worker, e.seq));
        all
    }

    /// FNV-1a digest of the canonical merge — the schedule-independent
    /// fingerprint multi-worker benches assert on.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        for e in self.merged() {
            fold(u64::from(e.worker));
            fold(e.seq);
            e.event.for_each_word(|a| {
                fold(u64::from(a.addr));
                fold(u64::from(a.size));
                fold(u64::from(a.kind == AccessKind::Write));
            });
        }
        h
    }
}

/// The per-worker stamping sink of a [`SharedEventLog`]. Keeps raw
/// protocol events (no expansion), so batching is preserved in the
/// merged stream.
#[derive(Debug)]
pub struct SharedLogSink {
    log: SharedEventLog,
    worker: u32,
    seq: u64,
}

impl AccessSink for SharedLogSink {
    fn access(&mut self, access: Access) {
        self.event(AccessEvent::Word(access));
    }

    fn event(&mut self, event: AccessEvent) {
        self.log.push(StampedEvent { worker: self.worker, seq: self.seq, event });
        self.seq += 1;
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.access(Access::read(16, 4));
        s.access(Access::write(20, 1));
        s.access(Access::write(24, 4));
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.bytes, 9);
    }

    #[test]
    fn recording_sink_records_in_order() {
        let mut s = RecordingSink::default();
        s.access(Access::read(4, 4));
        s.access(Access::write(8, 4));
        assert_eq!(s.log.len(), 2);
        assert_eq!(s.log[0], Access::read(4, 4));
        assert_eq!(s.log[1].kind, AccessKind::Write);
    }

    #[test]
    fn range_expansion_is_strided() {
        let ev = AccessEvent::Range(AccessRange {
            start: 0x1000,
            len: 3,
            stride: 8,
            size: 4,
            kind: AccessKind::Write,
        });
        let mut out = Vec::new();
        ev.for_each_word(|a| out.push(a));
        assert_eq!(
            out,
            vec![Access::write(0x1000, 4), Access::write(0x1008, 4), Access::write(0x1010, 4)]
        );
        assert_eq!(ev.word_count(), 3);
        assert_eq!(ev.byte_count(), 12);
    }

    #[test]
    fn empty_range_expands_to_nothing() {
        let ev = AccessEvent::Range(AccessRange {
            start: 0x1000,
            len: 0,
            stride: 4,
            size: 4,
            kind: AccessKind::Read,
        });
        let mut n = 0;
        ev.for_each_word(|_| n += 1);
        assert_eq!(n, 0);
        assert_eq!(ev.word_count(), 0);
        assert_eq!(ev.byte_count(), 0);
    }

    #[test]
    fn copy_expansion_interleaves_pairs() {
        let ev = AccessEvent::CopyRange(CopyRange {
            src: 0x2000,
            dst: 0x3000,
            len: 2,
            stride: 4,
            size: 4,
        });
        let mut out = Vec::new();
        ev.for_each_word(|a| out.push(a));
        assert_eq!(
            out,
            vec![
                Access::read(0x2000, 4),
                Access::write(0x3000, 4),
                Access::read(0x2004, 4),
                Access::write(0x3004, 4),
            ]
        );
        assert_eq!(ev.word_count(), 4);
    }

    #[test]
    fn default_event_adapter_expands_for_word_sinks() {
        let mut s = RecordingSink::default();
        s.event(AccessEvent::Range(AccessRange {
            start: 64,
            len: 2,
            stride: 1,
            size: 1,
            kind: AccessKind::Write,
        }));
        assert_eq!(s.log, vec![Access::write(64, 1), Access::write(65, 1)]);
    }

    #[test]
    fn counting_sink_consumes_events_in_o1() {
        let mut batched = CountingSink::default();
        let mut expanded = CountingSink::default();
        let events = [
            AccessEvent::Word(Access::read(16, 4)),
            AccessEvent::Range(AccessRange { start: 32, len: 9, stride: 4, size: 4, kind: AccessKind::Write }),
            AccessEvent::Range(AccessRange { start: 5, len: 3, stride: 1, size: 1, kind: AccessKind::Read }),
            AccessEvent::CopyRange(CopyRange { src: 100, dst: 200, len: 7, stride: 4, size: 4 }),
            AccessEvent::Range(AccessRange { start: 0, len: 0, stride: 4, size: 4, kind: AccessKind::Read }),
        ];
        for ev in events {
            batched.event(ev);
            ev.for_each_word(|a| expanded.access(a));
        }
        assert_eq!(batched, expanded);
    }

    #[test]
    fn event_recording_sink_keeps_events_raw() {
        let mut s = EventRecordingSink::default();
        let r = AccessEvent::Range(AccessRange { start: 8, len: 4, stride: 4, size: 4, kind: AccessKind::Write });
        s.event(r);
        s.access(Access::read(8, 4));
        assert_eq!(s.log.len(), 2);
        assert_eq!(s.log[0], r);
        assert_eq!(s.log[1], AccessEvent::Word(Access::read(8, 4)));
    }
}
