//! Allocator bake-off: one workload, every memory manager.
//!
//! Runs `tile` (text partitioning) under Sun/BSD/Lea malloc, the
//! conservative collector, safe regions, unsafe regions, and
//! malloc-backed region emulation — verifying they all compute the same
//! answer, and printing time and footprint side by side (a miniature of
//! the paper's Figures 8 and 9).
//!
//! Run with `cargo run --release --example allocator_bakeoff`.
//! Pick a different workload with e.g. `-- mudlle`.

use std::time::Instant;

use explicit_regions::workloads::{MallocEnv, MallocKind, RegionEnv, RegionKind, Workload};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tile".into());
    let w = Workload::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| panic!("unknown workload {name}; pick from cfrac/grobner/mudlle/lcc/tile/moss"));
    let scale = 2;
    println!("workload: {} (scale {scale})\n", w.name());
    println!("{:<10} {:>10} {:>12} {:>12} {:>14}", "allocator", "ms", "mem ms", "OS kbytes", "checksum");

    let mut checksums = Vec::new();
    for kind in MallocKind::ALL {
        let mut env = MallocEnv::new(kind);
        let t = Instant::now();
        let c = w.run_malloc(&mut env, scale);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<10} {:>10.1} {:>12.1} {:>12} {:>14x}",
            kind.name(),
            ms,
            env.mem_time().as_secs_f64() * 1e3,
            env.os_pages() * 4,
            c
        );
        checksums.push(c);
    }
    for kind in [RegionKind::Safe, RegionKind::Unsafe, RegionKind::Emulated(MallocKind::Lea)] {
        let mut env = RegionEnv::new(kind);
        let t = Instant::now();
        let c = w.run_region(&mut env, scale);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<10} {:>10.1} {:>12.1} {:>12} {:>14x}",
            kind.name(),
            ms,
            env.mem_time().as_secs_f64() * 1e3,
            env.os_pages() * 4,
            c
        );
        checksums.push(c);
    }
    assert!(checksums.windows(2).all(|w| w[0] == w[1]), "all allocators must agree");
    println!("\nall {} runs agree on the answer ✓", checksums.len());
}
