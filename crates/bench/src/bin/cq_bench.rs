//! Safety costs measured at the language level: C@ programs (as the
//! paper's benchmarks were) run on the VM in safe and unsafe modes.
//!
//! Three allocation-intensive C@ programs in the style of the paper's
//! suite: list churn with temporary regions (mudlle/cfrac-shaped), a
//! global cache with cross-region references (moss-shaped), and a
//! tree-per-region workload (lcc-shaped). For each we report VM
//! instructions, safety instructions by component, and the share of all
//! work that safety represents — Figure 11 computed from real compiled
//! programs instead of hand-instrumented Rust.
//!
//! By default each program is also compiled with the §3.3 *sameregion*
//! inference pass ([`cq_lang::compile_elide`]) and run a third time; the
//! `elided` and `safety(el)` columns show how many barriers the static
//! analysis removed and what safety work remains. `--no-elide` (or
//! `CQ_ELIDE=0`) keeps the paper-faithful codegen only. All VM runs —
//! untrusted compiled programs — execute under the bench supervisor
//! (deadline + panic containment), and a results/cq_bench.json envelope
//! is written alongside the table.

use std::time::{Duration, Instant};

use bench_harness::runner::{bench_workers, write_results_json, Measurement};
use bench_harness::supervise::{supervise, JobOutcome, SuperviseConfig};
use cq_lang::bytecode::Program;
use cq_lang::{compile, compile_elide, Vm};
use region_core::{AllocStats, SafetyCosts, SafetyMode};

const LIST_CHURN: &str = r#"
struct cell { int v; cell@ next; };
cell@ build(Region r, int n) {
    cell@ head = null;
    int i = 0;
    while (i < n) {
        cell@ c = ralloc(r, cell);
        c.v = i;
        c.next = head;   // region write barrier
        head = c;
        i = i + 1;
    }
    return head;
}
int total(cell@ l) {
    int s = 0;
    while (l != null) { s = s + l.v; l = l.next; }
    return s;
}
void main() {
    int round = 0;
    int acc = 0;
    while (round < 60) {
        Region tmp = newregion();
        cell@ l = build(tmp, 200);
        acc = acc + total(l);
        l = null;
        deleteregion(tmp);
        round = round + 1;
    }
    print(acc);
}
"#;

const GLOBAL_CACHE: &str = r#"
struct entry { int key; entry@ next; };
global entry@ cache;
void remember(Region r, int k) {
    entry@ e = ralloc(r, entry);
    e.key = k;
    e.next = cache;      // region write
    cache = e;           // global write barrier
}
int lookup(int k) {
    entry@ e = cache;
    while (e != null) {
        if (e.key == k) return 1;
        e = e.next;
    }
    return 0;
}
void main() {
    Region live = newregion();
    int i = 0;
    int hits = 0;
    while (i < 2000) {
        remember(live, i % 97);
        hits = hits + lookup(i % 53);
        i = i + 1;
    }
    print(hits);
    cache = null;
    print(deleteregion(live));
}
"#;

const TREE_PER_REGION: &str = r#"
struct tree { int v; tree@ l; tree@ r; };
tree@ insert(Region rg, tree@ t, int v) {
    if (t == null) {
        tree@ n = ralloc(rg, tree);
        n.v = v;
        return n;
    }
    if (v < t.v) t.l = insert(rg, t.l, v);
    else t.r = insert(rg, t.r, v);
    return t;
}
int sum(tree@ t) {
    if (t == null) return 0;
    return t.v + sum(t.l) + sum(t.r);
}
void main() {
    int round = 0;
    int acc = 0;
    int seed = 11;
    while (round < 40) {
        Region rg = newregion();
        tree@ t = null;
        int i = 0;
        while (i < 120) {
            seed = (seed * 75 + 74) % 6553;
            t = insert(rg, t, seed);
            i = i + 1;
        }
        acc = (acc + sum(t)) % 1000000;
        t = null;
        deleteregion(rg);
        round = round + 1;
    }
    print(acc);
}
"#;

/// Observables of one supervised VM run.
struct RunRec {
    output: Vec<i32>,
    instructions: u64,
    total: Duration,
    data_pages: u64,
    stats: AllocStats,
    costs: SafetyCosts,
    violations: usize,
}

fn run_vm(program: Program, mode: SafetyMode) -> RunRec {
    let t = Instant::now();
    let mut vm = Vm::new(program, mode);
    vm.run().expect("program runs to completion");
    let total = t.elapsed();
    let rt = vm.runtime();
    RunRec {
        output: vm.output().to_vec(),
        instructions: vm.instructions(),
        total,
        data_pages: rt.data_pages(),
        stats: *rt.stats(),
        costs: *rt.costs(),
        violations: rt.violations().len(),
    }
}

/// `--no-elide` flag or `CQ_ELIDE=0` keeps the paper-faithful codegen
/// (no sameregion inference) as the only safe build.
fn elide_enabled() -> bool {
    if std::env::args().any(|a| a == "--no-elide") {
        return false;
    }
    !std::env::var("CQ_ELIDE").is_ok_and(|v| v == "0")
}

fn checksum(output: &[i32]) -> u64 {
    output.iter().fold(0xcbf2_9ce4_8422_2325, |h, &v| {
        (h ^ v as u32 as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

fn main() {
    let elide = elide_enabled();
    const PROGRAMS: [(&str, &str); 3] = [
        ("list_churn", LIST_CHURN),
        ("global_cache", GLOBAL_CACHE),
        ("tree_region", TREE_PER_REGION),
    ];

    // Compile everything up front (compile errors are ours, not the
    // programs'), then run every (program, mode) cell under the
    // supervisor: compiled C@ is untrusted input to the VM, so each run
    // gets a deadline and panic containment instead of taking down the
    // whole table.
    type JobFn = Box<dyn Fn(u32) -> RunRec + Send + Sync>;
    let mut jobs: Vec<JobFn> = Vec::new();
    let mut cells: Vec<(usize, &'static str)> = Vec::new();
    for (pi, (_, src)) in PROGRAMS.iter().enumerate() {
        let base = compile(src).expect("program compiles");
        let opt = compile_elide(src).expect("program compiles with elision");
        for (mode_name, program, mode) in [
            ("Safe", base.clone(), SafetyMode::Safe),
            ("Unsafe", base.clone(), SafetyMode::Unsafe),
            ("Safe+elide", opt.clone(), SafetyMode::Safe),
        ] {
            if mode_name == "Safe+elide" && !elide {
                continue;
            }
            cells.push((pi, mode_name));
            jobs.push(Box::new(move |_| run_vm(program.clone(), mode)));
        }
    }
    let cfg = SuperviseConfig {
        workers: bench_workers(),
        deadline: Some(Duration::from_secs(120)),
        max_attempts: 1,
        backoff: Duration::from_millis(1),
        retry_timeouts: false,
    };
    let reports = supervise(jobs, &cfg);
    let mut runs: Vec<Option<RunRec>> = Vec::new();
    for (report, (pi, mode_name)) in reports.into_iter().zip(&cells) {
        match report.outcome {
            JobOutcome::Completed(rec) => runs.push(Some(rec)),
            JobOutcome::Panicked(msg) => {
                panic!("{}/{mode_name}: VM run panicked: {msg}", PROGRAMS[*pi].0)
            }
            JobOutcome::TimedOut(d) => {
                panic!("{}/{mode_name}: VM run exceeded {d:?}", PROGRAMS[*pi].0)
            }
        }
    }

    println!("C@ programs on the VM: cost of safety at the language level");
    if elide {
        println!("(sameregion inference on; --no-elide for paper-faithful codegen)");
    } else {
        println!("(sameregion inference off)");
    }
    println!(
        "{:<14} {:>12} {:>12} {:>9} {:>8} {:>8} {:>9} {:>9} {:>8} {:>12}",
        "program",
        "vm instrs",
        "safety",
        "safety%",
        "rc%",
        "scan%",
        "cleanup%",
        "barriers",
        "elided",
        "safety(el)"
    );
    let mut rows: Vec<Measurement> = Vec::new();
    for (pi, (name, _)) in PROGRAMS.iter().enumerate() {
        let mut by_mode: Vec<(&'static str, RunRec)> = Vec::new();
        for (ci, (cpi, mode_name)) in cells.iter().enumerate() {
            if cpi == &pi {
                by_mode.push((mode_name, runs[ci].take().expect("run present")));
            }
        }
        let safe = &by_mode.iter().find(|(m, _)| *m == "Safe").expect("safe cell").1;
        let unsafe_ = &by_mode.iter().find(|(m, _)| *m == "Unsafe").expect("unsafe cell").1;
        assert_eq!(safe.output, unsafe_.output, "{name}: modes must agree");
        let costs = safe.costs;
        let (rc, scan, cleanup) = costs.breakdown();
        let barriers = costs.barriers_global + costs.barriers_region + costs.barriers_unknown;
        // The elided build must be observationally identical to the safe
        // build: same output, same VM instruction count (elided stores
        // substitute one-for-one), a conserved barrier split, and no
        // runtime `ElisionUnsound` violations (the inference never lied).
        let (elided_n, safety_el) = match by_mode.iter().find(|(m, _)| *m == "Safe+elide") {
            Some((_, el)) => {
                assert_eq!(safe.output, el.output, "{name}: elision changed the answer");
                assert_eq!(
                    safe.instructions, el.instructions,
                    "{name}: elision changed the VM instruction count"
                );
                assert_eq!(el.violations, 0, "{name}: elision claim failed at runtime");
                assert_eq!(
                    barriers,
                    el.costs.barriers_global
                        + el.costs.barriers_region
                        + el.costs.barriers_unknown
                        + el.costs.barriers_elided,
                    "{name}: barrier split not conserved"
                );
                (el.costs.barriers_elided, el.costs.total_instrs())
            }
            None => (0, costs.total_instrs()),
        };
        // Safety share: simulated safety instructions relative to the sum
        // of VM instructions and safety instructions (the VM's own
        // instruction count is identical across modes).
        let total = safe.instructions + costs.total_instrs();
        println!(
            "{:<14} {:>12} {:>12} {:>8.1}% {:>7.0}% {:>7.0}% {:>8.0}% {:>9} {:>8} {:>12}",
            name,
            safe.instructions,
            costs.total_instrs(),
            100.0 * costs.total_instrs() as f64 / total as f64,
            rc * 100.0,
            scan * 100.0,
            cleanup * 100.0,
            barriers,
            elided_n,
            safety_el,
        );
        for (mode_name, rec) in &by_mode {
            rows.push(Measurement {
                workload: name,
                allocator: mode_name,
                total: rec.total,
                mem: Duration::ZERO,
                os_pages: rec.data_pages,
                stats: rec.stats,
                inner_stats: None,
                costs: (*mode_name != "Unsafe").then_some(rec.costs),
                cache: None,
                checksum: checksum(&rec.output),
            });
        }
    }
    match write_results_json("cq_bench", &rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write results json: {e}"),
    }
    println!();
    println!("Shape check vs paper Figure 11: pointer-linking programs pay mostly");
    println!("reference counting; programs that delete object-rich regions pay");
    println!("cleanup. The share is large for these allocation-dense kernels —");
    println!("nearly every instruction is a pointer write — and drops to the");
    println!("paper's single digits when real compute dominates (global_cache).");
    if elide {
        println!();
        println!("Sameregion inference removes the region-local link barriers in");
        println!("list_churn and tree_region (the recursive insert's co-region");
        println!("parameter invariant carries the proof); global_cache's");
        println!("cross-region cache writes are not elidable and keep theirs.");
    }
}
