//! `tile` — partitions text into subsections based on frequency and
//! grouping of words (§5.1).
//!
//! The original tile takes text files and splits them where the word
//! distribution shifts. This reproduction tokenizes the input in the
//! simulated heap, builds an in-heap chained hash table of word
//! frequencies per fixed-size block, computes a similarity score between
//! adjacent blocks, and places a section boundary where similarity
//! drops. The paper's input is "twenty copies of a 14K text"; ours is
//! `4 × scale` copies of a generated 14 KB text.
//!
//! Allocation behaviour: one bucket array, one entry per distinct word,
//! and one string buffer per distinct word, per block — freed (or
//! region-deleted) as soon as the block has been compared with its
//! successor. The paper notes "for tile, one local variable must be
//! cleared to allow a region to be deleted"; the region variant
//! reproduces exactly that dance with its shadow-stack locals.

use simheap::{Addr, SimHeap};

use crate::env::{MallocEnv, RegionEnv};
use crate::util::{isqrt, text, Checksum};

const NBUCKETS: u32 = 64;
const WORDS_PER_BLOCK: usize = 150;
const SIM_THRESHOLD: u64 = 350;

// Entry layout: [count][hash][next][word][len], 20 bytes.
const E_COUNT: u32 = 0;
const E_HASH: u32 = 4;
const E_NEXT: u32 = 8;
const E_WORD: u32 = 12;
const E_LEN: u32 = 16;
const E_SIZE: u32 = 20;

/// The benchmark input: `4 × scale` copies of a 14 KB generated text.
pub fn input(scale: u32) -> String {
    let base = text(0x7113, 800, 14_000);
    base.repeat((4 * scale) as usize)
}

/// Loads the input into a fresh heap area; returns (start, len).
fn load_input(heap: &mut SimHeap, input: &str) -> (Addr, u32) {
    let area = heap.sbrk(input.len() as u32);
    heap.load_bytes_untraced(area, input.as_bytes());
    (area, input.len() as u32)
}

/// Scans the next word (a run of lowercase letters) at or after `pos`;
/// returns (start, len, next_pos).
fn next_word(heap: &mut SimHeap, base: Addr, end: u32, mut pos: u32) -> Option<(u32, u32, u32)> {
    while pos < end && !heap.load_u8(base + pos).is_ascii_lowercase() {
        pos += 1;
    }
    if pos >= end {
        return None;
    }
    let start = pos;
    while pos < end && heap.load_u8(base + pos).is_ascii_lowercase() {
        pos += 1;
    }
    Some((start, pos - start, pos))
}

fn hash_word(heap: &mut SimHeap, base: Addr, start: u32, len: u32) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for i in 0..len {
        h ^= u32::from(heap.load_u8(base + start + i));
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn words_equal(heap: &mut SimHeap, a: Addr, b: Addr, len: u32) -> bool {
    for i in 0..len {
        if heap.load_u8(a + i) != heap.load_u8(b + i) {
            return false;
        }
    }
    true
}

/// Looks up `hash`/word in a table; returns the entry or null.
fn table_find(heap: &mut SimHeap, buckets: Addr, hash: u32, word: Addr, len: u32) -> Addr {
    let mut e = heap.load_addr(buckets + (hash % NBUCKETS) * 4);
    while !e.is_null() {
        if heap.load_u32(e + E_HASH) == hash && heap.load_u32(e + E_LEN) == len {
            let w = heap.load_addr(e + E_WORD);
            if words_equal(heap, w, word, len) {
                return e;
            }
        }
        e = heap.load_addr(e + E_NEXT);
    }
    Addr::NULL
}

/// Similarity of two block tables: scaled cosine over word counts.
fn similarity(heap: &mut SimHeap, a: Addr, b: Addr) -> u64 {
    let mut dot: u64 = 0;
    let mut norm_a: u64 = 0;
    for bucket in 0..NBUCKETS {
        let mut e = heap.load_addr(a + bucket * 4);
        while !e.is_null() {
            let ca = u64::from(heap.load_u32(e + E_COUNT));
            norm_a += ca * ca;
            let hash = heap.load_u32(e + E_HASH);
            let w = heap.load_addr(e + E_WORD);
            let len = heap.load_u32(e + E_LEN);
            let other = table_find(heap, b, hash, w, len);
            if !other.is_null() {
                dot += ca * u64::from(heap.load_u32(other + E_COUNT));
            }
            e = heap.load_addr(e + E_NEXT);
        }
    }
    let mut norm_b: u64 = 0;
    for bucket in 0..NBUCKETS {
        let mut e = heap.load_addr(b + bucket * 4);
        while !e.is_null() {
            let cb = u64::from(heap.load_u32(e + E_COUNT));
            norm_b += cb * cb;
            e = heap.load_addr(e + E_NEXT);
        }
    }
    dot * 1000 / (isqrt(norm_a * norm_b) + 1)
}

/// Folds a finished partitioning decision into the checksum.
fn account_block(sum: &mut Checksum, distinct: u64, sim: u64, boundary: bool) {
    sum.add(distinct);
    sum.add(sim);
    sum.add(u64::from(boundary));
}

// --- begin malloc variant ---

/// Runs tile against a malloc/free allocator (or the collector).
pub fn run_malloc(env: &mut MallocEnv, scale: u32) -> u64 {
    let input = input(scale);
    let (base, len) = load_input(env.heap(), &input);
    let mut sum = Checksum::new();
    // Roots: 0 = previous block's table, 1 = current, 2 = word buffer
    // in flight between its malloc and the entry malloc.
    env.push_roots(3);

    let mut prev: Addr = Addr::NULL; // previous block's bucket array
    let mut pos = 0u32;
    let mut sections = 1u64;
    loop {
        // Build the frequency table for the next block.
        let buckets = env.malloc(NBUCKETS * 4);
        env.set_root(1, buckets);
        for i in 0..NBUCKETS {
            env.heap().store_addr(buckets + i * 4, Addr::NULL);
        }
        let mut words = 0usize;
        let mut distinct = 0u64;
        while words < WORDS_PER_BLOCK {
            let Some((start, wlen, next)) = next_word(env.heap(), base, len, pos) else {
                break;
            };
            pos = next;
            words += 1;
            let hash = hash_word(env.heap(), base, start, wlen);
            let found = table_find(env.heap(), buckets, hash, base + start, wlen);
            if found.is_null() {
                distinct += 1;
                let word = env.malloc(wlen);
                env.set_root(2, word); // survive the entry allocation
                env.heap().copy(word, base + start, wlen);
                let entry = env.malloc(E_SIZE);
                env.set_root(2, Addr::NULL);
                let head = env.heap().load_addr(buckets + (hash % NBUCKETS) * 4);
                env.heap().store_u32(entry + E_COUNT, 1);
                env.heap().store_u32(entry + E_HASH, hash);
                env.heap().store_addr(entry + E_NEXT, head);
                env.heap().store_addr(entry + E_WORD, word);
                env.heap().store_u32(entry + E_LEN, wlen);
                env.heap().store_addr(buckets + (hash % NBUCKETS) * 4, entry);
            } else {
                let c = env.heap().load_u32(found + E_COUNT);
                env.heap().store_u32(found + E_COUNT, c + 1);
            }
        }
        if words == 0 {
            free_table(env, buckets);
            break;
        }
        // Compare with the previous block, then free it entry by entry —
        // the walk regions make unnecessary.
        if !prev.is_null() {
            let sim = similarity(env.heap(), prev, buckets);
            let boundary = sim < SIM_THRESHOLD;
            if boundary {
                sections += 1;
            }
            account_block(&mut sum, distinct, sim, boundary);
            free_table(env, prev);
        }
        prev = buckets;
        env.set_root(0, prev);
        env.set_root(1, Addr::NULL);
    }
    if !prev.is_null() {
        free_table(env, prev);
    }
    env.pop_roots();
    sum.add(sections);
    sum.value()
}

/// Frees one block table: every entry, every word buffer, the buckets.
fn free_table(env: &mut MallocEnv, buckets: Addr) {
    for i in 0..NBUCKETS {
        let mut e = env.heap().load_addr(buckets + i * 4);
        while !e.is_null() {
            let next = env.heap().load_addr(e + E_NEXT);
            let word = env.heap().load_addr(e + E_WORD);
            env.free(word);
            env.free(e);
            e = next;
        }
    }
    env.free(buckets);
}

// --- end malloc variant ---

// --- begin region variant ---

/// Runs tile against a region backend: one region per block table,
/// deleted wholesale after the block is compared — no walking.
pub fn run_region(env: &mut RegionEnv, scale: u32) -> u64 {
    let input = input(scale);
    let (base, len) = load_input(env.heap(), &input);
    let mut sum = Checksum::new();
    let d_entry = env.register_type(region_core::TypeDescriptor::new(
        "tile_entry",
        E_SIZE,
        vec![E_NEXT, E_WORD],
    ));
    let d_bucket =
        env.register_type(region_core::TypeDescriptor::new("tile_bucket", 4, vec![0]));
    // Locals: slot 0 = previous table, slot 1 = current table.
    env.push_frame(2);

    let mut prev_region = None;
    let mut pos = 0u32;
    let mut sections = 1u64;
    loop {
        let r = env.new_region();
        let buckets = env.rarrayalloc(r, NBUCKETS, d_bucket); // cleared
        env.set_local(1, buckets);
        let mut words = 0usize;
        let mut distinct = 0u64;
        while words < WORDS_PER_BLOCK {
            let Some((start, wlen, next)) = next_word(env.heap(), base, len, pos) else {
                break;
            };
            pos = next;
            words += 1;
            let hash = hash_word(env.heap(), base, start, wlen);
            let found = table_find(env.heap(), buckets, hash, base + start, wlen);
            if found.is_null() {
                distinct += 1;
                let word = env.rstralloc(r, wlen);
                env.heap().copy(word, base + start, wlen);
                let entry = env.ralloc(r, d_entry);
                let head = env.heap().load_addr(buckets + (hash % NBUCKETS) * 4);
                env.heap().store_u32(entry + E_COUNT, 1);
                env.heap().store_u32(entry + E_HASH, hash);
                // sameregion: the bucket array, every chained entry, and
                // the copied word are all allocated in this block's `r`.
                env.store_ptr_region_same(entry + E_NEXT, head);
                env.store_ptr_region_same(entry + E_WORD, word);
                env.heap().store_u32(entry + E_LEN, wlen);
                env.store_ptr_region_same(buckets + (hash % NBUCKETS) * 4, entry);
            } else {
                let c = env.heap().load_u32(found + E_COUNT);
                env.heap().store_u32(found + E_COUNT, c + 1);
            }
        }
        if words == 0 {
            env.set_local(1, Addr::NULL);
            assert!(env.delete_region(r), "empty block region must delete");
            break;
        }
        if let Some(pr) = prev_region {
            let prev = env.get_local(0);
            let sim = similarity(env.heap(), prev, buckets);
            let boundary = sim < SIM_THRESHOLD;
            if boundary {
                sections += 1;
            }
            account_block(&mut sum, distinct, sim, boundary);
            // "One local variable must be cleared to allow a region to be
            // deleted" (§5.1) — here it is:
            env.set_local(0, Addr::NULL);
            assert!(env.delete_region(pr), "previous block region must delete");
        }
        prev_region = Some(r);
        env.set_local(0, buckets);
        env.set_local(1, Addr::NULL);
    }
    if let Some(pr) = prev_region {
        env.set_local(0, Addr::NULL);
        assert!(env.delete_region(pr));
    }
    env.pop_frame();
    sum.add(sections);
    sum.value()
}

// --- end region variant ---

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{MallocKind, RegionKind};

    #[test]
    fn all_allocators_agree_on_the_answer() {
        let expected = run_malloc(&mut MallocEnv::new(MallocKind::Sun), 1);
        for kind in [MallocKind::Bsd, MallocKind::Lea, MallocKind::Gc] {
            assert_eq!(run_malloc(&mut MallocEnv::new(kind), 1), expected, "{}", kind.name());
        }
        for kind in [RegionKind::Safe, RegionKind::Unsafe, RegionKind::Emulated(MallocKind::Lea)] {
            assert_eq!(run_region(&mut RegionEnv::new(kind), 1), expected, "{}", kind.name());
        }
    }

    #[test]
    fn malloc_variant_frees_everything() {
        let mut env = MallocEnv::new(MallocKind::Lea);
        run_malloc(&mut env, 1);
        assert_eq!(env.stats().live_bytes, 0, "tile must free every block");
        assert!(env.stats().total_allocs > 1000);
    }

    #[test]
    fn region_variant_deletes_all_regions() {
        let mut env = RegionEnv::new(RegionKind::Safe);
        run_region(&mut env, 1);
        assert_eq!(env.stats().live_regions, 0);
        assert!(env.stats().total_regions > 30, "one region per block");
        assert_eq!(env.costs().unwrap().deletes_failed, 0);
    }

    #[test]
    fn partitioning_finds_multiple_sections() {
        let mut env = MallocEnv::new(MallocKind::Sun);
        let c1 = run_malloc(&mut env, 1);
        // Different scale → different partitioning → different checksum.
        let c2 = run_malloc(&mut MallocEnv::new(MallocKind::Sun), 2);
        assert_ne!(c1, c2);
    }
}
