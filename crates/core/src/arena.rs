//! A host-memory arena: explicit regions as an idiomatic Rust library.
//!
//! This is the "regions as they are normally used" API (paper §1) for Rust
//! programs: objects are bump-allocated into the arena and freed all at
//! once when the arena is dropped or [`Arena::reset`]. Rust's borrow
//! checker plays the role of the paper's reference counts: an object
//! reference borrows the arena, so the arena cannot be destroyed while
//! external references exist — the *safety* property of §3 enforced
//! statically, at zero runtime cost.
//!
//! The allocator mirrors §4.1: pages are acquired from the OS, allocation
//! is a pointer increment, and deallocation is O(pages).
//!
//! ```
//! use region_core::Arena;
//!
//! let arena = Arena::new();
//! let xs: &mut [u32] = arena.alloc_slice_copy(&[1, 2, 3]);
//! xs[0] = 10;
//! let s = arena.alloc_str("hello");
//! assert_eq!(xs[0], 10);
//! assert_eq!(&*s, "hello");
//! // dropping the arena frees everything at once
//! ```

#![allow(unsafe_code)]

use std::cell::RefCell;
use std::mem::{align_of, size_of, MaybeUninit};

/// Initial chunk size; doubles up to [`MAX_CHUNK`]. Matches the paper's
/// 4 KB pages.
const FIRST_CHUNK: usize = 4096;
/// Ceiling on chunk growth.
const MAX_CHUNK: usize = 1 << 20;

struct Chunks {
    /// Owned chunks. `Box` contents never move, so pointers into older
    /// chunks stay valid while new chunks are added.
    chunks: Vec<Box<[MaybeUninit<u8>]>>,
    /// Offset of the next free byte in the last chunk.
    used: usize,
    /// Total bytes requested by callers (diagnostics).
    allocated: usize,
}

/// A bump-allocating region for host Rust values.
///
/// Values allocated in an `Arena` live until the arena is reset or
/// dropped. **`Drop` implementations of allocated values never run** —
/// like the paper's regions (and like `bumpalo`), the arena reclaims
/// memory, not resources. Allocate only types whose `Drop` is trivial or
/// whose cleanup you handle yourself.
pub struct Arena {
    inner: RefCell<Chunks>,
}

impl Default for Arena {
    fn default() -> Arena {
        Arena::new()
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Arena")
            .field("chunks", &inner.chunks.len())
            .field("allocated", &inner.allocated)
            .finish()
    }
}

impl Arena {
    /// Creates an empty arena (`newregion`). No memory is acquired until
    /// the first allocation.
    pub fn new() -> Arena {
        Arena { inner: RefCell::new(Chunks { chunks: Vec::new(), used: 0, allocated: 0 }) }
    }

    /// Total bytes handed out by this arena since creation or the last
    /// [`Arena::reset`].
    pub fn allocated_bytes(&self) -> usize {
        self.inner.borrow().allocated
    }

    /// Bytes of capacity currently held from the OS.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().chunks.iter().map(|c| c.len()).sum()
    }

    /// Frees every allocation at once (`deleteregion`), keeping only the
    /// largest chunk for reuse. Requires `&mut self`, so the borrow
    /// checker has already proven no external references remain.
    pub fn reset(&mut self) {
        let inner = self.inner.get_mut();
        let largest = inner
            .chunks
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.len())
            .map(|(i, _)| i);
        if let Some(i) = largest {
            let keep = inner.chunks.swap_remove(i);
            inner.chunks.clear();
            inner.chunks.push(keep);
        }
        inner.used = 0;
        inner.allocated = 0;
    }

    /// Reserves `size` bytes aligned to `align` and returns a stable
    /// pointer to them.
    fn alloc_raw(&self, size: usize, align: usize) -> *mut u8 {
        debug_assert!(align.is_power_of_two());
        let mut inner = self.inner.borrow_mut();
        inner.allocated += size;
        // Try the current chunk. (Take the raw pointer and length out of
        // the borrow so the bump-cursor update below does not conflict.)
        if let Some((ptr, len)) = inner.chunks.last().map(|c| (c.as_ptr(), c.len())) {
            let start = (ptr as usize + inner.used).next_multiple_of(align);
            let offset = start - ptr as usize;
            if offset + size <= len {
                inner.used = offset + size;
                // SAFETY: `offset + size <= len`, so the range is inside
                // the chunk; the chunk box never moves or shrinks while the
                // arena lives; bump allocation never hands out overlapping
                // ranges.
                return unsafe { ptr.add(offset) as *mut u8 };
            }
        }
        // Need a new chunk: double the last size, and make sure the value
        // fits even with worst-case alignment padding.
        let next_size = inner
            .chunks
            .last()
            .map_or(FIRST_CHUNK, |c| (c.len() * 2).min(MAX_CHUNK))
            .max(size + align);
        let chunk = vec![MaybeUninit::<u8>::uninit(); next_size].into_boxed_slice();
        inner.chunks.push(chunk);
        let (ptr, len) = inner.chunks.last().map(|c| (c.as_ptr(), c.len())).expect("just pushed");
        let start = (ptr as usize).next_multiple_of(align);
        let offset = start - ptr as usize;
        debug_assert!(offset + size <= len);
        inner.used = offset + size;
        // SAFETY: as above — in-bounds, stable, exclusive.
        unsafe { ptr.add(offset) as *mut u8 }
    }

    /// Moves `value` into the arena and returns a reference living as long
    /// as the arena (`ralloc`).
    ///
    /// `value`'s `Drop` will never run; see the type-level docs.
    #[allow(clippy::mut_from_ref)] // bump allocation: each call returns a disjoint range
    pub fn alloc<T>(&self, value: T) -> &mut T {
        if size_of::<T>() == 0 {
            // All ZSTs live at a well-aligned dangling address.
            // SAFETY: reads/writes of ZSTs are no-ops at any non-null
            // aligned address.
            return unsafe { &mut *std::ptr::NonNull::<T>::dangling().as_ptr() };
        }
        let p = self.alloc_raw(size_of::<T>(), align_of::<T>()) as *mut T;
        // SAFETY: `p` is valid for writes of `T` (size/align reserved),
        // exclusive, and lives as long as `self`.
        unsafe {
            p.write(value);
            &mut *p
        }
    }

    /// Copies a slice into the arena (`rarrayalloc` for `Copy` data).
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_slice_copy<T: Copy>(&self, src: &[T]) -> &mut [T] {
        if src.is_empty() || size_of::<T>() == 0 {
            return &mut [];
        }
        let p = self.alloc_raw(std::mem::size_of_val(src), align_of::<T>()) as *mut T;
        // SAFETY: destination reserved and exclusive; `src` cannot overlap
        // fresh arena memory; `T: Copy` so a bitwise copy is a valid value.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), p, src.len());
            std::slice::from_raw_parts_mut(p, src.len())
        }
    }

    /// Fills a new slice of length `n` with values produced by `f(i)`.
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_slice_fill_with<T>(&self, n: usize, mut f: impl FnMut(usize) -> T) -> &mut [T] {
        if n == 0 || size_of::<T>() == 0 {
            // ZST slices need no storage; materialize via a dangling base.
            if size_of::<T>() == 0 {
                for i in 0..n {
                    std::mem::forget(f(i));
                }
                // SAFETY: ZST slices are valid at any aligned dangling ptr.
                return unsafe {
                    std::slice::from_raw_parts_mut(std::ptr::NonNull::<T>::dangling().as_ptr(), n)
                };
            }
            return &mut [];
        }
        let size = size_of::<T>().checked_mul(n).expect("arena slice overflow");
        let p = self.alloc_raw(size, align_of::<T>()) as *mut T;
        // SAFETY: reserved, exclusive, correctly aligned; each element is
        // initialized exactly once before the slice is formed.
        unsafe {
            for i in 0..n {
                p.add(i).write(f(i));
            }
            std::slice::from_raw_parts_mut(p, n)
        }
    }

    /// Copies a string into the arena (`rstralloc`).
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_str(&self, src: &str) -> &mut str {
        let bytes = self.alloc_slice_copy(src.as_bytes());
        // SAFETY: `bytes` is a verbatim copy of valid UTF-8.
        unsafe { std::str::from_utf8_unchecked_mut(bytes) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_stable_distinct_values() {
        let arena = Arena::new();
        let mut refs = Vec::new();
        for i in 0..1000u32 {
            refs.push(arena.alloc(i));
        }
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(**r, i as u32);
        }
        // mutate through the references
        for r in refs.iter_mut() {
            **r += 1;
        }
        assert_eq!(*refs[999], 1000);
    }

    #[test]
    fn paper_figure1_shape() {
        // for (i = 0; i < 10; i++) { x = ralloc(r, (i+1)*sizeof(int)); ... }
        let arena = Arena::new();
        for i in 0..10usize {
            let x = arena.alloc_slice_fill_with(i + 1, |j| j as u32);
            assert_eq!(x.len(), i + 1);
            assert_eq!(x.last().copied(), Some(i as u32));
        }
        // deleteregion(&r) is `drop(arena)`
    }

    #[test]
    fn slices_and_strings() {
        let arena = Arena::new();
        let xs = arena.alloc_slice_copy(&[1u64, 2, 3]);
        let s = arena.alloc_str("region");
        let ys = arena.alloc_slice_fill_with(4, |i| i * i);
        assert_eq!(xs, &[1, 2, 3]);
        assert_eq!(s, "region");
        assert_eq!(ys, &[0, 1, 4, 9]);
        xs[2] = 30;
        assert_eq!(xs[2], 30);
    }

    #[test]
    fn alignment_is_respected() {
        let arena = Arena::new();
        let _pad = arena.alloc(1u8);
        let a = arena.alloc(7u64);
        assert_eq!(a as *const u64 as usize % align_of::<u64>(), 0);
        #[repr(align(64))]
        #[derive(Clone, Copy)]
        struct Aligned64([u8; 64]);
        let b = arena.alloc(Aligned64([3; 64]));
        assert_eq!(b as *const Aligned64 as usize % 64, 0);
        assert_eq!(b.0[63], 3);
    }

    #[test]
    fn large_allocations_get_own_chunks() {
        let arena = Arena::new();
        let big = arena.alloc_slice_fill_with(100_000, |i| i as u8);
        assert_eq!(big.len(), 100_000);
        assert_eq!(big[99_999], (99_999 % 256) as u8);
        let after = arena.alloc(5u32);
        assert_eq!(*after, 5);
    }

    #[test]
    fn zero_sized_types_work() {
        let arena = Arena::new();
        let unit = arena.alloc(());
        assert_eq!(*unit, ());
        let units = arena.alloc_slice_fill_with(10, |_| ());
        assert_eq!(units.len(), 10);
        let empty: &mut [u32] = arena.alloc_slice_copy(&[]);
        assert!(empty.is_empty());
        assert_eq!(arena.allocated_bytes(), 0);
    }

    #[test]
    fn reset_reclaims_and_reuses() {
        let mut arena = Arena::new();
        for i in 0..10_000u32 {
            arena.alloc(i);
        }
        let cap = arena.capacity();
        assert!(cap >= 40_000);
        arena.reset();
        assert_eq!(arena.allocated_bytes(), 0);
        assert!(arena.capacity() <= cap);
        assert!(arena.capacity() > 0, "largest chunk is retained");
        let v = arena.alloc(42u32);
        assert_eq!(*v, 42);
    }

    #[test]
    fn allocated_bytes_accumulates() {
        let arena = Arena::new();
        arena.alloc(0u64);
        arena.alloc_slice_copy(&[0u8; 10]);
        assert_eq!(arena.allocated_bytes(), 18);
    }

    #[test]
    fn no_overlap_under_mixed_sizes() {
        // Write distinct patterns through every allocation, then verify
        // all of them: any overlap would corrupt an earlier pattern.
        let arena = Arena::new();
        let mut slices: Vec<&mut [u8]> = Vec::new();
        for i in 0..500usize {
            let n = (i * 7) % 97 + 1;
            let s = arena.alloc_slice_fill_with(n, move |_| (i % 251) as u8);
            slices.push(s);
        }
        for (i, s) in slices.iter().enumerate() {
            assert!(s.iter().all(|&b| b == (i % 251) as u8), "allocation {i} corrupted");
        }
    }
}
