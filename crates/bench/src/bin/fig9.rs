//! Figure 9 — execution time per allocator, split into "base" and
//! "memory" (time spent in memory management), plus the unsafe-region
//! bar and moss's "slow" single-region bar.
//!
//! Paper shape: unsafe regions are fastest everywhere (up to 16% over
//! the best malloc); safe regions are as fast or faster on cfrac, tile
//! and moss and at worst ~5% behind on mudlle/lcc; moss's optimized
//! two-region layout beats the naive port by ~24%.

use bench_harness::runner::{measure_malloc, measure_region, measure_region_slow, scale_from_env};
use workloads::{MallocKind, RegionKind, Workload};

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let scale = scale_from_env();
    println!("Figure 9: execution time, total ms (memory-management ms), scale {scale}");
    println!(
        "{:<9} {:>16} {:>16} {:>16} {:>16} {:>16} {:>16}",
        "Name", "Sun", "BSD", "Lea", "GC", "Reg", "unsafe"
    );
    for w in Workload::ALL {
        let mut row = format!("{:<9}", w.name());
        let mut best_malloc = f64::MAX;
        for kind in MallocKind::ALL {
            let m = measure_malloc(w, kind, scale, false);
            best_malloc = best_malloc.min(ms(m.total));
            row += &format!(" {:>9.0} ({:>4.0})", ms(m.total), ms(m.mem));
        }
        let reg = measure_region(w, RegionKind::Safe, scale, false);
        let unsf = measure_region(w, RegionKind::Unsafe, scale, false);
        row += &format!(" {:>9.0} ({:>4.0})", ms(reg.total), ms(reg.mem));
        row += &format!(" {:>9.0} ({:>4.0})", ms(unsf.total), ms(unsf.mem));
        println!("{row}");
        println!(
            "{:<9}  Reg vs best malloc: {:+.1}%   unsafe vs best malloc: {:+.1}%",
            "",
            100.0 * (ms(reg.total) - best_malloc) / best_malloc,
            100.0 * (ms(unsf.total) - best_malloc) / best_malloc,
        );
        if w == Workload::Moss {
            let slow = measure_region_slow(RegionKind::Safe, scale, false);
            println!(
                "{:<9}  moss 'Slow' (one interleaved region): {:.0} ms — optimized layout {:+.1}%",
                "",
                ms(slow.total),
                100.0 * (ms(reg.total) - ms(slow.total)) / ms(slow.total),
            );
        }
    }
    println!();
    println!("Shape check vs paper: unsafe regions lead; safe regions are close to");
    println!("or ahead of the malloc field; GC pays for its collections; the moss");
    println!("two-region layout beats the naive single-region port.");
}
