//! `grobner` — Gröbner basis of a set of polynomials via Buchberger's
//! algorithm (§5.1).
//!
//! Polynomials are linked lists of term nodes in the simulated heap,
//! over GF(32003) in four variables (exponents packed one byte per
//! variable, graded-lex order). Every arithmetic operation allocates a
//! fresh list, which is what makes the original benchmark
//! allocation-intensive: S-polynomials and reductions generate heaps of
//! short-lived terms.
//!
//! Region structure, per the paper: a temporary region per S-pair
//! reduction, with surviving remainders *copied* into a result region —
//! "add copies of the polynomials that form the basis to a result
//! region". The malloc variant instead frees every intermediate
//! polynomial node by node.

use simheap::{Addr, SimHeap};

use crate::env::{MallocEnv, RegionEnv};
use crate::util::{rng, Checksum};
use rand::Rng;

/// The field: GF(32003), as in the classic Gröbner benchmarks.
pub const P: u64 = 32003;

// Term node: [coef][exps][next], 12 bytes.
const T_COEF: u32 = 0;
const T_EXPS: u32 = 4;
const T_NEXT: u32 = 8;
const T_SIZE: u32 = 12;

/// Packed-exponent helpers (four variables, one byte each).
fn deg(exps: u32) -> u32 {
    (exps & 0xff) + (exps >> 8 & 0xff) + (exps >> 16 & 0xff) + (exps >> 24 & 0xff)
}

/// Graded lex: higher total degree first, then higher packed value.
fn mono_before(a: u32, b: u32) -> bool {
    let (da, db) = (deg(a), deg(b));
    da > db || (da == db && a > b)
}

fn mono_divides(b: u32, a: u32) -> bool {
    // b | a: every exponent of b ≤ a's.
    (0..4).all(|i| (b >> (8 * i)) & 0xff <= (a >> (8 * i)) & 0xff)
}

fn mono_div(a: u32, b: u32) -> u32 {
    let mut out = 0u32;
    for i in 0..4 {
        let e = ((a >> (8 * i)) & 0xff) - ((b >> (8 * i)) & 0xff);
        out |= e << (8 * i);
    }
    out
}

fn mono_mul(a: u32, b: u32) -> u32 {
    let mut out = 0u32;
    for i in 0..4 {
        let e = ((a >> (8 * i)) & 0xff) + ((b >> (8 * i)) & 0xff);
        assert!(e < 256, "exponent overflow");
        out |= e << (8 * i);
    }
    out
}

fn mono_lcm(a: u32, b: u32) -> u32 {
    let mut out = 0u32;
    for i in 0..4 {
        let e = ((a >> (8 * i)) & 0xff).max((b >> (8 * i)) & 0xff);
        out |= e << (8 * i);
    }
    out
}

fn inv_mod(c: u64) -> u64 {
    // Fermat: c^(P-2) mod P.
    let mut base = c % P;
    let mut exp = P - 2;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % P;
        }
        base = base * base % P;
        exp >>= 1;
    }
    acc
}

/// The generator set: `3 + scale` random polynomials, 3–5 terms each,
/// degree ≤ 3, as host-side (coef, exps) lists.
pub fn generators(scale: u32) -> Vec<Vec<(u32, u32)>> {
    let mut r = rng(0x6b0b);
    let mut out = Vec::new();
    for _ in 0..3 + scale {
        let nterms = r.gen_range(3..6);
        let mut terms: Vec<(u32, u32)> = (0..nterms)
            .map(|_| {
                let mut exps = 0u32;
                for i in 0..4 {
                    exps |= r.gen_range(0..3u32) << (8 * i);
                }
                (r.gen_range(1..P as u32), exps)
            })
            .collect();
        terms.sort_by(|a, b| {
            if mono_before(a.1, b.1) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        terms.dedup_by_key(|t| t.1);
        out.push(terms);
    }
    out
}

/// Number of terms in a polynomial.
fn term_count(heap: &mut SimHeap, mut p: Addr) -> u32 {
    let mut n = 0;
    while !p.is_null() {
        n += 1;
        p = heap.load_addr(p + T_NEXT);
    }
    n
}

/// Remainders denser than this are discarded rather than admitted to the
/// basis — a growth cap that keeps the benchmark's running time bounded
/// (applied identically in both variants so the answers agree).
const MAX_TERMS: u32 = 64;

/// Reads the lead term of a non-null polynomial.
fn lead(heap: &mut SimHeap, p: Addr) -> (u64, u32) {
    (u64::from(heap.load_u32(p + T_COEF)), heap.load_u32(p + T_EXPS))
}

/// Folds a finished basis polynomial into the checksum.
fn account_poly(heap: &mut SimHeap, mut p: Addr, sum: &mut Checksum) {
    while !p.is_null() {
        sum.add(u64::from(heap.load_u32(p + T_COEF)));
        sum.add(u64::from(heap.load_u32(p + T_EXPS)));
        p = heap.load_addr(p + T_NEXT);
    }
    sum.add(0xb0);
}

// --- begin malloc variant ---

/// Buchberger with malloc/free: every intermediate polynomial is freed
/// node by node as soon as it is dead.
pub fn run_malloc(env: &mut MallocEnv, scale: u32) -> u64 {
    let gens = generators(scale);
    let mut sum = Checksum::new();
    // Root slots: 0..=19 basis heads; 20/21 S-poly operands; 22 the
    // reduction multiple; 24 the polynomial being reduced; 25/26 the
    // list heads under construction inside scale/sub.
    env.push_roots(27);
    let mut basis: Vec<Addr> = Vec::new();
    for g in &gens {
        let p = poly_from_terms_m(env, g);
        env.set_root(24, p);
        let n = normalize_m(env, p);
        basis.push(n);
        env.set_root(basis.len() as u32 - 1, n);
        env.set_root(24, Addr::NULL);
    }
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..basis.len() {
        for j in i + 1..basis.len() {
            pairs.push((i, j));
        }
    }
    let max_pairs = 15 * scale as usize;
    let max_basis = 20usize;
    let mut processed = 0usize;
    while let Some((i, j)) = pairs.pop() {
        if processed >= max_pairs || basis.len() >= max_basis {
            break;
        }
        processed += 1;
        let s = spoly_m(env, basis[i], basis[j]);
        env.set_root(24, s);
        let r = reduce_m(env, s, &basis); // consumes s
        if r.is_null() {
            env.set_root(24, Addr::NULL);
            continue;
        }
        env.set_root(24, r);
        let n = normalize_m(env, r);
        env.set_root(24, n);
        if term_count(env.heap(), n) > MAX_TERMS {
            free_poly_m(env, n);
            env.set_root(24, Addr::NULL);
            continue;
        }
        basis.push(n);
        env.set_root(basis.len() as u32 - 1, n);
        env.set_root(24, Addr::NULL);
        for k in 0..basis.len() - 1 {
            pairs.push((k, basis.len() - 1));
        }
    }
    sum.add(processed as u64);
    sum.add(basis.len() as u64);
    for &b in &basis {
        account_poly(env.heap(), b, &mut sum);
    }
    // Free the basis, walking each list.
    for b in basis {
        free_poly_m(env, b);
    }
    env.pop_roots();
    sum.value()
}

fn node_m(env: &mut MallocEnv, coef: u64, exps: u32, next: Addr) -> Addr {
    let n = env.malloc(T_SIZE);
    env.heap().store_u32(n + T_COEF, coef as u32);
    env.heap().store_u32(n + T_EXPS, exps);
    env.heap().store_addr(n + T_NEXT, next);
    n
}

fn free_poly_m(env: &mut MallocEnv, mut p: Addr) {
    while !p.is_null() {
        let next = env.heap().load_addr(p + T_NEXT);
        env.free(p);
        p = next;
    }
}

/// Builds a polynomial from host terms (already sorted, lead first).
fn poly_from_terms_m(env: &mut MallocEnv, terms: &[(u32, u32)]) -> Addr {
    let mut head = Addr::NULL;
    for &(c, e) in terms.iter().rev() {
        env.set_root(25, head);
        head = node_m(env, u64::from(c), e, head);
    }
    env.set_root(25, Addr::NULL);
    head
}

/// Multiplies every term by `coef`·`exps` into a fresh list; input is
/// left alive (the caller owns it).
fn scale_m(env: &mut MallocEnv, p: Addr, coef: u64, exps: u32) -> Addr {
    // Build in order, keeping the partial list rooted.
    let mut head = Addr::NULL;
    let mut tail = Addr::NULL;
    let mut cur = p;
    while !cur.is_null() {
        let c = u64::from(env.heap().load_u32(cur + T_COEF));
        let e = env.heap().load_u32(cur + T_EXPS);
        let n = node_m(env, c * coef % P, mono_mul(e, exps), Addr::NULL);
        if head.is_null() {
            head = n;
            env.set_root(25, head);
        } else {
            env.heap().store_addr(tail + T_NEXT, n);
        }
        tail = n;
        cur = env.heap().load_addr(cur + T_NEXT);
    }
    env.set_root(25, Addr::NULL);
    head
}

/// `a - b` into a fresh list; frees nothing (caller owns inputs).
fn sub_m(env: &mut MallocEnv, a: Addr, b: Addr) -> Addr {
    let mut head = Addr::NULL;
    let mut tail = Addr::NULL;
    let mut x = a;
    let mut y = b;
    let push = |env: &mut MallocEnv, coef: u64, exps: u32, head: &mut Addr, tail: &mut Addr| {
        if coef == 0 {
            return;
        }
        let n = node_m(env, coef, exps, Addr::NULL);
        if head.is_null() {
            *head = n;
            env.set_root(26, *head);
        } else {
            env.heap().store_addr(*tail + T_NEXT, n);
        }
        *tail = n;
    };
    while !x.is_null() || !y.is_null() {
        if y.is_null() || (!x.is_null() && mono_before(env.heap().load_u32(x + T_EXPS), env.heap().load_u32(y + T_EXPS))) {
            let (c, e) = lead(env.heap(), x);
            push(env, c, e, &mut head, &mut tail);
            x = env.heap().load_addr(x + T_NEXT);
        } else if x.is_null() || mono_before(env.heap().load_u32(y + T_EXPS), env.heap().load_u32(x + T_EXPS)) {
            let (c, e) = lead(env.heap(), y);
            push(env, (P - c) % P, e, &mut head, &mut tail);
            y = env.heap().load_addr(y + T_NEXT);
        } else {
            let (cx, e) = lead(env.heap(), x);
            let (cy, _) = lead(env.heap(), y);
            push(env, (cx + P - cy) % P, e, &mut head, &mut tail);
            x = env.heap().load_addr(x + T_NEXT);
            y = env.heap().load_addr(y + T_NEXT);
        }
    }
    env.set_root(26, Addr::NULL);
    head
}

/// Makes the lead coefficient 1, freeing the input.
fn normalize_m(env: &mut MallocEnv, p: Addr) -> Addr {
    if p.is_null() {
        return p;
    }
    let (c, _) = lead(env.heap(), p);
    let out = scale_m(env, p, inv_mod(c), 0);
    free_poly_m(env, p);
    out
}

/// The S-polynomial of f and g (fresh list; inputs kept).
fn spoly_m(env: &mut MallocEnv, f: Addr, g: Addr) -> Addr {
    let (cf_, ef) = lead(env.heap(), f);
    let (cg, eg) = lead(env.heap(), g);
    let l = mono_lcm(ef, eg);
    let uf = scale_m(env, f, inv_mod(cf_), mono_div(l, ef));
    env.set_root(20, uf); // scale/sub use 25/26 internally
    let ug = scale_m(env, g, inv_mod(cg), mono_div(l, eg));
    env.set_root(21, ug);
    let s = sub_m(env, uf, ug);
    free_poly_m(env, uf);
    free_poly_m(env, ug);
    env.set_root(20, Addr::NULL);
    env.set_root(21, Addr::NULL);
    s
}

/// Fully reduces `p` modulo the basis, consuming `p`; intermediate
/// polynomials are freed eagerly.
fn reduce_m(env: &mut MallocEnv, mut p: Addr, basis: &[Addr]) -> Addr {
    let mut steps = 0;
    'outer: while !p.is_null() && steps < 150 {
        let (cp, ep) = lead(env.heap(), p);
        for &g in basis {
            let (cg, eg) = lead(env.heap(), g);
            if mono_divides(eg, ep) {
                steps += 1;
                let t = scale_m(env, g, cp * inv_mod(cg) % P, mono_div(ep, eg));
                env.set_root(22, t);
                let next = sub_m(env, p, t);
                free_poly_m(env, t);
                free_poly_m(env, p);
                p = next;
                env.set_root(24, p);
                env.set_root(22, Addr::NULL);
                continue 'outer;
            }
        }
        // Lead term irreducible: the whole tail is the remainder.
        break;
    }
    p
}

// --- end malloc variant ---

// --- begin region variant ---

/// Buchberger with regions: every S-pair reduction works in its own
/// temporary region, and surviving remainders are copied into the basis
/// region before the temporary region is thrown away whole.
pub fn run_region(env: &mut RegionEnv, scale: u32) -> u64 {
    let gens = generators(scale);
    let mut sum = Checksum::new();
    let d_term =
        env.register_type(region_core::TypeDescriptor::new("grob_term", T_SIZE, vec![T_NEXT]));
    let basis_region = env.new_region();
    let mut basis: Vec<Addr> = Vec::new();
    // Frame slot 0 roots nothing here — regions need no rooting — but the
    // basis heads live in the basis region and are held in host locals.
    for g in &gens {
        let tmp = env.new_region();
        let p = poly_from_terms_r(env, tmp, d_term, g);
        let n = normalize_r(env, tmp, d_term, p);
        let kept = copy_poly_r(env, basis_region, d_term, n);
        basis.push(kept);
        assert!(env.delete_region(tmp));
    }
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..basis.len() {
        for j in i + 1..basis.len() {
            pairs.push((i, j));
        }
    }
    let max_pairs = 15 * scale as usize;
    let max_basis = 20usize;
    let mut processed = 0usize;
    while let Some((i, j)) = pairs.pop() {
        if processed >= max_pairs || basis.len() >= max_basis {
            break;
        }
        processed += 1;
        // All temporaries of this pair live in one region.
        let tmp = env.new_region();
        let s = spoly_r(env, tmp, d_term, basis[i], basis[j]);
        let r = reduce_r(env, tmp, d_term, s, &basis);
        if !r.is_null() {
            let n = normalize_r(env, tmp, d_term, r);
            if term_count(env.heap(), n) <= MAX_TERMS {
                let kept = copy_poly_r(env, basis_region, d_term, n);
                basis.push(kept);
                for k in 0..basis.len() - 1 {
                    pairs.push((k, basis.len() - 1));
                }
            }
        }
        // One deletion reclaims every intermediate of the reduction.
        assert!(env.delete_region(tmp), "temp region must delete");
    }
    sum.add(processed as u64);
    sum.add(basis.len() as u64);
    for &b in &basis {
        account_poly(env.heap(), b, &mut sum);
    }
    basis.clear();
    assert!(env.delete_region(basis_region), "basis region must delete");
    sum.value()
}

fn node_r(env: &mut RegionEnv, r: crate::env::Rh, d: crate::env::Dh, coef: u64, exps: u32, next: Addr) -> Addr {
    let n = env.ralloc(r, d);
    env.heap().store_u32(n + T_COEF, coef as u32);
    env.heap().store_u32(n + T_EXPS, exps);
    // sameregion: every caller passes `next` as null or a node of the
    // same polynomial, allocated in `r` like `n` itself.
    env.store_ptr_region_same(n + T_NEXT, next);
    n
}

fn poly_from_terms_r(env: &mut RegionEnv, r: crate::env::Rh, d: crate::env::Dh, terms: &[(u32, u32)]) -> Addr {
    let mut head = Addr::NULL;
    for &(c, e) in terms.iter().rev() {
        head = node_r(env, r, d, u64::from(c), e, head);
    }
    head
}

/// Copies a polynomial into another region (the paper's explicit copies
/// into the result region).
fn copy_poly_r(env: &mut RegionEnv, r: crate::env::Rh, d: crate::env::Dh, mut p: Addr) -> Addr {
    let mut head = Addr::NULL;
    let mut tail = Addr::NULL;
    while !p.is_null() {
        let (c, e) = lead(env.heap(), p);
        let n = node_r(env, r, d, c, e, Addr::NULL);
        if head.is_null() {
            head = n;
        } else {
            // sameregion: `tail` and `n` both come from node_r on `r`.
            env.store_ptr_region_same(tail + T_NEXT, n);
        }
        tail = n;
        p = env.heap().load_addr(p + T_NEXT);
    }
    head
}

fn scale_r(env: &mut RegionEnv, r: crate::env::Rh, d: crate::env::Dh, p: Addr, coef: u64, exps: u32) -> Addr {
    let mut head = Addr::NULL;
    let mut tail = Addr::NULL;
    let mut cur = p;
    while !cur.is_null() {
        let c = u64::from(env.heap().load_u32(cur + T_COEF));
        let e = env.heap().load_u32(cur + T_EXPS);
        let n = node_r(env, r, d, c * coef % P, mono_mul(e, exps), Addr::NULL);
        if head.is_null() {
            head = n;
        } else {
            // sameregion: `tail` and `n` both come from node_r on `r`.
            env.store_ptr_region_same(tail + T_NEXT, n);
        }
        tail = n;
        cur = env.heap().load_addr(cur + T_NEXT);
    }
    head
}

fn sub_r(env: &mut RegionEnv, r: crate::env::Rh, d: crate::env::Dh, a: Addr, b: Addr) -> Addr {
    let mut head = Addr::NULL;
    let mut tail = Addr::NULL;
    let mut x = a;
    let mut y = b;
    let push = |env: &mut RegionEnv, coef: u64, exps: u32, head: &mut Addr, tail: &mut Addr| {
        if coef == 0 {
            return;
        }
        let n = node_r(env, r, d, coef, exps, Addr::NULL);
        if head.is_null() {
            *head = n;
        } else {
            // sameregion: `tail` and `n` both come from node_r on `r`.
            env.store_ptr_region_same(*tail + T_NEXT, n);
        }
        *tail = n;
    };
    while !x.is_null() || !y.is_null() {
        if y.is_null() || (!x.is_null() && mono_before(env.heap().load_u32(x + T_EXPS), env.heap().load_u32(y + T_EXPS))) {
            let (c, e) = lead(env.heap(), x);
            push(env, c, e, &mut head, &mut tail);
            x = env.heap().load_addr(x + T_NEXT);
        } else if x.is_null() || mono_before(env.heap().load_u32(y + T_EXPS), env.heap().load_u32(x + T_EXPS)) {
            let (c, e) = lead(env.heap(), y);
            push(env, (P - c) % P, e, &mut head, &mut tail);
            y = env.heap().load_addr(y + T_NEXT);
        } else {
            let (cx, e) = lead(env.heap(), x);
            let (cy, _) = lead(env.heap(), y);
            push(env, (cx + P - cy) % P, e, &mut head, &mut tail);
            x = env.heap().load_addr(x + T_NEXT);
            y = env.heap().load_addr(y + T_NEXT);
        }
    }
    head
}

fn normalize_r(env: &mut RegionEnv, r: crate::env::Rh, d: crate::env::Dh, p: Addr) -> Addr {
    if p.is_null() {
        return p;
    }
    let (c, _) = lead(env.heap(), p);
    scale_r(env, r, d, p, inv_mod(c), 0) // the old list is region garbage
}

fn spoly_r(env: &mut RegionEnv, r: crate::env::Rh, d: crate::env::Dh, f: Addr, g: Addr) -> Addr {
    let (cf_, ef) = lead(env.heap(), f);
    let (cg, eg) = lead(env.heap(), g);
    let l = mono_lcm(ef, eg);
    let uf = scale_r(env, r, d, f, inv_mod(cf_), mono_div(l, ef));
    let ug = scale_r(env, r, d, g, inv_mod(cg), mono_div(l, eg));
    sub_r(env, r, d, uf, ug) // uf/ug become region garbage — no frees
}

fn reduce_r(env: &mut RegionEnv, r: crate::env::Rh, d: crate::env::Dh, mut p: Addr, basis: &[Addr]) -> Addr {
    let mut steps = 0;
    'outer: while !p.is_null() && steps < 150 {
        let (cp, ep) = lead(env.heap(), p);
        for &g in basis {
            let (cg, eg) = lead(env.heap(), g);
            if mono_divides(eg, ep) {
                steps += 1;
                let t = scale_r(env, r, d, g, cp * inv_mod(cg) % P, mono_div(ep, eg));
                p = sub_r(env, r, d, p, t); // old p and t: region garbage
                continue 'outer;
            }
        }
        break;
    }
    p
}

// --- end region variant ---

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{MallocKind, RegionKind};

    #[test]
    fn field_and_monomial_helpers() {
        assert_eq!(inv_mod(2) * 2 % P, 1);
        assert_eq!(inv_mod(31999) * 31999 % P, 1);
        let a = 0x0102_0301; // exps (1,3,2,1) packed little-end first
        let b = 0x0001_0201;
        assert!(mono_divides(b, a));
        assert!(!mono_divides(a, b));
        assert_eq!(mono_mul(mono_div(a, b), b), a);
        assert_eq!(mono_lcm(a, b), a);
        assert_eq!(deg(a), 7);
        assert!(mono_before(a, b), "higher degree comes first");
    }

    #[test]
    fn all_allocators_agree_on_the_answer() {
        let expected = run_malloc(&mut MallocEnv::new(MallocKind::Sun), 1);
        for kind in [MallocKind::Bsd, MallocKind::Lea, MallocKind::Gc] {
            assert_eq!(run_malloc(&mut MallocEnv::new(kind), 1), expected, "{}", kind.name());
        }
        for kind in [RegionKind::Safe, RegionKind::Unsafe, RegionKind::Emulated(MallocKind::Bsd)] {
            assert_eq!(run_region(&mut RegionEnv::new(kind), 1), expected, "{}", kind.name());
        }
    }

    #[test]
    fn subtraction_cancels_identical_polys() {
        let mut env = MallocEnv::new(MallocKind::Lea);
        env.push_roots(27);
        let p = poly_from_terms_m(&mut env, &[(5, 0x0101), (3, 0x0001), (1, 0)]);
        let q = poly_from_terms_m(&mut env, &[(5, 0x0101), (3, 0x0001), (1, 0)]);
        let z = sub_m(&mut env, p, q);
        assert!(z.is_null(), "p - p = 0");
        env.pop_roots();
    }

    #[test]
    fn spoly_cancels_lead_terms() {
        let mut env = MallocEnv::new(MallocKind::Lea);
        env.push_roots(27);
        let f = poly_from_terms_m(&mut env, &[(2, 0x0200), (7, 0x0001)]); // 2y² + 7x
        let g = poly_from_terms_m(&mut env, &[(3, 0x0102), (5, 0)]); // 3x²y + 5
        let s = spoly_m(&mut env, f, g);
        assert!(!s.is_null());
        let (_, es) = lead(env.heap(), s);
        let l = mono_lcm(0x0200, 0x0102);
        assert!(mono_before(l, es), "lead of the S-poly is below the lcm");
        env.pop_roots();
    }

    #[test]
    fn malloc_variant_frees_everything() {
        let mut env = MallocEnv::new(MallocKind::Sun);
        run_malloc(&mut env, 1);
        assert_eq!(env.stats().live_bytes, 0);
        assert!(env.stats().total_allocs > 500);
    }

    #[test]
    fn region_variant_deletes_all_regions() {
        let mut env = RegionEnv::new(RegionKind::Safe);
        run_region(&mut env, 1);
        assert_eq!(env.stats().live_regions, 0);
        assert_eq!(env.costs().unwrap().deletes_failed, 0);
        assert!(env.stats().total_regions > 4, "a region per reduction");
    }
}
