//! Figure 9 — execution time per allocator, split into "base" and
//! "memory" (time spent in memory management), plus the unsafe-region
//! bar and moss's "slow" single-region bar.
//!
//! Paper shape: unsafe regions are fastest everywhere (up to 16% over
//! the best malloc); safe regions are as fast or faster on cfrac, tile
//! and moss and at worst ~5% behind on mudlle/lcc; moss's optimized
//! two-region layout beats the naive port by ~24%.
//!
//! The workload × allocator matrix runs on worker threads (every cell
//! owns its own simulated heap); rows print in matrix order.

use bench_harness::runner::{
    par_bench_workers, run_matrix, run_matrix_with, scale_from_env, write_results_json_with_par,
    Job, Measurement, ParColumn,
};
use workloads::{MallocKind, RegionKind, Workload};

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let scale = scale_from_env();
    let mut jobs = Vec::new();
    for w in Workload::ALL {
        for kind in MallocKind::ALL {
            jobs.push(Job::Malloc(w, kind));
        }
        jobs.push(Job::Region(w, RegionKind::Safe));
        jobs.push(Job::Region(w, RegionKind::Unsafe));
        if w == Workload::Moss {
            jobs.push(Job::MossSlow(RegionKind::Safe));
        }
    }
    let serial_t0 = std::time::Instant::now();
    let rows = run_matrix(&jobs, scale, false);
    let serial_wall = serial_t0.elapsed();

    // Parallel pass (see fig8): same matrix, real worker threads, every
    // simulated counter bit-identical to the serial pass.
    let par_workers = par_bench_workers();
    let par_t0 = std::time::Instant::now();
    let par_rows = run_matrix_with(&jobs, scale, false, par_workers);
    let par_wall = par_t0.elapsed();
    for (s, p) in rows.iter().zip(&par_rows) {
        let cell = format!("{}/{}", s.workload, s.allocator);
        assert_eq!(s.os_pages, p.os_pages, "{cell}: os_pages perturbed by parallelism");
        assert_eq!(s.checksum, p.checksum, "{cell}: checksum perturbed by parallelism");
        assert_eq!(s.stats, p.stats, "{cell}: alloc stats perturbed by parallelism");
    }

    println!("Figure 9: execution time, total ms (memory-management ms), scale {scale}");
    println!(
        "{:<9} {:>16} {:>16} {:>16} {:>16} {:>16} {:>16}",
        "Name", "Sun", "BSD", "Lea", "GC", "Reg", "unsafe"
    );
    let mut cursor = rows.iter();
    for w in Workload::ALL {
        let mut row = format!("{:<9}", w.name());
        let mut best_malloc = f64::MAX;
        for _ in MallocKind::ALL {
            let m: &Measurement = cursor.next().expect("matrix covers every cell");
            best_malloc = best_malloc.min(ms(m.total));
            row += &format!(" {:>9.0} ({:>4.0})", ms(m.total), ms(m.mem));
        }
        let reg = cursor.next().expect("safe-region cell");
        let unsf = cursor.next().expect("unsafe-region cell");
        row += &format!(" {:>9.0} ({:>4.0})", ms(reg.total), ms(reg.mem));
        row += &format!(" {:>9.0} ({:>4.0})", ms(unsf.total), ms(unsf.mem));
        println!("{row}");
        println!(
            "{:<9}  Reg vs best malloc: {:+.1}%   unsafe vs best malloc: {:+.1}%",
            "",
            100.0 * (ms(reg.total) - best_malloc) / best_malloc,
            100.0 * (ms(unsf.total) - best_malloc) / best_malloc,
        );
        if w == Workload::Moss {
            let slow = cursor.next().expect("moss-slow cell");
            println!(
                "{:<9}  moss 'Slow' (one interleaved region): {:.0} ms — optimized layout {:+.1}%",
                "",
                ms(slow.total),
                100.0 * (ms(reg.total) - ms(slow.total)) / ms(slow.total),
            );
        }
    }
    // Parallel-speedup column: per-workload wall clock, serial vs the
    // fanned-out pass.
    println!();
    println!(
        "Parallel pass ({par_workers} workers): matrix wall {:.0} ms vs serial {:.0} ms \
         ({:.2}x); counters bit-identical",
        ms(par_wall),
        ms(serial_wall),
        ms(serial_wall) / ms(par_wall).max(1e-9),
    );
    println!("{:<9} {:>10} {:>10} {:>8}", "Name", "serial ms", "par ms", "speedup");
    let mut speed: Vec<(&str, f64, f64)> = Vec::new();
    for (s, p) in rows.iter().zip(&par_rows) {
        match speed.last_mut() {
            Some(e) if e.0 == s.workload => {
                e.1 += ms(s.total);
                e.2 += ms(p.total);
            }
            _ => speed.push((s.workload, ms(s.total), ms(p.total))),
        }
    }
    for (w, sm, pm) in &speed {
        println!("{w:<9} {sm:>10.0} {pm:>10.0} {:>7.2}x", sm / pm.max(1e-9));
    }

    let par = ParColumn {
        workers: par_workers,
        total_ms: par_rows.iter().map(|m| ms(m.total)).collect(),
    };
    match write_results_json_with_par("fig9", &rows, Some(&par)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write results JSON: {e}"),
    }
    println!();
    println!("Shape check vs paper: unsafe regions lead; safe regions are close to");
    println!("or ahead of the malloc field; GC pays for its collections; the moss");
    println!("two-region layout beats the naive single-region port.");
}
