//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest used by this workspace's property tests:
//! strategies over integer ranges, tuples, vectors, weighted unions
//! ([`prop_oneof!`]), [`Just`], [`any`], simple character-class string
//! patterns, and the [`proptest!`] / `prop_assert*` macros.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. A failing case reports its test name, case number, and
//! seed; cases are fully deterministic (seeded from the test name), so a
//! failure reproduces by re-running the test.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, func: f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for an arbitrary value of `T` (proptest's `any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A weighted union of strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total: u64 = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positively weighted arm");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum correctly")
    }
}

// ---------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------

/// The only pattern family the workspace uses: a single character class
/// with a `{min,max}` repetition, e.g. `"[a-z]{0,40}"`. Plain literal
/// strings (no metacharacters) generate exactly themselves.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Some(Pattern::Literal(s)) => s,
            Some(Pattern::Class { alphabet, min, max }) => {
                use rand::Rng;
                let len = rng.gen_range(min..=max);
                (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
            }
            None => panic!(
                "unsupported string pattern {self:?} (offline proptest stand-in \
                 supports only literals and \"[class]{{m,n}}\")"
            ),
        }
    }
}

enum Pattern {
    Literal(String),
    Class { alphabet: Vec<char>, min: usize, max: usize },
}

fn parse_pattern(pattern: &str) -> Option<Pattern> {
    if !pattern.contains(['[', ']', '{', '}', '\\', '*', '+', '?', '.', '|', '(', ')']) {
        return Some(Pattern::Literal(pattern.to_string()));
    }
    let rest = pattern.strip_prefix('[')?;
    let close = find_class_end(rest)?;
    let (class, rest) = rest.split_at(close);
    let rest = rest.strip_prefix(']')?;
    let rest = rest.strip_prefix('{')?;
    let rest = rest.strip_suffix('}')?;
    let (min_s, max_s) = rest.split_once(',')?;
    let min: usize = min_s.trim().parse().ok()?;
    let max: usize = max_s.trim().parse().ok()?;
    if min > max {
        return None;
    }
    let alphabet = expand_class(class)?;
    if alphabet.is_empty() {
        return None;
    }
    Some(Pattern::Class { alphabet, min, max })
}

fn find_class_end(s: &str) -> Option<usize> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == ']' {
            return Some(i);
        }
    }
    None
}

fn expand_class(class: &str) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let c = if c == '\\' {
            match chars.next()? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                '\\' => '\\',
                '-' => '-',
                ']' => ']',
                other => other,
            }
        } else {
            c
        };
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next(); // the '-'
            if let Some(&end) = ahead.peek() {
                if end != '\\' {
                    // A range c-end.
                    chars.next();
                    chars.next();
                    if (c as u32) > (end as u32) {
                        return None;
                    }
                    for u in (c as u32)..=(end as u32) {
                        out.push(char::from_u32(u)?);
                    }
                    continue;
                }
            }
        }
        out.push(c);
    }
    Some(out)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// A strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// proptest's `collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs one property test: `cases` deterministic cases seeded from the
/// test name. Panics (with case number and seed) on the first failure.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name: stable across runs and platforms.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for i in 0..config.cases {
        let case_seed = seed ^ (u64::from(i) << 32) ^ u64::from(i);
        let mut rng = TestRng::seed_from_u64(case_seed);
        if let Err(e) = case(&mut rng) {
            panic!("proptest {name}: case {i}/{} (seed {case_seed:#x}) failed: {e}", config.cases);
        }
    }
}

/// The macro front-end: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_proptest(__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    let __out: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __out
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::Union::new_weighted(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new_weighted(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Asserts inside a proptest body (returns `Err` rather than panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), __l, __r
            )));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
}

/// Everything a property-test file conventionally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i32..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn class_patterns_expand() {
        let Some(super::Pattern::Class { alphabet, min, max }) = super::parse_pattern("[a-c]{1,4}")
        else {
            panic!("class pattern must parse as a class");
        };
        assert_eq!(alphabet, vec!['a', 'b', 'c']);
        assert_eq!((min, max), (1, 4));
        let Some(super::Pattern::Class { alphabet, .. }) = super::parse_pattern("[ -~\\n]{0,200}")
        else {
            panic!("class pattern must parse as a class");
        };
        assert!(alphabet.contains(&' ') && alphabet.contains(&'~') && alphabet.contains(&'\n'));
        assert_eq!(alphabet.len(), 96); // 95 printable ASCII + newline
    }

    #[test]
    fn literal_pattern_is_identity() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        let s: String = "struct".sample(&mut rng);
        assert_eq!(s, "struct");
    }

    #[test]
    fn oneof_honours_weights() {
        let mut rng = crate::TestRng::seed_from_u64(3);
        let s = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let ones = (0..1000).filter(|_| s.sample(&mut rng) == 1).count();
        assert!(ones > 800, "ones {ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(v in collection::vec(0u32..10, 1..20), b in any::<bool>()) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 10));
            let _ = b;
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
