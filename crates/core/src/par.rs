//! Parallel regions — the paper's §1 sketch, implemented.
//!
//! > "Another advantage of region-based memory management is that it can
//! > be used nearly unchanged in an explicitly-parallel programming
//! > language. The only operations that require synchronization amongst
//! > all processes are region creation and deletion. Each process keeps a
//! > local reference count for each region which counts the references
//! > created or deleted by that process. A region can be deleted if the
//! > sum of all its local reference counts is zero. Writes of references
//! > to regions must be done with an atomic exchange (rather than a
//! > simple write) to prevent incorrect behaviour in the presence of data
//! > races, however the local reference counts can be adjusted without
//! > synchronization or communication."
//!
//! [`ParRegionPool`] implements exactly that protocol for host threads:
//!
//! * each registered [`ParThread`] owns a vector of per-region local
//!   counts, adjusted with `Relaxed` atomics (only the owning thread
//!   writes them — the atomics exist so `try_delete` can read them);
//! * [`ParThread::exchange_ref`] updates a shared reference cell with an
//!   atomic swap and adjusts only the *local* counts for the old and new
//!   referents;
//! * [`ParRegionPool::try_delete`] takes the pool lock (the one global
//!   synchronization point, shared with region creation) and deletes the
//!   region iff its local counts sum to zero.
//!
//! A local count may be negative — thread A can release a reference that
//! thread B created; only the sum is meaningful.

use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a mutex, ignoring poison: every critical section here is a
/// handful of loads/stores that cannot leave the structures inconsistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Identifier of a region in a [`ParRegionPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ParRegionId(u32);

impl ParRegionId {
    fn index(self) -> usize {
        self.0 as usize
    }
    fn to_cell(self) -> u32 {
        self.0 + 1
    }
    fn from_cell(raw: u32) -> Option<ParRegionId> {
        raw.checked_sub(1).map(ParRegionId)
    }
}

/// A shared mutable cell holding an optional region reference, updated
/// with atomic exchange as the paper prescribes.
#[derive(Debug, Default)]
pub struct RefCell32 {
    raw: AtomicU32,
}

impl RefCell32 {
    /// Creates an empty (null) reference cell.
    pub fn new() -> RefCell32 {
        RefCell32::default()
    }

    /// Current referent (a racy read; counts are not affected).
    pub fn get(&self) -> Option<ParRegionId> {
        ParRegionId::from_cell(self.raw.load(Ordering::Acquire))
    }
}

#[derive(Debug)]
struct ThreadCounts {
    /// counts[r] = references to region r created minus released by this
    /// thread. Written only by the owning thread; read under the pool
    /// lock by `try_delete`.
    counts: boxcar::Counts,
}

/// A growable vector of atomic counters. (Tiny purpose-built structure —
/// regions are created under the pool lock, so growth is coordinated.)
mod boxcar {
    use super::*;

    #[derive(Debug)]
    pub(super) struct Counts {
        inner: Mutex<Vec<Arc<AtomicI64>>>,
    }

    impl Counts {
        pub(super) fn new() -> Counts {
            Counts { inner: Mutex::new(Vec::new()) }
        }

        pub(super) fn slot(&self, i: usize) -> Arc<AtomicI64> {
            let mut v = super::lock(&self.inner);
            while v.len() <= i {
                v.push(Arc::new(AtomicI64::new(0)));
            }
            v[i].clone()
        }

        pub(super) fn get(&self, i: usize) -> i64 {
            let v = super::lock(&self.inner);
            v.get(i).map_or(0, |c| c.load(Ordering::Acquire))
        }
    }
}

#[derive(Debug)]
struct PoolShared {
    /// live[r]: deletion flips this to false under the pool lock.
    regions: Mutex<Vec<bool>>,
    threads: Mutex<Vec<Arc<ThreadCounts>>>,
}

/// A pool of regions shared between threads, with per-thread local
/// reference counts (paper §1).
///
/// # Example
///
/// ```
/// use region_core::par::ParRegionPool;
///
/// let pool = ParRegionPool::new();
/// let mut t = pool.register_thread();
/// let r = t.create_region();
/// t.retain(r);
/// assert!(!pool.try_delete(r), "outstanding reference");
/// t.release(r);
/// assert!(pool.try_delete(r));
/// ```
#[derive(Clone, Debug)]
pub struct ParRegionPool {
    shared: Arc<PoolShared>,
}

impl Default for ParRegionPool {
    fn default() -> ParRegionPool {
        ParRegionPool::new()
    }
}

impl ParRegionPool {
    /// Creates an empty pool.
    pub fn new() -> ParRegionPool {
        ParRegionPool {
            shared: Arc::new(PoolShared {
                regions: Mutex::new(Vec::new()),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Registers the calling thread, returning its handle. Registration is
    /// the only per-thread setup cost; afterwards count adjustments are
    /// unsynchronized (`Relaxed` on thread-owned counters).
    pub fn register_thread(&self) -> ParThread {
        let counts = Arc::new(ThreadCounts { counts: boxcar::Counts::new() });
        lock(&self.shared.threads).push(counts.clone());
        ParThread { pool: self.clone(), counts, cache: Vec::new() }
    }

    /// `true` if the region has not been deleted.
    pub fn is_live(&self, r: ParRegionId) -> bool {
        lock(&self.shared.regions).get(r.index()).copied().unwrap_or(false)
    }

    /// Attempts to delete a region: takes the pool lock (the paper's
    /// global synchronization for deletion), sums every thread's local
    /// count, and deletes iff the sum is zero.
    ///
    /// # Panics
    ///
    /// Panics if the region was already deleted or never existed.
    pub fn try_delete(&self, r: ParRegionId) -> bool {
        let mut regions = lock(&self.shared.regions);
        assert!(
            regions.get(r.index()).copied() == Some(true),
            "try_delete of dead or unknown region {r:?}"
        );
        let threads = lock(&self.shared.threads);
        let sum: i64 = threads.iter().map(|t| t.counts.get(r.index())).sum();
        if sum != 0 {
            return false;
        }
        regions[r.index()] = false;
        true
    }

    /// Exact global reference count (sums local counts under the lock);
    /// for tests and diagnostics.
    pub fn global_count(&self, r: ParRegionId) -> i64 {
        let _regions = lock(&self.shared.regions);
        let threads = lock(&self.shared.threads);
        threads.iter().map(|t| t.counts.get(r.index())).sum()
    }
}

/// A thread's handle into a [`ParRegionPool`].
#[derive(Debug)]
pub struct ParThread {
    pool: ParRegionPool,
    counts: Arc<ThreadCounts>,
    /// Cached counter handles so the hot path is one Relaxed RMW.
    cache: Vec<Option<Arc<AtomicI64>>>,
}

impl ParThread {
    /// Creates a region (global synchronization, like deletion).
    pub fn create_region(&mut self) -> ParRegionId {
        let mut regions = lock(&self.pool.shared.regions);
        let id = ParRegionId(regions.len() as u32);
        regions.push(true);
        id
    }

    fn counter(&mut self, r: ParRegionId) -> &AtomicI64 {
        let i = r.index();
        if self.cache.len() <= i {
            self.cache.resize(i + 1, None);
        }
        if self.cache[i].is_none() {
            self.cache[i] = Some(self.counts.counts.slot(i));
        }
        self.cache[i].as_ref().expect("just filled")
    }

    /// Records that this thread created a reference to `r` — no
    /// synchronization or communication (paper §1).
    pub fn retain(&mut self, r: ParRegionId) {
        self.counter(r).fetch_add(1, Ordering::Relaxed);
    }

    /// Records that this thread destroyed a reference to `r`. The local
    /// count may go negative if the reference was created elsewhere; only
    /// the cross-thread sum matters.
    pub fn release(&mut self, r: ParRegionId) {
        self.counter(r).fetch_sub(1, Ordering::Relaxed);
    }

    /// Publishes a reference into a shared cell with an **atomic
    /// exchange**, as the paper requires for racy reference writes, and
    /// adjusts this thread's local counts for the old and new referents.
    pub fn exchange_ref(&mut self, cell: &RefCell32, new: Option<ParRegionId>) {
        let new_raw = new.map_or(0, ParRegionId::to_cell);
        let old_raw = cell.raw.swap(new_raw, Ordering::AcqRel);
        if let Some(n) = new {
            self.retain(n);
        }
        if let Some(o) = ParRegionId::from_cell(old_raw) {
            self.release(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_protocol() {
        let pool = ParRegionPool::new();
        let mut t = pool.register_thread();
        let r = t.create_region();
        assert!(pool.is_live(r));
        t.retain(r);
        t.retain(r);
        assert_eq!(pool.global_count(r), 2);
        assert!(!pool.try_delete(r));
        t.release(r);
        t.release(r);
        assert!(pool.try_delete(r));
        assert!(!pool.is_live(r));
    }

    #[test]
    fn counts_balance_across_threads() {
        // Thread A creates a reference, thread B destroys it: A's count is
        // +1, B's is -1, the sum is 0 and deletion succeeds.
        let pool = ParRegionPool::new();
        let mut a = pool.register_thread();
        let mut b = pool.register_thread();
        let r = a.create_region();
        a.retain(r);
        assert!(!pool.try_delete(r));
        b.release(r);
        assert_eq!(pool.global_count(r), 0);
        assert!(pool.try_delete(r));
    }

    #[test]
    fn exchange_ref_moves_counts() {
        let pool = ParRegionPool::new();
        let mut t = pool.register_thread();
        let r1 = t.create_region();
        let r2 = t.create_region();
        let cell = RefCell32::new();
        t.exchange_ref(&cell, Some(r1));
        assert_eq!(cell.get(), Some(r1));
        assert_eq!(pool.global_count(r1), 1);
        t.exchange_ref(&cell, Some(r2));
        assert_eq!((pool.global_count(r1), pool.global_count(r2)), (0, 1));
        t.exchange_ref(&cell, None);
        assert!(cell.get().is_none());
        assert!(pool.try_delete(r1));
        assert!(pool.try_delete(r2));
    }

    #[test]
    #[should_panic(expected = "dead or unknown region")]
    fn double_delete_panics() {
        let pool = ParRegionPool::new();
        let mut t = pool.register_thread();
        let r = t.create_region();
        assert!(pool.try_delete(r));
        pool.try_delete(r);
    }

    #[test]
    fn concurrent_exchange_never_loses_counts() {
        // N threads hammer one shared cell with atomic exchanges; when the
        // dust settles the only outstanding reference is whatever the cell
        // holds. Clearing it makes every region deletable.
        const THREADS: usize = 4;
        const ITERS: usize = 2000;
        let pool = ParRegionPool::new();
        let mut main = pool.register_thread();
        let regions: Vec<_> = (0..THREADS).map(|_| main.create_region()).collect();
        let cell = RefCell32::new();
        std::thread::scope(|s| {
            for i in 0..THREADS {
                let pool = pool.clone();
                let regions = regions.clone();
                let cell = &cell;
                s.spawn(move || {
                    let mut t = pool.register_thread();
                    for k in 0..ITERS {
                        t.exchange_ref(cell, Some(regions[(i + k) % THREADS]));
                    }
                });
            }
        });
        let held = cell.get().expect("cell ends non-null");
        // All regions except the held one must be deletable.
        for &r in &regions {
            if r != held {
                assert!(pool.try_delete(r), "region {r:?} had leftover counts");
            } else {
                assert!(!pool.try_delete(r), "held region must not be deletable");
            }
        }
        main.exchange_ref(&cell, None);
        assert!(pool.try_delete(held));
    }

    #[test]
    fn pool_survives_a_poisoned_lock() {
        // `try_delete` of an unknown region panics *inside* the regions
        // critical section, poisoning the mutex. The poison-ignoring
        // `lock` helper must keep the pool fully usable for every other
        // worker afterwards — one faulted worker degrades its own jobs,
        // not the whole pool (chaos-harness invariant).
        let pool = ParRegionPool::new();
        let mut t = pool.register_thread();
        let r = t.create_region();
        t.retain(r);
        let poisoner = pool.clone();
        let panicked = std::thread::spawn(move || {
            poisoner.try_delete(ParRegionId(999)); // panics holding the lock
        })
        .join();
        assert!(panicked.is_err(), "expected the bad delete to panic");
        // The surviving worker sees consistent state and full function.
        assert!(pool.is_live(r));
        assert_eq!(pool.global_count(r), 1);
        assert!(!pool.try_delete(r));
        let r2 = t.create_region();
        t.release(r);
        assert!(pool.try_delete(r));
        assert!(pool.try_delete(r2));
    }
}
