//! `moss` — software plagiarism detection by winnowing fingerprints
//! (§5.1, §5.5).
//!
//! Each document is tokenized, hashed into k-grams of words, and a
//! winnowing window selects a subset of hashes as the document's
//! fingerprints. Fingerprints live in a global hash table; documents
//! sharing fingerprints are reported as matches, with a *context
//! passage* kept per fingerprint for the report.
//!
//! This reproduces the paper's memory-behaviour point exactly: "the
//! memory allocation pattern of moss is to alternately allocate a small,
//! frequently accessed object [the fingerprint node, walked constantly
//! during comparison] and a large, infrequently accessed object [the
//! context buffer, touched only when reporting]. This pattern reduces
//! memory locality among the small objects. The 24% improvement ... is
//! obtained by using two regions: one for the small objects and one for
//! the large objects."
//!
//! * [`run_malloc`] — interleaved, malloc/free (the original moss);
//! * [`run_region_slow`] — one region, same interleaving (the paper's
//!   "slow" bar);
//! * [`run_region`] — two regions, small/large segregated (the paper's
//!   optimized "Reg" bar).

use simheap::{Addr, SimHeap};

use crate::env::{MallocEnv, RegionEnv};
use crate::util::{rng, text, Checksum};
use rand::Rng;

const K: usize = 5; // words per k-gram
const W: usize = 8; // winnowing window
const NBUCKETS: u32 = 512;
const CTX_BYTES: u32 = 512; // the "large, infrequently accessed object"
const MATCH_THRESHOLD: u32 = 12;

// Fingerprint node: [hash][doc][pos][next][ctx], 20 bytes.
const N_HASH: u32 = 0;
const N_DOC: u32 = 4;
const N_POS: u32 = 8;
const N_NEXT: u32 = 12;
const N_CTX: u32 = 16;
const N_SIZE: u32 = 20;

/// Generates the corpus: `20 × scale` "submissions" assembled from a
/// shared pool of lines (so that real overlap exists), each ~2 KB.
pub fn corpus(scale: u32) -> Vec<String> {
    let mut r = rng(0x0055_0550);
    let pool: Vec<String> = (0..60).map(|i| text(0x9000 + i, 120, 120)).collect();
    (0..20 * scale)
        .map(|_| {
            let mut doc = String::new();
            for _ in 0..16 {
                doc.push_str(&pool[r.gen_range(0..pool.len())]);
                doc.push('\n');
            }
            doc
        })
        .collect()
}

/// Tokenizes a document in the heap into (word hash, byte position)
/// pairs, reading through traced loads.
fn word_hashes(heap: &mut SimHeap, base: Addr, len: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut pos = 0u32;
    while pos < len {
        while pos < len && !heap.load_u8(base + pos).is_ascii_lowercase() {
            pos += 1;
        }
        if pos >= len {
            break;
        }
        let start = pos;
        let mut h: u32 = 0x811c_9dc5;
        while pos < len && heap.load_u8(base + pos).is_ascii_lowercase() {
            h ^= u32::from(heap.load_u8(base + pos));
            h = h.wrapping_mul(0x0100_0193);
            pos += 1;
        }
        out.push((h, start));
    }
    out
}

/// Winnowing: k-gram hashes, minimum per window, deduplicated per
/// window position (Schleimer–Wilkerson–Aiken). Returns (hash, byte pos).
fn winnow(words: &[(u32, u32)]) -> Vec<(u32, u32)> {
    if words.len() < K {
        return Vec::new();
    }
    let kgrams: Vec<(u32, u32)> = words
        .windows(K)
        .map(|w| {
            let mut h: u32 = 0;
            for &(wh, _) in w {
                h = h.rotate_left(7) ^ wh;
            }
            (h, w[0].1)
        })
        .collect();
    let mut selected = Vec::new();
    let mut last: Option<usize> = None;
    for win in kgrams.windows(W.min(kgrams.len())) {
        // Rightmost minimal hash in the window.
        let mut min_idx = 0;
        for (i, &(h, _)) in win.iter().enumerate() {
            if h <= win[min_idx].0 {
                min_idx = i;
            }
        }
        let abs = (win.as_ptr() as usize - kgrams.as_ptr() as usize) / std::mem::size_of::<(u32, u32)>()
            + min_idx;
        if last != Some(abs) {
            selected.push(kgrams[abs]);
            last = Some(abs);
        }
    }
    selected
}

/// Scores cross-document matches by walking the in-heap fingerprint
/// table (the hot traversal), touching contexts of strong matches (the
/// cold accesses), and folds everything into the checksum.
fn compare_and_report(
    heap: &mut SimHeap,
    buckets: Addr,
    ndocs: u32,
    sum: &mut Checksum,
) -> u64 {
    let mut pair_counts = std::collections::HashMap::<(u32, u32), u32>::new();
    let mut total_nodes = 0u64;
    for b in 0..NBUCKETS {
        // Collect the chain, then count same-hash cross-document pairs.
        let mut chain: Vec<(u32, u32, Addr)> = Vec::new();
        let mut n = heap.load_addr(buckets + b * 4);
        while !n.is_null() {
            total_nodes += 1;
            let h = heap.load_u32(n + N_HASH);
            let d = heap.load_u32(n + N_DOC);
            chain.push((h, d, n));
            n = heap.load_addr(n + N_NEXT);
        }
        for i in 0..chain.len() {
            for j in i + 1..chain.len() {
                let (h1, d1, n1) = chain[i];
                let (h2, d2, n2) = chain[j];
                if h1 == h2 && d1 != d2 {
                    let key = if d1 < d2 { (d1, d2) } else { (d2, d1) };
                    let c = pair_counts.entry(key).or_insert(0);
                    *c += 1;
                    if *c == MATCH_THRESHOLD {
                        // Report: touch the cold context buffers.
                        for node in [n1, n2] {
                            let ctx = heap.load_addr(node + N_CTX);
                            let mut ctx_hash = 0u64;
                            for w in 0..8 {
                                ctx_hash =
                                    ctx_hash.wrapping_add(u64::from(heap.load_u32(ctx + w * 4)));
                            }
                            sum.add(ctx_hash);
                        }
                    }
                }
            }
        }
    }
    let strong = pair_counts.values().filter(|&&c| c >= MATCH_THRESHOLD).count() as u64;
    sum.add(total_nodes);
    sum.add(strong);
    sum.add(u64::from(ndocs));
    strong
}

/// Copies the context passage around byte `pos` into `ctx`.
fn fill_context(heap: &mut SimHeap, ctx: Addr, doc_base: Addr, doc_len: u32, pos: u32) {
    let start = pos.saturating_sub(CTX_BYTES / 4).min(doc_len.saturating_sub(1));
    let n = (CTX_BYTES - 4).min(doc_len - start);
    heap.store_u32(ctx, n);
    heap.copy(ctx + 4, doc_base + start, n);
}

// --- begin malloc variant ---

/// Runs moss with malloc/free: fingerprint nodes and context buffers are
/// allocated alternately (the locality-hostile pattern), and everything
/// is freed at the end by walking the table.
pub fn run_malloc(env: &mut MallocEnv, scale: u32) -> u64 {
    let docs = corpus(scale);
    let mut sum = Checksum::new();
    // The fingerprint table is a static global array in the original.
    let buckets = env.alloc_globals(NBUCKETS * 4);
    let mut doc_areas = Vec::new();
    for d in &docs {
        let a = env.heap().sbrk(d.len() as u32);
        env.heap().load_bytes_untraced(a, d.as_bytes());
        doc_areas.push((a, d.len() as u32));
    }
    env.push_roots(1);
    for (doc_idx, &(base, len)) in doc_areas.iter().enumerate() {
        let words = word_hashes(env.heap(), base, len);
        for (hash, pos) in winnow(&words) {
            // Small, hot object...
            let node = env.malloc(N_SIZE);
            env.set_root(0, node);
            // ...immediately followed by a large, cold one.
            let ctx = env.malloc(CTX_BYTES);
            fill_context(env.heap(), ctx, base, len, pos);
            let b = buckets + (hash % NBUCKETS) * 4;
            let head = env.heap().load_addr(b);
            env.heap().store_u32(node + N_HASH, hash);
            env.heap().store_u32(node + N_DOC, doc_idx as u32);
            env.heap().store_u32(node + N_POS, pos);
            env.heap().store_addr(node + N_NEXT, head);
            env.heap().store_addr(node + N_CTX, ctx);
            env.heap().store_addr(b, node);
            env.set_root(0, Addr::NULL);
        }
    }
    compare_and_report(env.heap(), buckets, docs.len() as u32, &mut sum);
    // Tear down: free every node and context individually.
    for b in 0..NBUCKETS {
        let mut n = env.heap().load_addr(buckets + b * 4);
        env.heap().store_addr(buckets + b * 4, Addr::NULL);
        while !n.is_null() {
            let next = env.heap().load_addr(n + N_NEXT);
            let ctx = env.heap().load_addr(n + N_CTX);
            env.free(ctx);
            env.free(n);
            n = next;
        }
    }
    env.pop_roots();
    sum.value()
}

// --- end malloc variant ---

// --- begin region variant ---

fn moss_descs(env: &mut RegionEnv) -> (crate::env::Dh, crate::env::Dh, crate::env::Dh) {
    let node = env.register_type(region_core::TypeDescriptor::new(
        "moss_node",
        N_SIZE,
        vec![N_NEXT, N_CTX],
    ));
    let bucket = env.register_type(region_core::TypeDescriptor::new("moss_bucket", 4, vec![0]));
    // The naive port rallocs contexts into the same region as the nodes
    // (interleaving them in the normal allocator's pages); the optimized
    // layout uses rstralloc in a dedicated region instead.
    let ctx = env
        .register_type(region_core::TypeDescriptor::pointer_free("moss_ctx", CTX_BYTES));
    (node, bucket, ctx)
}

/// Shared body of the two region layouts: `small` holds nodes and the
/// bucket array ("moss allocates some large static arrays in a region",
/// §5.1), `large` holds context buffers. Passing the same region twice
/// gives the interleaved "slow" layout.
fn run_region_with(
    env: &mut RegionEnv,
    scale: u32,
    small: crate::env::Rh,
    large: crate::env::Rh,
    d_node: crate::env::Dh,
    d_bucket: crate::env::Dh,
    d_ctx: crate::env::Dh,
) -> u64 {
    let interleaved = small == large;
    let docs = corpus(scale);
    let mut sum = Checksum::new();
    let buckets = env.rarrayalloc(small, NBUCKETS, d_bucket);
    let mut doc_areas = Vec::new();
    for d in &docs {
        let a = env.heap().sbrk(d.len() as u32);
        env.heap().load_bytes_untraced(a, d.as_bytes());
        doc_areas.push((a, d.len() as u32));
    }
    env.push_frame(1);
    env.set_local(0, buckets);
    for (doc_idx, &(base, len)) in doc_areas.iter().enumerate() {
        let words = word_hashes(env.heap(), base, len);
        for (hash, pos) in winnow(&words) {
            let node = env.ralloc(small, d_node);
            let ctx = if interleaved {
                env.ralloc(large, d_ctx) // same pages as the nodes
            } else {
                env.rstralloc(large, CTX_BYTES)
            };
            fill_context(env.heap(), ctx, base, len, pos);
            let b = buckets + (hash % NBUCKETS) * 4;
            let head = env.heap().load_addr(b);
            env.heap().store_u32(node + N_HASH, hash);
            env.heap().store_u32(node + N_DOC, doc_idx as u32);
            env.heap().store_u32(node + N_POS, pos);
            env.store_ptr_region(node + N_NEXT, head);
            env.store_ptr_region(node + N_CTX, ctx);
            env.store_ptr_region(b, node);
        }
    }
    compare_and_report(env.heap(), buckets, docs.len() as u32, &mut sum);
    // Tear down: the node region first (its cleanup releases the counts
    // it holds on the context region), then the context region.
    env.set_local(0, Addr::NULL);
    env.pop_frame();
    assert!(env.delete_region(small), "node region must delete");
    if large != small {
        assert!(env.delete_region(large), "context region must delete");
    }
    sum.value()
}

/// The optimized layout (the paper's "Reg" bar): two regions, small hot
/// objects segregated from large cold ones.
pub fn run_region(env: &mut RegionEnv, scale: u32) -> u64 {
    let (d_node, d_bucket, d_ctx) = moss_descs(env);
    let small = env.new_region();
    let large = env.new_region();
    run_region_with(env, scale, small, large, d_node, d_bucket, d_ctx)
}

/// The original region port (the paper's "slow" bar): one region, so
/// small and large objects interleave and locality among the hot nodes
/// is destroyed.
pub fn run_region_slow(env: &mut RegionEnv, scale: u32) -> u64 {
    let (d_node, d_bucket, d_ctx) = moss_descs(env);
    let r = env.new_region();
    run_region_with(env, scale, r, r, d_node, d_bucket, d_ctx)
}

// --- end region variant ---

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{MallocKind, RegionKind};

    #[test]
    fn winnowing_selects_shared_fingerprints() {
        let docs = corpus(1);
        assert_eq!(docs.len(), 20);
        // Documents assembled from a shared pool must have word overlap.
        let mut heap = SimHeap::new();
        let a = heap.sbrk(docs[0].len() as u32);
        heap.load_bytes_untraced(a, docs[0].as_bytes());
        let w = word_hashes(&mut heap, a, docs[0].len() as u32);
        assert!(w.len() > 100);
        let fp = winnow(&w);
        assert!(!fp.is_empty());
        assert!(fp.len() < w.len(), "winnowing must subsample");
        // Deterministic.
        assert_eq!(winnow(&w), fp);
    }

    #[test]
    fn all_allocators_agree_on_the_answer() {
        let expected = run_malloc(&mut MallocEnv::new(MallocKind::Sun), 1);
        for kind in [MallocKind::Bsd, MallocKind::Lea, MallocKind::Gc] {
            assert_eq!(run_malloc(&mut MallocEnv::new(kind), 1), expected, "{}", kind.name());
        }
        for kind in [RegionKind::Safe, RegionKind::Unsafe, RegionKind::Emulated(MallocKind::Sun)] {
            assert_eq!(run_region(&mut RegionEnv::new(kind), 1), expected, "{}", kind.name());
            assert_eq!(run_region_slow(&mut RegionEnv::new(kind), 1), expected, "{}", kind.name());
        }
    }

    #[test]
    fn matches_are_found() {
        // The checksum is identical across allocators; sanity-check that
        // the comparison actually finds strong matches on this corpus.
        let docs = corpus(1);
        let mut env = MallocEnv::new(MallocKind::Lea);
        let buckets = env.alloc_globals(NBUCKETS * 4);
        let mut areas = Vec::new();
        for d in &docs {
            let a = env.heap().sbrk(d.len() as u32);
            env.heap().load_bytes_untraced(a, d.as_bytes());
            areas.push((a, d.len() as u32));
        }
        for (i, &(base, len)) in areas.iter().enumerate() {
            let words = word_hashes(env.heap(), base, len);
            for (hash, pos) in winnow(&words) {
                let node = env.malloc(N_SIZE);
                let ctx = env.malloc(CTX_BYTES);
                fill_context(env.heap(), ctx, base, len, pos);
                let b = buckets + (hash % NBUCKETS) * 4;
                let head = env.heap().load_addr(b);
                env.heap().store_u32(node + N_HASH, hash);
                env.heap().store_u32(node + N_DOC, i as u32);
                env.heap().store_addr(node + N_NEXT, head);
                env.heap().store_addr(node + N_CTX, ctx);
                env.heap().store_addr(b, node);
            }
        }
        let mut sum = Checksum::new();
        let strong = compare_and_report(env.heap(), buckets, docs.len() as u32, &mut sum);
        assert!(strong > 0, "pool-assembled documents must match");
    }

    #[test]
    fn region_variants_clean_up_fully() {
        for runner in [run_region, run_region_slow] {
            let mut env = RegionEnv::new(RegionKind::Safe);
            runner(&mut env, 1);
            assert_eq!(env.stats().live_regions, 0);
            assert_eq!(env.costs().unwrap().deletes_failed, 0);
        }
    }

    #[test]
    fn malloc_variant_frees_everything() {
        let mut env = MallocEnv::new(MallocKind::Sun);
        run_malloc(&mut env, 1);
        assert_eq!(env.stats().live_bytes, 0);
    }

    #[test]
    fn segregated_layout_packs_nodes_tighter() {
        // In the two-region layout consecutive nodes are 20 bytes apart;
        // interleaved with 512-byte contexts they cannot be.
        let mut env = RegionEnv::new(RegionKind::Unsafe);
        let (d_node, _d_bucket, d_ctx) = moss_descs(&mut env);
        let small = env.new_region();
        let large = env.new_region();
        let n1 = env.ralloc(small, d_node);
        let _c1 = env.rstralloc(large, CTX_BYTES);
        let n2 = env.ralloc(small, d_node);
        assert_eq!(n2 - n1, N_SIZE, "segregated: nodes adjacent");
        // The naive one-region port interleaves: consecutive nodes are a
        // full context apart.
        let r = env.new_region();
        let m1 = env.ralloc(r, d_node);
        let _c2 = env.ralloc(r, d_ctx);
        let m2 = env.ralloc(r, d_node);
        assert!(m2 - m1 >= CTX_BYTES, "interleaved: a context sits between nodes");
    }
}
