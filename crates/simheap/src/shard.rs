//! One simulated address space, many mutators.
//!
//! [`SharedSpace`] carves a single 32-bit address space into
//! `workers` disjoint page-range *shards*; each worker holds a
//! [`HeapShard`] handle that grows, writes and reads **its own** shard
//! with exactly the semantics of a private [`crate::SimHeap`] (same
//! panic messages, same counter accounting, same OOM/fault error
//! fields), and may additionally *read* any page another worker has
//! mapped. Writes outside the owner's shard are a simulated protection
//! fault: the paper's discipline is that a region — and therefore its
//! pages — has one owning mutator, while cross-thread structures hold
//! read references published through exchanges (the parallel region
//! pool's bookkeeping, which stays heap-agnostic).
//!
//! Layout: page 0 is the guard page of the whole space; worker `w` owns
//! the absolute page range `[1 + w*span, 1 + (w+1)*span)` where
//! `span = (total_pages - 1) / workers`. With `workers = 1`, shard 0
//! starts at `PAGE_SIZE` and spans the whole space — every address,
//! counter and error a `SimHeap` would produce is reproduced
//! bit-for-bit, which is what keeps the committed goldens valid.
//!
//! Shared state is kept safe-Rust-concurrent the same way
//! `region_core::par` keeps its books: the global page table is a
//! `Mutex<Vec<Option<Arc<[AtomicU32]>>>>` touched only on page birth
//! (sbrk) and host-side audits, while the hot word traffic goes through
//! the per-page atomics. Pages are never uninstalled while the space
//! lives, so a reader's cached `Arc` can never dangle. The page→region
//! *mirror* is a flat `Vec<AtomicU32>` over absolute page indices,
//! published by the owner on every page-map write (see
//! [`crate::HeapBackend::publish_page_owner`]) and encoded as
//! `(worker + 1) << 24 | (region_index + 1)`, 0 = unowned — so any
//! thread (or the world auditor) can classify a foreign address without
//! touching the owner's in-heap map.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::backend::HeapBackend;
use crate::{
    Access, AccessEvent, AccessKind, AccessRange, AccessSink, Addr, HeapConfig, HeapError,
    PAGE_SIZE, WORD,
};

/// Words per simulated page.
const PAGE_WORDS: usize = (PAGE_SIZE / WORD) as usize;

/// One simulated page of shared storage.
type PageArc = Arc<[AtomicU32]>;

/// Locks a mutex, tolerating poison: space-level sections only install
/// pages (an all-or-nothing `Vec` slot write), so state guarded by a
/// lock whose holder panicked is still consistent — same policy as the
/// parallel region pool's ledgers.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Allocates one zeroed shared page.
fn new_page() -> PageArc {
    (0..PAGE_WORDS).map(|_| AtomicU32::new(0)).collect()
}

/// Configuration for a [`SharedSpace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpaceConfig {
    /// Total size of the shared address space in bytes (guard page
    /// included), rounded down to whole pages. Defaults to 512 MB — the
    /// same limit as a default private [`crate::SimHeap`].
    pub max_bytes: u64,
    /// Number of shard slots the space is carved into (1..=255). Each
    /// shard spans `(total_pages - 1) / workers` pages.
    pub workers: u32,
}

impl Default for SpaceConfig {
    fn default() -> SpaceConfig {
        SpaceConfig { max_bytes: HeapConfig::default().max_bytes, workers: 1 }
    }
}

/// The shared side of a sharded address space: the global page table,
/// the atomic page→region mirror, and the shard-claim registry. Always
/// handled through an `Arc`; per-worker mutation goes through
/// [`HeapShard`] handles created with [`SharedSpace::shard`].
pub struct SharedSpace {
    max_bytes: u64,
    workers: u32,
    span_pages: u32,
    /// Absolute page index → installed page. Slot 0 (the guard page) is
    /// permanently `None`. Locked only on page birth and host audits.
    table: Mutex<Vec<Option<PageArc>>>,
    /// Absolute page index → `(worker + 1) << 24 | cell` ownership
    /// mirror (0 = unowned), published by owners, readable lock-free.
    mirror: Vec<AtomicU32>,
    /// Which shard slots have been handed out (shards are single-use).
    claimed: Mutex<Vec<bool>>,
}

impl std::fmt::Debug for SharedSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSpace")
            .field("max_bytes", &self.max_bytes)
            .field("workers", &self.workers)
            .field("span_pages", &self.span_pages)
            .finish()
    }
}

impl SharedSpace {
    /// Creates a space carved into `config.workers` equal shards.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0 or exceeds 255 (the mirror encoding
    /// reserves 8 bits for `worker + 1`), or if the space is too small
    /// to give every shard at least one page.
    pub fn new(config: SpaceConfig) -> Arc<SharedSpace> {
        assert!(
            (1..=255).contains(&config.workers),
            "SharedSpace workers must be in 1..=255, got {}",
            config.workers
        );
        let total_pages = (config.max_bytes.min(u64::from(u32::MAX)) / u64::from(PAGE_SIZE)) as u32;
        assert!(
            total_pages > config.workers,
            "SharedSpace of {} bytes cannot give {} shards a page each",
            config.max_bytes,
            config.workers
        );
        let span_pages = (total_pages - 1) / config.workers;
        let slots = 1 + span_pages as usize * config.workers as usize;
        Arc::new(SharedSpace {
            max_bytes: config.max_bytes,
            workers: config.workers,
            span_pages,
            table: Mutex::new(vec![None; slots]),
            mirror: (0..slots).map(|_| AtomicU32::new(0)).collect(),
            claimed: Mutex::new(vec![false; config.workers as usize]),
        })
    }

    /// Number of shard slots.
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Pages per shard.
    pub fn span_pages(&self) -> u32 {
        self.span_pages
    }

    /// Total addressable pages (guard page included).
    pub fn total_pages(&self) -> u32 {
        1 + self.span_pages * self.workers
    }

    /// The configured byte limit of the whole space.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// First absolute page index of `worker`'s shard.
    pub fn base_page(&self, worker: u32) -> u32 {
        assert!(worker < self.workers, "worker {worker} out of range");
        1 + worker * self.span_pages
    }

    fn claim(&self, worker: u32) {
        assert!(worker < self.workers, "worker {worker} out of range");
        let mut claimed = lock(&self.claimed);
        assert!(!claimed[worker as usize], "shard {worker} already claimed (shards are single-use)");
        claimed[worker as usize] = true;
    }

    /// Hands out the (fresh, unclaimed) shard handle for `worker`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already claimed: a shard handle is
    /// single-use, like the thread that owns it.
    pub fn shard(self: &Arc<Self>, worker: u32) -> HeapShard {
        self.claim(worker);
        HeapShard {
            space: Arc::clone(self),
            worker,
            base_page: self.base_page(worker),
            local: Vec::new(),
            remote: RefCell::new(BTreeMap::new()),
            fault_after: None,
            loads: 0,
            stores: 0,
            sink: None,
            tracing: false,
        }
    }

    /// Rebinds a shard handle onto pages already installed in the table
    /// — the world-restore path. The first `allocated_pages` slots of
    /// `worker`'s span must be installed; counters and the fault budget
    /// are adopted as given.
    ///
    /// # Panics
    ///
    /// Panics on a double claim or if an expected page is missing.
    pub fn adopt_shard(
        self: &Arc<Self>,
        worker: u32,
        allocated_pages: u32,
        loads: u64,
        stores: u64,
        fault_after: Option<u64>,
    ) -> HeapShard {
        self.claim(worker);
        let base = self.base_page(worker);
        assert!(allocated_pages <= self.span_pages, "adopted shard overflows its span");
        let table = lock(&self.table);
        let local: Vec<PageArc> = (0..allocated_pages)
            .map(|i| {
                table[(base + i) as usize]
                    .clone()
                    .unwrap_or_else(|| panic!("adopt_shard: page {} not installed", base + i))
            })
            .collect();
        drop(table);
        HeapShard {
            space: Arc::clone(self),
            worker,
            base_page: base,
            local,
            remote: RefCell::new(BTreeMap::new()),
            fault_after,
            loads,
            stores,
            sink: None,
            tracing: false,
        }
    }

    /// Installs a page at an absolute index (world-restore path).
    ///
    /// # Panics
    ///
    /// Panics if the slot is the guard page, out of range, or occupied.
    pub fn install_page(&self, page_index: u32, words: &[u32]) {
        assert!(page_index >= 1 && (page_index as usize) < self.total_pages() as usize);
        assert_eq!(words.len(), PAGE_WORDS, "a page is {PAGE_WORDS} words");
        let page: PageArc = words.iter().map(|&w| AtomicU32::new(w)).collect();
        let mut table = lock(&self.table);
        assert!(table[page_index as usize].is_none(), "page {page_index} already installed");
        table[page_index as usize] = Some(page);
    }

    /// The words of an installed page, or `None` for an unmapped slot.
    /// Host-side (capture/audit): charges nothing, traces nothing. Only
    /// meaningful while no worker is concurrently mutating the page.
    pub fn page_snapshot(&self, page_index: u32) -> Option<Vec<u32>> {
        let page = lock(&self.table).get(page_index as usize)?.clone()?;
        Some(page.iter().map(|w| w.load(Ordering::Acquire)).collect())
    }

    /// The ownership-mirror entry for an absolute page index
    /// (`(worker + 1) << 24 | cell`, 0 = unowned).
    pub fn mirror_entry(&self, page_index: u32) -> u32 {
        self.mirror[page_index as usize].load(Ordering::Acquire)
    }

    /// Writes a mirror entry directly (world-restore path; live
    /// publication goes through the owning shard's
    /// [`HeapBackend::publish_page_owner`]).
    pub fn set_mirror_entry(&self, page_index: u32, encoded: u32) {
        self.mirror[page_index as usize].store(encoded, Ordering::Release);
    }

    /// Splits a mirror entry into `(worker, cell)`. `None` for the
    /// unowned entry 0 and for malformed words whose worker byte is zero
    /// (untrusted snapshot bytes go through here; never panics).
    pub fn decode_mirror(encoded: u32) -> Option<(u32, u32)> {
        let owner = (encoded >> 24).checked_sub(1)?;
        Some((owner, encoded & 0x00ff_ffff))
    }
}

/// One worker's handle onto its shard of a [`SharedSpace`] — the
/// sharded drop-in for a private [`crate::SimHeap`] (it implements
/// [`HeapBackend`] with identical observable semantics on its own
/// pages), plus lock-light read access to every other worker's pages.
pub struct HeapShard {
    space: Arc<SharedSpace>,
    worker: u32,
    base_page: u32,
    /// Pages of this shard, contiguous from `base_page` (sbrk appends).
    local: Vec<PageArc>,
    /// Cache of foreign pages this worker has read. Pages are never
    /// uninstalled while the space lives, so entries can't go stale.
    remote: RefCell<BTreeMap<u32, PageArc>>,
    fault_after: Option<u64>,
    loads: u64,
    stores: u64,
    sink: Option<Box<dyn AccessSink>>,
    tracing: bool,
}

impl std::fmt::Debug for HeapShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapShard")
            .field("worker", &self.worker)
            .field("base_page", &self.base_page)
            .field("allocated_pages", &self.local.len())
            .field("loads", &self.loads)
            .field("stores", &self.stores)
            .finish()
    }
}

impl HeapShard {
    /// The shard slot this handle owns.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// First absolute page index of this shard.
    pub fn base_page(&self) -> u32 {
        self.base_page
    }

    /// Pages this shard has obtained from the shared sbrk.
    pub fn allocated_pages(&self) -> u32 {
        self.local.len() as u32
    }

    /// The space this shard belongs to.
    pub fn space(&self) -> &Arc<SharedSpace> {
        &self.space
    }

    /// The injected sbrk fault budget currently armed, if any.
    pub fn sbrk_fault_after(&self) -> Option<u64> {
        self.fault_after
    }

    /// Attaches an access sink; subsequent loads/stores are forwarded to
    /// it. Replaces (and drops) any previously attached sink.
    pub fn attach_sink(&mut self, sink: Box<dyn AccessSink>) {
        self.sink = Some(sink);
        self.tracing = true;
    }

    /// Detaches and returns the current access sink, if any.
    pub fn detach_sink(&mut self) -> Option<Box<dyn AccessSink>> {
        self.tracing = false;
        self.sink.take()
    }

    fn emit_event(&mut self, event: AccessEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.event(event);
        }
    }

    /// `true` if `page` lies inside this shard's span (mapped or not).
    fn in_own_span(&self, page: u32) -> bool {
        page >= self.base_page && page < self.base_page + self.space.span_pages
    }

    /// Bounds/alignment validation with `SimHeap`-identical messages on
    /// the owned shard, plus the two sharded cases: writes outside the
    /// shard are a protection fault, reads resolve against the shared
    /// table. Check order matches `SimHeap::check`: null, bounds,
    /// alignment.
    fn check(&self, addr: Addr, size: u32, align: u32, what: &str, write: bool) {
        assert!(
            addr.raw() >= PAGE_SIZE,
            "simulated segfault: {what} of {size} bytes at {addr} (null/guard page)"
        );
        let page = addr.page_index();
        if self.in_own_span(page) {
            assert!(
                (u64::from(addr.raw()) + u64::from(size)) <= u64::from(self.brk().raw()),
                "simulated segfault: {what} of {size} bytes at {addr} past break {}",
                self.brk()
            );
        } else if write {
            panic!(
                "simulated protection fault: {what} of {size} bytes at {addr} outside worker \
                 {}'s shard",
                self.worker
            );
        } else {
            assert!(
                self.resolve_remote(page).is_some(),
                "simulated segfault: {what} of {size} bytes at {addr} (unmapped in shared space)"
            );
        }
        assert!(
            addr.is_aligned(align),
            "simulated bus error: misaligned {what} of {size} bytes at {addr}"
        );
    }

    /// Looks up a foreign page, filling the remote cache on a miss.
    fn resolve_remote(&self, page: u32) -> Option<PageArc> {
        if let Some(p) = self.remote.borrow().get(&page) {
            return Some(Arc::clone(p));
        }
        let p = lock(&self.space.table).get(page as usize)?.clone()?;
        self.remote.borrow_mut().insert(page, Arc::clone(&p));
        Some(p)
    }

    /// The atomic word backing `addr`, assuming [`HeapShard::check`]
    /// already passed.
    fn word(&self, addr: Addr) -> PageArc {
        let page = addr.page_index();
        if self.in_own_span(page) {
            Arc::clone(&self.local[(page - self.base_page) as usize])
        } else {
            self.resolve_remote(page).expect("checked above")
        }
    }

    #[inline]
    fn read_word(&self, addr: Addr) -> u32 {
        let page = addr.page_index();
        let w = (addr.page_offset() / WORD) as usize;
        if self.in_own_span(page) {
            self.local[(page - self.base_page) as usize][w].load(Ordering::Relaxed)
        } else {
            self.word(addr)[w].load(Ordering::Relaxed)
        }
    }

    #[inline]
    fn write_word(&self, addr: Addr, value: u32) {
        let page = (addr.page_index() - self.base_page) as usize;
        self.local[page][(addr.page_offset() / WORD) as usize].store(value, Ordering::Relaxed);
    }
}

impl HeapBackend for HeapShard {
    fn brk(&self) -> Addr {
        Addr::from_page(self.base_page + self.local.len() as u32)
    }

    fn try_sbrk_pages(&mut self, pages: u32) -> Result<Addr, HeapError> {
        let old = self.brk();
        let allocated = self.local.len() as u32;
        // "Occupied bytes" are counted from the base of the address
        // space through the end of this shard's allocation, so with one
        // shard the arithmetic (and both error variants' fields) is
        // byte-identical to a private SimHeap's.
        let new_len =
            u64::from(self.base_page + allocated + pages) * u64::from(PAGE_SIZE);
        if let Some(budget) = self.fault_after {
            if new_len > budget {
                return Err(HeapError::FaultInjected {
                    granted: u64::from(old.raw()),
                    budget,
                });
            }
        }
        if allocated + pages > self.space.span_pages {
            let limit = if self.space.workers == 1 {
                self.space.max_bytes.min(u64::from(u32::MAX))
            } else {
                u64::from(self.base_page + self.space.span_pages) * u64::from(PAGE_SIZE)
            };
            return Err(HeapError::OutOfMemory { requested: new_len, limit });
        }
        let mut table = lock(&self.space.table);
        for i in 0..pages {
            let page = new_page();
            let slot = (self.base_page + allocated + i) as usize;
            debug_assert!(table[slot].is_none(), "sbrk found an occupied slot");
            table[slot] = Some(Arc::clone(&page));
            self.local.push(page);
        }
        Ok(old)
    }

    fn set_sbrk_fault_after(&mut self, budget: Option<u64>) {
        self.fault_after = budget;
    }

    fn reset_with(&mut self, config: HeapConfig) {
        // The span is fixed by the space; `config.max_bytes` is the
        // *private-heap* limit and is ignored here — shard capacity is
        // `span_pages`. The fault budget carries over as configured.
        let mut table = lock(&self.space.table);
        for (i, _) in self.local.iter().enumerate() {
            table[(self.base_page + i as u32) as usize] = None;
            self.space.mirror[(self.base_page + i as u32) as usize].store(0, Ordering::Release);
        }
        drop(table);
        self.local.clear();
        self.remote.borrow_mut().clear();
        self.fault_after = config.sbrk_fault_after;
        self.loads = 0;
        self.stores = 0;
        self.sink = None;
        self.tracing = false;
    }

    fn load_u32(&mut self, addr: Addr) -> u32 {
        self.check(addr, WORD, WORD, "load", false);
        self.loads += 1;
        if self.tracing {
            self.emit_event(AccessEvent::Word(Access::read(addr.raw(), 4)));
        }
        self.read_word(addr)
    }

    fn store_u32(&mut self, addr: Addr, value: u32) {
        self.check(addr, WORD, WORD, "store", true);
        self.stores += 1;
        if self.tracing {
            self.emit_event(AccessEvent::Word(Access::write(addr.raw(), 4)));
        }
        self.write_word(addr, value);
    }

    fn load_u32_fast(&mut self, addr: Addr) -> u32 {
        self.load_u32(addr)
    }

    fn store_u32_fast(&mut self, addr: Addr, value: u32) {
        self.store_u32(addr, value);
    }

    fn peek_u32(&self, addr: Addr) -> u32 {
        assert!(addr.is_aligned(WORD), "misaligned peek at {addr}");
        self.check(addr, WORD, WORD, "peek", false);
        self.read_word(addr)
    }

    fn fill(&mut self, addr: Addr, len: u32, byte: u8) {
        if len == 0 {
            return;
        }
        self.check(addr, len, 1, "fill", true);
        // Same memset cost model as SimHeap::fill: head bytes to reach
        // word alignment, whole words, tail bytes.
        let head = ((WORD - addr.raw() % WORD) % WORD).min(len);
        let rest = len - head;
        let (words, tail) = (rest / WORD, rest % WORD);
        self.stores += u64::from(head) + u64::from(words) + u64::from(tail);
        // Byte-granular edges read-modify-write their word; the aligned
        // middle stores whole words.
        let fill_word = u32::from_le_bytes([byte; 4]);
        for b in 0..head {
            self.write_byte(addr + b, byte);
        }
        let words_start = addr + head;
        for w in 0..words {
            self.write_word(words_start + w * WORD, fill_word);
        }
        let tail_start = words_start + words * WORD;
        for b in 0..tail {
            self.write_byte(tail_start + b, byte);
        }
        if !self.tracing {
            return;
        }
        if head > 0 {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: addr.raw(),
                len: head,
                stride: 1,
                size: 1,
                kind: AccessKind::Write,
            }));
        }
        if words > 0 {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: addr.raw() + head,
                len: words,
                stride: WORD,
                size: WORD as u8,
                kind: AccessKind::Write,
            }));
        }
        if tail > 0 {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: addr.raw() + head + words * WORD,
                len: tail,
                stride: 1,
                size: 1,
                kind: AccessKind::Write,
            }));
        }
    }

    fn load_u32_range(&mut self, start: Addr, len: u32, stride: u32) -> Vec<u32> {
        if len == 0 {
            return Vec::new();
        }
        assert!(stride % WORD == 0, "misaligned stride {stride} in bulk load at {start}");
        self.check(start, WORD, WORD, "load", false);
        let last = u64::from(start.raw()) + u64::from(len - 1) * u64::from(stride);
        assert!(
            last + u64::from(WORD) <= u64::from(self.brk().raw())
                && self.in_own_span(start.page_index()),
            "simulated segfault: bulk load of {len} words (stride {stride}) at {start} past \
             break {}",
            self.brk()
        );
        self.loads += u64::from(len);
        if self.tracing {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: start.raw(),
                len,
                stride,
                size: WORD as u8,
                kind: AccessKind::Read,
            }));
        }
        (0..len).map(|i| self.read_word(start + i * stride)).collect()
    }

    fn is_tracing(&self) -> bool {
        self.tracing
    }

    fn charge_loads(&mut self, n: u64) {
        debug_assert!(!self.tracing, "charge_loads while tracing loses sink records");
        self.loads += n;
    }

    fn load_count(&self) -> u64 {
        self.loads
    }

    fn store_count(&self) -> u64 {
        self.stores
    }

    fn publish_page_owner(&mut self, page_index: u32, cell: u32) {
        debug_assert!(self.in_own_span(page_index), "publishing a page outside the shard");
        assert!(cell < 1 << 24, "region cell {cell} overflows the mirror encoding");
        let encoded = if cell == 0 { 0 } else { ((self.worker + 1) << 24) | cell };
        self.space.mirror[page_index as usize].store(encoded, Ordering::Release);
    }
}

impl HeapShard {
    /// Read-modify-writes one byte of an owned word (fill edges).
    fn write_byte(&self, addr: Addr, byte: u8) {
        let word_addr = Addr::new(addr.raw() & !(WORD - 1));
        let shift = (addr.raw() % WORD) * 8;
        let old = self.read_word(word_addr);
        let new = (old & !(0xffu32 << shift)) | (u32::from(byte) << shift);
        self.write_word(word_addr, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimHeap;

    #[test]
    fn single_shard_matches_simheap_word_for_word() {
        let space = SharedSpace::new(SpaceConfig::default());
        let mut shard = space.shard(0);
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(2);
        let b = HeapBackend::sbrk_pages(&mut shard, 2);
        assert_eq!(a, b, "shard 0 of a fresh space starts at the SimHeap break");
        for i in 0..64u32 {
            heap.store_u32(a + i * WORD, i * 3 + 1);
            shard.store_u32(a + i * WORD, i * 3 + 1);
        }
        // Unaligned start and ragged end exercise fill's head/words/tail
        // split (byte RMW edges on the shard side).
        heap.fill(a + 41, 99, 0xAB);
        shard.fill(a + 41, 99, 0xAB);
        for i in 0..64u32 {
            assert_eq!(heap.load_u32(a + i * WORD), shard.load_u32(a + i * WORD));
        }
        assert_eq!(
            heap.load_u32_range(a, 16, 8),
            shard.load_u32_range(a, 16, 8),
            "strided bulk loads agree"
        );
        assert_eq!(heap.load_count(), HeapBackend::load_count(&shard));
        assert_eq!(heap.store_count(), HeapBackend::store_count(&shard));
        assert_eq!(heap.peek_u32(a), shard.peek_u32(a));
    }

    #[test]
    fn single_shard_reports_simheap_identical_oom_and_fault_fields() {
        let cfg = SpaceConfig { max_bytes: 16 * u64::from(PAGE_SIZE), workers: 1 };
        let space = SharedSpace::new(cfg);
        let mut shard = space.shard(0);
        let mut heap = SimHeap::with_config(HeapConfig {
            max_bytes: cfg.max_bytes,
            sbrk_fault_after: None,
        });
        assert_eq!(
            heap.try_sbrk_pages(4).unwrap(),
            shard.try_sbrk_pages(4).unwrap()
        );
        let e1 = heap.try_sbrk_pages(100).unwrap_err();
        let e2 = shard.try_sbrk_pages(100).unwrap_err();
        assert_eq!(e1, e2, "OutOfMemory fields must match bit-for-bit");
        HeapBackend::set_sbrk_fault_after(&mut shard, Some(6 * u64::from(PAGE_SIZE)));
        heap.set_sbrk_fault_after(Some(6 * u64::from(PAGE_SIZE)));
        let f1 = heap.try_sbrk_pages(3).unwrap_err();
        let f2 = shard.try_sbrk_pages(3).unwrap_err();
        assert_eq!(f1, f2, "FaultInjected fields must match bit-for-bit");
    }

    #[test]
    fn cross_shard_reads_see_the_owners_writes() {
        let space = SharedSpace::new(SpaceConfig { max_bytes: 1 << 20, workers: 4 });
        let mut a = space.shard(0);
        let mut b = space.shard(1);
        let pa = a.try_sbrk_pages(1).unwrap();
        b.try_sbrk_pages(1).unwrap();
        a.store_u32(pa, 0xDEAD_BEEF);
        assert_eq!(b.load_u32(pa), 0xDEAD_BEEF, "foreign pages are readable");
        assert_eq!(b.load_u32(pa), 0xDEAD_BEEF, "cached remote page stays live");
        assert_eq!(b.load_count(), 2);
    }

    #[test]
    #[should_panic(expected = "protection fault")]
    fn cross_shard_stores_are_a_protection_fault() {
        let space = SharedSpace::new(SpaceConfig { max_bytes: 1 << 20, workers: 2 });
        let mut a = space.shard(0);
        let mut b = space.shard(1);
        let pa = a.try_sbrk_pages(1).unwrap();
        b.try_sbrk_pages(1).unwrap();
        b.store_u32(pa, 1);
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn shards_are_single_use() {
        let space = SharedSpace::new(SpaceConfig { max_bytes: 1 << 20, workers: 2 });
        let _a = space.shard(0);
        let _again = space.shard(0);
    }

    #[test]
    fn mirror_publication_is_visible_spacewide() {
        let space = SharedSpace::new(SpaceConfig { max_bytes: 1 << 20, workers: 3 });
        let mut s = space.shard(2);
        let p = s.try_sbrk_pages(1).unwrap();
        s.publish_page_owner(p.page_index(), 7);
        let enc = space.mirror_entry(p.page_index());
        assert_eq!(SharedSpace::decode_mirror(enc), Some((2, 7)));
        s.publish_page_owner(p.page_index(), 0);
        assert_eq!(space.mirror_entry(p.page_index()), 0);
    }

    #[test]
    fn guard_page_faults_match_simheap_messages() {
        let space = SharedSpace::new(SpaceConfig::default());
        let mut shard = space.shard(0);
        shard.try_sbrk_pages(1).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shard.load_u32(Addr::new(4));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("null/guard page"), "got: {msg}");
    }
}
