//! Simulated addresses and address arithmetic.

use std::fmt;
use std::ops::{Add, Sub};

/// Size in bytes of one simulated page.
///
/// The paper's region library (§4.1) manages memory in 4 KB pages; we use the
/// same granularity for the whole simulated address space.
pub const PAGE_SIZE: u32 = 4096;

/// Size in bytes of one machine word.
///
/// The evaluation platform of the paper is a 32-bit UltraSparc-I, so a word —
/// and therefore a pointer — is four bytes.
pub const WORD: u32 = 4;

/// An address in the simulated 32-bit address space.
///
/// `Addr` is a plain byte offset. The null address is [`Addr::NULL`]
/// (offset 0); the first simulated page is never mapped, so dereferencing
/// null or any address within the guard page panics, mimicking a segfault.
///
/// # Example
///
/// ```
/// use simheap::{Addr, WORD};
/// let a = Addr::new(4096);
/// assert_eq!(a.offset(2 * WORD), Addr::new(4104));
/// assert_eq!(a.page_index(), 1);
/// assert!(Addr::NULL.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u32);

impl Addr {
    /// The null address.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw byte offset.
    pub fn new(raw: u32) -> Addr {
        Addr(raw)
    }

    /// Returns the raw byte offset.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns `true` if this is the null address.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the address `bytes` past `self`.
    ///
    /// # Panics
    ///
    /// Panics on 32-bit overflow (walking off the end of the simulated
    /// address space).
    pub fn offset(self, bytes: u32) -> Addr {
        Addr(self.0.checked_add(bytes).expect("address overflow"))
    }

    /// Returns the address `bytes` before `self`.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative.
    pub fn back(self, bytes: u32) -> Addr {
        Addr(self.0.checked_sub(bytes).expect("address underflow"))
    }

    /// The index of the page containing this address.
    pub fn page_index(self) -> u32 {
        self.0 / PAGE_SIZE
    }

    /// The base address of the page with index `index` — the inverse of
    /// [`Addr::page_index`] for page-aligned addresses. Shard layout math
    /// (worker base pages, span boundaries) is phrased with this.
    ///
    /// # Panics
    ///
    /// Panics if the page lies beyond the 32-bit address space.
    pub fn from_page(index: u32) -> Addr {
        Addr(index.checked_mul(PAGE_SIZE).expect("page beyond the 32-bit address space"))
    }

    /// The byte offset of this address within its page.
    pub fn page_offset(self) -> u32 {
        self.0 % PAGE_SIZE
    }

    /// The address of the start of the page containing this address.
    pub fn page_base(self) -> Addr {
        Addr(self.0 - self.0 % PAGE_SIZE)
    }

    /// Returns `true` if the address is aligned to `align` bytes
    /// (which must be a power of two).
    pub fn is_aligned(self, align: u32) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }

    /// Rounds the address up to the next multiple of `align`
    /// (a power of two).
    pub fn align_up(self, align: u32) -> Addr {
        Addr(align_up(self.0, align))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#010x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl Add<u32> for Addr {
    type Output = Addr;
    fn add(self, rhs: u32) -> Addr {
        self.offset(rhs)
    }
}

impl Sub<u32> for Addr {
    type Output = Addr;
    fn sub(self, rhs: u32) -> Addr {
        self.back(rhs)
    }
}

impl Sub<Addr> for Addr {
    type Output = u32;
    fn sub(self, rhs: Addr) -> u32 {
        self.0.checked_sub(rhs.0).expect("address difference underflow")
    }
}

impl From<Addr> for u32 {
    fn from(a: Addr) -> u32 {
        a.0
    }
}

impl From<u32> for Addr {
    fn from(raw: u32) -> Addr {
        Addr(raw)
    }
}

/// Rounds `n` up to the next multiple of `align` (a power of two).
///
/// ```
/// use simheap::align_up;
/// assert_eq!(align_up(13, 8), 16);
/// assert_eq!(align_up(16, 8), 16);
/// assert_eq!(align_up(0, 8), 0);
/// ```
pub fn align_up(n: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    n.checked_add(align - 1).expect("align_up overflow") & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(4).is_null());
        assert_eq!(Addr::default(), Addr::NULL);
    }

    #[test]
    fn page_arithmetic() {
        let a = Addr::new(PAGE_SIZE * 3 + 17);
        assert_eq!(a.page_index(), 3);
        assert_eq!(a.page_offset(), 17);
        assert_eq!(a.page_base(), Addr::new(PAGE_SIZE * 3));
    }

    #[test]
    fn alignment() {
        assert!(Addr::new(8).is_aligned(8));
        assert!(!Addr::new(12).is_aligned(8));
        assert_eq!(Addr::new(13).align_up(8), Addr::new(16));
        assert_eq!(align_up(4095, 4096), 4096);
        assert_eq!(align_up(4096, 4096), 4096);
        assert_eq!(align_up(4097, 4096), 8192);
    }

    #[test]
    fn add_sub_operators() {
        let a = Addr::new(100);
        assert_eq!(a + 28, Addr::new(128));
        assert_eq!(a - 50, Addr::new(50));
        assert_eq!(Addr::new(128) - a, 28);
    }

    #[test]
    #[should_panic(expected = "address overflow")]
    fn offset_overflow_panics() {
        let _ = Addr::new(u32::MAX).offset(1);
    }

    #[test]
    #[should_panic(expected = "address underflow")]
    fn back_underflow_panics() {
        let _ = Addr::new(3).back(4);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Addr::new(0x1000)), "0x00001000");
        assert_eq!(format!("{:?}", Addr::new(0x1000)), "Addr(0x00001000)");
    }
}
