//! Region service under adversity — the long-lived driver for the
//! resilience layer ([`bench_harness::server`]).
//!
//! A fleet of sessions serves seeded request traffic on one shared
//! address space: every request creates a region, allocates into it,
//! publishes a cross-thread reference through the parallel pool, then
//! unpublishes and deletes. The run interleaves injected allocation
//! faults (bounded deterministic retry with linear backoff), injected
//! worker panics (quarantine + reap, the fleet keeps serving), and
//! footprint watermarks (degrade, then shed with a typed
//! `Overloaded` error — never a panic).
//!
//! The books — conserved ledger, per-session ledgers, digest,
//! footprint high-water — are schedule-independent by construction:
//! the same seed must produce byte-identical books at 1, 2 and N OS
//! threads and across reruns, and this binary asserts exactly that
//! before reporting. Wall-clock throughput and p50/p99/p999 request
//! latency are reported alongside but never folded into the books.
//!
//! Writes a schema-v3 results envelope with the tail-latency columns
//! to `results/server.json`, plus the richer `BENCH_server.json`
//! record (`BENCH_SERVER_OUT` redirects, so CI's quick smoke does not
//! clobber the committed default-scale record).

use bench_harness::runner::{host_cores, today_utc, write_results_json_full, LatencyColumn};
use bench_harness::{install_service_panic_filter, run_service, Measurement, ServiceConfig, ServiceReport};

/// Thread counts the books must be invariant across. The last entry is
/// also rerun to prove same-seed stability.
const THREAD_AB: [usize; 3] = [1, 2, 4];

fn measurement(label: &'static str, r: &ServiceReport) -> Measurement {
    Measurement {
        workload: "server",
        allocator: label,
        total: r.elapsed,
        mem: r.elapsed,
        os_pages: r.high_water_pages,
        stats: region_core::AllocStats {
            total_allocs: r.ledger.completed,
            total_regions: r.ledger.submitted,
            ..Default::default()
        },
        inner_stats: None,
        costs: None,
        cache: None,
        checksum: r.digest,
    }
}

fn print_report(threads: usize, r: &ServiceReport) {
    let l = &r.ledger;
    println!(
        "  {threads:>2} thread(s): {} req in {:>7.1} ms ({:>8.0} req/s) — \
         {} ok, {} shed, {} failed ({} retries, {} degraded, {} faults, {} panics)",
        l.submitted,
        r.elapsed.as_secs_f64() * 1e3,
        r.throughput_rps(),
        l.completed,
        l.shed,
        l.failed,
        l.retries,
        l.degraded,
        l.faults,
        l.panics,
    );
}

fn need(args: &mut std::env::Args, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

fn main() {
    install_service_panic_filter();
    let quick = std::env::args().any(|a| a == "--quick");
    let mut args = std::env::args();
    let mut seed = 42u64;
    // Recorded default: incremental deletion under a 64-unit budget.
    // `--delete-budget inf` reproduces the stop-the-world profile.
    let mut delete_budget = 64u64;
    let mut open_loop_period_ns = 0u64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                let v = need(&mut args, "--seed");
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad seed: {v}");
                    std::process::exit(2);
                });
            }
            "--delete-budget" => {
                let v = need(&mut args, "--delete-budget");
                delete_budget = if v == "inf" {
                    u64::MAX
                } else {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("bad budget (want a positive integer or 'inf'): {v}");
                        std::process::exit(2);
                    })
                };
                if delete_budget == 0 {
                    eprintln!("--delete-budget must be >= 1");
                    std::process::exit(2);
                }
            }
            "--open-loop" => {
                let v = need(&mut args, "--open-loop");
                open_loop_period_ns = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad open-loop period (want nanoseconds): {v}");
                    std::process::exit(2);
                });
            }
            _ => {}
        }
    }
    let mut cfg = if quick { ServiceConfig::quick(seed) } else { ServiceConfig::full(seed) };
    cfg.delete_budget = delete_budget;
    cfg.open_loop_period_ns = open_loop_period_ns;
    if std::env::var("REGION_SANITIZE").is_ok_and(|v| v == "1") {
        cfg.sanitize_rounds = true;
    }
    let budget_str = if delete_budget == u64::MAX {
        "inf".to_string()
    } else {
        delete_budget.to_string()
    };

    println!(
        "Region service: {} sessions x {} requests over {} rounds, seed {seed}, \
         watermarks {}, fault 1/{}, panic 1/{}, delete budget {budget_str}",
        cfg.sessions,
        cfg.requests_per_session,
        cfg.rounds,
        cfg.marks,
        cfg.fault_one_in,
        cfg.panic_one_in,
    );

    // The books must not depend on the OS thread count, and a same-seed
    // rerun must land on the same bytes. Both are asserted on the full
    // encoded books (fleet ledger, per-session ledgers, digest,
    // footprint, quarantine counters) — not just the digest.
    let mut reports = Vec::new();
    for threads in THREAD_AB {
        let r = run_service(&ServiceConfig { threads, ..cfg });
        print_report(threads, &r);
        reports.push(r);
    }
    let books = reports[0].encode_books();
    for (threads, r) in THREAD_AB.iter().zip(&reports).skip(1) {
        assert_eq!(
            books,
            r.encode_books(),
            "books must not depend on the thread count (1 vs {threads})"
        );
    }
    let last = *THREAD_AB.last().expect("non-empty");
    let again = run_service(&ServiceConfig { threads: last, ..cfg });
    assert_eq!(books, again.encode_books(), "same-seed rerun must be byte-identical");

    // Budget A/B: the books must also be invariant across the deletion
    // budget — incremental mode changes when deletion work runs, never
    // what it does. The stop-the-world run doubles as the pause-time
    // baseline for the report.
    let other_budget = if cfg.delete_budget == u64::MAX { 64 } else { u64::MAX };
    let stw = run_service(&ServiceConfig {
        threads: last,
        delete_budget: other_budget,
        ..cfg
    });
    assert_eq!(
        books,
        stw.encode_books(),
        "books must not depend on the deletion budget ({budget_str} vs {other_budget})"
    );
    let (inc, mono) =
        if cfg.delete_budget == u64::MAX { (&stw, &reports[THREAD_AB.len() - 1]) } else { (&reports[THREAD_AB.len() - 1], &stw) };

    let r1 = &reports[0];
    let rn = &reports[THREAD_AB.len() - 1];
    assert!(rn.ledger.conserves(), "ledger must conserve");
    println!(
        "  ledger conserved: {} submitted == {} completed + {} shed + {} failed",
        rn.ledger.submitted, rn.ledger.completed, rn.ledger.shed, rn.ledger.failed
    );
    println!(
        "  latency p50 {:.2} us, p99 {:.2} us, p999 {:.2} us ({last} threads)",
        rn.p50_us(),
        rn.p99_us(),
        rn.p999_us()
    );
    println!(
        "  deleteregion pauses: budgeted p50 {:.2} us, p99 {:.2} us, max {:.2} us \
         over {} increments — stop-the-world p99 {:.2} us, max {:.2} us over {}",
        inc.pause_p50_us(),
        inc.pause_p99_us(),
        inc.pause_max_us(),
        inc.pause_ns.len(),
        mono.pause_p99_us(),
        mono.pause_max_us(),
        mono.pause_ns.len(),
    );
    println!(
        "  footprint high-water {} pages (final {}), {} quarantined, {} reaped, \
         {} sanitize passes",
        rn.high_water_pages, rn.final_pages, rn.quarantined, rn.reaped, rn.sanitize_runs
    );
    println!(
        "  books {:016x} identical at {:?} threads and across reruns",
        rn.digest, THREAD_AB
    );

    let rows = [measurement("svc1", r1), measurement("svcN", rn)];
    let lat = LatencyColumn {
        p50_us: vec![r1.p50_us(), rn.p50_us()],
        p99_us: vec![r1.p99_us(), rn.p99_us()],
        p999_us: vec![r1.p999_us(), rn.p999_us()],
        pause_p50_us: vec![r1.pause_p50_us(), rn.pause_p50_us()],
        pause_p99_us: vec![r1.pause_p99_us(), rn.pause_p99_us()],
    };
    match write_results_json_full("server", &rows, None, Some(&lat)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write results JSON: {e}"),
    }

    let l = &rn.ledger;
    let json = format!(
        "{{\n  \"comment\": \"Region service under adversity: {} sessions serving seeded \
         request traffic on one shared address space, with injected allocation faults \
         (bounded deterministic retry), injected worker panics (quarantine + reap), \
         footprint watermarks (degrade, then shed with a typed error), and a rotating \
         pointer-bearing index region whose deletion runs through the incremental \
         deleteregion budget. Books asserted byte-identical at 1/2/{last} OS threads, \
         across same-seed reruns, and across the deletion budget (bounded vs \
         stop-the-world); ledger conserved (submitted == completed + shed + failed); \
         clean audit and sanitize every round. Latencies and pauses are wall clock and \
         excluded from the books; latency_stw_us replays the identical run with the \
         monolithic deleteregion for the pause-time A/B.\",\n  \
         \"date\": \"{}\",\n  \"host\": {{ \"cores\": {}, \"os\": \"{}\" }},\n  \
         \"config\": {{ \"seed\": {seed}, \"quick\": {quick}, \"sessions\": {}, \
         \"requests_per_session\": {}, \"rounds\": {}, \"soft_pages\": {}, \
         \"hard_pages\": {}, \"max_attempts\": {}, \"fault_one_in\": {}, \
         \"panic_one_in\": {}, \"delete_budget\": \"{budget_str}\", \
         \"index_allocs\": {}, \"index_rotate\": {}, \"open_loop_period_ns\": {} }},\n  \
         \"ledger\": {{ \"submitted\": {}, \"completed\": {}, \"shed\": {}, \
         \"failed\": {}, \"retries\": {}, \"degraded\": {}, \"faults\": {}, \
         \"panics\": {} }},\n  \
         \"latency_us\": {{ \"p50\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3} }},\n  \
         \"latency_stw_us\": {{ \"p50\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3} }},\n  \
         \"pause_us\": {{ \"p50\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}, \
         \"increments\": {} }},\n  \
         \"pause_stw_us\": {{ \"p50\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}, \
         \"increments\": {} }},\n  \
         \"throughput_rps\": {:.0},\n  \
         \"footprint\": {{ \"high_water_pages\": {}, \"final_pages\": {} }},\n  \
         \"isolation\": {{ \"quarantined\": {}, \"reaped\": {}, \"sanitize_runs\": {} }},\n  \
         \"books\": \"{:016x}\",\n  \"threads_ab\": [1, 2, {last}]\n}}\n",
        cfg.sessions,
        today_utc(),
        host_cores(),
        std::env::consts::OS,
        cfg.sessions,
        cfg.requests_per_session,
        cfg.rounds,
        cfg.marks.soft_pages,
        cfg.marks.hard_pages,
        cfg.max_attempts,
        cfg.fault_one_in,
        cfg.panic_one_in,
        cfg.index_allocs,
        cfg.index_rotate,
        cfg.open_loop_period_ns,
        l.submitted,
        l.completed,
        l.shed,
        l.failed,
        l.retries,
        l.degraded,
        l.faults,
        l.panics,
        inc.p50_us(),
        inc.p99_us(),
        inc.p999_us(),
        mono.p50_us(),
        mono.p99_us(),
        mono.p999_us(),
        inc.pause_p50_us(),
        inc.pause_p99_us(),
        inc.pause_max_us(),
        inc.pause_ns.len(),
        mono.pause_p50_us(),
        mono.pause_p99_us(),
        mono.pause_max_us(),
        mono.pause_ns.len(),
        rn.throughput_rps(),
        rn.high_water_pages,
        rn.final_pages,
        rn.quarantined,
        rn.reaped,
        rn.sanitize_runs,
        rn.digest,
    );
    let out = std::env::var("BENCH_SERVER_OUT").unwrap_or_else(|_| "BENCH_server.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}
