//! Figure 10 — processor cycles lost to read and write stalls, from the
//! cache simulator replaying each run's access stream.
//!
//! Paper shape: BSD's automatic size segregation stalls less than the
//! other explicit allocators; moss's optimized two-region version has
//! roughly half the stalls of its naive single-region port.

use bench_harness::runner::{
    measure_malloc, measure_region, measure_region_slow, scale_from_env, Measurement,
};
use workloads::{MallocKind, RegionKind, Workload};

fn kstalls(m: &Measurement) -> (f64, f64) {
    let c = m.cache.expect("traced run");
    (c.read_stall_cycles as f64 / 1e3, c.write_stall_cycles as f64 / 1e3)
}

fn main() {
    let scale = scale_from_env();
    println!("Figure 10: kilocycles lost to stalls, read+write (write), scale {scale}");
    println!(
        "{:<9} {:>15} {:>15} {:>15} {:>15} {:>15} {:>15}",
        "Name", "Sun", "BSD", "Lea", "GC", "Reg", "unsafe"
    );
    for w in Workload::ALL {
        let mut row = format!("{:<9}", w.name());
        for kind in MallocKind::ALL {
            let m = measure_malloc(w, kind, scale, true);
            let (r, wr) = kstalls(&m);
            row += &format!(" {:>8.0} ({:>4.0})", r + wr, wr);
        }
        let reg = measure_region(w, RegionKind::Safe, scale, true);
        let (r, wr) = kstalls(&reg);
        row += &format!(" {:>8.0} ({:>4.0})", r + wr, wr);
        let unsf = measure_region(w, RegionKind::Unsafe, scale, true);
        let (r, wr) = kstalls(&unsf);
        row += &format!(" {:>8.0} ({:>4.0})", r + wr, wr);
        println!("{row}");
        if w == Workload::Moss {
            let slow = measure_region_slow(RegionKind::Safe, scale, true);
            let (sr, sw) = kstalls(&slow);
            let (or_, ow) = kstalls(&reg);
            println!(
                "{:<9}  moss 'Slow': {:.0}k stalls vs optimized {:.0}k — ratio {:.2}×",
                "",
                sr + sw,
                or_ + ow,
                (sr + sw) / (or_ + ow).max(1.0),
            );
        }
    }
    println!();
    println!("Shape check vs paper: the optimized moss layout roughly halves its");
    println!("stalls; allocators that segregate by size or pack regions tightly");
    println!("stall less than general-purpose heaps on the hot structures.");
}
