//! The region **service** engine: a long-lived, deterministic
//! request-serving workload with deadlines, retry, admission control,
//! and session isolation (DESIGN §16).
//!
//! The paper's headline claim is that region create/delete are cheap
//! enough to use *per request*. This module stress-tests that claim at
//! service scale: seeded traffic where every request gets its own
//! region (create → allocate → publish/share → delete), sessions churn
//! across [`region_core::par::ParRegionPool`] workers on one
//! [`simheap::SharedSpace`], and the harness reports throughput,
//! p50/p99/p999 latency, footprint high-water, and a **conserved
//! request ledger** — `submitted == completed + shed + failed`, retries
//! tallied separately.
//!
//! Robustness is the point, not an afterthought:
//!
//! * **deadlines + retry** — each (session × round) batch runs under a
//!   [`crate::supervise`] watchdog; a worker panic is retried once with
//!   deterministic linear backoff, and an injected allocation fault
//!   replays the failed request into a *fresh region* up to
//!   [`ServiceConfig::max_attempts`] times with the same backoff law;
//! * **admission control** — every request is admitted against
//!   [`region_core::Watermarks`] on the observed simulated-OS
//!   footprint: below soft it runs unchanged, in `[soft, hard)` it runs
//!   a *degraded* (shrunk) allocation plan, at or above hard it is shed
//!   with the typed [`RegionError::Overloaded`] — never a panic;
//! * **session isolation** — an injected worker panic strands a pool
//!   reference that quarantines only *that session's* pool region;
//!   [`region_core::par::ParRegionPool::reap_orphans`] reclaims it at
//!   the next round barrier while every other session keeps serving.
//!
//! # Determinism
//!
//! Everything in [`ServiceReport::encode_books`] is a pure function of
//! [`ServiceConfig`] — bit-identical across reruns at the same seed and
//! across 1/2/N service threads. The construction:
//!
//! * sessions are fully independent: each owns one shard of the shared
//!   space, its own pool cells, its own ledger, and per-request RNG
//!   streams seeded from `(seed, session, request)` (a crashed attempt
//!   replays identically);
//! * the *global* footprint is read only at round barriers, on the
//!   coordinator thread; within a round each session sees
//!   `round base + its own growth`, a schedule-independent quantity;
//! * pool region **identities** are assigned under a global lock and
//!   therefore schedule-dependent — no `ParRegionId` is ever folded
//!   into the digest or branched on, only *counts* of quarantine and
//!   reap events;
//! * wall-clock latencies are measured and reported but excluded from
//!   the digest and the encoded books.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use region_core::par::{ParRegionPool, ParThread, RefCell32};
use region_core::{
    AdmissionController, ParRegionError, RegionConfig, RegionError, RegionId, RegionRuntime,
    Watermarks,
};
use simheap::{Addr, HeapShard, SharedSpace, SpaceConfig};

use crate::supervise::{supervise, JobOutcome, SuperviseConfig};

/// Marker carried by every panic the service injects. Starts with the
/// chaos binary's own marker prefix so its panic-hook filter silences
/// these too; [`install_service_panic_filter`] matches the full string
/// for standalone binaries.
pub const SERVICE_PANIC_MARKER: &str = "par-chaos injected panic [service worker]";

/// Full configuration of one service run. `Copy` on purpose: jobs
/// capture it by value, and every field is a scalar so a config can be
/// logged or folded without ceremony.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Master seed; all per-request randomness derives from it.
    pub seed: u64,
    /// Logical sessions. Each owns one shard of the shared space, so
    /// this is also the space's worker count (1..=255).
    pub sessions: u32,
    /// Requests served per session over the whole run.
    pub requests_per_session: u32,
    /// Barrier-separated rounds the requests are spread over; the
    /// global footprint is re-read at each barrier.
    pub rounds: u32,
    /// Service worker threads draining session batches each round. Has
    /// no effect on any encoded book — only wall clock.
    pub threads: usize,
    /// Soft/hard admission watermarks on the simulated OS footprint.
    pub marks: Watermarks,
    /// Attempts per request when allocation faults are injected (min 1).
    pub max_attempts: u32,
    /// Linear-backoff base: retry `n` sleeps `backoff * n` first. Used
    /// both for in-request fault retries and for the supervisor's
    /// panic retries.
    pub backoff: Duration,
    /// Per-batch watchdog deadline handed to [`crate::supervise`].
    /// Generous by design: it is a liveness backstop, and a fired
    /// timeout (unlike every other failure here) would not be
    /// deterministic.
    pub deadline: Option<Duration>,
    /// Fail one in this many region allocations via
    /// [`region_core::FaultPlan`] (0 disables fault injection).
    pub fault_one_in: u64,
    /// Per-request panic dice (0 disables): a request that rolls a
    /// panic crashes its worker on the batch's first attempt, stranding
    /// a pool reference for the quarantine/reap path.
    pub panic_one_in: u64,
    /// Size of the shared address space.
    pub space_max_bytes: u64,
    /// Run the region sanitizer on every session at every round
    /// barrier (O(heap) — chaos and `REGION_SANITIZE=1` runs want it,
    /// throughput measurements do not).
    pub sanitize_rounds: bool,
    /// Work-increment budget for every `deleteregion` in the service
    /// ([`RegionRuntime::set_delete_budget`]): `u64::MAX` is the
    /// historical stop-the-world deletion, anything smaller runs each
    /// deletion as bounded increments whose individual pauses land in
    /// [`ServiceReport::pause_ns`]. The budget changes *when* deletion
    /// work is timed, never what work happens — books are identical
    /// across budgets.
    pub delete_budget: u64,
    /// Pointer-bearing index entries allocated per completed request
    /// into the session's rotating index region (0 disables the index).
    /// Each entry holds two counted pointers into the cache region, so
    /// deleting the index is a real Figure-7 cleanup walk.
    pub index_allocs: u32,
    /// Completed requests between index rotations (0 = never rotate).
    /// Each rotation deletes the accumulated index region in-path —
    /// the service's dominant pause, and the one the budget bounds.
    pub index_rotate: u32,
    /// Open-loop arrival period in nanoseconds (0 = closed loop).
    /// When set, request `i` of each session is scheduled to arrive at
    /// `session epoch + i * period + jitter` on a seeded deterministic
    /// schedule; queueing delay (service start minus scheduled
    /// arrival) is measured separately from service time into
    /// [`ServiceReport::queue_ns`]. Arrival timing never touches the
    /// heap, so the books are identical to the closed-loop run.
    pub open_loop_period_ns: u64,
}

impl ServiceConfig {
    /// The default-scale service soak: enough traffic to climb through
    /// both watermarks, with faults and panics on.
    pub fn full(seed: u64) -> ServiceConfig {
        ServiceConfig {
            seed,
            sessions: 6,
            requests_per_session: 360,
            rounds: 8,
            threads: 2,
            marks: Watermarks::new(170, 200),
            max_attempts: 3,
            // Zero backoff: retries spin immediately. The old 40 µs
            // linear backoff put `thread::sleep` wake-up latency — not
            // region work — at the top of the latency tail.
            backoff: Duration::ZERO,
            deadline: Some(Duration::from_secs(30)),
            fault_one_in: 23,
            panic_one_in: 61,
            space_max_bytes: 256 << 20,
            sanitize_rounds: false,
            delete_budget: u64::MAX,
            index_allocs: 24,
            index_rotate: 45,
            open_loop_period_ns: 0,
        }
    }

    /// Reduced-scale variant for `--quick` / CI: fewer sessions and
    /// requests, proportionally lower watermarks, same structure.
    pub fn quick(seed: u64) -> ServiceConfig {
        ServiceConfig {
            sessions: 4,
            requests_per_session: 80,
            rounds: 4,
            marks: Watermarks::new(40, 48),
            fault_one_in: 19,
            panic_one_in: 37,
            index_rotate: 20,
            ..ServiceConfig::full(seed)
        }
    }
}

/// The conserved request ledger, per session or summed over the fleet.
///
/// The service-level invariant — checked at every round barrier — is
/// [`Ledger::conserves`]: every submitted request is accounted for
/// exactly once as completed, shed, or failed. Retries, faults, panics,
/// and degraded plans are tallied separately; they describe *how* a
/// request resolved, not *whether*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Requests that reached a resolution.
    pub submitted: u64,
    /// Requests served to completion (possibly degraded, possibly
    /// after retries).
    pub completed: u64,
    /// Requests refused with [`RegionError::Overloaded`].
    pub shed: u64,
    /// Requests that exhausted every attempt against injected faults.
    pub failed: u64,
    /// Replays: in-request fault retries plus post-panic batch resumes.
    pub retries: u64,
    /// Requests served with a shrunk (degraded) allocation plan.
    pub degraded: u64,
    /// Injected allocation faults observed (including on retries and on
    /// cache growth).
    pub faults: u64,
    /// Injected worker panics taken.
    pub panics: u64,
}

impl Ledger {
    /// The conservation invariant: nothing lost, nothing double-counted.
    pub fn conserves(&self) -> bool {
        self.submitted == self.completed + self.shed + self.failed
    }

    /// Adds another ledger's counts into this one.
    pub fn add(&mut self, other: &Ledger) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.shed += other.shed;
        self.failed += other.failed;
        self.retries += other.retries;
        self.degraded += other.degraded;
        self.faults += other.faults;
        self.panics += other.panics;
    }

    /// Canonical little-endian byte encoding, for byte-identity
    /// assertions across reruns.
    pub fn encode(&self) -> Vec<u8> {
        let fields = [
            self.submitted,
            self.completed,
            self.shed,
            self.failed,
            self.retries,
            self.degraded,
            self.faults,
            self.panics,
        ];
        let mut out = Vec::with_capacity(fields.len() * 8);
        for f in fields {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }
}

/// Everything one service run reports.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Fleet-wide ledger (the per-session ledgers summed).
    pub ledger: Ledger,
    /// Per-session ledgers, in session order — the isolation property
    /// tests compare these directly.
    pub per_session: Vec<Ledger>,
    /// FNV fold of the whole observable history (admission verdicts,
    /// error codes, allocation addresses, quarantine/reap counts).
    pub digest: u64,
    /// Largest admission-input footprint any request observed, in
    /// simulated OS pages.
    pub high_water_pages: u64,
    /// Final summed footprint of all session shards, in pages.
    pub final_pages: u64,
    /// Pool regions quarantined by stranded panic references.
    pub quarantined: u64,
    /// Quarantined regions reclaimed by the reaper.
    pub reaped: u64,
    /// Sanitizer passes run at round barriers (0 unless
    /// [`ServiceConfig::sanitize_rounds`]).
    pub sanitize_runs: u64,
    /// All per-request wall-clock latencies, sorted ascending, in
    /// nanoseconds. Reported, never encoded.
    pub lat_ns: Vec<u64>,
    /// Wall clock of every `deleteregion` pause the service took —
    /// one entry per deletion *increment* (so one entry per deletion
    /// when the budget is unbounded), sorted ascending, in
    /// nanoseconds. Reported, never encoded.
    pub pause_ns: Vec<u64>,
    /// Open-loop queueing delays (service start minus scheduled
    /// arrival), sorted ascending, in nanoseconds. Empty in
    /// closed-loop runs. Reported, never encoded.
    pub queue_ns: Vec<u64>,
    /// Wall clock of the whole run.
    pub elapsed: Duration,
}

/// Nearest-rank quantile on an ascending-sorted vector.
fn quantile_sorted(v: &[u64], num: u64, den: u64) -> u64 {
    if v.is_empty() {
        return 0;
    }
    let idx = ((v.len() as u64 - 1) * num) / den;
    v[idx as usize]
}

impl ServiceReport {
    /// Latency at quantile `num/den` (nearest-rank on the sorted vec).
    fn quantile_ns(&self, num: u64, den: u64) -> u64 {
        quantile_sorted(&self.lat_ns, num, den)
    }

    /// Median request latency in (fractional) microseconds.
    pub fn p50_us(&self) -> f64 {
        self.quantile_ns(50, 100) as f64 / 1_000.0
    }

    /// 99th-percentile request latency in (fractional) microseconds.
    pub fn p99_us(&self) -> f64 {
        self.quantile_ns(99, 100) as f64 / 1_000.0
    }

    /// 99.9th-percentile request latency in (fractional) microseconds.
    pub fn p999_us(&self) -> f64 {
        self.quantile_ns(999, 1000) as f64 / 1_000.0
    }

    /// Median `deleteregion` pause in (fractional) microseconds.
    pub fn pause_p50_us(&self) -> f64 {
        quantile_sorted(&self.pause_ns, 50, 100) as f64 / 1_000.0
    }

    /// 99th-percentile `deleteregion` pause in (fractional)
    /// microseconds — the headline the work-increment budget bounds.
    pub fn pause_p99_us(&self) -> f64 {
        quantile_sorted(&self.pause_ns, 99, 100) as f64 / 1_000.0
    }

    /// Worst single `deleteregion` pause in (fractional) microseconds.
    pub fn pause_max_us(&self) -> f64 {
        self.pause_ns.last().copied().unwrap_or(0) as f64 / 1_000.0
    }

    /// Median open-loop queueing delay in (fractional) microseconds.
    pub fn queue_p50_us(&self) -> f64 {
        quantile_sorted(&self.queue_ns, 50, 100) as f64 / 1_000.0
    }

    /// 99th-percentile open-loop queueing delay in (fractional)
    /// microseconds.
    pub fn queue_p99_us(&self) -> f64 {
        quantile_sorted(&self.queue_ns, 99, 100) as f64 / 1_000.0
    }

    /// Resolved requests per second over the run's wall clock.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.ledger.submitted as f64 / secs
    }

    /// Canonical byte encoding of every deterministic book: the fleet
    /// ledger, each session ledger, the digest, and the footprint and
    /// quarantine counters. Two same-seed runs — at any thread count —
    /// must produce byte-identical output.
    pub fn encode_books(&self) -> Vec<u8> {
        let mut out = self.ledger.encode();
        for s in &self.per_session {
            out.extend_from_slice(&s.encode());
        }
        for v in [
            self.digest,
            self.high_water_pages,
            self.final_pages,
            self.quarantined,
            self.reaped,
            self.sanitize_runs,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }
}

/// xorshift64* with a splitmix-scrambled seed — the same generator the
/// chaos soak uses, duplicated here so the engine stays dependency-free.
struct Rng(u64);

impl Rng {
    fn seeded(seed: u64) -> Rng {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng((z ^ (z >> 31)) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// FNV-1a fold, the digest primitive shared with the chaos soak.
fn fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x1000_0000_01b3)
}

/// Error fold for the digest, one stable tag per variant. Scalar
/// payloads only — never a schedule-dependent region identity.
fn err_fold(e: RegionError) -> u64 {
    match e {
        RegionError::OutOfMemory { requested, limit } => fold(fold(1, requested), limit),
        RegionError::RegionDeleted { .. } => 2,
        RegionError::RegionDoomed { .. } => 12,
        RegionError::DeleteBlocked { rc, .. } => fold(3, rc as u64),
        RegionError::SizeOverflow { .. } => 4,
        RegionError::ObjectTooLarge { bytes } => fold(5, u64::from(bytes)),
        RegionError::ZeroAlloc => 6,
        RegionError::NullDeref => 7,
        RegionError::StackOverflow { .. } => 8,
        RegionError::FaultInjected { count, .. } => fold(9, count),
        RegionError::Snapshot(_) => 10,
        RegionError::Overloaded { pages, hard_pages } => fold(fold(11, pages), hard_pages),
    }
}

/// One request's allocation plan, already degraded if admission said so.
struct Plan {
    allocs: u32,
    size: u32,
    cache: u32,
}

/// Bytes appended to the session's long-lived cache region per
/// completed request — the footprint staircase that walks the service
/// through the watermarks.
const CACHE_CHUNK: u32 = 384;

fn plan_for(rng: &mut Rng, degraded: bool) -> Plan {
    let allocs = 2 + rng.below(4) as u32; // 2..=5 allocations
    let size = 64 + (rng.below(448) as u32 & !3); // 64..=508 bytes, word-aligned
    if degraded {
        // Graceful degradation: half the allocations at half the size,
        // and half the cache growth — the service slows its own
        // approach to the hard watermark instead of falling over it.
        Plan { allocs: (allocs / 2).max(1), size: (size / 2).max(16), cache: CACHE_CHUNK / 2 }
    } else {
        Plan { allocs, size, cache: CACHE_CHUNK }
    }
}

/// Everything one session owns. Lives in an `Arc<Mutex<..>>` so the
/// state survives a crashed worker attempt; panics are injected only
/// *after* the lock is released, so the mutex is never poisoned on the
/// injected path (the `lock` helper recovers regardless).
struct SessionSlot {
    rt: RegionRuntime<HeapShard>,
    cells: Vec<Arc<RefCell32>>,
    adm: AdmissionController,
    ledger: Ledger,
    digest: u64,
    /// Cursor into this session's request stream; a retried batch
    /// resumes here.
    next_req: u32,
    /// Request region left half-served by a crashed attempt; the retry
    /// deletes it before resuming.
    in_flight: Option<RegionId>,
    /// Pool regions this session's crashes stranded references to;
    /// drained (quarantined + reaped) at the round barrier.
    poisoned: Vec<region_core::par::ParRegionId>,
    /// Long-lived cache region driving the footprint staircase.
    cache: Option<RegionId>,
    /// Rotating pointer-bearing index region: entries allocated per
    /// completed request point into the cache, and every
    /// [`ServiceConfig::index_rotate`] completions the whole region is
    /// deleted in-path — the deletion the budget bounds.
    index: Option<RegionId>,
    /// Descriptor of one index entry (two counted pointer fields).
    index_desc: region_core::DescId,
    /// Completed requests since the last index rotation.
    since_rotate: u32,
    /// This session's footprint at the current round's barrier.
    round_start_pages: u64,
    lat_ns: Vec<u64>,
    pause_ns: Vec<u64>,
    queue_ns: Vec<u64>,
    /// Wall-clock origin of this session's open-loop arrival schedule,
    /// pinned when it serves its first request.
    epoch: Option<Instant>,
}

fn lock(slot: &Arc<Mutex<SessionSlot>>) -> MutexGuard<'_, SessionSlot> {
    slot.lock().unwrap_or_else(|p| p.into_inner())
}

fn own_pages(rt: &RegionRuntime<HeapShard>) -> u64 {
    rt.data_pages() + rt.map_pages()
}

/// Outcome of [`serve_one`]: either the request resolved, or the
/// worker must now take its injected panic (after releasing the slot
/// lock).
enum Served {
    Done,
    PanicNow,
}

/// Serves request `req` of session `session`: admission → plan →
/// (create → allocate → publish/share → delete) with bounded fault
/// retry. All randomness is re-derived from `(seed, session, req)`, so
/// a post-panic replay of the same request is bit-identical.
fn serve_one(
    slot: &mut SessionSlot,
    t: &mut ParThread,
    pool: &ParRegionPool,
    cfg: ServiceConfig,
    base_pages: u64,
    session: u32,
    req: u32,
    attempt: u32,
) -> Served {
    let t0 = Instant::now();
    let mut rng = Rng::seeded(fold(fold(cfg.seed, u64::from(session)), u64::from(req)));

    // Admission: round-barrier base plus this session's own growth — a
    // schedule-independent footprint view.
    let fp = base_pages + (own_pages(&slot.rt) - slot.round_start_pages);
    let adm = slot.adm.admit(fp);
    slot.digest = fold(slot.digest, adm.code());
    if adm == region_core::Admission::Shed {
        let e = RegionError::Overloaded { pages: fp, hard_pages: slot.adm.marks().hard_pages };
        slot.digest = fold(slot.digest, err_fold(e));
        slot.ledger.submitted += 1;
        slot.ledger.shed += 1;
        slot.lat_ns.push(t0.elapsed().as_nanos() as u64);
        return Served::Done;
    }
    let degraded = adm == region_core::Admission::Degrade;
    let plan = plan_for(&mut rng, degraded);

    // Injected worker crash: only on the batch's first attempt
    // (supervise passes attempt 0 on the first try), so the
    // supervisor's single retry deterministically resolves the request.
    // Strand a pool reference (quarantines this session's pool region)
    // and leave a half-served request region for the retry to clean up.
    if cfg.panic_one_in > 0 && attempt == 0 && rng.below(cfg.panic_one_in) == 0 {
        let pr = t.create_region();
        t.retain(pr); // the reference dies with the worker -> orphaned
        slot.poisoned.push(pr);
        if let Ok(r) = slot.rt.try_new_region() {
            let _ = slot.rt.try_rstralloc(r, 64);
            slot.in_flight = Some(r);
        }
        slot.ledger.panics += 1;
        slot.digest = fold(slot.digest, 0xdead);
        return Served::PanicNow;
    }

    // Bounded retry against injected allocation faults: each attempt
    // replays the whole request into a fresh region, preceded by the
    // deterministic linear backoff `backoff * retry`.
    let mut ok = false;
    for a in 1..=cfg.max_attempts.max(1) {
        if a > 1 {
            slot.ledger.retries += 1;
            std::thread::sleep(cfg.backoff.saturating_mul(a - 1));
        }
        match attempt_request(slot, t, pool, &plan, req) {
            Ok(d) => {
                slot.digest = fold(slot.digest, d);
                ok = true;
                break;
            }
            Err(e) => {
                slot.ledger.faults += 1;
                slot.digest = fold(slot.digest, err_fold(e));
            }
        }
    }
    slot.ledger.submitted += 1;
    let bounded = cfg.delete_budget != u64::MAX;
    if ok {
        slot.ledger.completed += 1;
        if degraded {
            slot.ledger.degraded += 1;
        }
        // With a bounded budget the response is ready here: the
        // post-request upkeep (cache growth, index rotation) runs as
        // budgeted increments *after* the latency window closes, each
        // pause recorded separately. Stop-the-world mode keeps the
        // historical accounting — upkeep, including the monolithic
        // index deletion, lands inside the request it rode in on.
        // Identical heap operations either way; only the clock moves.
        if bounded {
            slot.lat_ns.push(t0.elapsed().as_nanos() as u64);
        }
        let target = grow_cache(slot, plan.cache);
        grow_index(slot, cfg, target);
        if !bounded {
            slot.lat_ns.push(t0.elapsed().as_nanos() as u64);
        }
    } else {
        slot.ledger.failed += 1;
        slot.lat_ns.push(t0.elapsed().as_nanos() as u64);
    }
    Served::Done
}

/// One attempt at a request: fresh region, publish a pool region into
/// one of the session's cells, run the allocation plan, unpublish,
/// delete both. Cleanup runs on the fault path too — a failed attempt
/// leaves no residue for the next one.
fn attempt_request(
    slot: &mut SessionSlot,
    t: &mut ParThread,
    pool: &ParRegionPool,
    plan: &Plan,
    req: u32,
) -> Result<u64, RegionError> {
    let r = slot.rt.try_new_region()?;
    let pr = t.create_region();
    let cell = &slot.cells[req as usize % slot.cells.len()];
    t.retain(pr); // the request's own live reference
    t.exchange_ref(cell, Some(pr)); // publish for other threads to see
    let mut d = 0u64;
    let res: Result<(), RegionError> = (|| {
        for _ in 0..plan.allocs {
            let a = slot.rt.try_rstralloc(r, plan.size)?;
            d = fold(d, u64::from(a.0));
        }
        Ok(())
    })();
    t.exchange_ref(cell, None); // unpublish
    t.release(pr);
    let deleted = pool.try_delete(pr);
    debug_assert!(deleted, "request pool region had residual counts");
    let del = slot.rt.try_delete_region(r);
    debug_assert!(del.is_ok(), "request region delete blocked: {del:?}");
    res.map(|()| fold(d, 7))
}

/// Appends `bytes` to the session's long-lived cache region. A fault
/// here is tolerated (the cache just grows slower) but still tallied.
/// Returns the freshly cached block's address ([`Addr::NULL`] when
/// nothing was cached) so the index can point at it.
fn grow_cache(slot: &mut SessionSlot, bytes: u32) -> Addr {
    if bytes == 0 {
        return Addr::NULL;
    }
    if slot.cache.is_none() {
        match slot.rt.try_new_region() {
            Ok(r) => slot.cache = Some(r),
            Err(e) => {
                slot.ledger.faults += 1;
                slot.digest = fold(slot.digest, err_fold(e));
                return Addr::NULL;
            }
        }
    }
    let cr = slot.cache.expect("just ensured");
    match slot.rt.try_rstralloc(cr, bytes) {
        Ok(a) => {
            slot.digest = fold(slot.digest, u64::from(a.0));
            a
        }
        Err(e) => {
            slot.ledger.faults += 1;
            slot.digest = fold(slot.digest, err_fold(e));
            Addr::NULL
        }
    }
}

/// Appends [`ServiceConfig::index_allocs`] pointer-bearing entries to
/// the session's rotating index region, each pointing (twice, through
/// counted write barriers) at the request's cache block, then rotates —
/// deletes the whole index through the deletion budget — every
/// [`ServiceConfig::index_rotate`] completions. Allocation faults are
/// tolerated exactly like cache growth.
fn grow_index(slot: &mut SessionSlot, cfg: ServiceConfig, target: Addr) {
    if cfg.index_allocs == 0 {
        return;
    }
    if slot.index.is_none() {
        match slot.rt.try_new_region() {
            Ok(r) => slot.index = Some(r),
            Err(e) => {
                slot.ledger.faults += 1;
                slot.digest = fold(slot.digest, err_fold(e));
                return;
            }
        }
    }
    let ir = slot.index.expect("just ensured");
    for _ in 0..cfg.index_allocs {
        match slot.rt.try_ralloc(ir, slot.index_desc) {
            Ok(a) => {
                if !target.is_null() {
                    slot.rt.store_ptr_region(a + 4, target);
                    slot.rt.store_ptr_region(a + 12, target);
                }
                slot.digest = fold(slot.digest, u64::from(a.0));
            }
            Err(e) => {
                slot.ledger.faults += 1;
                slot.digest = fold(slot.digest, err_fold(e));
            }
        }
    }
    slot.since_rotate += 1;
    if cfg.index_rotate > 0 && slot.since_rotate >= cfg.index_rotate {
        slot.since_rotate = 0;
        slot.index = None;
        drain_delete(slot, ir);
    }
}

/// Deletes `r` through the slot runtime's configured budget, timing
/// every increment as one recorded pause. With an unbounded budget this
/// is one increment — the whole stop-the-world deletion as a single
/// pause entry.
fn drain_delete(slot: &mut SessionSlot, r: RegionId) {
    loop {
        let t = Instant::now();
        let step = slot.rt.try_delete_region_step(r);
        slot.pause_ns.push(t.elapsed().as_nanos() as u64);
        match step {
            Ok(region_core::DeleteProgress::Done) => return,
            Ok(region_core::DeleteProgress::Parked) => {}
            Err(e) => {
                debug_assert!(false, "index region delete failed: {e:?}");
                return;
            }
        }
    }
}

/// Runs the full service and returns its report. Panics (failing the
/// harness) if any internal invariant breaks: an escaped worker panic,
/// a dirty pool audit, a non-conserving ledger at a round barrier, or a
/// dirty sanitize pass when [`ServiceConfig::sanitize_rounds`] is on.
pub fn run_service(cfg: &ServiceConfig) -> ServiceReport {
    let cfg = *cfg;
    assert!(cfg.sessions >= 1 && cfg.sessions <= 255, "sessions must be 1..=255");
    let started = Instant::now();
    let space = SharedSpace::new(SpaceConfig { max_bytes: cfg.space_max_bytes, workers: cfg.sessions });
    let pool = ParRegionPool::new();

    let slots: Vec<Arc<Mutex<SessionSlot>>> = (0..cfg.sessions)
        .map(|s| {
            let mut rt = RegionRuntime::with_config_on(RegionConfig::default(), space.shard(s));
            if cfg.fault_one_in > 0 {
                rt.set_fault_plan(
                    region_core::FaultPlan::seeded(fold(cfg.seed, 0x5eed ^ u64::from(s)))
                        .fail_allocs_one_in(cfg.fault_one_in),
                );
            }
            rt.set_delete_budget(cfg.delete_budget);
            // struct idx { int tag; struct ent @hot; int pad; struct ent @cold; }
            let index_desc =
                rt.register_type(region_core::TypeDescriptor::new("idx", 16, vec![4, 12]));
            Arc::new(Mutex::new(SessionSlot {
                rt,
                cells: (0..4).map(|_| pool.register_cell()).collect(),
                adm: AdmissionController::new(cfg.marks),
                ledger: Ledger::default(),
                digest: fold(0xcbf2_9ce4_8422_2325, u64::from(s)),
                next_req: 0,
                in_flight: None,
                poisoned: Vec::new(),
                cache: None,
                index: None,
                index_desc,
                since_rotate: 0,
                round_start_pages: 0,
                lat_ns: Vec::new(),
                pause_ns: Vec::new(),
                queue_ns: Vec::new(),
                epoch: None,
            }))
        })
        .collect();

    let chunk = cfg.requests_per_session.div_ceil(cfg.rounds.max(1));
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut quarantined = 0u64;
    let mut reaped = 0u64;
    let mut sanitize_runs = 0u64;
    let mut high_water = 0u64;
    let mut panics_seen = 0u64;

    for round in 0..cfg.rounds.max(1) {
        // Barrier: read the global footprint single-threaded, and pin
        // each session's round-start pages.
        let mut base = 0u64;
        for slot in &slots {
            let mut s = lock(slot);
            let p = own_pages(&s.rt);
            s.round_start_pages = p;
            base += p;
        }
        let hi = (chunk * (round + 1)).min(cfg.requests_per_session);

        let jobs: Vec<Box<dyn Fn(u32) + Send + Sync>> = slots
            .iter()
            .enumerate()
            .map(|(si, slot)| {
                let slot = Arc::clone(slot);
                let pool = pool.clone();
                let session = si as u32;
                let job = move |attempt: u32| {
                    let mut t = pool.register_thread();
                    let mut panic_now = false;
                    {
                        let mut s = lock(&slot);
                        // A retried batch first clears the crashed
                        // attempt's half-served region, then resumes at
                        // the cursor — the crashed request replays.
                        if attempt > 0 {
                            if let Some(r) = s.in_flight.take() {
                                let del = s.rt.try_delete_region(r);
                                debug_assert!(del.is_ok(), "crash residue delete blocked");
                            }
                            s.ledger.retries += 1;
                        }
                        while s.next_req < hi {
                            let req = s.next_req;
                            // Open-loop arrivals: request `req` is due at
                            // `epoch + req * period + jitter` on a seeded
                            // schedule that ignores service times. Early →
                            // sleep until due (zero queueing delay); late →
                            // the overshoot is queueing delay, measured
                            // separately from service time. Never touches
                            // the heap, so the books are period-invariant.
                            let mut queued = 0u64;
                            if cfg.open_loop_period_ns > 0 {
                                let epoch = *s.epoch.get_or_insert_with(Instant::now);
                                let mut arng = Rng::seeded(fold(
                                    fold(cfg.seed ^ 0x0a11, u64::from(session)),
                                    u64::from(req),
                                ));
                                let jitter = arng.below(cfg.open_loop_period_ns / 2 + 1);
                                let due = u64::from(req) * cfg.open_loop_period_ns + jitter;
                                let now = epoch.elapsed().as_nanos() as u64;
                                if now < due {
                                    std::thread::sleep(Duration::from_nanos(due - now));
                                } else {
                                    queued = now - due;
                                }
                            }
                            match serve_one(&mut s, &mut t, &pool, cfg, base, session, req, attempt)
                            {
                                Served::Done => {
                                    if cfg.open_loop_period_ns > 0 {
                                        s.queue_ns.push(queued);
                                    }
                                    s.next_req += 1;
                                }
                                Served::PanicNow => {
                                    panic_now = true;
                                    break;
                                }
                            }
                        }
                    } // slot lock released before the injected panic
                    if panic_now {
                        panic!(
                            "{SERVICE_PANIC_MARKER} (session {session} round {round} \
                             attempt {attempt})"
                        );
                    }
                };
                Box::new(job) as Box<dyn Fn(u32) + Send + Sync>
            })
            .collect();

        let reports = supervise(
            jobs,
            &SuperviseConfig {
                workers: cfg.threads.max(1),
                deadline: cfg.deadline,
                max_attempts: 2,
                backoff: cfg.backoff,
                retry_timeouts: true,
            },
        );

        // Supervisor books must agree with the slot books: one retry
        // per injected panic, nothing escaped, nothing timed out.
        let mut round_panics = 0u64;
        for rep in &reports {
            match &rep.outcome {
                JobOutcome::Completed(()) => {}
                JobOutcome::Panicked(msg) => {
                    panic!("service worker {} exhausted retries: {msg}", rep.job)
                }
                JobOutcome::TimedOut(d) => {
                    panic!("service worker {} missed its deadline ({d:?})", rep.job)
                }
            }
            round_panics += u64::from(rep.attempts - 1);
        }
        let slot_panics: u64 = slots
            .iter()
            .map(|s| {
                let s = lock(s);
                s.ledger.panics
            })
            .sum();

        // Round barrier verification: quarantine + reap the poisoned
        // pool regions, audit the pool, check ledger conservation, and
        // optionally sanitize every session heap.
        let mut round_fleet = Ledger::default();
        for slot in &slots {
            let mut s = lock(slot);
            debug_assert!(s.in_flight.is_none(), "in-flight residue survived the round");
            for pr in std::mem::take(&mut s.poisoned) {
                match pool.try_delete_checked(pr) {
                    Err(ParRegionError::BlockedByOrphans { .. }) => quarantined += 1,
                    other => panic!("stranded region was not orphan-blocked: {other:?}"),
                }
            }
            round_fleet.add(&s.ledger);
            if cfg.sanitize_rounds {
                let rep = s.rt.sanitize();
                assert!(rep.is_clean(), "session sanitize dirty after round {round}: {rep}");
                assert!(s.rt.violations().is_empty(), "rc violations after round {round}");
                sanitize_runs += 1;
            }
            high_water = high_water.max(s.adm.high_water_pages());
        }
        assert_eq!(
            round_panics,
            slot_panics - panics_seen,
            "supervisor retry count diverged from injected panic count"
        );
        panics_seen = slot_panics;
        if !pool.quarantined().is_empty() {
            let rep = pool.reap_orphans();
            assert!(rep.is_fully_reclaimed(), "reap left regions blocked: {rep}");
            reaped += rep.reaped.len() as u64 + rep.settled.len() as u64;
        }
        let audit = pool.audit();
        assert!(audit.is_clean(), "pool audit dirty after round {round}: {audit}");
        assert!(
            round_fleet.conserves(),
            "ledger does not conserve after round {round}: {round_fleet:?}"
        );
        digest = fold(fold(digest, u64::from(round)), quarantined);
        digest = fold(digest, reaped);
    }

    // Teardown: drop the cache regions, fold each session's books in
    // session order, and run a final sanitize pass per session.
    let mut fleet = Ledger::default();
    let mut per_session = Vec::with_capacity(slots.len());
    let mut lat_ns = Vec::new();
    let mut pause_ns = Vec::new();
    let mut queue_ns = Vec::new();
    let mut final_pages = 0u64;
    for slot in &slots {
        let mut s = lock(slot);
        // Index before cache: index entries hold counted references into
        // the cache, so the cache delete would be refused while they live.
        if let Some(ir) = s.index.take() {
            drain_delete(&mut s, ir);
        }
        if let Some(cr) = s.cache.take() {
            let del = s.rt.try_delete_region(cr);
            debug_assert!(del.is_ok(), "cache region delete blocked: {del:?}");
        }
        let rep = s.rt.sanitize();
        assert!(rep.is_clean(), "final session sanitize dirty: {rep}");
        sanitize_runs += 1;
        fleet.add(&s.ledger);
        per_session.push(s.ledger);
        digest = fold(digest, s.digest);
        final_pages += own_pages(&s.rt);
        lat_ns.append(&mut s.lat_ns);
        pause_ns.append(&mut s.pause_ns);
        queue_ns.append(&mut s.queue_ns);
    }
    lat_ns.sort_unstable();
    pause_ns.sort_unstable();
    queue_ns.sort_unstable();
    assert!(fleet.conserves(), "final ledger does not conserve: {fleet:?}");
    assert_eq!(
        fleet.submitted,
        u64::from(cfg.sessions) * u64::from(cfg.requests_per_session),
        "requests lost or invented"
    );

    ServiceReport {
        ledger: fleet,
        per_session,
        digest,
        high_water_pages: high_water,
        final_pages,
        quarantined,
        reaped,
        sanitize_runs,
        lat_ns,
        pause_ns,
        queue_ns,
        elapsed: started.elapsed(),
    }
}

/// Installs a panic hook that silences the service's own injected
/// panics (they carry [`SERVICE_PANIC_MARKER`]) while reporting every
/// other panic through the previously installed hook.
pub fn install_service_panic_filter() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .map(|s| s.contains(SERVICE_PANIC_MARKER))
            .or_else(|| {
                payload.downcast_ref::<&str>().map(|s| s.contains(SERVICE_PANIC_MARKER))
            })
            .unwrap_or(false);
        if !injected {
            prev(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> ServiceConfig {
        ServiceConfig {
            sessions: 2,
            requests_per_session: 24,
            rounds: 3,
            threads: 1,
            marks: Watermarks::new(10, 16),
            fault_one_in: 7,
            panic_one_in: 11,
            backoff: Duration::from_micros(1),
            index_allocs: 2,
            index_rotate: 6, // several in-run rotations across 24 requests
            ..ServiceConfig::full(seed)
        }
    }

    #[test]
    fn same_seed_reruns_are_byte_identical() {
        install_service_panic_filter();
        let a = run_service(&tiny(42));
        let b = run_service(&tiny(42));
        assert_eq!(a.encode_books(), b.encode_books());
        assert!(a.ledger.conserves());
        assert!(a.ledger.panics > 0, "panic path never exercised");
        assert!(a.ledger.faults > 0, "fault path never exercised");
        assert_eq!(a.quarantined, a.ledger.panics, "every panic quarantines one region");
        assert_eq!(a.quarantined, a.reaped, "every quarantined region was reaped");
    }

    #[test]
    fn thread_count_does_not_change_the_books() {
        install_service_panic_filter();
        let base = run_service(&tiny(7));
        for threads in [2, 4] {
            let cfg = ServiceConfig { threads, ..tiny(7) };
            let r = run_service(&cfg);
            assert_eq!(base.encode_books(), r.encode_books(), "threads={threads} diverged");
        }
    }

    #[test]
    fn watermarks_degrade_then_shed() {
        install_service_panic_filter();
        // Probe unbounded first, then pin the watermarks just under the
        // observed high water: the staircase alone must now walk the
        // service through degrade into shed.
        let free = ServiceConfig {
            requests_per_session: 120,
            fault_one_in: 0,
            panic_one_in: 0,
            marks: Watermarks::unbounded(),
            ..tiny(3)
        };
        let probe = run_service(&free);
        assert_eq!(probe.ledger.shed, 0);
        assert_eq!(probe.ledger.degraded, 0);
        assert_eq!(probe.ledger.completed, probe.ledger.submitted);
        let hard = probe.high_water_pages * 2 / 3;
        let cfg = ServiceConfig { marks: Watermarks::new(probe.high_water_pages / 2, hard), ..free };
        let r = run_service(&cfg);
        assert!(r.ledger.degraded > 0, "never degraded: {:?}", r.ledger);
        assert!(r.ledger.shed > 0, "never shed: {:?}", r.ledger);
        assert!(r.ledger.completed > 0, "nothing completed: {:?}", r.ledger);
        assert!(r.high_water_pages >= hard, "high water below the hard mark");
    }

    #[test]
    fn latencies_and_throughput_are_populated() {
        install_service_panic_filter();
        let r = run_service(&tiny(9));
        assert_eq!(r.lat_ns.len() as u64, r.ledger.submitted);
        assert!(r.p50_us() <= r.p99_us() && r.p99_us() <= r.p999_us());
        assert!(r.throughput_rps() > 0.0);
        assert!(!r.pause_ns.is_empty(), "index rotation never paused the service");
        assert!(r.pause_p50_us() <= r.pause_p99_us());
        assert!(r.queue_ns.is_empty(), "closed-loop run measured queueing delay");
    }

    #[test]
    fn delete_budget_does_not_change_the_books() {
        install_service_panic_filter();
        let base = run_service(&tiny(13));
        assert!(base.pause_ns.len() as u64 >= 2, "no rotations to compare");
        for budget in [64, 1] {
            let cfg = ServiceConfig { delete_budget: budget, ..tiny(13) };
            let r = run_service(&cfg);
            assert_eq!(base.encode_books(), r.encode_books(), "budget={budget} diverged");
            assert!(r.pause_ns.len() >= base.pause_ns.len());
            if budget == 1 {
                assert!(
                    r.pause_ns.len() > base.pause_ns.len(),
                    "budget=1 produced no extra increments"
                );
            }
        }
    }

    #[test]
    fn open_loop_measures_queueing_without_touching_the_books() {
        install_service_panic_filter();
        let closed = run_service(&tiny(21));
        let cfg = ServiceConfig { open_loop_period_ns: 5_000, ..tiny(21) };
        let open = run_service(&cfg);
        assert_eq!(closed.encode_books(), open.encode_books(), "arrival timing leaked into books");
        assert_eq!(open.queue_ns.len() as u64, open.ledger.submitted);
        assert!(open.queue_p50_us() <= open.queue_p99_us());
    }
}
