//! The six allocation-intensive benchmark programs of Gay & Aiken's
//! evaluation (§5.1), re-implemented over the simulated heap in two
//! source variants each — malloc/free and regions — exactly as the paper
//! ran them.
//!
//! | Benchmark | What it does | Region structure (from §5.1) |
//! |---|---|---|
//! | [`cfrac`] | factors a large integer with multiprecision arithmetic | temp region every few iterations; partial solutions copied to a solution region |
//! | [`grobner`] | Gröbner basis of a polynomial set (Buchberger) | temp region per reduction; basis polynomials copied to a result region |
//! | [`mudlle`] | byte-code compiler for a scheme-like language | one region for the file's AST, one per function compilation |
//! | [`lcc`] | a C front end | a region per hundred statements compiled |
//! | [`tile`] | partitions text by word frequency | a region per text block |
//! | [`moss`] | software plagiarism detection (winnowing) | interleaved ("slow") vs small/large segregated regions |
//!
//! Each workload returns a checksum that must be identical under every
//! allocator — that equality is asserted by tests and is the harness's
//! correctness anchor. Inputs are seeded and deterministic
//! ([`util::text`]); the `scale` parameter grows them for benchmarking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfrac;
pub mod env;
pub mod grobner;
pub mod lcc;
pub mod moss;
pub mod mudlle;
pub mod tile;
pub mod util;

pub use env::{Dh, MallocEnv, MallocKind, RegionEnv, RegionKind, Rh};

/// The six workloads, for iteration by the benchmark harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Continued-fraction-style integer factoring (bignum substrate).
    Cfrac,
    /// Gröbner basis (Buchberger's algorithm).
    Grobner,
    /// Scheme-like byte-code compiler.
    Mudlle,
    /// C front end.
    Lcc,
    /// Text partitioning.
    Tile,
    /// Plagiarism detection (winnowing fingerprints).
    Moss,
}

impl Workload {
    /// All six, in the paper's order.
    pub const ALL: [Workload; 6] = [
        Workload::Cfrac,
        Workload::Grobner,
        Workload::Mudlle,
        Workload::Lcc,
        Workload::Tile,
        Workload::Moss,
    ];

    /// The paper's name for this program.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Cfrac => "cfrac",
            Workload::Grobner => "grobner",
            Workload::Mudlle => "mudlle",
            Workload::Lcc => "lcc",
            Workload::Tile => "tile",
            Workload::Moss => "moss",
        }
    }

    /// Runs the malloc/free variant; returns the checksum.
    pub fn run_malloc(self, env: &mut MallocEnv, scale: u32) -> u64 {
        match self {
            Workload::Cfrac => cfrac::run_malloc(env, scale),
            Workload::Grobner => grobner::run_malloc(env, scale),
            Workload::Mudlle => mudlle::run_malloc(env, scale),
            Workload::Lcc => lcc::run_malloc(env, scale),
            Workload::Tile => tile::run_malloc(env, scale),
            Workload::Moss => moss::run_malloc(env, scale),
        }
    }

    /// Runs the region variant; returns the checksum. For `moss` this is
    /// the optimized (two-region) layout; see [`moss::run_region_slow`]
    /// for the paper's "slow" bar.
    pub fn run_region(self, env: &mut RegionEnv, scale: u32) -> u64 {
        match self {
            Workload::Cfrac => cfrac::run_region(env, scale),
            Workload::Grobner => grobner::run_region(env, scale),
            Workload::Mudlle => mudlle::run_region(env, scale),
            Workload::Lcc => lcc::run_region(env, scale),
            Workload::Tile => tile::run_region(env, scale),
            Workload::Moss => moss::run_region(env, scale),
        }
    }

    /// The marker-delimited sources of the two variants, for the Table 1
    /// porting-effort diff: (whole file, malloc section, region section).
    pub fn variant_sources(self) -> (&'static str, &'static str, &'static str) {
        let file = match self {
            Workload::Cfrac => include_str!("cfrac.rs"),
            Workload::Grobner => include_str!("grobner.rs"),
            Workload::Mudlle => include_str!("mudlle.rs"),
            Workload::Lcc => include_str!("lcc.rs"),
            Workload::Tile => include_str!("tile.rs"),
            Workload::Moss => include_str!("moss.rs"),
        };
        let malloc = section(file, "malloc variant");
        let region = section(file, "region variant");
        (file, malloc, region)
    }
}

/// Extracts the `// --- begin NAME --- ... // --- end NAME ---` span.
fn section(file: &'static str, name: &str) -> &'static str {
    let begin = format!("// --- begin {name} ---");
    let end = format!("// --- end {name} ---");
    let s = file.find(&begin).unwrap_or_else(|| panic!("missing marker {begin}"));
    let e = file.find(&end).unwrap_or_else(|| panic!("missing marker {end}"));
    &file[s + begin.len()..e]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_both_variant_sections() {
        for w in Workload::ALL {
            let (_, m, r) = w.variant_sources();
            assert!(m.lines().count() > 10, "{}: malloc section too small", w.name());
            assert!(r.lines().count() > 10, "{}: region section too small", w.name());
        }
    }
}
