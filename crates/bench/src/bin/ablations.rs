//! Ablations of the runtime's design choices (DESIGN.md §9):
//!
//! 1. **Region staggering** (§4.1): successive regions' first objects are
//!    offset by 64 bytes "to reduce cache conflicts between region
//!    structures". Measured on a many-small-regions workload (mudlle)
//!    through the cache simulator, staggered vs packed.
//! 2. **Clearing on allocation** (§3.2): `ralloc` must clear memory for
//!    safety; how much of allocation cost is the clearing?
//! 3. **Page-map representation**: the two-level page map's space
//!    overhead against a flat map, across heap sizes.

use cache_sim::MemorySystem;
use region_core::{RegionConfig, RegionRuntime, SafetyMode, TypeDescriptor};
use std::time::Instant;
use workloads::{RegionEnv, Workload};

fn main() {
    stagger_ablation();
    clear_ablation();
    map_overhead();
}

/// Staggering on/off: cache stalls of a region-churning workload.
fn stagger_ablation() {
    println!("== ablation: region staggering (64-byte offsets, §4.1) ==");
    let run = |stagger: bool| {
        let config = RegionConfig { stagger, ..RegionConfig::default() };
        let mut env = RegionEnv::with_config(config);
        env.heap().attach_sink(Box::new(MemorySystem::default()));
        Workload::Mudlle.run_region(&mut env, 2);
        let mut heap = env.into_heap();
        MemorySystem::from_sink(heap.detach_sink().unwrap()).stats()
    };
    let on = run(true);
    let off = run(false);
    println!("  staggered : {:>9} stall cycles ({} L1 misses)", on.stall_cycles(), on.l1_misses);
    println!("  packed    : {:>9} stall cycles ({} L1 misses)", off.stall_cycles(), off.l1_misses);
    println!(
        "  staggering changes stalls by {:+.1}%",
        100.0 * (on.stall_cycles() as f64 - off.stall_cycles() as f64)
            / off.stall_cycles().max(1) as f64
    );
    println!();
}

/// Clearing on/off: the share of ralloc cost that is the memset.
fn clear_ablation() {
    println!("== ablation: clearing allocated memory (§3.2) ==");
    let run = |clear: bool| {
        let config = RegionConfig {
            mode: SafetyMode::Unsafe,
            clear_on_alloc: clear,
            ..RegionConfig::default()
        };
        let mut rt = RegionRuntime::with_config(config);
        let d = rt.register_type(TypeDescriptor::pointer_free("blob", 64));
        let t = Instant::now();
        for _ in 0..200 {
            let r = rt.new_region();
            for _ in 0..2000 {
                rt.ralloc(r, d);
            }
            rt.delete_region(r);
        }
        (t.elapsed(), rt.heap().store_count())
    };
    let (with, stores_with) = run(true);
    let (without, stores_without) = run(false);
    println!("  clearing   : {:>8.1} ms ({} stores)", with.as_secs_f64() * 1e3, stores_with);
    println!("  no clearing: {:>8.1} ms ({} stores)", without.as_secs_f64() * 1e3, stores_without);
    println!(
        "  clearing is {:.0}% of 64-byte ralloc cost",
        100.0 * (with.as_secs_f64() - without.as_secs_f64()) / with.as_secs_f64()
    );
    println!();
}

/// The two-level page map's footprint (paper: 8 bytes/page total
/// metadata; our map is 4 bytes/page in 4 KB chunks covering 4 MB each).
fn map_overhead() {
    println!("== ablation: page-map overhead across heap sizes ==");
    for target_pages in [64u64, 512, 4096] {
        let mut rt = RegionRuntime::new_unsafe();
        let r = rt.new_region();
        while rt.data_pages() < target_pages {
            rt.rstralloc(r, 4000);
        }
        println!(
            "  {:>5} data pages → {:>2} map pages ({:.2}% overhead)",
            rt.data_pages(),
            rt.map_pages(),
            100.0 * rt.map_pages() as f64 / rt.data_pages() as f64
        );
    }
    println!("  (paper §4.1: \"the space overheads of this scheme are low:");
    println!("   eight bytes per page\")");
}
