//! The shadow stack of region-pointer locals and its deferred reference
//! counting (§4.2.1 and §4.2.3 of the paper).
//!
//! Maintaining exact reference counts on every write to a local variable
//! would be ruinously expensive, so the paper defers them: the counts
//! stored with each region reflect only the pointers held by frames
//! "above" a **high-water mark**; frames pushed since then are not
//! reflected at all. The invariant
//!
//! > (*) the number of frames below the high-water mark is always at
//! > least one
//!
//! guarantees that ordinary writes to locals (always in the newest frame)
//! never need count updates. When `deleteregion` needs an exact count it
//! *scans* the unscanned portion of the stack, incrementing counts for
//! every live region-pointer local, and moves the mark. A scanned frame is
//! *unscanned* — its contributions removed — lazily, when control returns
//! to it (the paper patches return addresses; we check a flag on pop).
//!
//! The paper's stack grows downward on SPARC; ours grows upward, so
//! "below the high-water mark" in the paper reads "at or past the mark's
//! frame index" here. Frames `[0, hwm)` are scanned.
//!
//! `deleteregion` itself runs as if in a fresh callee frame: the scan
//! covers *every* caller frame (so a caller's live pointer into the dying
//! region correctly blocks deletion), and returning from `deleteregion`
//! immediately unscans the caller's frame, restoring the invariant.

use simheap::{Addr, HeapBackend, WORD};

use crate::costs::{SCAN_FRAME_INSTRS, SCAN_SLOT_INSTRS};
use crate::error::RegionError;
use crate::runtime::{Frame, RegionRuntime};

impl<H: HeapBackend> RegionRuntime<H> {
    /// Pushes a frame with `n_slots` region-pointer locals, all initialized
    /// to null (C@ requires initialization of all locals that contain
    /// region pointers, §3.1). Fails without side effects when the shadow
    /// stack is full.
    pub fn try_push_frame(&mut self, n_slots: u32) -> Result<(), RegionError> {
        if self.top_slot + n_slots > self.stack_slots {
            return Err(RegionError::StackOverflow { slots: self.stack_slots });
        }
        let base_slot = self.top_slot;
        for i in 0..n_slots {
            let addr = self.slot_addr(base_slot + i);
            self.heap_mut().store_addr(addr, Addr::NULL);
        }
        self.frames.push(Frame { base_slot, n_slots });
        self.top_slot += n_slots;
        Ok(())
    }

    /// Panicking form of [`RegionRuntime::try_push_frame`].
    ///
    /// # Panics
    ///
    /// Panics on shadow-stack overflow.
    pub fn push_frame(&mut self, n_slots: u32) {
        self.try_push_frame(n_slots).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pops the newest frame. If control thereby returns to a *scanned*
    /// frame, that frame is unscanned: the reference counts contributed by
    /// its locals are removed and the high-water mark moves up (§4.2.3's
    /// patched return addresses).
    ///
    /// # Panics
    ///
    /// Panics if no frame is live.
    pub fn pop_frame(&mut self) {
        let f = self.frames.pop().expect("pop_frame with no live frame");
        debug_assert!(self.hwm <= self.frames.len(), "popped a scanned frame");
        self.top_slot = f.base_slot;
        if self.is_safe() {
            self.unscan_top();
        }
    }

    /// Number of live frames.
    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    /// Number of scanned frames (frames whose locals are reflected in
    /// region reference counts). Exposed for tests and diagnostics.
    pub fn high_water_mark(&self) -> usize {
        self.hwm
    }

    /// The address of slot `slot` of the newest frame — what `&x` yields
    /// for a region-pointer local `x`. Writes through this address must
    /// use [`RegionRuntime::store_ptr_unknown`].
    ///
    /// # Panics
    ///
    /// Panics if no frame is live or the slot is out of range.
    pub fn local_addr(&self, slot: u32) -> Addr {
        let f = self.frames.last().expect("no live frame");
        assert!(slot < f.n_slots, "slot {slot} out of range ({} slots)", f.n_slots);
        self.slot_addr(f.base_slot + slot)
    }

    pub(crate) fn slot_addr(&self, abs_slot: u32) -> Addr {
        self.stack_base + abs_slot * WORD
    }

    /// Writes a region pointer into a local of the newest frame. **No
    /// reference counts are touched** — this is the entire point of the
    /// deferred scheme: "writes to local variables never update reference
    /// counts" (§4.2.1).
    pub fn set_local(&mut self, slot: u32, value: Addr) {
        debug_assert!(
            self.frames.is_empty() || self.hwm < self.frames.len(),
            "invariant (*) violated: newest frame is scanned"
        );
        let addr = self.local_addr(slot);
        self.heap_mut().store_addr(addr, value);
    }

    /// Reads a region pointer from a local of the newest frame.
    pub fn get_local(&mut self, slot: u32) -> Addr {
        let addr = self.local_addr(slot);
        self.heap_mut().load_addr(addr)
    }

    /// Scans all unscanned frames, bringing every region's reference count
    /// up to its exact value (called by `deleteregion`, §4.2.1). Leaves
    /// every frame — including the newest — scanned; the caller restores
    /// the invariant with [`RegionRuntime::unscan_top`]. Returns the
    /// `(frames, slots)` this call actually scanned, so `deleteregion`
    /// can attribute the work to a refused attempt
    /// ([`crate::ScanAttribution`]).
    pub(crate) fn scan_stack(&mut self) -> (u64, u64) {
        let mut frames = 0u64;
        let mut slots = 0u64;
        while self.hwm < self.frames.len() {
            frames += 1;
            slots += u64::from(self.scan_one_frame());
        }
        (frames, slots)
    }

    /// Scans exactly one frame — the oldest unscanned one — and advances
    /// the high-water mark past it. One work increment of the incremental
    /// `deleteregion` scan phase; charges and count effects are identical
    /// to the same frame's share of a monolithic [`scan_stack`] call.
    /// Returns the frame's slot count.
    ///
    /// The caller must ensure an unscanned frame exists.
    pub(crate) fn scan_one_frame(&mut self) -> u32 {
        debug_assert!(self.hwm < self.frames.len(), "scan_one_frame with nothing to scan");
        let Frame { base_slot, n_slots } = self.frames[self.hwm];
        self.costs_mut().frames_scanned += 1;
        self.costs_mut().slots_scanned += u64::from(n_slots);
        self.costs_mut().scan_instrs += SCAN_FRAME_INSTRS + u64::from(n_slots) * SCAN_SLOT_INSTRS;
        for s in 0..n_slots {
            let addr = self.slot_addr(base_slot + s);
            let v = self.heap_mut().load_addr(addr);
            if let Some(region) = self.region_of(v) {
                self.inc_rc(region);
            }
        }
        self.hwm += 1;
        n_slots
    }

    /// If the newest frame is scanned, removes its locals' contributions
    /// from the reference counts and moves the high-water mark above it.
    pub(crate) fn unscan_top(&mut self) {
        if self.frames.is_empty() || self.hwm < self.frames.len() {
            return;
        }
        let Frame { base_slot, n_slots } = self.frames[self.frames.len() - 1];
        self.costs_mut().frames_unscanned += 1;
        self.costs_mut().slots_unscanned += u64::from(n_slots);
        self.costs_mut().scan_instrs += SCAN_FRAME_INSTRS + u64::from(n_slots) * SCAN_SLOT_INSTRS;
        for s in 0..n_slots {
            let addr = self.slot_addr(base_slot + s);
            let v = self.heap_mut().load_addr(addr);
            if let Some(region) = self.region_of(v) {
                self.dec_rc(region);
            }
        }
        self.hwm = self.frames.len() - 1;
    }
}

#[cfg(test)]
mod tests {
    use crate::descriptor::TypeDescriptor;
    use crate::runtime::RegionRuntime;
    use simheap::Addr;

    fn setup() -> (RegionRuntime, crate::descriptor::DescId) {
        let mut rt = RegionRuntime::new_safe();
        let d = rt.register_type(TypeDescriptor::new("list", 8, vec![4]));
        (rt, d)
    }

    #[test]
    fn local_writes_do_not_touch_counts() {
        let (mut rt, d) = setup();
        let r = rt.new_region();
        let a = rt.ralloc(r, d);
        rt.push_frame(2);
        rt.set_local(0, a);
        rt.set_local(1, a);
        assert_eq!(rt.rc(r), 0, "deferred: locals are not counted eagerly");
        assert_eq!(rt.get_local(0), a);
        rt.pop_frame();
    }

    #[test]
    fn live_local_blocks_deletion() {
        let (mut rt, d) = setup();
        let r = rt.new_region();
        let a = rt.ralloc(r, d);
        rt.push_frame(1);
        rt.set_local(0, a);
        assert!(!rt.delete_region(r), "stack scan must find the live local");
        assert!(rt.is_live(r));
        rt.set_local(0, Addr::NULL); // clear the stale pointer (as tile required)
        assert!(rt.delete_region(r));
        rt.pop_frame();
    }

    #[test]
    fn invariant_restored_after_delete() {
        let (mut rt, d) = setup();
        let r = rt.new_region();
        let a = rt.ralloc(r, d);
        rt.push_frame(1);
        rt.set_local(0, a);
        assert!(!rt.delete_region(r));
        // The newest frame must be unscanned again (invariant *), so local
        // writes remain count-free.
        assert!(rt.high_water_mark() < rt.frame_depth());
        rt.set_local(0, Addr::NULL);
        assert_eq!(rt.rc(r), 0);
        rt.pop_frame();
        assert!(rt.delete_region(r));
    }

    #[test]
    fn return_into_scanned_frame_unscans_it() {
        let (mut rt, d) = setup();
        let r = rt.new_region();
        let a = rt.ralloc(r, d);
        rt.push_frame(1); // caller frame
        rt.set_local(0, a);
        rt.push_frame(1); // callee frame
        assert!(!rt.delete_region(r), "caller's local blocks deletion");
        // Caller frame is now scanned: rc reflects its local.
        assert_eq!(rt.high_water_mark(), 1);
        assert_eq!(rt.rc(r), 1);
        rt.pop_frame(); // return into the scanned caller frame
        assert_eq!(rt.high_water_mark(), 0, "unscan moved the mark");
        assert_eq!(rt.rc(r), 0, "unscan removed the contribution");
        // The caller still *holds* the pointer, so deletion keeps failing
        // (a rescan finds it) until the local is cleared.
        assert!(!rt.delete_region(r));
        rt.set_local(0, Addr::NULL);
        assert!(rt.delete_region(r));
        rt.pop_frame();
        assert_eq!(rt.frame_depth(), 0);
    }

    #[test]
    fn scan_and_unscan_costs_are_counted() {
        let (mut rt, d) = setup();
        let r = rt.new_region();
        let a = rt.ralloc(r, d);
        rt.push_frame(3);
        rt.set_local(1, a);
        rt.push_frame(2);
        assert!(!rt.delete_region(r));
        let c = *rt.costs();
        // Scan covered both frames (3 + 2 slots); the immediate unscan of
        // the newest frame covered 2 slots.
        assert_eq!(c.frames_scanned, 2);
        assert_eq!(c.slots_scanned, 5);
        assert_eq!(c.frames_unscanned, 1);
        assert_eq!(c.slots_unscanned, 2);
        assert!(c.scan_instrs > 0);
        rt.pop_frame(); // unscans the caller frame (scanned earlier)
        assert_eq!(rt.costs().frames_unscanned, 2);
        rt.pop_frame();
    }

    #[test]
    fn writes_through_pointers_to_scanned_locals_are_counted() {
        let (mut rt, d) = setup();
        let r1 = rt.new_region();
        let r2 = rt.new_region();
        let a = rt.ralloc(r1, d);
        let b = rt.ralloc(r2, d);
        rt.push_frame(1);
        rt.set_local(0, a);
        let p = rt.local_addr(0); // &local escapes to a callee
        rt.push_frame(1);
        assert!(!rt.delete_region(r1)); // caller frame now scanned
        assert_eq!(rt.rc(r1), 1);
        // The callee writes *p = b: the slot lives in a scanned frame, so
        // counts must move from r1 to r2.
        rt.store_ptr_unknown(p, b);
        assert_eq!(rt.rc(r1), 0);
        assert_eq!(rt.rc(r2), 1);
        rt.pop_frame(); // unscan caller: removes r2 contribution
        assert_eq!(rt.rc(r2), 0);
        rt.pop_frame();
        assert!(rt.delete_region(r1));
        assert!(rt.delete_region(r2));
    }

    #[test]
    fn writes_through_pointers_to_unscanned_locals_are_free() {
        let (mut rt, d) = setup();
        let r = rt.new_region();
        let a = rt.ralloc(r, d);
        rt.push_frame(1);
        let p = rt.local_addr(0);
        rt.store_ptr_unknown(p, a); // unscanned frame: plain store
        assert_eq!(rt.rc(r), 0);
        assert_eq!(rt.get_local(0), a);
        rt.pop_frame();
    }

    #[test]
    fn frames_are_null_initialized() {
        let (mut rt, d) = setup();
        let r = rt.new_region();
        let a = rt.ralloc(r, d);
        rt.push_frame(1);
        rt.set_local(0, a);
        rt.pop_frame();
        rt.push_frame(1); // reuses the same slot memory
        assert!(rt.get_local(0).is_null(), "fresh frames must be cleared");
        assert!(rt.delete_region(r), "no stale pointer may linger");
        rt.pop_frame();
    }

    #[test]
    fn deep_scan_covers_all_frames() {
        let (mut rt, d) = setup();
        let r = rt.new_region();
        let a = rt.ralloc(r, d);
        for _ in 0..10 {
            rt.push_frame(1);
        }
        // Plant the pointer in the oldest frame via direct slot write
        // (simulating it having been set when that frame was newest).
        rt.push_frame(0);
        // oldest frame's slot is absolute slot 0
        let slot0 = rt.slot_addr(0);
        rt.store_ptr_unknown(slot0, a);
        assert!(!rt.delete_region(r));
        assert_eq!(rt.rc(r), 1);
        for _ in 0..11 {
            rt.pop_frame();
        }
        assert_eq!(rt.rc(r), 0);
        assert!(rt.delete_region(r));
    }

    #[test]
    #[should_panic(expected = "simulated stack overflow")]
    fn stack_overflow_panics() {
        let mut rt = RegionRuntime::new_safe();
        loop {
            rt.push_frame(4096);
        }
    }

    #[test]
    #[should_panic(expected = "no live frame")]
    fn pop_without_frame_panics() {
        let mut rt = RegionRuntime::new_safe();
        rt.pop_frame();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        let mut rt = RegionRuntime::new_safe();
        rt.push_frame(1);
        rt.set_local(1, Addr::NULL);
    }

    #[test]
    fn unsafe_mode_stack_is_inert() {
        let mut rt = RegionRuntime::new_unsafe();
        let d = rt.register_type(TypeDescriptor::new("list", 8, vec![4]));
        let r = rt.new_region();
        let a = rt.ralloc(r, d);
        rt.push_frame(1);
        rt.set_local(0, a);
        assert_eq!(rt.get_local(0), a);
        assert!(rt.delete_region(r), "unsafe: no scan, deletion unconditional");
        assert_eq!(rt.costs().scan_instrs, 0);
        rt.pop_frame();
    }
}
