//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides a
//! small wall-clock benchmarking harness with criterion's surface API
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `Bencher`).
//! Each benchmark is auto-calibrated to a target sample time, run for
//! `sample_size` samples, and reported as the median ns/iteration —
//! enough statistical hygiene to compare hot paths before/after a change.
//!
//! Set `BENCH_QUICK=1` to cut sample counts for CI smoke runs, and
//! `BENCH_JSON=<path>` to also append machine-readable result lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(8);

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    quick: bool,
    json: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            quick: std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty()),
            json: std::env::var_os("BENCH_JSON").map(Into::into),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup { criterion: self, group: name.to_string(), sample_size: 20 }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let quick = self.quick;
        let json = self.json.clone();
        run_one(&json, quick, "", name, 20, f);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(
            &self.criterion.json,
            self.criterion.quick,
            &self.group,
            name,
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group (parity with criterion; nothing to flush here).
    pub fn finish(&mut self) {}
}

/// Measures the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    json: &Option<std::path::PathBuf>,
    quick: bool,
    group: &str,
    name: &str,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
    // Calibrate: grow the iteration count until one sample takes long
    // enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        assert!(b.elapsed != Duration::ZERO || iters > 0, "Bencher::iter never called in {full}");
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (TARGET_SAMPLE.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(16) as u64
        };
        iters = iters.saturating_mul(grow.max(2));
    }
    let samples = if quick { 3 } else { sample_size };
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!("  {full:<40} {:>12} /iter  [{} .. {}]  ({samples} × {iters} iters)",
        fmt_ns(median), fmt_ns(lo), fmt_ns(hi));
    if let Some(path) = json {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{full}\",\"median_ns\":{median:.1},\"min_ns\":{lo:.1},\"max_ns\":{hi:.1},\"iters\":{iters},\"samples\":{samples}}}"
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        std::env::remove_var("BENCH_QUICK");
        let mut c = Criterion { quick: true, json: None };
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.finish();
        assert!(ran > 0);
    }
}
