//! Table 1 — "Complexity of benchmark changes": how many lines differ
//! between the malloc/free and region variants of each workload.
//!
//! The paper diffs each original program against its region port; we
//! diff our malloc-variant source section against the region-variant
//! section (the shared algorithmic code outside both sections is the
//! "unchanged" remainder, like cfrac's untouched 4000 lines).

use bench_harness::diff::{changed_lines, significant_lines};
use workloads::Workload;

fn main() {
    println!("Table 1: Complexity of benchmark changes");
    println!("(paper: cfrac 149 changed of 4203; grobner 159/3219; mudlle 123/4655;");
    println!("        lcc 727/12430; tile 51/2221; moss 167/10991)");
    println!();
    println!("{:<10} {:>12} {:>16} {:>18}", "Name", "Lines", "Changed lines", "Changed (%)");
    for w in Workload::ALL {
        let (file, malloc_src, region_src) = w.variant_sources();
        let total = significant_lines(file);
        let changed = changed_lines(malloc_src, region_src);
        println!(
            "{:<10} {:>12} {:>16} {:>17.1}%",
            w.name(),
            total,
            changed,
            100.0 * changed as f64 / total as f64
        );
    }
    println!();
    println!("Shape check vs paper: changes are a modest fraction of each program");
    println!("(paper range 2.3%–5.8%), dominated by allocation-site rewrites.");
}
