//! The moss locality experiment (§5.5): "the 24% improvement in
//! execution time in moss is obtained by using two regions: one for the
//! small objects and one for the large objects."
//!
//! Runs the plagiarism detector in its naive single-region layout
//! (small fingerprint nodes interleaved with large context buffers) and
//! in the optimized two-region layout, under the UltraSparc-like cache
//! simulator, and compares stalls and time — the paper's Figures 9/10
//! moss story in one binary.
//!
//! Run with `cargo run --release --example moss_locality`.

use std::time::Instant;

use explicit_regions::cache_sim::MemorySystem;
use explicit_regions::workloads::moss;
use explicit_regions::workloads::{RegionEnv, RegionKind};

fn run(label: &str, slow: bool) -> (u64, u64) {
    let mut env = RegionEnv::new(RegionKind::Safe);
    env.heap().attach_sink(Box::new(MemorySystem::default()));
    let t = Instant::now();
    let checksum = if slow { moss::run_region_slow(&mut env, 2) } else { moss::run_region(&mut env, 2) };
    let secs = t.elapsed().as_secs_f64();
    let mut heap = env.into_heap();
    let stats = MemorySystem::from_sink(heap.detach_sink().expect("sink")).stats();
    println!("{label}:");
    println!("  read stalls  {:>10} cycles", stats.read_stall_cycles);
    println!("  write stalls {:>10} cycles", stats.write_stall_cycles);
    println!("  total cycles {:>10}", stats.total_cycles);
    println!("  host time    {:>10.1} ms", secs * 1e3);
    (stats.stall_cycles(), checksum)
}

fn main() {
    println!("moss: one interleaved region vs segregated small/large regions\n");
    let (slow_stalls, c1) = run("Slow (single region, nodes interleaved with 512B contexts)", true);
    println!();
    let (fast_stalls, c2) = run("Reg  (two regions: hot nodes packed, cold contexts apart)", false);
    assert_eq!(c1, c2, "the layout must not change the answer");
    println!();
    println!(
        "stall reduction: {:.1}% (paper: optimized moss has ~half the stalls,\n\
         and runs 24% faster — 'neither malloc/free nor garbage-collected\n\
         systems provide any mechanism for expressing locality')",
        100.0 * (slow_stalls.saturating_sub(fast_stalls)) as f64 / slow_stalls.max(1) as f64
    );
}
