#!/usr/bin/env bash
# CI entry point: tier-1 verify plus a smoke pass of every benchmark
# binary at --quick scale. Fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests (all crates) =="
cargo test --workspace -q

echo "== bench binaries, --quick smoke =="
cargo build --release -p bench-harness
for bin in table1 table2_3 fig8 fig9 fig10 fig11 ablations cq_bench; do
    echo "-- $bin --quick"
    ./target/release/"$bin" --quick >/dev/null
done

echo "== golden access traces =="
# Committed goldens: tile is format v1 (recorded before batching — its
# passing proves the canonicalizing expander's compatibility path),
# cfrac is format v2 (range records).
./target/release/fig10 --quick --check-golden tile
./target/release/fig10 --quick --check-golden cfrac
# Remaining workloads: record fresh, then immediately re-check, so every
# access stream is exercised through the golden writer+reader round trip
# and any in-run nondeterminism fails CI.
for wl in grobner mudlle lcc moss; do
    ./target/release/fig10 --quick --record-golden "$wl" >/dev/null
    ./target/release/fig10 --quick --check-golden "$wl"
done

echo "== golden end-states (RSNP snapshots, field-level diff on drift) =="
# Committed full runtime snapshots of the safe-region end state for tile
# and cfrac; a byte mismatch is reported by the first drifted field
# (region id / heap page / counter name) via bench::diff.
./target/release/fig10 --quick --check-golden-state tile
./target/release/fig10 --quick --check-golden-state cfrac

echo "== snapshot round-trip + corrupt-input rejection (DESIGN §14) =="
# Every-prefix replay equality, truncation/bit-flip/bad-header typed
# rejection, and the doctored-books sanitize gate live in the core lib
# and property suites.
cargo test -q -p region-core --lib snapshot
cargo test -q -p region-core --test snapshot_props

echo "== kill-and-restore chaos (>=20 seeded kill points), sanitize on =="
# Quick pass replays 25 kill-restores to digest equality and feeds the
# corrupt-snapshot battery; the 100-seed sweep runs in the full (non
# --quick) chaos invocation.
REGION_SANITIZE=1 ./target/release/chaos --quick --scenario kill-restore >/dev/null

echo "== parallel region pool smoke (digest + audit, sanitize on) =="
# Also covers the shared-space shard mode: four logical shards of one
# address space at 1/2/N threads must land on one digest.
REGION_SANITIZE=1 BENCH_WORKERS="${BENCH_WORKERS:-4}" ./target/release/par_regions --quick >/dev/null

echo "== shard parity suite (W=1 bit-parity + canonical merge), sanitize on =="
# A runtime on the single shard of a one-worker SharedSpace must be
# observationally identical to one on a private SimHeap; W>1 merges must
# be bit-identical across seeded and real-thread schedules (DESIGN §15).
REGION_SANITIZE=1 cargo test -q -p region-core --test shard_props

echo "== world snapshots: v1 still reads, v2 round-trips =="
# RSNP v1 single-runtime snapshots (checked above) and the v2 sharded
# world format live side by side; v1/v2 streams must reject each other
# with typed errors, and a restored world re-captures byte-identically.
cargo test -q -p region-core --lib world

echo "== shard A/B (records BENCH_shard quick variant) =="
# Private SimHeap vs W=1 shard books bit-identical; the 4-shard shared
# world digest thread-count-independent. The committed BENCH_shard.json
# is the default-scale record; the quick rerun goes to target/.
BENCH_SHARD_OUT=target/BENCH_shard_quick.json \
    ./target/release/par_regions --shard-ab --quick >/dev/null

echo "== chaos soak (fault injection + sanitizer + VM), --quick =="
./target/release/chaos --quick >/dev/null

echo "== par-chaos: contained worker faults, quarantine + reap, sanitize on =="
# Phase 2 reruns the panic chaos on one shared address space: abandoned
# shard runtimes sanitize clean, the mirror audit passes, and every
# round's world snapshot capture->restore->recapture is byte-equal.
REGION_SANITIZE=1 ./target/release/chaos --quick --scenario par-chaos >/dev/null

echo "== region service under adversity (deadlines, backpressure, quarantine) =="
# Quick soak of the long-lived region service: books asserted
# byte-identical at 1/2/4 OS threads and across a same-seed rerun,
# ledger conserved, every quarantined region reaped. The committed
# BENCH_server.json is the full-scale record; the quick rerun goes to
# target/ so it can't clobber it.
REGION_SANITIZE=1 BENCH_SERVER_OUT=target/BENCH_server_quick.json \
    ./target/release/server --quick >/dev/null

echo "== deleteregion budget sweep (inf vs 64 vs 1, DESIGN §17) =="
# The server binary already asserts the encoded books byte-identical
# against one opposite-budget arm internally; this sweep additionally
# proves the results-v3 envelope (checksums, allocs, pages) identical
# across an unbounded, a 64-unit and a 1-unit deletion budget — only
# the wall-clock and pause columns may drift (--ignore-time).
for b in inf 64 1; do
    REGION_SANITIZE=1 BENCH_SERVER_OUT="target/BENCH_server_b$b.json" \
        ./target/release/server --quick --delete-budget "$b" >/dev/null
    cp results/server.json "target/server_b$b.json"
done
./target/release/compare_results target/server_binf.json target/server_b64.json --ignore-time >/dev/null
./target/release/compare_results target/server_b64.json target/server_b1.json --ignore-time >/dev/null
# Full-adversity service chaos (now including the incremental-deletion
# budget arms at 64 and 1): injected faults + panics + watermark
# pressure, conservation and clean sanitize/audit every round.
REGION_SANITIZE=1 ./target/release/chaos --quick --scenario server-chaos >/dev/null

echo "== elision differential (vm-chaos A/B, sanitize on) =="
# Every random C@ program runs twice — paper-faithful codegen vs the
# sameregion inference pass — and must be bit-identical in output, VM
# instruction count, and final-heap digest, with a conserved barrier
# split and zero ElisionUnsound violations, under the region sanitizer.
REGION_SANITIZE=1 ./target/release/chaos --quick --scenario vm-chaos >/dev/null
REGION_SANITIZE=1 cargo test -q -p cq-lang

echo "== elision A/B on the workload suite (records BENCH_elision.json) =="
# Interleaved min-of-N with the hand-annotated sameregion stores off/on;
# asserts identical checksums, a conserved barrier split, deterministic
# counters across reps, and a reduction on grobner/tile/mudlle. The
# committed BENCH_elision.json is the default-scale record; the quick
# rerun goes to target/ so it can't clobber it.
BENCH_ELISION_OUT=target/BENCH_elision_quick.json \
    ./target/release/fig11 --elision-ab --quick >/dev/null

echo "== REGION_SANITIZE=1 smoke (one fig8 row, audited after the run) =="
REGION_SANITIZE=1 ./target/release/fig8 --quick --only tile >/dev/null

echo "== scan-batching parity under the sanitizer =="
# The GC/malloc range conversions (DESIGN §11 producer table) changed
# golden-trace *record counts* but must never change the word-level
# stream, the charge counters, or any cache statistic. These suites
# prove it property-by-property and for a full collect cycle.
REGION_SANITIZE=1 cargo test -q -p simheap --test props
REGION_SANITIZE=1 cargo test -q -p conservative-gc --test scan_parity

echo "== results schema self-compare =="
./target/release/compare_results results/fig8.json results/fig8.json --ignore-time >/dev/null
# fig10 was re-recorded after the range conversions; the quick run above
# rewrote it, so this checks the committed counters survived the rewrite.
./target/release/compare_results results/fig10.json results/fig10.json --ignore-time >/dev/null
# fig11/cq_bench now carry the barriers_elided column (missing-as-zero
# for documents recorded before it existed); the quick runs above wrote
# them with elision off/on respectively.
./target/release/compare_results results/fig11.json results/fig11.json --ignore-time >/dev/null
./target/release/compare_results results/cq_bench.json results/cq_bench.json --ignore-time >/dev/null
# server carries the p50_us/p99_us/p999_us latency columns
# (missing-as-equal for older documents, drift is always a warning);
# the quick run above rewrote it, so this also proves the quick books
# survived the rewrite.
./target/release/compare_results results/server.json results/server.json >/dev/null

echo "== criterion benches, quick mode =="
BENCH_QUICK=1 cargo bench -p bench-harness >/dev/null

echo "ci.sh: all green"
