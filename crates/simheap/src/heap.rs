//! The simulated process heap.

use crate::addr::{Addr, PAGE_SIZE, WORD};
use crate::trace::{Access, AccessEvent, AccessKind, AccessRange, AccessSink, CopyRange};

/// Why a heap-growth request was refused.
///
/// Returned by [`SimHeap::try_sbrk_pages`]; the panicking
/// [`SimHeap::sbrk_pages`] wrapper aborts with the error's `Display` text,
/// so the two surfaces report identical diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapError {
    /// Growth would exceed [`HeapConfig::max_bytes`] (or the 32-bit
    /// address space) — the simulated machine is out of memory.
    OutOfMemory {
        /// Total bytes the heap would have occupied after the request.
        requested: u64,
        /// The configured address-space limit.
        limit: u64,
    },
    /// Growth was refused by an injected fault: the heap had already
    /// granted [`HeapConfig::sbrk_fault_after`] bytes. Distinguishable
    /// from real OOM so chaos tests can assert the fault actually fired.
    FaultInjected {
        /// Bytes granted before the fault budget ran out.
        granted: u64,
        /// The configured fault budget.
        budget: u64,
    },
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfMemory { requested, limit } => write!(
                f,
                "simulated out of memory: requested {requested} bytes (limit {limit})"
            ),
            HeapError::FaultInjected { granted, budget } => write!(
                f,
                "injected sbrk fault: {granted} bytes granted (fault budget {budget})"
            ),
        }
    }
}

impl std::error::Error for HeapError {}

/// Configuration for a [`SimHeap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapConfig {
    /// Maximum size of the simulated address space in bytes. Growing past
    /// this limit fails (simulated out-of-memory) — a panic through the
    /// classic [`SimHeap::sbrk_pages`] surface, a typed
    /// [`HeapError::OutOfMemory`] through [`SimHeap::try_sbrk_pages`].
    /// Defaults to 512 MB.
    pub max_bytes: u64,
    /// Fault injection: once the heap occupies this many bytes, every
    /// further growth request fails with [`HeapError::FaultInjected`].
    /// `None` (the default) injects nothing. Deterministic: the fault
    /// depends only on the sequence of sbrk calls.
    pub sbrk_fault_after: Option<u64>,
}

impl Default for HeapConfig {
    fn default() -> HeapConfig {
        HeapConfig { max_bytes: 512 << 20, sbrk_fault_after: None }
    }
}

/// A simulated 32-bit address space growing upward in 4 KB pages.
///
/// Page 0 is a permanently unmapped guard page, so [`Addr::NULL`] (and any
/// address below [`PAGE_SIZE`]) can never be dereferenced; doing so panics,
/// which is this simulator's analogue of a segmentation fault.
///
/// The heap records the high-water mark of its break, which the benchmark
/// harness reports as "memory requested from the OS" (paper Figure 8).
///
/// # Example
///
/// ```
/// use simheap::SimHeap;
/// let mut heap = SimHeap::new();
/// let block = heap.sbrk(100);            // rounded up to one page
/// heap.store_u32(block, 7);
/// assert_eq!(heap.load_u32(block), 7);
/// ```
pub struct SimHeap {
    memory: Vec<u8>,
    config: HeapConfig,
    sink: Option<Box<dyn AccessSink>>,
    tracing: bool,
    loads: u64,
    stores: u64,
}

impl std::fmt::Debug for SimHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimHeap")
            .field("brk", &self.brk())
            .field("tracing", &self.tracing)
            .field("loads", &self.loads)
            .field("stores", &self.stores)
            .finish()
    }
}

impl Default for SimHeap {
    fn default() -> SimHeap {
        SimHeap::new()
    }
}

impl SimHeap {
    /// Creates an empty heap containing only the unmapped guard page.
    pub fn new() -> SimHeap {
        SimHeap::with_config(HeapConfig::default())
    }

    /// Creates an empty heap with the given configuration.
    pub fn with_config(config: HeapConfig) -> SimHeap {
        SimHeap {
            memory: vec![0u8; PAGE_SIZE as usize], // guard page
            config,
            sink: None,
            tracing: false,
            loads: 0,
            stores: 0,
        }
    }

    /// Current program break (one past the last mapped byte).
    pub fn brk(&self) -> Addr {
        Addr::new(self.memory.len() as u32)
    }

    /// Total bytes obtained from the simulated OS, including the guard page.
    ///
    /// The break never moves down, so this is also the footprint high-water
    /// mark — the quantity plotted in the paper's Figure 8.
    pub fn os_bytes(&self) -> u64 {
        self.memory.len() as u64
    }

    /// Extends the heap by `pages` pages and returns the address of the
    /// first new page. The new memory is zeroed.
    ///
    /// This is the fallible surface: exceeding the address-space limit or
    /// the injected-fault budget returns a typed [`HeapError`] and leaves
    /// the heap untouched (the break does not move, counters unchanged),
    /// so a caller can refuse the allocation and keep running.
    pub fn try_sbrk_pages(&mut self, pages: u32) -> Result<Addr, HeapError> {
        let old = self.brk();
        let new_len = self.memory.len() as u64 + u64::from(pages) * u64::from(PAGE_SIZE);
        if let Some(budget) = self.config.sbrk_fault_after {
            if new_len > budget {
                return Err(HeapError::FaultInjected { granted: self.memory.len() as u64, budget });
            }
        }
        if new_len > self.config.max_bytes || new_len > u64::from(u32::MAX) {
            return Err(HeapError::OutOfMemory {
                requested: new_len,
                limit: self.config.max_bytes.min(u64::from(u32::MAX)),
            });
        }
        self.memory.resize(new_len as usize, 0);
        Ok(old)
    }

    /// Extends the heap by `pages` pages and returns the address of the
    /// first new page. The new memory is zeroed. Thin panicking wrapper
    /// over [`SimHeap::try_sbrk_pages`].
    ///
    /// # Panics
    ///
    /// Panics if the configured address-space limit would be exceeded or
    /// an injected sbrk fault fires.
    pub fn sbrk_pages(&mut self, pages: u32) -> Addr {
        self.try_sbrk_pages(pages).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SimHeap::sbrk`]: extends the heap by at least `bytes`
    /// bytes (rounded up to whole pages).
    pub fn try_sbrk(&mut self, bytes: u32) -> Result<Addr, HeapError> {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        self.try_sbrk_pages(pages)
    }

    /// Extends the heap by at least `bytes` bytes (rounded up to whole
    /// pages) and returns the address of the first new byte.
    pub fn sbrk(&mut self, bytes: u32) -> Addr {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        self.sbrk_pages(pages)
    }

    /// Sets (or clears) the injected sbrk fault budget after construction;
    /// see [`HeapConfig::sbrk_fault_after`].
    pub fn set_sbrk_fault_after(&mut self, budget: Option<u64>) {
        self.config.sbrk_fault_after = budget;
    }

    /// Number of loads performed since construction.
    pub fn load_count(&self) -> u64 {
        self.loads
    }

    /// Number of stores performed since construction.
    pub fn store_count(&self) -> u64 {
        self.stores
    }

    /// Attaches an access sink; subsequent loads/stores are forwarded to it.
    /// Replaces (and drops) any previously attached sink.
    pub fn attach_sink(&mut self, sink: Box<dyn AccessSink>) {
        self.sink = Some(sink);
        self.tracing = true;
    }

    /// Detaches and returns the current access sink, if any.
    pub fn detach_sink(&mut self) -> Option<Box<dyn AccessSink>> {
        self.tracing = false;
        self.sink.take()
    }

    /// `true` if an access sink is attached, i.e. every load/store is being
    /// forwarded as an individual [`Access`] record. Clients with a cheaper
    /// host-side way to answer a query (e.g. a mirrored page map) may use
    /// it only when this is `false`, charging the simulated cost through
    /// [`SimHeap::charge_loads`] so counter totals stay identical.
    pub fn is_tracing(&self) -> bool {
        self.tracing
    }

    /// Charges `n` simulated loads without touching memory. For host-side
    /// mirrors of in-heap structures: the mirror answers the query, this
    /// charges what the simulated program would have paid. Must not be used
    /// while a sink is attached (the sink would miss the accesses).
    pub fn charge_loads(&mut self, n: u64) {
        debug_assert!(!self.tracing, "charge_loads while tracing loses sink records");
        self.loads += n;
    }

    /// Charges `n` simulated stores without touching memory; see
    /// [`SimHeap::charge_loads`].
    pub fn charge_stores(&mut self, n: u64) {
        debug_assert!(!self.tracing, "charge_stores while tracing loses sink records");
        self.stores += n;
    }

    /// Forwards one scalar access to the attached sink, if any. Sinks are
    /// trait objects, so callers that need results back should use a sink
    /// type they own and recover it with [`SimHeap::detach_sink`].
    fn emit(&mut self, access: Access) {
        if let Some(sink) = self.sink.as_mut() {
            sink.event(AccessEvent::Word(access));
        }
    }

    /// Forwards one batched protocol event to the attached sink, if any.
    /// Word-only sinks see it through the canonical expansion (the default
    /// [`AccessSink::event`]), so the observable per-word stream is
    /// identical to the pre-batching per-word emit loops.
    fn emit_event(&mut self, event: AccessEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.event(event);
        }
    }

    /// Single-branch validation for the common case of an aligned in-bounds
    /// word; falls back to [`SimHeap::check`] for the detailed panic.
    #[inline]
    fn check_word(&self, addr: Addr, what: &str) {
        let a = addr.raw();
        if a >= PAGE_SIZE && a % WORD == 0 && (u64::from(a) + u64::from(WORD)) <= self.memory.len() as u64 {
            return;
        }
        self.check(addr, WORD, WORD, what);
    }

    #[inline]
    fn check(&self, addr: Addr, size: u32, align: u32, what: &str) {
        assert!(
            addr.raw() >= PAGE_SIZE,
            "simulated segfault: {what} of {size} bytes at {addr} (null/guard page)"
        );
        assert!(
            (addr.raw() as u64 + u64::from(size)) <= self.memory.len() as u64,
            "simulated segfault: {what} of {size} bytes at {addr} past break {}",
            self.brk()
        );
        assert!(
            addr.is_aligned(align),
            "simulated bus error: misaligned {what} of {size} bytes at {addr}"
        );
    }

    /// Loads a 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics on unmapped or misaligned addresses (simulated SIGSEGV /
    /// SIGBUS) — these always indicate a bug in the client allocator or VM.
    #[inline]
    pub fn load_u32(&mut self, addr: Addr) -> u32 {
        self.check_word(addr, "load");
        self.loads += 1;
        if self.tracing {
            self.emit(Access::read(addr.raw(), 4));
        }
        let i = addr.raw() as usize;
        u32::from_le_bytes([self.memory[i], self.memory[i + 1], self.memory[i + 2], self.memory[i + 3]])
    }

    /// Stores a 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics on unmapped or misaligned addresses.
    #[inline]
    pub fn store_u32(&mut self, addr: Addr, value: u32) {
        self.check_word(addr, "store");
        self.stores += 1;
        if self.tracing {
            self.emit(Access::write(addr.raw(), 4));
        }
        let i = addr.raw() as usize;
        self.memory[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Loads a byte.
    #[inline]
    pub fn load_u8(&mut self, addr: Addr) -> u8 {
        self.check(addr, 1, 1, "load");
        self.loads += 1;
        if self.tracing {
            self.emit(Access::read(addr.raw(), 1));
        }
        self.memory[addr.raw() as usize]
    }

    /// Stores a byte.
    #[inline]
    pub fn store_u8(&mut self, addr: Addr, value: u8) {
        self.check(addr, 1, 1, "store");
        self.stores += 1;
        if self.tracing {
            self.emit(Access::write(addr.raw(), 1));
        }
        self.memory[addr.raw() as usize] = value;
    }

    /// Loads a 32-bit word on the fast path: one combined bounds/alignment
    /// branch instead of three, with panics, counters and (when a sink is
    /// attached) trace records identical to [`SimHeap::load_u32`]. Intended
    /// for hot scan loops in the runtime.
    #[inline]
    pub fn load_u32_fast(&mut self, addr: Addr) -> u32 {
        if self.tracing {
            return self.load_u32(addr);
        }
        self.check_word(addr, "load");
        self.loads += 1;
        let i = addr.raw() as usize;
        u32::from_le_bytes([self.memory[i], self.memory[i + 1], self.memory[i + 2], self.memory[i + 3]])
    }

    /// Stores a 32-bit word on the fast path; see [`SimHeap::load_u32_fast`].
    #[inline]
    pub fn store_u32_fast(&mut self, addr: Addr, value: u32) {
        if self.tracing {
            return self.store_u32(addr, value);
        }
        self.check_word(addr, "store");
        self.stores += 1;
        let i = addr.raw() as usize;
        self.memory[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Loads an address-sized value and interprets it as an address.
    #[inline]
    pub fn load_addr(&mut self, addr: Addr) -> Addr {
        Addr::new(self.load_u32(addr))
    }

    /// Stores an address.
    #[inline]
    pub fn store_addr(&mut self, addr: Addr, value: Addr) {
        self.store_u32(addr, value.raw());
    }

    /// Number of simulated stores a `fill(addr, len, _)` performs: head
    /// bytes to reach word alignment, whole words, then tail bytes — the
    /// cost model of a real `memset`.
    fn fill_store_ops(addr: Addr, len: u32) -> u64 {
        let head = ((WORD - addr.raw() % WORD) % WORD).min(len);
        let rest = len - head;
        u64::from(head) + u64::from(rest / WORD) + u64::from(rest % WORD)
    }

    /// Fills `len` bytes starting at `addr` with `byte`, word-at-a-time
    /// where possible (each touched word counts as one store, matching the
    /// cost of a real `memset`).
    ///
    /// Either way the fill is one bounds check plus one host `memset`, with
    /// counter totals identical to the historic per-word path; with a sink
    /// attached the stores are announced as at most three batched
    /// [`AccessEvent::Range`] records (head bytes, whole words, tail bytes)
    /// whose word expansion equals the old per-store emit loop exactly.
    pub fn fill(&mut self, addr: Addr, len: u32, byte: u8) {
        if len == 0 {
            return;
        }
        self.check(addr, len, 1, "fill");
        self.stores += SimHeap::fill_store_ops(addr, len);
        let i = addr.raw() as usize;
        self.memory[i..i + len as usize].fill(byte);
        if !self.tracing {
            return;
        }
        let head = ((WORD - addr.raw() % WORD) % WORD).min(len);
        let rest = len - head;
        let (words, tail) = (rest / WORD, rest % WORD);
        if head > 0 {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: addr.raw(),
                len: head,
                stride: 1,
                size: 1,
                kind: AccessKind::Write,
            }));
        }
        if words > 0 {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: addr.raw() + head,
                len: words,
                stride: WORD,
                size: WORD as u8,
                kind: AccessKind::Write,
            }));
        }
        if tail > 0 {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: addr.raw() + head + words * WORD,
                len: tail,
                stride: 1,
                size: 1,
                kind: AccessKind::Write,
            }));
        }
    }

    /// Number of load/store pairs a `copy(dst, src, len)` performs: whole
    /// words plus tail bytes when both ends are word-aligned, else all
    /// bytes.
    fn copy_ops(dst: Addr, src: Addr, len: u32) -> u64 {
        if dst.is_aligned(WORD) && src.is_aligned(WORD) {
            u64::from(len / WORD) + u64::from(len % WORD)
        } else {
            u64::from(len)
        }
    }

    /// Copies `len` bytes from `src` to `dst` (non-overlapping or
    /// `dst <= src`), word-at-a-time where aligned.
    ///
    /// Either way the copy is two bounds checks plus one host `memmove`,
    /// with counter totals identical to the historic per-word path; with a
    /// sink attached the traffic is announced as at most two batched
    /// [`AccessEvent::CopyRange`] records (whole words, then tail bytes)
    /// whose interleaved load/store expansion equals the old per-element
    /// emit loop exactly.
    pub fn copy(&mut self, dst: Addr, src: Addr, len: u32) {
        if len == 0 {
            return;
        }
        self.check(src, len, 1, "copy-load");
        self.check(dst, len, 1, "copy-store");
        // A forward element-wise copy into an overlapping higher range
        // smears the source; keep the per-element path there so the (out of
        // contract) behaviour matches the historic element loop bit for bit.
        let smearing = u64::from(dst.raw()) > u64::from(src.raw())
            && u64::from(dst.raw()) < u64::from(src.raw()) + u64::from(len);
        if !smearing {
            let ops = SimHeap::copy_ops(dst, src, len);
            self.loads += ops;
            self.stores += ops;
            let (d, s) = (dst.raw() as usize, src.raw() as usize);
            self.memory.copy_within(s..s + len as usize, d);
            if !self.tracing {
                return;
            }
            if dst.is_aligned(WORD) && src.is_aligned(WORD) {
                let (words, tail) = (len / WORD, len % WORD);
                if words > 0 {
                    self.emit_event(AccessEvent::CopyRange(CopyRange {
                        src: src.raw(),
                        dst: dst.raw(),
                        len: words,
                        stride: WORD,
                        size: WORD as u8,
                    }));
                }
                if tail > 0 {
                    self.emit_event(AccessEvent::CopyRange(CopyRange {
                        src: src.raw() + words * WORD,
                        dst: dst.raw() + words * WORD,
                        len: tail,
                        stride: 1,
                        size: 1,
                    }));
                }
            } else {
                self.emit_event(AccessEvent::CopyRange(CopyRange {
                    src: src.raw(),
                    dst: dst.raw(),
                    len,
                    stride: 1,
                    size: 1,
                }));
            }
            return;
        }
        if dst.is_aligned(WORD) && src.is_aligned(WORD) {
            let words = len / WORD;
            for w in 0..words {
                let v = self.load_u32(src + w * WORD);
                self.store_u32(dst + w * WORD, v);
            }
            for b in (words * WORD)..len {
                let v = self.load_u8(src + b);
                self.store_u8(dst + b, v);
            }
        } else {
            for b in 0..len {
                let v = self.load_u8(src + b);
                self.store_u8(dst + b, v);
            }
        }
    }

    /// Loads `len` words at `start`, `start + stride`, … and returns them,
    /// observationally equivalent to `len` calls of [`SimHeap::load_u32`]:
    /// same counter totals, and the single batched [`AccessEvent::Range`]
    /// it announces expands to the same per-word access stream. Intended
    /// for strided runtime scans (e.g. walking one pointer field down a
    /// homogeneous array during region cleanup).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is not word-aligned or any touched word is
    /// unmapped/misaligned, exactly as the per-word loop would.
    pub fn load_u32_range(&mut self, start: Addr, len: u32, stride: u32) -> Vec<u32> {
        if len == 0 {
            return Vec::new();
        }
        assert!(stride % WORD == 0, "misaligned stride {stride} in bulk load at {start}");
        self.check_word(start, "load");
        let last = u64::from(start.raw()) + u64::from(len - 1) * u64::from(stride);
        assert!(
            last + u64::from(WORD) <= self.memory.len() as u64,
            "simulated segfault: bulk load of {len} words (stride {stride}) at {start} past break {}",
            self.brk()
        );
        self.loads += u64::from(len);
        if self.tracing {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: start.raw(),
                len,
                stride,
                size: WORD as u8,
                kind: AccessKind::Read,
            }));
        }
        (0..len)
            .map(|i| {
                let j = (start.raw() + i * stride) as usize;
                u32::from_le_bytes([
                    self.memory[j],
                    self.memory[j + 1],
                    self.memory[j + 2],
                    self.memory[j + 3],
                ])
            })
            .collect()
    }

    /// Scans `len` contiguous words starting at `start` into `out`
    /// (cleared first), observationally equivalent to `len` calls of
    /// [`SimHeap::load_u32`]: same counter totals, and the single batched
    /// [`AccessEvent::Range`] it announces expands to the same per-word
    /// access stream. The buffer-reusing twin of [`SimHeap::scan_words`],
    /// for hot loops (the GC's conservative trace) that would otherwise
    /// allocate per object.
    ///
    /// # Panics
    ///
    /// Panics if any touched word is unmapped/misaligned, exactly as the
    /// per-word loop would.
    pub fn scan_words_into(&mut self, start: Addr, len: u32, out: &mut Vec<u32>) {
        out.clear();
        if len == 0 {
            return;
        }
        self.check_word(start, "load");
        let last = u64::from(start.raw()) + u64::from(len) * u64::from(WORD);
        assert!(
            last <= self.memory.len() as u64,
            "simulated segfault: bulk load of {len} words at {start} past break {}",
            self.brk()
        );
        self.loads += u64::from(len);
        if self.tracing {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: start.raw(),
                len,
                stride: WORD,
                size: WORD as u8,
                kind: AccessKind::Read,
            }));
        }
        let i = start.raw() as usize;
        out.extend(
            self.memory[i..i + (len * WORD) as usize]
                .chunks_exact(WORD as usize)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
    }

    /// Scans `len` contiguous words starting at `start` and returns them;
    /// see [`SimHeap::scan_words_into`] for the contract.
    pub fn scan_words(&mut self, start: Addr, len: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(len as usize);
        self.scan_words_into(start, len, &mut out);
        out
    }

    /// Loads the two consecutive words at `addr` and `addr + WORD` as one
    /// batched len-2 [`AccessEvent::Range`], observationally equivalent to
    /// two [`SimHeap::load_u32`] calls. For paired link fields (`fd`/`bk`)
    /// in freelist chunks.
    pub fn load_u32_pair(&mut self, addr: Addr) -> (u32, u32) {
        self.check_word(addr, "load");
        self.check_word(addr + WORD, "load");
        self.loads += 2;
        if self.tracing {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: addr.raw(),
                len: 2,
                stride: WORD,
                size: WORD as u8,
                kind: AccessKind::Read,
            }));
        }
        let i = addr.raw() as usize;
        (
            u32::from_le_bytes([self.memory[i], self.memory[i + 1], self.memory[i + 2], self.memory[i + 3]]),
            u32::from_le_bytes([self.memory[i + 4], self.memory[i + 5], self.memory[i + 6], self.memory[i + 7]]),
        )
    }

    /// Loads the word at `addr` then the word at `addr - WORD`, in that
    /// order, as one batched len-2 [`AccessEvent::Range`] with wrapping
    /// stride `-WORD` (the canonical expansion uses wrapping arithmetic,
    /// so a descending range is well-formed). Observationally equivalent
    /// to `load_u32(addr)` followed by `load_u32(addr - WORD)`. This is
    /// the boundary-tag producer: a header word and the `prev_size` word
    /// below it are read together when coalescing backward.
    pub fn load_u32_pair_rev(&mut self, addr: Addr) -> (u32, u32) {
        self.check_word(addr, "load");
        self.check_word(addr - WORD, "load");
        self.loads += 2;
        if self.tracing {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: addr.raw(),
                len: 2,
                stride: WORD.wrapping_neg(),
                size: WORD as u8,
                kind: AccessKind::Read,
            }));
        }
        let i = addr.raw() as usize;
        (
            u32::from_le_bytes([self.memory[i], self.memory[i + 1], self.memory[i + 2], self.memory[i + 3]]),
            u32::from_le_bytes([self.memory[i - 4], self.memory[i - 3], self.memory[i - 2], self.memory[i - 1]]),
        )
    }

    /// Stores `values[i]` at `start + i*stride`, observationally
    /// equivalent to `values.len()` calls of [`SimHeap::store_u32`]: same
    /// counter totals, and the single batched write [`AccessEvent::Range`]
    /// it announces expands to the same per-word access stream. Unlike
    /// [`SimHeap::fill`] the stored values may differ per slot — this is
    /// the freelist-threading producer (each free block's first word
    /// points at the previous head).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is not word-aligned or any touched word is
    /// unmapped/misaligned, exactly as the per-word loop would.
    pub fn store_u32_range(&mut self, start: Addr, stride: u32, values: &[u32]) {
        let len = values.len() as u32;
        if len == 0 {
            return;
        }
        assert!(stride % WORD == 0, "misaligned stride {stride} in bulk store at {start}");
        self.check_word(start, "store");
        let last = u64::from(start.raw()) + u64::from(len - 1) * u64::from(stride);
        assert!(
            last + u64::from(WORD) <= self.memory.len() as u64,
            "simulated segfault: bulk store of {len} words (stride {stride}) at {start} past break {}",
            self.brk()
        );
        self.stores += u64::from(len);
        if self.tracing {
            self.emit_event(AccessEvent::Range(AccessRange {
                start: start.raw(),
                len,
                stride,
                size: WORD as u8,
                kind: AccessKind::Write,
            }));
        }
        for (i, v) in values.iter().enumerate() {
            let j = (start.raw() + i as u32 * stride) as usize;
            self.memory[j..j + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Resets the heap to its post-construction state under `config` while
    /// keeping the host allocation warm: the break returns to one guard
    /// page, counters go to zero, any sink is dropped, and the backing
    /// buffer's capacity is retained so a reused heap regrows without
    /// fresh host page faults. Regrown memory is zeroed (`Vec::resize`
    /// zero-fills), so a recycled heap is indistinguishable from
    /// [`SimHeap::with_config`] to the simulated program.
    pub fn reset_with(&mut self, config: HeapConfig) {
        self.memory.truncate(PAGE_SIZE as usize);
        self.memory[..].fill(0);
        self.config = config;
        self.sink = None;
        self.tracing = false;
        self.loads = 0;
        self.stores = 0;
    }

    /// [`SimHeap::reset_with`] under the default configuration.
    pub fn reset(&mut self) {
        self.reset_with(HeapConfig::default());
    }

    /// Reads `len` bytes into a host `Vec` without counting simulated
    /// accesses. Intended for test assertions and I/O boundaries (e.g.
    /// printing a simulated string), not for simulated computation.
    pub fn snapshot(&self, addr: Addr, len: u32) -> Vec<u8> {
        let i = addr.raw() as usize;
        assert!(i + len as usize <= self.memory.len(), "snapshot out of range");
        self.memory[i..i + len as usize].to_vec()
    }

    /// Writes host bytes into the heap without counting simulated accesses.
    /// Intended for loading test fixtures / program inputs.
    pub fn load_bytes_untraced(&mut self, addr: Addr, bytes: &[u8]) {
        let i = addr.raw() as usize;
        assert!(i >= PAGE_SIZE as usize && i + bytes.len() <= self.memory.len(), "write out of range");
        self.memory[i..i + bytes.len()].copy_from_slice(bytes);
    }

    /// Peeks a word without counting a simulated access (for debuggers,
    /// validators and conservative scans that model their cost separately).
    pub fn peek_u32(&self, addr: Addr) -> u32 {
        assert!(addr.is_aligned(WORD), "misaligned peek at {addr}");
        let i = addr.raw() as usize;
        assert!(i + 4 <= self.memory.len(), "peek out of range at {addr}");
        u32::from_le_bytes([self.memory[i], self.memory[i + 1], self.memory[i + 2], self.memory[i + 3]])
    }

    /// Returns `true` if `addr` lies in mapped, non-guard memory.
    pub fn is_mapped(&self, addr: Addr) -> bool {
        addr.raw() >= PAGE_SIZE && (addr.raw() as usize) < self.memory.len()
    }

    /// Captures the heap's complete untraced state as a host-side
    /// [`HeapImage`]: configuration, every mapped byte past the guard page
    /// (the guard page is always zero, so it is not stored), and the
    /// load/store counters. Restoring the image with
    /// [`SimHeap::from_image`] yields a heap that is observationally
    /// identical to this one — same break, same bytes, same counters, same
    /// future behaviour.
    ///
    /// # Panics
    ///
    /// Panics if an access sink is attached: a sink is a live host-side
    /// trait object that cannot be serialized, so callers must
    /// [`SimHeap::detach_sink`] first (and re-attach after restore if they
    /// want to keep tracing).
    pub fn capture_image(&self) -> HeapImage {
        assert!(
            !self.tracing,
            "capture_image while a sink is attached; detach the sink first"
        );
        HeapImage {
            config: self.config,
            bytes: self.memory[PAGE_SIZE as usize..].to_vec(),
            loads: self.loads,
            stores: self.stores,
        }
    }

    /// Rebuilds a heap from a [`HeapImage`] captured by
    /// [`SimHeap::capture_image`]. The restored heap has no sink attached
    /// and is not tracing, exactly like a freshly constructed heap.
    ///
    /// # Panics
    ///
    /// Panics if the image's byte length is not a whole number of pages or
    /// would overflow the 32-bit address space. Deserializers must
    /// validate untrusted input *before* building a `HeapImage` (the
    /// region-core snapshot codec returns a typed error instead).
    pub fn from_image(image: &HeapImage) -> SimHeap {
        let len = image.bytes.len() as u64;
        assert!(len % u64::from(PAGE_SIZE) == 0, "heap image is not a whole number of pages");
        assert!(
            len + u64::from(PAGE_SIZE) <= u64::from(u32::MAX),
            "heap image exceeds the 32-bit address space"
        );
        let mut memory = vec![0u8; PAGE_SIZE as usize];
        memory.extend_from_slice(&image.bytes);
        SimHeap {
            memory,
            config: image.config,
            sink: None,
            tracing: false,
            loads: image.loads,
            stores: image.stores,
        }
    }
}

/// A host-side image of a [`SimHeap`]'s complete untraced state, produced
/// by [`SimHeap::capture_image`] and consumed by [`SimHeap::from_image`].
///
/// The image deliberately excludes the attached [`AccessSink`] (a live
/// trait object with no serial form) and the guard page (always zero).
/// Everything else — break position, mapped bytes, configuration including
/// any injected sbrk-fault budget, and the load/store counters — round-trips
/// bit-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapImage {
    /// Heap configuration at capture time (limit and fault budget).
    pub config: HeapConfig,
    /// Every mapped byte past the guard page; always a whole number of
    /// pages. The break at restore is `PAGE_SIZE + bytes.len()`.
    pub bytes: Vec<u8>,
    /// Simulated load counter at capture time.
    pub loads: u64,
    /// Simulated store counter at capture time.
    pub stores: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, EventRecordingSink, RecordingSink};

    #[test]
    fn new_heap_has_only_guard_page() {
        let heap = SimHeap::new();
        assert_eq!(heap.os_bytes(), u64::from(PAGE_SIZE));
        assert_eq!(heap.brk(), Addr::new(PAGE_SIZE));
    }

    #[test]
    fn sbrk_returns_old_break_and_zeroes() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(2);
        assert_eq!(a, Addr::new(PAGE_SIZE));
        assert_eq!(heap.os_bytes(), u64::from(PAGE_SIZE) * 3);
        assert_eq!(heap.load_u32(a), 0);
        assert_eq!(heap.load_u32(a + 2 * PAGE_SIZE - WORD), 0);
    }

    #[test]
    fn sbrk_bytes_rounds_to_pages() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk(1);
        assert_eq!(heap.brk() - a, PAGE_SIZE);
        let b = heap.sbrk(PAGE_SIZE + 1);
        assert_eq!(heap.brk() - b, 2 * PAGE_SIZE);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.store_u32(a + 8, 0x1234_5678);
        assert_eq!(heap.load_u32(a + 8), 0x1234_5678);
        heap.store_u8(a + 3, 0xAB);
        assert_eq!(heap.load_u8(a + 3), 0xAB);
        heap.store_addr(a, a + 8);
        assert_eq!(heap.load_addr(a), a + 8);
    }

    #[test]
    #[should_panic(expected = "simulated segfault")]
    fn null_deref_panics() {
        let mut heap = SimHeap::new();
        heap.sbrk_pages(1);
        heap.load_u32(Addr::NULL);
    }

    #[test]
    #[should_panic(expected = "simulated segfault")]
    fn guard_page_deref_panics() {
        let mut heap = SimHeap::new();
        heap.sbrk_pages(1);
        heap.load_u32(Addr::new(PAGE_SIZE - WORD));
    }

    #[test]
    #[should_panic(expected = "simulated segfault")]
    fn past_brk_panics() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.store_u32(a + PAGE_SIZE, 1);
    }

    #[test]
    #[should_panic(expected = "simulated bus error")]
    fn misaligned_word_panics() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.load_u32(a + 2);
    }

    #[test]
    #[should_panic(expected = "simulated out of memory")]
    fn address_space_limit_enforced() {
        let mut heap = SimHeap::with_config(HeapConfig {
            max_bytes: 8 * u64::from(PAGE_SIZE),
            ..HeapConfig::default()
        });
        heap.sbrk_pages(16);
    }

    #[test]
    fn try_sbrk_oom_is_typed_and_side_effect_free() {
        let mut heap = SimHeap::with_config(HeapConfig {
            max_bytes: 4 * u64::from(PAGE_SIZE),
            ..HeapConfig::default()
        });
        let a = heap.try_sbrk_pages(2).expect("within limit");
        heap.store_u32(a, 77);
        let brk = heap.brk();
        let err = heap.try_sbrk_pages(8).unwrap_err();
        assert_eq!(
            err,
            HeapError::OutOfMemory {
                requested: 11 * u64::from(PAGE_SIZE),
                limit: 4 * u64::from(PAGE_SIZE)
            }
        );
        assert_eq!(heap.brk(), brk, "failed sbrk must not move the break");
        assert_eq!(heap.load_u32(a), 77, "memory untouched by the failure");
        // The heap keeps working after the refusal.
        assert!(heap.try_sbrk_pages(1).is_ok());
    }

    #[test]
    fn injected_sbrk_fault_fires_deterministically() {
        let mut heap = SimHeap::with_config(HeapConfig {
            sbrk_fault_after: Some(3 * u64::from(PAGE_SIZE)),
            ..HeapConfig::default()
        });
        assert!(heap.try_sbrk_pages(2).is_ok()); // guard + 2 = 3 pages
        let err = heap.try_sbrk_pages(1).unwrap_err();
        assert!(
            matches!(err, HeapError::FaultInjected { granted, budget }
                if granted == 3 * u64::from(PAGE_SIZE) && budget == 3 * u64::from(PAGE_SIZE)),
            "got {err:?}"
        );
        // Lifting the budget resumes normal growth.
        heap.set_sbrk_fault_after(None);
        assert!(heap.try_sbrk_pages(1).is_ok());
    }

    #[test]
    #[should_panic(expected = "injected sbrk fault")]
    fn panicking_sbrk_reports_injected_faults() {
        let mut heap = SimHeap::with_config(HeapConfig {
            sbrk_fault_after: Some(u64::from(PAGE_SIZE)),
            ..HeapConfig::default()
        });
        heap.sbrk_pages(1);
    }

    #[test]
    fn fill_and_copy() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.fill(a, 64, 0xCD);
        assert_eq!(heap.load_u8(a + 63), 0xCD);
        assert_eq!(heap.load_u32(a + 32), 0xCDCD_CDCD);
        // Unaligned fill.
        heap.fill(a + 1, 9, 0x11);
        assert_eq!(heap.load_u8(a), 0xCD);
        assert_eq!(heap.load_u8(a + 1), 0x11);
        assert_eq!(heap.load_u8(a + 9), 0x11);
        assert_eq!(heap.load_u8(a + 10), 0xCD);
        heap.copy(a + 128, a, 16);
        assert_eq!(heap.load_u8(a + 129), 0x11);
    }

    #[test]
    fn copy_unaligned_falls_back_to_bytes() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        for i in 0..8 {
            heap.store_u8(a + i, i as u8);
        }
        heap.copy(a + 17, a + 1, 6);
        for i in 0..6u32 {
            assert_eq!(heap.load_u8(a + 17 + i), (i + 1) as u8);
        }
    }

    #[test]
    fn counters_count() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        let (l0, s0) = (heap.load_count(), heap.store_count());
        heap.store_u32(a, 1);
        heap.load_u32(a);
        heap.load_u8(a);
        assert_eq!(heap.load_count() - l0, 2);
        assert_eq!(heap.store_count() - s0, 1);
    }

    #[test]
    fn sink_receives_accesses_in_order() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.attach_sink(Box::new(RecordingSink::default()));
        heap.store_u32(a, 5);
        heap.load_u8(a + 1);
        // detach and inspect — we know the concrete type we attached, but the
        // API hands back a trait object; for tests use counting via a fresh
        // recording pass instead of downcasting.
        let _ = heap.detach_sink().expect("sink attached");
        // after detaching, accesses are no longer forwarded (no panic, no effect)
        heap.load_u32(a);
    }

    #[test]
    fn counting_sink_through_heap() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.attach_sink(Box::new(CountingSink::default()));
        heap.store_u32(a, 1);
        heap.load_u32(a);
        heap.load_u32(a + 4);
        assert!(heap.detach_sink().is_some());
    }

    #[test]
    fn snapshot_and_untraced_write() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        let (l0, s0) = (heap.load_count(), heap.store_count());
        heap.load_bytes_untraced(a, b"hello");
        assert_eq!(heap.snapshot(a, 5), b"hello");
        assert_eq!(heap.load_count(), l0);
        assert_eq!(heap.store_count(), s0);
        assert_eq!(heap.peek_u32(a), u32::from_le_bytes(*b"hell"));
    }

    /// Runs `f` twice — once untraced (bulk paths), once with a sink
    /// attached (per-word paths) — and asserts the counter deltas agree.
    fn parity<F: Fn(&mut SimHeap)>(f: F) -> (u64, u64) {
        let mut fast = SimHeap::new();
        fast.sbrk_pages(4);
        f(&mut fast);
        let mut slow = SimHeap::new();
        slow.sbrk_pages(4);
        slow.attach_sink(Box::new(CountingSink::default()));
        f(&mut slow);
        assert_eq!(fast.load_count(), slow.load_count(), "load parity");
        assert_eq!(fast.store_count(), slow.store_count(), "store parity");
        assert_eq!(
            fast.snapshot(Addr::new(PAGE_SIZE), 4 * PAGE_SIZE),
            slow.snapshot(Addr::new(PAGE_SIZE), 4 * PAGE_SIZE),
            "memory parity"
        );
        (fast.load_count(), fast.store_count())
    }

    #[test]
    fn bulk_fill_counter_parity() {
        let base = Addr::new(PAGE_SIZE);
        // aligned start, word multiple
        parity(|h| h.fill(base, 64, 0xAA));
        // unaligned start, odd length (head + words + tail)
        let (_, s) = parity(|h| h.fill(base + 3, 11, 0x55));
        assert_eq!(s, 1 + 2 + 2, "1 head byte, 2 words, 2 tail bytes");
        // sub-word fill
        parity(|h| h.fill(base + 1, 2, 0x01));
    }

    #[test]
    fn bulk_copy_counter_parity() {
        let base = Addr::new(PAGE_SIZE);
        parity(|h| {
            h.fill(base, 32, 0x7E);
            h.copy(base + 64, base, 32); // aligned
        });
        let (l, _) = parity(|h| {
            h.fill(base, 32, 0x7E);
            h.copy(base + 65, base + 1, 13); // unaligned: byte-wise
        });
        assert_eq!(l, 13, "byte-wise copy loads once per byte");
        // overlapping backward copy (dst <= src) stays in contract
        parity(|h| {
            h.fill(base, 64, 0x3C);
            h.copy(base + 8, base + 16, 32);
        });
    }

    #[test]
    fn fast_word_paths_match_slow() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.store_u32_fast(a, 0xDEAD_BEEF);
        assert_eq!(heap.load_u32(a), 0xDEAD_BEEF);
        assert_eq!(heap.load_u32_fast(a), 0xDEAD_BEEF);
        assert_eq!(heap.load_count(), 2);
        assert_eq!(heap.store_count(), 1);
    }

    #[test]
    #[should_panic(expected = "simulated segfault")]
    fn fast_load_checks_bounds() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.load_u32_fast(a + PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "simulated bus error")]
    fn fast_store_checks_alignment() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.store_u32_fast(a + 2, 1);
    }

    #[test]
    fn scan_words_matches_scalar_loads() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        for w in 0..16u32 {
            heap.store_u32(a + w * WORD, w * 3 + 1);
        }
        let (l0, s0) = (heap.load_count(), heap.store_count());
        let got = heap.scan_words(a, 16);
        assert_eq!(got, (0..16).map(|w| w * 3 + 1).collect::<Vec<u32>>());
        assert_eq!(heap.load_count() - l0, 16);
        assert_eq!(heap.store_count(), s0);
        // Empty scans touch nothing.
        assert!(heap.scan_words(a, 0).is_empty());
        assert_eq!(heap.load_count() - l0, 16);
    }

    #[test]
    fn scan_words_into_reuses_buffer() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.store_u32(a + 8, 42);
        let mut buf = vec![9, 9, 9];
        heap.scan_words_into(a + 8, 1, &mut buf);
        assert_eq!(buf, vec![42]);
        heap.scan_words_into(a, 0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "simulated segfault")]
    fn scan_words_checks_bounds() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.scan_words(a + PAGE_SIZE - 2 * WORD, 3);
    }

    #[test]
    fn scan_words_emits_one_range_event() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.attach_sink(Box::new(EventRecordingSink::default()));
        heap.scan_words(a, 8);
        let log = heap
            .detach_sink()
            .unwrap()
            .into_any()
            .downcast::<EventRecordingSink>()
            .unwrap()
            .log;
        assert_eq!(log.len(), 1);
        assert!(matches!(
            log[0],
            AccessEvent::Range(r) if r.start == a.raw() && r.len == 8 && r.stride == WORD
                && r.kind == AccessKind::Read
        ));
    }

    #[test]
    fn load_u32_pair_matches_two_loads() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.store_u32(a + 8, 5);
        heap.store_u32(a + 12, 7);
        let (l0, _) = (heap.load_count(), heap.store_count());
        assert_eq!(heap.load_u32_pair(a + 8), (5, 7));
        assert_eq!(heap.load_count() - l0, 2);
    }

    #[test]
    fn load_u32_pair_rev_reads_descending() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.store_u32(a + 16, 0xAA);
        heap.store_u32(a + 12, 0xBB);
        heap.attach_sink(Box::new(RecordingSink::default()));
        assert_eq!(heap.load_u32_pair_rev(a + 16), (0xAA, 0xBB));
        let log = heap.detach_sink().unwrap().into_any().downcast::<RecordingSink>().unwrap().log;
        assert_eq!(
            log,
            vec![Access::read((a + 16).raw(), 4), Access::read((a + 12).raw(), 4)],
            "expansion order is header then prev_size"
        );
        assert_eq!(heap.load_count(), 2);
    }

    #[test]
    fn store_u32_range_matches_scalar_stores() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        let (_, s0) = (heap.load_count(), heap.store_count());
        heap.store_u32_range(a, 16, &[10, 20, 30]);
        assert_eq!(heap.store_count() - s0, 3);
        assert_eq!(heap.load_u32(a), 10);
        assert_eq!(heap.load_u32(a + 16), 20);
        assert_eq!(heap.load_u32(a + 32), 30);
        // Empty stores touch nothing.
        heap.store_u32_range(a, 16, &[]);
        assert_eq!(heap.store_count() - s0, 3);
    }

    #[test]
    #[should_panic(expected = "simulated segfault")]
    fn store_u32_range_checks_bounds() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(1);
        heap.store_u32_range(a + PAGE_SIZE - WORD, WORD, &[1, 2]);
    }

    #[test]
    fn reset_restores_fresh_heap_semantics() {
        let mut heap = SimHeap::new();
        let a = heap.sbrk_pages(3);
        heap.fill(a, 3 * PAGE_SIZE, 0xEE);
        heap.attach_sink(Box::new(CountingSink::default()));
        heap.load_u32(a);
        heap.reset();
        assert_eq!(heap.os_bytes(), u64::from(PAGE_SIZE), "break back to guard page");
        assert_eq!((heap.load_count(), heap.store_count()), (0, 0));
        assert!(!heap.is_tracing());
        let b = heap.sbrk_pages(3);
        assert_eq!(b, a, "addresses replay identically after reset");
        for w in 0..3 * PAGE_SIZE / WORD {
            assert_eq!(heap.peek_u32(b + w * WORD), 0, "regrown memory is zeroed");
        }
    }

    #[test]
    fn reset_with_applies_new_config() {
        let mut heap = SimHeap::new();
        heap.sbrk_pages(8);
        heap.reset_with(HeapConfig { max_bytes: 2 * u64::from(PAGE_SIZE), ..HeapConfig::default() });
        assert!(heap.try_sbrk_pages(1).is_ok());
        assert!(heap.try_sbrk_pages(4).is_err(), "new limit enforced after reset");
    }

    #[test]
    fn charge_counters() {
        let mut heap = SimHeap::new();
        heap.charge_loads(5);
        heap.charge_stores(2);
        assert_eq!((heap.load_count(), heap.store_count()), (5, 2));
    }

    #[test]
    fn image_round_trips_bit_identically() {
        let mut heap = SimHeap::with_config(HeapConfig {
            max_bytes: 64 * u64::from(PAGE_SIZE),
            sbrk_fault_after: Some(32 * u64::from(PAGE_SIZE)),
        });
        let a = heap.sbrk_pages(3);
        heap.fill(a, 2 * PAGE_SIZE, 0x5A);
        heap.store_u32(a + 100, 0xDEAD_BEEF);
        let image = heap.capture_image();
        assert_eq!(image.bytes.len(), 3 * PAGE_SIZE as usize);
        let mut restored = SimHeap::from_image(&image);
        assert_eq!(restored.brk(), heap.brk());
        assert_eq!(restored.load_count(), heap.load_count());
        assert_eq!(restored.store_count(), heap.store_count());
        assert!(!restored.is_tracing());
        assert_eq!(restored.load_u32(a + 100), 0xDEAD_BEEF);
        assert_eq!(heap.load_u32(a + 100), 0xDEAD_BEEF); // keep counters in lockstep
        // The config round-trips too: same fault budget, same limit.
        heap.sbrk_pages(1);
        restored.sbrk_pages(1);
        assert_eq!(
            heap.try_sbrk_pages(64).unwrap_err(),
            restored.try_sbrk_pages(64).unwrap_err(),
            "restored heap refuses growth identically"
        );
        // And the restored heap's own image equals the original's + the
        // identical extra page.
        let im2 = heap.capture_image();
        assert_eq!(im2, restored.capture_image());
    }

    #[test]
    #[should_panic(expected = "detach the sink first")]
    fn capture_image_refuses_attached_sink() {
        let mut heap = SimHeap::new();
        heap.sbrk_pages(1);
        heap.attach_sink(Box::new(CountingSink::default()));
        let _ = heap.capture_image();
    }

    #[test]
    #[should_panic(expected = "whole number of pages")]
    fn from_image_rejects_ragged_length() {
        let image = HeapImage {
            config: HeapConfig::default(),
            bytes: vec![0u8; 100],
            loads: 0,
            stores: 0,
        };
        let _ = SimHeap::from_image(&image);
    }

    #[test]
    fn is_mapped_bounds() {
        let mut heap = SimHeap::new();
        assert!(!heap.is_mapped(Addr::NULL));
        assert!(!heap.is_mapped(Addr::new(PAGE_SIZE)));
        let a = heap.sbrk_pages(1);
        assert!(heap.is_mapped(a));
        assert!(heap.is_mapped(a + PAGE_SIZE - 1));
        assert!(!heap.is_mapped(a + PAGE_SIZE));
    }
}
