//! Diffing for reproduction artifacts: the Table 1 line diff, and a
//! field-level diff over `RSNP` runtime snapshots.
//!
//! For Table 1 the paper counts "the number of changed or extra lines of
//! code in the region-based version, based on the results of `diff -f`".
//! We compute the same quantity between our malloc-variant and
//! region-variant source sections: the number of lines of the region
//! version that do not appear (in order) in the malloc version — i.e.
//! its lines minus the longest common subsequence.
//!
//! For golden *state* checks ([`crate::golden::golden_state_path`]) a
//! byte compare alone would only say "changed"; [`snapshot_divergence`]
//! decodes both snapshots field by field and names the first field that
//! moved — a region id and its drifted counter, a heap page, a stat or
//! cost by name — so the culprit subsystem is identified from the
//! failure message alone.

/// Number of changed-or-added lines in `region` relative to `malloc`
/// (whitespace-trimmed; blank lines ignored).
pub fn changed_lines(malloc: &str, region: &str) -> usize {
    let a: Vec<&str> = malloc.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
    let b: Vec<&str> = region.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
    b.len() - lcs_len(&a, &b)
}

/// Number of significant (non-blank) lines.
pub fn significant_lines(src: &str) -> usize {
    src.lines().map(str::trim).filter(|l| !l.is_empty()).count()
}

/// Compares two runtime snapshots and describes the **first diverging
/// field** by name — `region[3].rc`, `heap.page[12]`, `costs.deletes`,
/// `mirror[40]` — with both values. `None` means the snapshots are
/// byte-identical. Undecodable input is reported as a divergence too
/// (a golden state that no longer parses *is* a divergence).
pub fn snapshot_divergence(golden: &[u8], fresh: &[u8]) -> Option<String> {
    if golden == fresh {
        return None;
    }
    let g = match snapshot_fields(golden) {
        Ok(f) => f,
        Err(e) => return Some(format!("golden snapshot does not decode: {e}")),
    };
    let f = match snapshot_fields(fresh) {
        Ok(f) => f,
        Err(e) => return Some(format!("fresh snapshot does not decode: {e}")),
    };
    for (i, (gf, ff)) in g.iter().zip(&f).enumerate() {
        if gf.0 != ff.0 {
            // Field *names* diverged: a structural change upstream of
            // this point (e.g. a different region count) already renamed
            // the walk; the last common prefix field is the culprit.
            return Some(format!(
                "structure diverges at field #{i}: golden has {}, fresh has {}",
                gf.0, ff.0
            ));
        }
        if gf.1 != ff.1 {
            return Some(format!("first divergence: {} — golden {}, fresh {}", gf.0, gf.1, ff.1));
        }
    }
    if g.len() != f.len() {
        return Some(format!(
            "snapshots share {} fields, then lengths differ (golden {}, fresh {} fields)",
            g.len().min(f.len()),
            g.len(),
            f.len()
        ));
    }
    Some("snapshots differ in bytes but not in any decoded field".to_string())
}

/// Decodes an `RSNP` snapshot into a flat `(name, value)` field list —
/// the same layout [`RegionRuntime::capture_snapshot`] writes (DESIGN
/// §14). Heap pages and descriptor names are folded to one digest value
/// per item so the list stays proportional to the *structure*, not the
/// heap size.
///
/// [`RegionRuntime::capture_snapshot`]: region_core::RegionRuntime::capture_snapshot
fn snapshot_fields(bytes: &[u8]) -> Result<Vec<(String, u64)>, region_core::SnapshotError> {
    use region_core::{SnapReader, SNAPSHOT_MAGIC};

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    fn fnv(bytes: &[u8]) -> u64 {
        bytes
            .iter()
            .fold(FNV_OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3))
    }

    let mut r = SnapReader::new(bytes);
    let mut out: Vec<(String, u64)> = Vec::new();
    let push = |name: String, v: u64, out: &mut Vec<(String, u64)>| out.push((name, v));

    let magic = r.raw(4)?;
    push("magic".into(), fnv(magic), &mut out);
    if magic != SNAPSHOT_MAGIC {
        return Ok(out); // nothing after the magic is trustworthy
    }
    push("version".into(), u64::from(r.u32()?), &mut out);

    r.section("heap");
    push("heap.max_bytes".into(), r.u64()?, &mut out);
    let sbrk = r.opt_u64()?;
    push("heap.sbrk_fault_after".into(), sbrk.map_or(0, |v| v + 1), &mut out);
    push("heap.loads".into(), r.u64()?, &mut out);
    push("heap.stores".into(), r.u64()?, &mut out);
    let n_pages = r.u32()?;
    push("heap.pages".into(), u64::from(n_pages), &mut out);
    for p in 0..n_pages {
        let digest = match r.u8()? {
            0 => 0,
            1 => fnv(r.raw(simheap::PAGE_SIZE as usize)?),
            _ => return Err(r.malformed()),
        };
        push(format!("heap.page[{p}]"), digest, &mut out);
    }

    r.section("config");
    for name in ["config.mode", "config.stagger", "config.clear_on_alloc"] {
        push(name.into(), u64::from(r.u8()?), &mut out);
    }
    push("config.stack_pages".into(), u64::from(r.u32()?), &mut out);
    push("config.heap.max_bytes".into(), r.u64()?, &mut out);
    let sbrk = r.opt_u64()?;
    push("config.heap.sbrk_fault_after".into(), sbrk.map_or(0, |v| v + 1), &mut out);

    r.section("descriptors");
    let n_descs = r.u32()?;
    push("descriptors".into(), u64::from(n_descs), &mut out);
    for d in 0..n_descs {
        push(format!("desc[{d}].name"), fnv(r.bytes()?), &mut out);
        push(format!("desc[{d}].size"), u64::from(r.u32()?), &mut out);
        let n_offs = r.u32()?;
        push(format!("desc[{d}].ptr_offsets"), u64::from(n_offs), &mut out);
        for o in 0..n_offs {
            push(format!("desc[{d}].ptr_offset[{o}]"), u64::from(r.u32()?), &mut out);
        }
    }

    r.section("regions");
    let n_regions = r.u32()?;
    push("regions".into(), u64::from(n_regions), &mut out);
    for i in 0..n_regions {
        push(format!("region[{i}].rc"), r.i64()? as u64, &mut out);
        push(format!("region[{i}].live"), u64::from(r.u8()?), &mut out);
        for bump in ["normal", "string"] {
            let n = r.u32()?;
            push(format!("region[{i}].{bump}.pages"), u64::from(n), &mut out);
            for j in 0..n {
                push(format!("region[{i}].{bump}.page[{j}].addr"), u64::from(r.u32()?), &mut out);
                push(format!("region[{i}].{bump}.page[{j}].start"), u64::from(r.u32()?), &mut out);
            }
            push(format!("region[{i}].{bump}.alloc_from"), u64::from(r.u32()?), &mut out);
        }
        push(format!("region[{i}].bytes"), r.u64()?, &mut out);
        push(format!("region[{i}].allocs"), r.u64()?, &mut out);
    }

    r.section("page-pool");
    let n_free = r.u32()?;
    push("free_pages".into(), u64::from(n_free), &mut out);
    for i in 0..n_free {
        push(format!("free_page[{i}]"), u64::from(r.u32()?), &mut out);
    }
    r.section("page-map");
    let n_root = r.u32()?;
    push("map_root".into(), u64::from(n_root), &mut out);
    for i in 0..n_root {
        let c = r.opt_u32()?;
        push(format!("map_root[{i}]"), c.map_or(0, |v| u64::from(v) + 1), &mut out);
    }
    let n_mirror = r.u32()?;
    push("mirror".into(), u64::from(n_mirror), &mut out);
    for i in 0..n_mirror {
        push(format!("mirror[{i}]"), u64::from(r.u32()?), &mut out);
    }

    r.section("stats");
    for name in [
        "stats.total_allocs",
        "stats.total_bytes",
        "stats.live_bytes",
        "stats.max_live_bytes",
        "stats.total_regions",
        "stats.live_regions",
        "stats.max_live_regions",
        "stats.max_region_bytes",
    ] {
        push(name.into(), r.u64()?, &mut out);
    }
    r.section("costs");
    for name in [
        "costs.barriers_global",
        "costs.barriers_region",
        "costs.barriers_unknown",
        "costs.barriers_elided",
        "costs.barrier_instrs",
        "costs.frames_scanned",
        "costs.slots_scanned",
        "costs.frames_unscanned",
        "costs.slots_unscanned",
        "costs.scan_instrs",
        "costs.cleanup_objects",
        "costs.cleanup_ptrs",
        "costs.cleanup_pages",
        "costs.cleanup_instrs",
        "costs.deletes",
        "costs.deletes_failed",
    ] {
        push(name.into(), r.u64()?, &mut out);
    }

    r.section("stack");
    push("stack.base".into(), u64::from(r.u32()?), &mut out);
    push("stack.slots".into(), u64::from(r.u32()?), &mut out);
    let n_frames = r.u32()?;
    push("stack.frames".into(), u64::from(n_frames), &mut out);
    for i in 0..n_frames {
        push(format!("stack.frame[{i}].base_slot"), u64::from(r.u32()?), &mut out);
        push(format!("stack.frame[{i}].n_slots"), u64::from(r.u32()?), &mut out);
    }
    push("stack.top_slot".into(), u64::from(r.u32()?), &mut out);
    push("stack.hwm".into(), r.u64()?, &mut out);

    r.section("footprint");
    for name in ["footprint.data_pages", "footprint.map_pages", "footprint.globals_pages"] {
        push(name.into(), r.u64()?, &mut out);
    }

    r.section("fault-plan");
    let n_fail = r.u32()?;
    push("faults.fail_pages".into(), u64::from(n_fail), &mut out);
    for i in 0..n_fail {
        push(format!("faults.fail_page[{i}]"), r.u64()?, &mut out);
    }
    for name in ["faults.every_mth_alloc", "faults.alloc_one_in", "faults.sbrk_after"] {
        let v = r.opt_u64()?;
        push(name.into(), v.map_or(0, |v| v.wrapping_add(1)), &mut out);
    }
    for name in ["faults.rng", "faults.pages_seen", "faults.allocs_seen", "faults.injected"] {
        push(name.into(), r.u64()?, &mut out);
    }

    r.section("violations");
    let n_viol = r.u32()?;
    push("violations".into(), u64::from(n_viol), &mut out);
    for i in 0..n_viol {
        let tag = r.u8()?;
        push(format!("violation[{i}].tag"), u64::from(tag), &mut out);
        match tag {
            0 | 1 => push(format!("violation[{i}].region"), u64::from(r.u32()?), &mut out),
            2 => {
                push(format!("violation[{i}].region"), u64::from(r.u32()?), &mut out);
                push(format!("violation[{i}].rc"), r.i64()? as u64, &mut out);
            }
            3 => {
                for side in ["loc", "value"] {
                    let v = r.opt_u32()?;
                    push(
                        format!("violation[{i}].{side}_region"),
                        v.map_or(0, |v| u64::from(v) + 1),
                        &mut out,
                    );
                }
            }
            _ => return Err(r.malformed()),
        }
    }

    r.section("globals");
    let n_globals = r.u32()?;
    push("global_ptr_locs".into(), u64::from(n_globals), &mut out);
    for i in 0..n_globals {
        push(format!("global_ptr_loc[{i}]"), u64::from(r.u32()?), &mut out);
    }
    r.finish()?;
    Ok(out)
}

/// Classic O(n·m) LCS length with a rolling row.
fn lcs_len(a: &[&str], b: &[&str]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for &la in a {
        for (j, &lb) in b.iter().enumerate() {
            cur[j + 1] = if la == lb { prev[j] + 1 } else { cur[j].max(prev[j + 1]) };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sources_have_zero_changes() {
        let s = "a\nb\nc\n";
        assert_eq!(changed_lines(s, s), 0);
    }

    #[test]
    fn counts_added_and_modified_lines() {
        let a = "one\ntwo\nthree\n";
        let b = "one\ntwo-changed\nthree\nfour\n";
        assert_eq!(changed_lines(a, b), 2);
    }

    #[test]
    fn deletions_do_not_count_as_region_lines() {
        // Lines only in the malloc version (e.g. free() calls) are not
        // "lines in the region-based version".
        let a = "one\nfree(x)\ntwo\n";
        let b = "one\ntwo\n";
        assert_eq!(changed_lines(a, b), 0);
    }

    #[test]
    fn whitespace_and_blanks_are_ignored() {
        let a = "  one\n\n two \n";
        let b = "one\ntwo\n\n\n";
        assert_eq!(changed_lines(a, b), 0);
        assert_eq!(significant_lines(b), 2);
    }

    #[test]
    fn reordered_lines_count_once() {
        let a = "a\nb\nc\n";
        let b = "c\na\nb\n"; // LCS is "a b" (or "b c"): one changed line
        assert_eq!(changed_lines(a, b), 1);
    }

    use region_core::{RegionRuntime, TypeDescriptor};

    /// A runtime with a few regions, objects and cross-region pointers —
    /// enough state that every snapshot section is non-trivial.
    fn busy_snapshot() -> Vec<u8> {
        let mut rt = RegionRuntime::new_safe();
        let d = rt.register_type(TypeDescriptor::new("list", 8, vec![4]));
        let r1 = rt.new_region();
        let r2 = rt.new_region();
        let a = rt.ralloc(r1, d);
        let b = rt.ralloc(r2, d);
        rt.store_ptr_region(a + 4, b);
        rt.rstralloc(r2, 100);
        rt.delete_region(r2); // blocked by the cross-region pointer
        rt.capture_snapshot()
    }

    #[test]
    fn snapshot_fields_walk_a_real_snapshot_to_the_end() {
        let snap = busy_snapshot();
        let fields = snapshot_fields(&snap).expect("real snapshot must decode");
        // Spot-check that the walk reaches every section.
        for want in ["heap.loads", "region[0].rc", "stats.total_allocs", "costs.deletes", "stack.hwm", "faults.injected", "global_ptr_locs"] {
            assert!(fields.iter().any(|(n, _)| n == want), "missing field {want}");
        }
    }

    #[test]
    fn identical_snapshots_have_no_divergence() {
        let snap = busy_snapshot();
        assert_eq!(snapshot_divergence(&snap, &snap.clone()), None);
    }

    #[test]
    fn first_diverging_field_is_named_with_both_values() {
        let golden = busy_snapshot();
        let mut fresh = golden.clone();
        fresh[8] ^= 0xFF; // low byte of heap.max_bytes, directly after magic+version
        let msg = snapshot_divergence(&golden, &fresh).expect("doctored snapshot must diverge");
        assert!(msg.contains("heap.max_bytes"), "message was: {msg}");
        assert!(msg.contains("golden") && msg.contains("fresh"), "message was: {msg}");
    }

    #[test]
    fn behavioural_divergence_names_a_field() {
        // Two runs that differ by one allocation diverge somewhere concrete
        // (a heap page digest, since pages precede the counters).
        let golden = busy_snapshot();
        let fresh = {
            let mut rt = RegionRuntime::new_safe();
            let d = rt.register_type(TypeDescriptor::new("list", 8, vec![4]));
            let r1 = rt.new_region();
            let r2 = rt.new_region();
            let a = rt.ralloc(r1, d);
            let b = rt.ralloc(r2, d);
            rt.store_ptr_region(a + 4, b);
            rt.rstralloc(r2, 100);
            rt.ralloc(r1, d); // the extra op
            rt.delete_region(r2);
            rt.capture_snapshot()
        };
        let msg = snapshot_divergence(&golden, &fresh).expect("extra alloc must diverge");
        assert!(msg.contains("first divergence") || msg.contains("structure"), "message was: {msg}");
    }

    #[test]
    fn undecodable_fresh_snapshot_is_reported_not_panicked() {
        let golden = busy_snapshot();
        let fresh = &golden[..golden.len() - 2]; // truncated
        let msg = snapshot_divergence(&golden, fresh).expect("truncation must diverge");
        assert!(msg.contains("does not decode"), "message was: {msg}");
    }
}
