//! Property suite for the region service's resilience books: the
//! retry/shed/quarantine decisions must be a pure function of
//! `(seed, watermarks)` — never of the OS schedule — and a crashed
//! session must be invisible in its neighbours' ledgers.

use std::time::Duration;

use bench_harness::{install_service_panic_filter, run_service, ServiceConfig};
use region_core::Watermarks;

/// A small-but-adversarial config: every round injects allocation
/// faults, worker panics, and watermark pressure.
fn tiny(seed: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::quick(seed);
    cfg.sessions = 3;
    cfg.requests_per_session = 30;
    cfg.rounds = 3;
    cfg.threads = 2;
    cfg.marks = Watermarks::new(10, 16);
    cfg.fault_one_in = 7;
    cfg.panic_one_in = 11;
    cfg.backoff = Duration::from_micros(1);
    cfg
}

/// The complete encoded books — fleet ledger, per-session ledgers,
/// digest, footprint high-water, quarantine counters — are a pure
/// function of the seed and the watermarks: same inputs, same bytes,
/// run after run.
#[test]
fn books_are_a_pure_function_of_seed_and_watermarks() {
    install_service_panic_filter();
    let cfg = tiny(0xD15EA5E);
    let a = run_service(&cfg);
    let b = run_service(&cfg);
    assert_eq!(a.encode_books(), b.encode_books(), "same-seed books diverged");
    assert_eq!(a.per_session, b.per_session, "per-session ledgers diverged");
    // And the inputs genuinely matter: a different seed or different
    // watermarks moves the books.
    let c = run_service(&tiny(0xD15EA5F));
    assert_ne!(a.encode_books(), c.encode_books(), "seed is not reaching the books");
    let mut wider = cfg;
    wider.marks = Watermarks::unbounded();
    let d = run_service(&wider);
    assert_ne!(
        a.ledger.shed, d.ledger.shed,
        "watermarks are not reaching the shed decisions"
    );
}

/// The OS thread count schedules the work but must never reach the
/// books: 1, 2 and 3 threads land on identical bytes.
#[test]
fn thread_count_is_invisible_in_the_books() {
    install_service_panic_filter();
    let cfg = tiny(0xBEEF);
    let books: Vec<_> = [1usize, 2, 3]
        .into_iter()
        .map(|threads| run_service(&ServiceConfig { threads, ..cfg }).encode_books())
        .collect();
    assert_eq!(books[0], books[1], "books moved between 1 and 2 threads");
    assert_eq!(books[0], books[2], "books moved between 1 and 3 threads");
}

/// Session isolation: with admission decoupled (unbounded watermarks,
/// so no session sees another through the footprint), a session's
/// ledger depends only on `(seed, session)` — adding more sessions to
/// the fleet, including sessions that panic and get their regions
/// quarantined and reaped, must not perturb the ledgers of the
/// sessions that were already there.
#[test]
fn quarantined_sessions_do_not_perturb_their_neighbours() {
    install_service_panic_filter();
    let mut cfg = tiny(0xA110C);
    cfg.marks = Watermarks::unbounded();
    cfg.requests_per_session = 44; // enough traffic for panics to land
    let small = run_service(&ServiceConfig { sessions: 2, ..cfg });
    let large = run_service(&ServiceConfig { sessions: 6, ..cfg });
    assert!(large.ledger.panics > 0, "the large fleet must crash somewhere");
    assert!(large.quarantined > 0, "a crash must quarantine its regions");
    assert_eq!(large.quarantined, large.reaped, "every quarantined region reaped");
    for s in 0..2 {
        assert_eq!(
            small.per_session[s], large.per_session[s],
            "session {s}'s ledger changed when four strangers joined the fleet"
        );
    }
}

/// Backpressure sanity: unbounded watermarks never degrade or shed a
/// request, and (for a single session, whose footprint trajectory is
/// self-contained) tightening only the hard watermark sheds
/// monotonically more.
#[test]
fn shedding_is_monotone_in_the_hard_watermark() {
    install_service_panic_filter();
    let mut cfg = tiny(0x5EED);
    cfg.sessions = 1;
    cfg.requests_per_session = 200;
    cfg.marks = Watermarks::unbounded();
    let open = run_service(&cfg);
    assert_eq!(open.ledger.shed, 0, "unbounded watermarks must never shed");
    assert_eq!(open.ledger.degraded, 0, "unbounded watermarks must never degrade");

    // Same soft mark, so the footprint trajectories agree until the
    // tighter hard mark is crossed; pages are never returned to the OS,
    // so everything after the crossing sheds in both runs. The marks
    // come from the probed unbounded high-water so the test holds at
    // any base-footprint scale.
    let hw = open.high_water_pages;
    let soft = hw / 2;
    cfg.marks = Watermarks::new(soft, 2 * hw / 3 + 2);
    let loose = run_service(&cfg);
    cfg.marks = Watermarks::new(soft, 2 * hw / 3);
    let tight = run_service(&cfg);
    assert!(loose.ledger.shed > 0, "the loose hard mark never engaged");
    assert!(
        tight.ledger.shed >= loose.ledger.shed,
        "tightening the hard watermark shed fewer requests ({} < {})",
        tight.ledger.shed,
        loose.ledger.shed
    );
    // Every arm's ledger still conserves.
    for r in [&open, &loose, &tight] {
        assert!(r.ledger.conserves(), "ledger must conserve under every watermark");
    }
}
