//! Cleanup descriptors — the compiler-generated form of the paper's
//! *cleanup functions* (§4.2.4).
//!
//! In C@, `ralloc` and `rarrayalloc` take a user-written cleanup function
//! because C's `union` makes it impossible for the compiler to locate every
//! region pointer. The paper notes that "for cases without union, and in
//! higher-level languages, the cleanup function could be generated
//! automatically by the compiler". Our C@ dialect has no `union`, so the
//! compiler generates a [`TypeDescriptor`] per type: the object size plus
//! the offsets of its region-pointer fields. The runtime's region scan
//! (paper Figure 7) walks a deleted region's pages, reads each object's
//! descriptor id, releases the reference counts held by its pointer fields
//! and advances by the descriptor's size — exactly what the hand-written
//! `cleanup_list` of Figure 6 does for lists.

use std::fmt;

/// Identifier of a registered [`TypeDescriptor`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DescId(pub(crate) u32);

impl DescId {
    /// The raw index of this descriptor.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from [`DescId::index`] output — for callers (like a
    /// snapshotted driver) that persist ids across a save/restore of the
    /// runtime that issued them. The id is only meaningful against a table
    /// with the same registration history.
    pub fn from_index(index: u32) -> DescId {
        DescId(index)
    }
}

/// Layout information for one allocated type: its size and where its
/// region pointers live.
///
/// ```
/// use region_core::TypeDescriptor;
/// // struct list { int i; struct list @next; }  (paper Figure 3)
/// let list = TypeDescriptor::new("list", 8, vec![4]);
/// assert_eq!(list.size(), 8);
/// assert_eq!(list.ptr_offsets(), &[4]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeDescriptor {
    name: String,
    size: u32,
    ptr_offsets: Vec<u32>,
}

impl TypeDescriptor {
    /// Creates a descriptor for a type called `name` of `size` bytes whose
    /// region-pointer fields are at the given byte offsets.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero, if any offset is unaligned or out of
    /// bounds, or if offsets are not strictly increasing.
    pub fn new(name: impl Into<String>, size: u32, ptr_offsets: Vec<u32>) -> TypeDescriptor {
        assert!(size > 0, "zero-sized allocation type");
        let mut prev: Option<u32> = None;
        for &off in &ptr_offsets {
            assert!(off % 4 == 0, "unaligned pointer offset {off}");
            assert!(off + 4 <= size, "pointer offset {off} out of bounds for size {size}");
            if let Some(p) = prev {
                assert!(off > p, "pointer offsets must be strictly increasing");
            }
            prev = Some(off);
        }
        TypeDescriptor { name: name.into(), size, ptr_offsets }
    }

    /// Creates a descriptor for a pointer-free type (allocatable with
    /// `ralloc` but better served by `rstralloc`).
    pub fn pointer_free(name: impl Into<String>, size: u32) -> TypeDescriptor {
        TypeDescriptor::new(name, size, Vec::new())
    }

    /// The type's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The object size in bytes (unaligned; the allocator rounds up).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Byte offsets of the region-pointer fields.
    pub fn ptr_offsets(&self) -> &[u32] {
        &self.ptr_offsets
    }

    /// `true` if the type contains no region pointers.
    pub fn is_pointer_free(&self) -> bool {
        self.ptr_offsets.is_empty()
    }
}

/// Registry of type descriptors, indexed by [`DescId`].
#[derive(Default, Debug, Clone)]
pub struct DescriptorTable {
    descs: Vec<TypeDescriptor>,
}

impl DescriptorTable {
    /// Creates an empty table.
    pub fn new() -> DescriptorTable {
        DescriptorTable::default()
    }

    /// Registers a descriptor and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if more than 2³⁰ descriptors are registered (the object
    /// header reserves bits for the array flag).
    pub fn register(&mut self, desc: TypeDescriptor) -> DescId {
        let id = self.descs.len() as u32;
        assert!(id < (1 << 30), "descriptor table overflow");
        self.descs.push(desc);
        DescId(id)
    }

    /// Looks up a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn get(&self, id: DescId) -> &TypeDescriptor {
        &self.descs[id.0 as usize]
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// `true` if no descriptors are registered.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }
}

impl fmt::Display for TypeDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} bytes, {} ptrs)", self.name, self.size, self.ptr_offsets.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut t = DescriptorTable::new();
        let a = t.register(TypeDescriptor::new("list", 8, vec![4]));
        let b = t.register(TypeDescriptor::pointer_free("blob", 32));
        assert_ne!(a, b);
        assert_eq!(t.get(a).name(), "list");
        assert!(t.get(b).is_pointer_free());
        assert!(!t.get(a).is_pointer_free());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "unaligned pointer offset")]
    fn rejects_unaligned_offset() {
        TypeDescriptor::new("bad", 8, vec![2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_offset() {
        TypeDescriptor::new("bad", 8, vec![8]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_offsets() {
        TypeDescriptor::new("bad", 16, vec![8, 4]);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn rejects_zero_size() {
        TypeDescriptor::new("bad", 0, vec![]);
    }

    #[test]
    fn display_is_informative() {
        let d = TypeDescriptor::new("cons", 8, vec![4]);
        assert_eq!(format!("{d}"), "cons (8 bytes, 1 ptrs)");
    }
}
