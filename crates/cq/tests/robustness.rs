//! Robustness: the C@ compiler must reject garbage gracefully (errors,
//! never panics), and compiled programs must stay memory-safe under the
//! VM's traps.

use cq_lang::{compile, Vm};
use proptest::prelude::*;
use region_core::SafetyMode;

// Random byte soup: the compiler returns an error or a program, and
// never panics.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiler_never_panics_on_ascii_soup(src in "[ -~\\n]{0,200}") {
        let _ = compile(&src);
    }

    /// Structured soup biased toward C@ tokens — more likely to get deep
    /// into the parser and type checker.
    #[test]
    fn compiler_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("struct"), Just("int"), Just("Region"), Just("void"),
                Just("if"), Just("else"), Just("while"), Just("return"),
                Just("null"), Just("print"), Just("newregion()"),
                Just("deleteregion"), Just("ralloc"), Just("rstralloc"),
                Just("cast"), Just("@"), Just("*"), Just("&"), Just("("),
                Just(")"), Just("{"), Just("}"), Just(";"), Just(","),
                Just("="), Just("=="), Just("+"), Just("x"), Just("main"),
                Just("list"), Just("7"), Just("->"), Just("."), Just("["),
                Just("]"), Just("<"), Just(">"),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = compile(&src);
    }

    /// Well-formed arithmetic main()s: compile, run, and match a host
    /// evaluation of the same expression.
    #[test]
    fn arithmetic_matches_host(a in -1000i32..1000, b in -1000i32..1000, c in 1i32..100) {
        let src = format!(
            "void main() {{ print(({a} + {b}) * 3 - {b} / {c}); print(({a} < {b}) + ({a} == {a})); }}"
        );
        let p = compile(&src).unwrap();
        let mut vm = Vm::new(p, SafetyMode::Safe);
        vm.run().unwrap();
        let expected0 = (a.wrapping_add(b)).wrapping_mul(3).wrapping_sub(b.wrapping_div(c));
        let expected1 = i32::from(a < b) + 1;
        prop_assert_eq!(vm.output(), &[expected0, expected1]);
    }
}

/// Every trap keeps the simulated heap intact: after a trap we can still
/// inspect runtime statistics without panicking.
#[test]
fn traps_leave_the_vm_inspectable() {
    let cases = [
        ("void main() { int x = 0; print(1 / x); }", "division"),
        ("struct s { int v; }; void main() { s@ p = null; print(p.v); }", "null pointer"),
        (
            "void main() { Region r = newregion(); deleteregion(r); int@ a = rstralloc(r, 4); }",
            "null region",
        ),
        ("void main() { Region r = newregion(); int@ a = rstralloc(r, 0 - 4); }", "non-positive"),
    ];
    for (src, needle) in cases {
        let p = compile(src).unwrap();
        let mut vm = Vm::new(p, SafetyMode::Safe);
        let err = vm.run().unwrap_err();
        assert!(err.message.contains(needle), "{src}: got {err}");
        // Post-trap introspection works.
        let _ = vm.runtime().stats();
        let _ = vm.instructions();
    }
}

/// Deep-but-bounded recursion works; unbounded recursion exhausts the
/// shadow stack with a clean trap, not a host stack overflow.
#[test]
fn runaway_recursion_traps_cleanly() {
    let p = compile(
        r#"
        struct s { int v; s@ p; };
        int down(Region r, int n, s@ x) {
            s@ y = ralloc(r, s);
            return down(r, n + 1, y);
        }
        void main() {
            Region r = newregion();
            int x = down(r, 0, null);
        }
    "#,
    )
    .unwrap();
    let mut vm = Vm::new(p, SafetyMode::Safe);
    vm.set_fuel(50_000_000);
    let err = vm.run().unwrap_err();
    // Either the shadow stack or the region heap gives out first — both
    // are in-simulation failures, not host crashes.
    assert!(
        err.message.contains("budget")
            || err.message.contains("stack")
            || err.message.contains("memory"),
        "got: {err}"
    );
}
