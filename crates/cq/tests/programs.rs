//! End-to-end C@ programs exercising the paper's semantics: safe
//! deletion, stale pointers, cleanup, the unsafe mode, and the cost
//! counters.

use cq_lang::{compile, Vm, VmError};
use region_core::SafetyMode;

fn run(src: &str) -> Vm {
    let program = compile(src).expect("program compiles");
    let mut vm = Vm::new(program, SafetyMode::Safe);
    vm.run().expect("program runs");
    vm
}

fn run_unsafe(src: &str) -> Vm {
    let program = compile(src).expect("program compiles");
    let mut vm = Vm::new(program, SafetyMode::Unsafe);
    vm.run().expect("program runs");
    vm
}

fn trap(src: &str) -> VmError {
    let program = compile(src).expect("program compiles");
    let mut vm = Vm::new(program, SafetyMode::Safe);
    vm.run().expect_err("program traps")
}

#[test]
fn figure1_allocation_loop() {
    // The paper's Figure 1: ten growing int arrays, freed all at once.
    let vm = run(r#"
        void work(int i, int@ x) { x[i] = i; }
        void main() {
            Region r = newregion();
            int i = 0;
            while (i < 10) {
                int@ x = rstralloc(r, i + 1);
                work(i, x);
                i = i + 1;
            }
            x_check(r);
            print(deleteregion(r));
        }
        void x_check(Region r) { }
    "#);
    assert_eq!(vm.output(), &[1]);
    assert_eq!(vm.runtime().stats().total_allocs, 10);
    assert_eq!(vm.runtime().stats().live_regions, 0);
}

#[test]
fn figure3_list_copy_with_temporary_region() {
    // work() copies a list into a temporary region, uses it, deletes it.
    let vm = run(r#"
        struct list { int i; list@ next; };
        list@ cons(Region r, int x, list@ l) {
            list@ p = ralloc(r, list);
            p.i = x;
            p.next = l;
            return p;
        }
        list@ copy_list(Region r, list@ l) {
            if (l == null) return null;
            return cons(r, l.i, copy_list(r, l.next));
        }
        int sum(list@ l) {
            if (l == null) return 0;
            return l.i + sum(l.next);
        }
        void main() {
            Region r = newregion();
            list@ l = cons(r, 3, cons(r, 2, cons(r, 1, null)));
            Region tmp = newregion();
            list@ c = copy_list(tmp, l);
            print(sum(c));
            c = null;
            print(deleteregion(tmp));
            print(sum(l));
        }
    "#);
    assert_eq!(vm.output(), &[6, 1, 6]);
}

#[test]
fn delete_fails_while_stack_reference_lives() {
    let vm = run(r#"
        struct node { int v; node@ next; };
        void main() {
            Region r = newregion();
            node@ p = ralloc(r, node);
            print(deleteregion(r));  // 0: p is live on the stack
            p = null;
            print(deleteregion(r));  // 1
        }
    "#);
    assert_eq!(vm.output(), &[0, 1]);
    assert_eq!(vm.runtime().costs().deletes_failed, 1);
}

#[test]
fn delete_fails_while_global_reference_lives_mudlle_style() {
    // The paper had to clear stale globals in mudlle to let regions die.
    let vm = run(r#"
        struct node { int v; node@ next; };
        global node@ stale;
        void main() {
            Region r = newregion();
            stale = ralloc(r, node);
            print(deleteregion(r));  // 0: global points in
            stale = null;            // "clear some global variables with stale pointers"
            print(deleteregion(r));  // 1
        }
    "#);
    assert_eq!(vm.output(), &[0, 1]);
}

#[test]
fn cross_region_references_block_until_source_dies() {
    let vm = run(r#"
        struct node { int v; node@ next; };
        void main() {
            Region a = newregion();
            Region b = newregion();
            node@ pa = ralloc(a, node);
            node@ pb = ralloc(b, node);
            pa.next = pb;             // a -> b
            pa = null;
            pb = null;
            print(deleteregion(b));   // 0: referenced from region a
            print(deleteregion(a));   // 1: cleanup releases the count
            print(deleteregion(b));   // 1: now free
        }
    "#);
    assert_eq!(vm.output(), &[0, 1, 1]);
}

#[test]
fn same_region_cycles_are_collected() {
    let vm = run(r#"
        struct node { int v; node@ next; };
        void main() {
            Region r = newregion();
            node@ a = ralloc(r, node);
            node@ b = ralloc(r, node);
            a.next = b;
            b.next = a;              // cycle within r: not counted
            a = null;
            b = null;
            print(deleteregion(r));
        }
    "#);
    assert_eq!(vm.output(), &[1]);
}

#[test]
fn deleteregion_nulls_its_argument() {
    // Paper: "On success, *x is set to NULL". Using the region afterwards
    // traps as a *null region*, not as a dangling one.
    let err = trap(r#"
        struct node { int v; };
        void main() {
            Region r = newregion();
            deleteregion(r);
            node@ p = ralloc(r, node);
        }
    "#);
    assert!(err.message.contains("null region"), "got: {err}");
}

#[test]
fn null_dereference_traps() {
    let err = trap(r#"
        struct node { int v; };
        void main() {
            node@ p = null;
            print(p.v);
        }
    "#);
    assert!(err.message.contains("null pointer"));
    assert_eq!(err.func, "main");
}

#[test]
fn division_by_zero_traps() {
    let err = trap("void main() { int x = 0; print(7 / x); }");
    assert!(err.message.contains("division by zero"));
}

#[test]
fn infinite_loop_runs_out_of_fuel() {
    let program = compile("void main() { while (1) { } }").unwrap();
    let mut vm = Vm::new(program, SafetyMode::Safe);
    vm.set_fuel(100_000);
    let err = vm.run().unwrap_err();
    assert!(err.message.contains("budget"));
}

#[test]
fn unsafe_mode_deletes_unconditionally() {
    let vm = run_unsafe(r#"
        struct node { int v; node@ next; };
        global node@ stale;
        void main() {
            Region r = newregion();
            stale = ralloc(r, node);
            print(deleteregion(r));  // 1 even with a live global reference!
        }
    "#);
    assert_eq!(vm.output(), &[1]);
    assert_eq!(vm.runtime().costs().total_instrs(), 0, "no safety work in unsafe mode");
}

#[test]
fn safety_cost_counters_reflect_barrier_mix() {
    let vm = run(r#"
        struct node { int v; node@ next; };
        global node@ head;
        void main() {
            Region r = newregion();
            int i = 0;
            while (i < 10) {
                node@ n = ralloc(r, node);
                n.next = head;       // region write (23 instrs each)
                head = n;            // global write (16 instrs each)
                i = i + 1;
            }
            head = null;
            print(deleteregion(r));
        }
    "#);
    assert_eq!(vm.output(), &[1]);
    let costs = vm.runtime().costs();
    assert_eq!(costs.barriers_region, 10);
    assert_eq!(costs.barriers_global, 11); // 10 stores + the final clear
    assert_eq!(costs.barrier_instrs, 10 * 23 + 11 * 16);
    assert!(costs.cleanup_objects >= 10, "cleanup walked the nodes");
}

#[test]
fn struct_arrays_with_address_arithmetic() {
    let vm = run(r#"
        struct pair { int a; int b; };
        void main() {
            Region r = newregion();
            pair@ arr = rarrayalloc(r, 5, pair);
            int i = 0;
            while (i < 5) {
                arr[i].a = i;
                arr[i].b = i * i;
                i = i + 1;
            }
            print(arr[4].a + arr[4].b);
            print(deleteregion(r));   // fails: arr is live
            arr = null;
            print(deleteregion(r));
        }
    "#);
    assert_eq!(vm.output(), &[20, 0, 1]);
}

#[test]
fn int_arrays_work_and_are_pointer_free() {
    let vm = run(r#"
        void main() {
            Region r = newregion();
            int@ a = rstralloc(r, 100);
            int i = 0;
            while (i < 100) { a[i] = i * 3; i = i + 1; }
            int sum = 0;
            i = 0;
            while (i < 100) { sum = sum + a[i]; i = i + 1; }
            print(sum);
        }
    "#);
    assert_eq!(vm.output(), &[3 * 99 * 100 / 2]);
    // rstralloc data is pointer-free: the cleanup scan must not have
    // walked any objects for it.
    assert_eq!(run("void main() { Region r = newregion(); int@ a = rstralloc(r, 8); a = null; print(deleteregion(r)); }")
        .runtime().costs().cleanup_objects, 0);
}

#[test]
fn regionof_identifies_owning_region() {
    let vm = run(r#"
        struct node { int v; };
        void main() {
            Region a = newregion();
            Region b = newregion();
            node@ pa = ralloc(a, node);
            node@ pb = ralloc(b, node);
            print(regionof(pa) == a);
            print(regionof(pb) == b);
            print(regionof(pa) == regionof(pb));
            print(regionof(pa) == regionof(cast<node@>(pa)));
        }
    "#);
    assert_eq!(vm.output(), &[1, 1, 0, 1]);
}

#[test]
fn unknown_barrier_through_cast_still_counts() {
    // A region pointer laundered through a * pointer: the write through
    // the * pointer is classified at runtime and still maintains counts,
    // so safety is preserved.
    let vm = run(r#"
        struct node { int v; node@ next; };
        void main() {
            Region a = newregion();
            Region b = newregion();
            node@ pa = ralloc(a, node);
            node@ pb = ralloc(b, node);
            node* np = cast<node*>(pa);
            np.next = pb;             // runtime-classified write into region a
            pa = null;
            pb = null;
            np = null;
            print(deleteregion(b));   // 0! the laundered pointer still counts
            print(deleteregion(a));
            print(deleteregion(b));
        }
    "#);
    assert_eq!(vm.output(), &[0, 1, 1]);
    assert_eq!(vm.runtime().costs().barriers_unknown, 1);
}

#[test]
fn global_struct_values_are_global_storage() {
    let vm = run(r#"
        struct holder { int v; holder@ link; };
        global holder anchor;
        void main() {
            Region r = newregion();
            holder* a = &anchor;
            a.v = 99;
            a.link = ralloc(r, holder);   // pointer FROM global storage
            print(a.v);
            print(deleteregion(r));       // 0
            a.link = null;
            print(deleteregion(r));       // 1
        }
    "#);
    assert_eq!(vm.output(), &[99, 0, 1]);
}

#[test]
fn pointer_live_across_call_survives_attempted_delete() {
    // The callee tries to delete the region whose object the CALLER still
    // holds on its evaluation stack (spilled to a shadow temp): deletion
    // must fail, and the value must remain usable.
    let vm = run(r#"
        struct node { int v; node@ next; };
        global Region g;
        int try_delete() {
            return deleteregion(g);
        }
        int second(node@ a, int x) { return a.v + x; }
        void main() {
            g = newregion();
            node@ p = ralloc(g, node);
            p.v = 40;
            print(second(p, try_delete()));  // p spilled across try_delete()
            p = null;
            print(try_delete());
        }
    "#);
    // try_delete returns 0 (p live), second returns 40 + 0.
    assert_eq!(vm.output(), &[40, 1]);
    assert!(vm.runtime().costs().deletes_failed >= 1);
}

#[test]
fn deep_recursion_scans_all_frames() {
    let vm = run(r#"
        struct node { int v; node@ next; };
        global Region g;
        int deep(int n, node@ carried) {
            if (n == 0) {
                return deleteregion(g);   // every frame above holds `carried`
            }
            return deep(n - 1, carried);
        }
        void main() {
            g = newregion();
            node@ p = ralloc(g, node);
            print(deep(50, p));   // 0: fifty frames hold the pointer
            p = null;
            print(deep(50, null));
        }
    "#);
    assert_eq!(vm.output(), &[0, 1]);
    let costs = vm.runtime().costs();
    assert!(costs.frames_scanned > 50, "the scan walked the recursion");
    assert!(costs.frames_unscanned > 50, "returns unscanned the scanned frames");
}

#[test]
fn allocation_stats_shape_matches_table2() {
    let vm = run(r#"
        struct node { int v; node@ next; };
        void main() {
            int outer = 0;
            while (outer < 8) {
                Region r = newregion();
                int i = 0;
                while (i < 20) {
                    node@ n = ralloc(r, node);
                    i = i + 1;
                }
                deleteregion(r);
                outer = outer + 1;
            }
        }
    "#);
    let stats = vm.runtime().stats();
    assert_eq!(stats.total_regions, 8);
    assert_eq!(stats.max_live_regions, 1);
    assert_eq!(stats.total_allocs, 160);
    assert_eq!(stats.live_regions, 0);
    assert!((stats.avg_allocs_per_region() - 20.0).abs() < 1e-9);
}

#[test]
fn output_identical_between_safe_and_unsafe_modes() {
    // A program with no failed deletions behaves identically in both
    // modes — the paper's safe/unsafe comparison depends on this.
    let src = r#"
        struct list { int i; list@ next; };
        list@ cons(Region r, int x, list@ l) {
            list@ p = ralloc(r, list);
            p.i = x;
            p.next = l;
            return p;
        }
        void main() {
            int round = 0;
            while (round < 5) {
                Region r = newregion();
                list@ l = null;
                int i = 0;
                while (i < 30) { l = cons(r, i, l); i = i + 1; }
                int sum = 0;
                while (l != null) { sum = sum + l.i; l = l.next; }
                print(sum);
                deleteregion(r);
                round = round + 1;
            }
        }
    "#;
    let safe = run(src);
    let unsafe_vm = run_unsafe(src);
    assert_eq!(safe.output(), unsafe_vm.output());
    assert!(safe.runtime().costs().total_instrs() > 0);
    assert_eq!(unsafe_vm.runtime().costs().total_instrs(), 0);
    // Unsafe regions carry no per-object headers, so they use fewer pages.
    assert!(unsafe_vm.runtime().data_pages() <= safe.runtime().data_pages());
}

#[test]
fn break_and_continue_work() {
    let vm = run(r#"
        void main() {
            int i = 0;
            int sum = 0;
            while (1) {
                i = i + 1;
                if (i > 10) break;
                if (i % 2 == 0) continue;
                sum = sum + i;     // odd numbers 1..9
            }
            print(sum);
            print(i);
        }
    "#);
    assert_eq!(vm.output(), &[25, 11]);
}

#[test]
fn break_clears_loop_scoped_region_pointers() {
    // A pointer declared inside the loop body must not survive the break
    // as a stale shadow slot — or the delete would fail.
    let vm = run(r#"
        struct node { int v; node@ next; };
        void main() {
            Region r = newregion();
            int i = 0;
            while (i < 100) {
                node@ scratch = ralloc(r, node);
                scratch.v = i;
                if (i == 5) break;   // jumps out with `scratch` in scope
                i = i + 1;
            }
            print(deleteregion(r)); // must be 1: break cleared `scratch`
        }
    "#);
    assert_eq!(vm.output(), &[1]);
}

#[test]
fn continue_clears_loop_scoped_region_pointers() {
    let vm = run(r#"
        struct node { int v; node@ next; };
        void main() {
            int round = 0;
            while (round < 5) {
                Region r = newregion();
                node@ p = ralloc(r, node);
                round = round + 1;
                if (deleteregion(r) == 0) {
                    print(0 - 1);   // would mean p blocked the delete
                    continue;
                }
                print(round);
            }
        }
    "#);
    // deleteregion is called while p is live → always 0 → -1 five times?
    // No: p is in scope at the delete, so the first print is -1 … the
    // test actually asserts the scan sees p:
    assert_eq!(vm.output(), &[-1, -1, -1, -1, -1]);
}

#[test]
fn break_outside_loop_is_an_error() {
    let err = cq_lang::compile("void main() { break; }").unwrap_err();
    assert!(err.message.contains("outside a loop"));
    let err = cq_lang::compile("void main() { continue; }").unwrap_err();
    assert!(err.message.contains("outside a loop"));
}

#[test]
fn for_loops_work() {
    let vm = run(r#"
        void main() {
            int sum = 0;
            for (int i = 0; i < 10; i = i + 1) {
                sum = sum + i;
            }
            print(sum);
            // init may also be an assignment; bodies may be single stmts.
            int j = 0;
            for (j = 10; j > 0; j = j - 2) sum = sum + 1;
            print(sum);
        }
    "#);
    assert_eq!(vm.output(), &[45, 50]);
}

#[test]
fn continue_in_for_runs_the_step() {
    // The classic desugaring bug: continue must execute the step, or the
    // loop never advances.
    let vm = run(r#"
        void main() {
            int sum = 0;
            for (int i = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) continue;
                sum = sum + i;   // 1+3+5+7+9
            }
            print(sum);
        }
    "#);
    assert_eq!(vm.output(), &[25]);
}

#[test]
fn break_in_for_exits_and_clears_pointers() {
    let vm = run(r#"
        struct node { int v; node@ next; };
        void main() {
            Region r = newregion();
            for (int i = 0; i < 100; i = i + 1) {
                node@ scratch = ralloc(r, node);
                scratch.v = i;
                if (i == 7) break;
            }
            print(deleteregion(r));  // scratch must not linger
        }
    "#);
    assert_eq!(vm.output(), &[1]);
}

#[test]
fn for_scoped_region_pointer_is_cleared_after_the_loop() {
    let vm = run(r#"
        struct node { int v; node@ next; };
        node@ first(Region r) { return ralloc(r, node); }
        void main() {
            Region r = newregion();
            // The loop variable's scope ends with the loop; a region
            // pointer declared in the init clause must not outlive it.
            for (node@ p = first(r); p != null; p = p.next) {
                p.v = 1;
            }
            print(deleteregion(r));
        }
    "#);
    assert_eq!(vm.output(), &[1]);
}
