//! Parallel-region stress bench — the paper's §1 sketch under real
//! threads.
//!
//! Every worker registers with a shared [`ParRegionPool`], creates a
//! batch of regions, and then hammers a shared array of [`RefCell32`]
//! cells with atomic-exchange reference publishes (`exchange_ref`),
//! exactly the racy-write pattern the paper says must use an exchange.
//! Local reference counts are adjusted without synchronization; at the
//! end the main thread clears every cell and `try_delete` must succeed
//! for every region — the cross-thread count sums must all be zero no
//! matter how the schedule interleaved.
//!
//! The run is timed at one worker and at `BENCH_WORKERS` (default: the
//! machine) workers, and writes a schema-v3 results envelope (which
//! records the worker count alongside the rows) to
//! `results/par_regions.json`. The checksum folds only
//! schedule-independent facts (regions created, operations performed,
//! final liveness, final global counts, and the pool auditor's
//! counters), so for a fixed worker count it is identical across runs
//! no matter how the threads interleaved: an interleaving-dependent
//! digest would make the row useless as a regression anchor.

use std::sync::Arc;
use std::time::Instant;

use bench_harness::runner::{
    bench_workers, host_cores, par_bench_workers, scale_from_env, today_utc, write_results_json,
    Measurement,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use region_core::par::{ParRegionPool, RefCell32};
use region_core::{
    world_mirror_mismatches, DescId, RegionConfig, RegionId, RegionRuntime, TypeDescriptor,
};
use simheap::{Addr, HeapBackend, HeapShard, SharedSpace, SpaceConfig};

/// Cells shared by every worker.
const CELLS: usize = 64;
/// Regions created by each worker.
const REGIONS_PER_WORKER: usize = 16;
/// Exchange operations per worker per unit of scale.
const OPS_PER_SCALE: u64 = 100_000;
/// Logical shards in the shared-space mode. Fixed — the digest anchors
/// on the shard count, not on how many OS threads execute them.
const LOGICAL_SHARDS: u32 = 4;
/// Barrier-separated rounds the shared-space scripts are split into, so
/// shards genuinely migrate between OS threads mid-run.
const SHARD_ROUNDS: u64 = 8;
/// Region operations per logical shard per unit of scale.
const SHARD_OPS_PER_SCALE: u64 = 24_000;

/// FNV-1a, the same fold the golden traces use.
fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

struct RunResult {
    elapsed: std::time::Duration,
    regions: u64,
    ops: u64,
    digest: u64,
}

/// Runs the protocol with `workers` threads and verifies every
/// schedule-independent postcondition.
fn run(workers: usize, scale: u32) -> RunResult {
    let pool = ParRegionPool::new();
    // Registering the cells lets `pool.audit()` recompute the published
    // side of the books after the run.
    let cells: Vec<Arc<RefCell32>> = (0..CELLS).map(|_| pool.register_cell()).collect();
    let ops_per_worker = OPS_PER_SCALE * u64::from(scale);

    let t = Instant::now();
    let regions = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let pool = &pool;
                let cells = &cells;
                s.spawn(move || {
                    let mut thread = pool.register_thread();
                    let mine: Vec<_> =
                        (0..REGIONS_PER_WORKER).map(|_| thread.create_region()).collect();
                    // Deterministic per-thread schedule; the interleaving
                    // across threads is whatever the machine does.
                    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ w as u64);
                    for _ in 0..ops_per_worker {
                        let cell = &cells[rng.gen_range(0..CELLS)];
                        if rng.gen_range(0..4) == 0 {
                            thread.exchange_ref(cell, None);
                        } else {
                            let r = mine[rng.gen_range(0..mine.len())];
                            thread.exchange_ref(cell, Some(r));
                        }
                    }
                    mine
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("worker panicked"));
        }
        all
    });

    // Drop the references still parked in cells, then deletion must
    // succeed everywhere: the local counts sum to zero exactly when every
    // publish was balanced by a displacement or a clear.
    let mut main_thread = pool.register_thread();
    for cell in &cells {
        main_thread.exchange_ref(cell, None);
    }
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    // The books must balance before any deletion: counted == recomputed
    // for every region, no dead-thread residue, no dangling cells.
    let audit = pool.audit();
    assert!(audit.is_clean(), "pre-delete audit failed:\n{audit}");
    digest = fnv(digest, audit.regions_audited as u64);
    digest = fnv(digest, audit.cells_audited as u64);
    for &r in &regions {
        let count = pool.global_count(r);
        assert_eq!(count, 0, "unbalanced local counts for {r:?}");
        assert!(pool.try_delete(r), "zero-count region must delete");
        assert!(!pool.is_live(r));
        digest = fnv(digest, count as u64);
        digest = fnv(digest, u64::from(!pool.is_live(r)));
    }
    // And they must still balance after every region is gone.
    let audit = pool.audit();
    assert!(audit.is_clean(), "post-delete audit failed:\n{audit}");
    assert_eq!(audit.quarantined, 0, "a clean run must quarantine nothing");
    digest = fnv(digest, audit.quarantined as u64);
    let elapsed = t.elapsed();
    let regions = regions.len() as u64;
    let ops = ops_per_worker * workers as u64;
    digest = fnv(digest, regions);
    RunResult { elapsed, regions, ops, digest }
}

/// A deterministic region workload bound to one runtime. The digest
/// folds every observable — returned addresses, loaded values, delete
/// verdicts, the full stats/costs books, heap counters, and the
/// sanitizer verdict — so two backends, or the same backend under
/// different schedules, agree iff their digests agree.
struct ShardScript<H: HeapBackend> {
    id: u32,
    rt: RegionRuntime<H>,
    rng: StdRng,
    node: DescId,
    regions: Vec<RegionId>,
    objs: Vec<(Addr, RegionId)>,
    created: u64,
    digest: u64,
}

impl<H: HeapBackend> ShardScript<H> {
    fn new(id: u32, mut rt: RegionRuntime<H>) -> ShardScript<H> {
        let node = rt.register_type(TypeDescriptor::new("node", 16, vec![8]));
        ShardScript {
            id,
            rt,
            rng: StdRng::seed_from_u64(0x5EED_0000 ^ u64::from(id)),
            node,
            regions: Vec::new(),
            objs: Vec::new(),
            created: 0,
            digest: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn fold(&mut self, v: u64) {
        self.digest = fnv(self.digest, v);
    }

    /// One deterministic op. The mix leans on allocation, barriered
    /// pointer stores, and region deletion — the operations a sharded
    /// space must keep worker-local.
    fn step(&mut self) {
        match self.rng.gen_range(0..10u32) {
            0 => {
                if self.regions.len() < 24 {
                    let r = self.rt.new_region();
                    self.regions.push(r);
                    self.created += 1;
                    self.fold(u64::from(r.index()));
                }
            }
            1 | 2 | 3 => {
                if self.regions.is_empty() {
                    return;
                }
                let r = self.regions[self.rng.gen_range(0..self.regions.len())];
                match self.rt.try_ralloc(r, self.node) {
                    Ok(a) => {
                        self.objs.push((a, r));
                        self.fold(u64::from(a.raw()));
                    }
                    Err(e) => self.fold(0x8000_0000_0000_0000 | e.to_string().len() as u64),
                }
            }
            4 => {
                if self.objs.is_empty() {
                    return;
                }
                let (a, _) = self.objs[self.rng.gen_range(0..self.objs.len())];
                let v: u32 = self.rng.gen();
                self.rt.heap_mut().store_u32(a.offset(4 * (v % 2)), v);
            }
            5 => {
                if self.objs.is_empty() {
                    return;
                }
                let (a, _) = self.objs[self.rng.gen_range(0..self.objs.len())];
                let v = self.rt.heap_mut().load_u32(a);
                self.fold(u64::from(v));
            }
            6 | 7 => {
                if self.objs.is_empty() {
                    return;
                }
                let (loc, _) = self.objs[self.rng.gen_range(0..self.objs.len())];
                let (val, _) = self.objs[self.rng.gen_range(0..self.objs.len())];
                self.rt.store_ptr_unknown(loc.offset(8), val);
            }
            8 => {
                if self.objs.is_empty() {
                    return;
                }
                let (loc, _) = self.objs[self.rng.gen_range(0..self.objs.len())];
                self.rt.store_ptr_unknown(loc.offset(8), Addr::NULL);
            }
            _ => {
                if self.regions.is_empty() {
                    return;
                }
                let r = self.regions[self.rng.gen_range(0..self.regions.len())];
                let deleted = match self.rt.try_delete_region(r) {
                    Ok(()) => true,
                    Err(e) => {
                        self.fold(0x4000_0000_0000_0000 | e.to_string().len() as u64);
                        false
                    }
                };
                self.fold(u64::from(deleted));
                if deleted {
                    // Dangling stores into pages a future region may own
                    // would corrupt object headers; drop the objects.
                    self.objs.retain(|&(_, owner)| owner != r);
                }
            }
        }
    }

    fn run_ops(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Closes the books: folds stats, costs, heap counters, and the
    /// sanitizer verdict, returning the digest and the runtime.
    fn finish(mut self) -> (u64, RegionRuntime<H>) {
        let s = self.rt.stats();
        for v in [s.total_allocs, s.total_bytes, s.max_live_bytes, s.total_regions, s.live_regions]
        {
            self.digest = fnv(self.digest, v);
        }
        let c = self.rt.costs();
        for v in [c.barrier_instrs, c.cleanup_instrs, c.deletes, c.deletes_failed] {
            self.digest = fnv(self.digest, v);
        }
        self.digest = fnv(self.digest, self.rt.heap().load_count());
        self.digest = fnv(self.digest, self.rt.heap().store_count());
        self.digest = fnv(self.digest, u64::from(self.rt.heap().brk().raw()));
        let report = self.rt.sanitize();
        assert!(report.is_clean(), "shard {} failed sanitize:\n{report}", self.id);
        self.digest = fnv(self.digest, 1);
        (self.digest, self.rt)
    }
}

/// Runs the four fixed logical shards of one [`SharedSpace`] to
/// completion on `threads` OS threads, in barrier-separated rounds with
/// the shards redistributed round-robin each round. Each shard's op
/// stream depends only on its own seed, so the combined digest is
/// identical no matter how many threads execute it.
fn run_shared(threads: usize, scale: u32) -> RunResult {
    let space = SharedSpace::new(SpaceConfig {
        max_bytes: RegionConfig::default().heap.max_bytes,
        workers: LOGICAL_SHARDS,
    });
    let mut scripts: Vec<ShardScript<HeapShard>> = (0..LOGICAL_SHARDS)
        .map(|w| ShardScript::new(w, RegionRuntime::with_config_on(RegionConfig::default(), space.shard(w))))
        .collect();
    let ops_per_shard = SHARD_OPS_PER_SCALE * u64::from(scale);
    let chunk = ops_per_shard.div_ceil(SHARD_ROUNDS);
    let t = Instant::now();
    let mut done = 0;
    while done < ops_per_shard {
        let n = chunk.min(ops_per_shard - done);
        let mut buckets: Vec<Vec<ShardScript<HeapShard>>> =
            (0..threads).map(|_| Vec::new()).collect();
        // Rotate the assignment with the round so every shard really
        // crosses OS threads over the run.
        let round = done / chunk;
        for (i, sc) in scripts.drain(..).enumerate() {
            buckets[(i + round as usize) % threads].push(sc);
        }
        let mut back: Vec<ShardScript<HeapShard>> = std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|mut b| {
                    s.spawn(move || {
                        for sc in &mut b {
                            sc.run_ops(n);
                        }
                        b
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        back.sort_by_key(|sc| sc.id);
        scripts = back;
        done += n;
    }
    let elapsed = t.elapsed();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut regions = 0;
    let mut runtimes = Vec::new();
    for sc in scripts {
        regions += sc.created;
        let (d, rt) = sc.finish();
        digest = fnv(digest, d);
        runtimes.push(rt);
    }
    // Every worker's private page map must agree with the published
    // atomic mirror — the cross-shard audit the snapshot gate also uses.
    let mismatches = world_mirror_mismatches(&space, runtimes.iter());
    assert_eq!(mismatches, 0, "shared-space mirror diverged from the shards' books");
    digest = fnv(digest, mismatches as u64);
    RunResult {
        elapsed,
        regions,
        ops: ops_per_shard * u64::from(LOGICAL_SHARDS),
        digest,
    }
}

fn measurement(label: &'static str, m: &RunResult) -> Measurement {
    Measurement {
        workload: "par_regions",
        allocator: label,
        total: m.elapsed,
        mem: m.elapsed,
        os_pages: 0,
        stats: region_core::AllocStats {
            total_allocs: m.ops,
            total_regions: m.regions,
            ..Default::default()
        },
        inner_stats: None,
        costs: None,
        cache: None,
        checksum: m.digest,
    }
}

/// One private-vs-shard arm: runs the `ShardScript` to completion on a
/// runtime and reports `(wall, digest, regions, loads, stores, brk)`.
fn ab_arm<H: HeapBackend>(rt: RegionRuntime<H>, ops: u64) -> (f64, u64, u64, u64, u64, u32) {
    let t = Instant::now();
    let mut sc = ShardScript::new(0, rt);
    sc.run_ops(ops);
    let wall = t.elapsed().as_secs_f64() * 1e3;
    let created = sc.created;
    let (digest, rt) = sc.finish();
    (wall, digest, created, rt.heap().load_count(), rt.heap().store_count(), rt.heap().brk().raw())
}

/// Interleaved A/B for the sharded space, recorded as `BENCH_shard.json`
/// (`BENCH_SHARD_OUT` redirects, so CI's quick smoke does not clobber
/// the committed default-scale record). Two comparisons:
///
/// 1. **private vs W=1 shard** — the same deterministic script on a
///    private `SimHeap` and on the single shard of a one-worker shared
///    space must produce bit-identical books (digest, counters, brk).
/// 2. **shared world, 1 vs N threads** — the four-shard space driven by
///    one OS thread vs `par_bench_workers()` threads must produce the
///    same digest; only wall clock may move.
///
/// Arms alternate within each rep (A/B/A/B…) so thermal drift cancels;
/// wall times are the min over reps; every counter is asserted
/// deterministic across arms *and* reps.
fn shard_ab(scale: u32) {
    const REPS: usize = 3;
    let ops = SHARD_OPS_PER_SCALE * u64::from(scale);
    let threads = par_bench_workers();
    println!("Shard A/B: private vs shared-space books, scale {scale}, min of {REPS}");

    let (mut priv_ms, mut shard_ms) = (f64::INFINITY, f64::INFINITY);
    let mut pair: Option<(u64, u64, u64, u64, u32)> = None;
    for _ in 0..REPS {
        let (wa, da, ra, la, sa, ba) =
            ab_arm(RegionRuntime::with_config(RegionConfig::default()), ops);
        let space = SharedSpace::new(SpaceConfig {
            max_bytes: RegionConfig::default().heap.max_bytes,
            workers: 1,
        });
        let (wb, db, rb, lb, sb, bb) =
            ab_arm(RegionRuntime::with_config_on(RegionConfig::default(), space.shard(0)), ops);
        let a = (da, ra, la, sa, ba);
        let b = (db, rb, lb, sb, bb);
        assert_eq!(a, b, "W=1 shard books must be bit-identical to the private heap");
        if let Some(p) = pair {
            assert_eq!(p, a, "counter drift across reps");
        }
        pair = Some(a);
        priv_ms = priv_ms.min(wa);
        shard_ms = shard_ms.min(wb);
    }
    let (digest, regions, loads, stores, brk) = pair.expect("REPS > 0");
    println!(
        "  private vs W=1 shard: digest {digest:016x}, {regions} regions, \
         {loads} loads / {stores} stores — bit-identical; \
         min {priv_ms:.1} ms vs {shard_ms:.1} ms"
    );

    let (mut one_ms, mut n_ms) = (f64::INFINITY, f64::INFINITY);
    let mut shared_digest: Option<u64> = None;
    for _ in 0..REPS {
        let r1 = run_shared(1, scale);
        let rn = run_shared(threads, scale);
        assert_eq!(r1.digest, rn.digest, "shared digest must not depend on the thread count");
        if let Some(d) = shared_digest {
            assert_eq!(d, r1.digest, "shared digest drift across reps");
        }
        shared_digest = Some(r1.digest);
        one_ms = one_ms.min(r1.elapsed.as_secs_f64() * 1e3);
        n_ms = n_ms.min(rn.elapsed.as_secs_f64() * 1e3);
    }
    let shared_digest = shared_digest.expect("REPS > 0");
    println!(
        "  shared {LOGICAL_SHARDS}-shard world: digest {shared_digest:016x} at 1 and {threads} \
         threads; min {one_ms:.1} ms vs {n_ms:.1} ms"
    );

    let json = format!(
        "{{\n  \"comment\": \"Sharded-space A/B: one deterministic region script on a private \
         SimHeap vs the single shard of a one-worker shared space (books bit-identical, \
         asserted), and the {LOGICAL_SHARDS}-shard shared world driven by 1 vs {threads} OS \
         threads (digest schedule-independent, asserted). Interleaved, min of {REPS}; counters \
         deterministic across arms and reps.\",\n  \
         \"date\": \"{}\",\n  \"host\": {{ \"cores\": {}, \"os\": \"{}\" }},\n  \
         \"scale\": {scale},\n  \"reps\": {REPS},\n  \
         \"private_vs_shard\": {{ \"digest\": \"{digest:016x}\", \"regions\": {regions}, \
         \"loads\": {loads}, \"stores\": {stores}, \"brk\": {brk}, \
         \"min_total_ms_private\": {priv_ms:.1}, \"min_total_ms_shard\": {shard_ms:.1} }},\n  \
         \"shared_world\": {{ \"digest\": \"{shared_digest:016x}\", \"logical_shards\": \
         {LOGICAL_SHARDS}, \"threads_ab\": [1, {threads}], \"min_total_ms_1_thread\": \
         {one_ms:.1}, \"min_total_ms_n_threads\": {n_ms:.1} }}\n}}\n",
        today_utc(),
        host_cores(),
        std::env::consts::OS,
    );
    let out = std::env::var("BENCH_SHARD_OUT").unwrap_or_else(|_| "BENCH_shard.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let scale = scale_from_env();
    let workers = bench_workers();
    if std::env::args().any(|a| a == "--shard-ab") {
        shard_ab(scale);
        return;
    }

    println!("Parallel regions: exchange-published references, scale {scale}");
    let serial = run(1, scale);
    let par = run(workers, scale);
    let par_again = run(workers, scale);
    assert_eq!(
        par.digest, par_again.digest,
        "schedule-independent digest must not vary between runs"
    );
    for (label, r) in [("1 worker", &serial), ("N workers", &par)] {
        let mops = r.ops as f64 / r.elapsed.as_secs_f64() / 1e6;
        println!(
            "  {label:<10} ({} threads): {} exchanges over {} regions in {:>7.1} ms ({mops:.1} M ops/s)",
            if std::ptr::eq(r, &serial) { 1 } else { workers },
            r.ops,
            r.regions,
            r.elapsed.as_secs_f64() * 1e3,
        );
    }
    println!(
        "  digest {:016x}; every region deleted with a zero count sum, audit clean",
        par.digest
    );

    // Shared-space mode: the same four logical shards of ONE address
    // space, executed by 1, 2 and N OS threads in barrier-separated
    // rounds. Per-shard op streams depend only on their own seed, so
    // all four same-seed runs must land on one digest.
    let par_threads = par_bench_workers();
    println!();
    println!(
        "Shared-space shards: {LOGICAL_SHARDS} logical shards over one address space, \
         {SHARD_ROUNDS} barrier rounds"
    );
    let shard1 = run_shared(1, scale);
    let shard2 = run_shared(2, scale);
    let shardn = run_shared(par_threads, scale);
    let shardn_again = run_shared(par_threads, scale);
    for (threads, r) in [(1, &shard1), (2, &shard2), (par_threads, &shardn)] {
        println!(
            "  {threads:>2} thread(s): {} region ops over {} regions in {:>7.1} ms",
            r.ops,
            r.regions,
            r.elapsed.as_secs_f64() * 1e3,
        );
    }
    assert_eq!(shard1.digest, shard2.digest, "digest must not depend on the thread count");
    assert_eq!(shard1.digest, shardn.digest, "digest must not depend on the thread count");
    assert_eq!(shardn.digest, shardn_again.digest, "same-seed reruns must agree");
    println!(
        "  digest {:016x} identical at 1, 2 and {par_threads} threads (and across reruns); \
         mirror audit clean",
        shard1.digest
    );

    let rows = [
        measurement("par1", &serial),
        measurement("parN", &par),
        measurement("shard1", &shard1),
        measurement("shardN", &shardn),
    ];
    match write_results_json("par_regions", &rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write results JSON: {e}"),
    }
}
