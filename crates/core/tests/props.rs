//! Property tests: the safe runtime's deletion decisions always match a
//! naive model that recomputes external references from scratch, under
//! arbitrary interleavings of allocation, pointer stores, stack traffic,
//! and deletion attempts.

use proptest::prelude::*;
use region_core::{RegionRuntime, TypeDescriptor};
use simheap::Addr;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    NewRegion,
    Alloc { region: usize },
    /// obj_a.field = obj_b (region write barrier).
    Link { from: usize, to: usize },
    /// obj_a.field = null.
    Unlink { from: usize },
    /// global[g] = obj (global write barrier).
    SetGlobal { g: usize, obj: usize },
    ClearGlobal { g: usize },
    PushFrame,
    PopFrame,
    /// top-frame local = obj.
    SetLocal { slot: usize, obj: usize },
    ClearLocal { slot: usize },
    TryDelete { region: usize },
}

const NGLOBALS: usize = 4;
const SLOTS: u32 = 3;

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            1 => Just(Op::NewRegion),
            4 => any::<usize>().prop_map(|region| Op::Alloc { region }),
            4 => (any::<usize>(), any::<usize>()).prop_map(|(from, to)| Op::Link { from, to }),
            2 => any::<usize>().prop_map(|from| Op::Unlink { from }),
            2 => (0..NGLOBALS, any::<usize>()).prop_map(|(g, obj)| Op::SetGlobal { g, obj }),
            1 => (0..NGLOBALS).prop_map(|g| Op::ClearGlobal { g }),
            1 => Just(Op::PushFrame),
            1 => Just(Op::PopFrame),
            2 => (0..SLOTS as usize, any::<usize>()).prop_map(|(slot, obj)| Op::SetLocal { slot, obj }),
            1 => (0..SLOTS as usize).prop_map(|slot| Op::ClearLocal { slot }),
            2 => any::<usize>().prop_map(|region| Op::TryDelete { region }),
        ],
        1..120,
    )
}

/// The model: which region each object belongs to, every pointer-valued
/// location, and which regions are live.
#[derive(Default)]
struct Model {
    /// (object address, owning region index) in creation order.
    objects: Vec<(Addr, usize)>,
    /// object index → pointed-to object index (its `next` field).
    links: HashMap<usize, usize>,
    globals: [Option<usize>; NGLOBALS],
    /// frames of locals: each slot optionally holds an object index.
    frames: Vec<[Option<usize>; SLOTS as usize]>,
    live: Vec<bool>,
}

impl Model {
    /// True iff region `r` has an external reference: a pointer from a
    /// live object of another region, a global, or any stack slot.
    fn externally_referenced(&self, r: usize) -> bool {
        for (&from, &to) in &self.links {
            let (_, fr) = self.objects[from];
            let (_, tr) = self.objects[to];
            if self.live[fr] && tr == r && fr != r {
                return true;
            }
        }
        if self.globals.iter().flatten().any(|&o| self.objects[o].1 == r) {
            return true;
        }
        self.frames.iter().flatten().flatten().any(|&o| self.objects[o].1 == r)
    }

    fn live_object_indices(&self) -> Vec<usize> {
        (0..self.objects.len()).filter(|&i| self.live[self.objects[i].1]).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deletion_matches_reference_model(ops in ops()) {
        let mut rt = RegionRuntime::new_safe();
        let d = rt.register_type(TypeDescriptor::new("node", 8, vec![4]));
        let globals = rt.alloc_globals(4 * NGLOBALS as u32);
        let mut model = Model::default();
        let mut regions: Vec<region_core::RegionId> = Vec::new();
        rt.push_frame(SLOTS);
        model.frames.push([None; SLOTS as usize]);

        for op in ops {
            match op {
                Op::NewRegion => {
                    regions.push(rt.new_region());
                    model.live.push(true);
                }
                Op::Alloc { region } => {
                    if regions.is_empty() { continue; }
                    let ri = region % regions.len();
                    if !model.live[ri] { continue; }
                    let a = rt.ralloc(regions[ri], d);
                    model.objects.push((a, ri));
                }
                Op::Link { from, to } => {
                    let live = model.live_object_indices();
                    if live.is_empty() { continue; }
                    let fi = live[from % live.len()];
                    let ti = live[to % live.len()];
                    rt.store_ptr_region(model.objects[fi].0 + 4, model.objects[ti].0);
                    model.links.insert(fi, ti);
                }
                Op::Unlink { from } => {
                    let live = model.live_object_indices();
                    if live.is_empty() { continue; }
                    let fi = live[from % live.len()];
                    rt.store_ptr_region(model.objects[fi].0 + 4, Addr::NULL);
                    model.links.remove(&fi);
                }
                Op::SetGlobal { g, obj } => {
                    let live = model.live_object_indices();
                    if live.is_empty() { continue; }
                    let oi = live[obj % live.len()];
                    rt.store_ptr_global(globals + 4 * g as u32, model.objects[oi].0);
                    model.globals[g] = Some(oi);
                }
                Op::ClearGlobal { g } => {
                    rt.store_ptr_global(globals + 4 * g as u32, Addr::NULL);
                    model.globals[g] = None;
                }
                Op::PushFrame => {
                    rt.push_frame(SLOTS);
                    model.frames.push([None; SLOTS as usize]);
                }
                Op::PopFrame => {
                    if model.frames.len() > 1 {
                        rt.pop_frame();
                        model.frames.pop();
                    }
                }
                Op::SetLocal { slot, obj } => {
                    let live = model.live_object_indices();
                    if live.is_empty() { continue; }
                    let oi = live[obj % live.len()];
                    rt.set_local(slot as u32, model.objects[oi].0);
                    model.frames.last_mut().unwrap()[slot] = Some(oi);
                }
                Op::ClearLocal { slot } => {
                    rt.set_local(slot as u32, Addr::NULL);
                    model.frames.last_mut().unwrap()[slot] = None;
                }
                Op::TryDelete { region } => {
                    if regions.is_empty() { continue; }
                    let ri = region % regions.len();
                    if !model.live[ri] { continue; }
                    let expect = !model.externally_referenced(ri);
                    let got = rt.delete_region(regions[ri]);
                    prop_assert_eq!(
                        got, expect,
                        "delete_region disagrees with the model for region {}", ri
                    );
                    if got {
                        model.live[ri] = false;
                        // Dead objects' outgoing links vanish with them.
                        let dead: Vec<usize> = (0..model.objects.len())
                            .filter(|&i| model.objects[i].1 == ri)
                            .collect();
                        for i in dead {
                            model.links.remove(&i);
                        }
                    }
                }
            }
        }

        // Drain: clear every root and every inter-region link (a pair of
        // regions pointing at each other is *never* deletable under the
        // paper's scheme — cross-region cycles must be broken by hand),
        // then every live region must delete.
        for g in 0..NGLOBALS {
            rt.store_ptr_global(globals + 4 * g as u32, Addr::NULL);
        }
        while model.frames.len() > 1 {
            rt.pop_frame();
            model.frames.pop();
        }
        for s in 0..SLOTS {
            rt.set_local(s, Addr::NULL);
        }
        let linked: Vec<usize> = model.links.keys().copied().collect();
        for fi in linked {
            if model.live[model.objects[fi].1] {
                rt.store_ptr_region(model.objects[fi].0 + 4, Addr::NULL);
            }
            model.links.remove(&fi);
        }
        for (ri, &r) in regions.iter().enumerate() {
            if model.live[ri] {
                prop_assert!(rt.delete_region(r), "region {} must delete once unrooted", ri);
            }
        }
        prop_assert_eq!(rt.stats().live_regions, 0);
        prop_assert_eq!(rt.stats().live_bytes, 0);
        rt.pop_frame();
    }
}

/// (a) The host-side page-map mirror must agree with the authoritative
/// in-heap chunked map after any interleaving of region creation,
/// allocation (page acquisition), and deletion (page release/recycling),
/// and `region_of` must report the same owner that a fresh traced lookup
/// of the in-heap map would.
#[derive(Debug, Clone)]
enum MapOp {
    Create,
    /// Allocate `blocks` quarter-page string blocks in a region.
    Grow { region: usize, blocks: usize },
    Delete { region: usize },
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(MapOp::Create),
            4 => (any::<usize>(), 1usize..12)
                .prop_map(|(region, blocks)| MapOp::Grow { region, blocks }),
            2 => any::<usize>().prop_map(|region| MapOp::Delete { region }),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn page_map_mirror_matches_in_heap_map(ops in map_ops()) {
        let mut rt = RegionRuntime::new_safe();
        let mut regions: Vec<(region_core::RegionId, bool)> = Vec::new();
        let mut probes: Vec<(Addr, region_core::RegionId)> = Vec::new();

        for op in ops {
            match op {
                MapOp::Create => {
                    regions.push((rt.new_region(), true));
                }
                MapOp::Grow { region, blocks } => {
                    if regions.is_empty() { continue; }
                    let (r, live) = regions[region % regions.len()];
                    if !live { continue; }
                    for _ in 0..blocks {
                        let a = rt.rstralloc(r, simheap::PAGE_SIZE / 4);
                        probes.push((a, r));
                    }
                }
                MapOp::Delete { region } => {
                    if regions.is_empty() { continue; }
                    let i = region % regions.len();
                    let (r, live) = regions[i];
                    if !live { continue; }
                    prop_assert!(rt.delete_region(r));
                    regions[i].1 = false;
                    probes.retain(|&(_, owner)| owner != r);
                }
            }
            prop_assert!(rt.check_page_map_mirror() > 0);
        }
        // Every live allocation's owner must still resolve through the
        // mirror-backed regionof.
        for (a, owner) in probes {
            prop_assert_eq!(rt.region_of(a), Some(owner));
        }
    }
}
